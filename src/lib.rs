//! # fewer-colors
//!
//! A full Rust reproduction of **Aboulker, Bonamy, Bousquet, Esperet —
//! “Distributed coloring in sparse graphs with fewer colors” (PODC 2018)**:
//! a deterministic LOCAL-model algorithm that `d`-list-colors every graph
//! with `mad(G) ≤ d` (or exhibits a `(d+1)`-clique) in `O(d⁴ log³ n)`
//! rounds, plus every corollary, baseline, and lower-bound construction the
//! paper discusses.
//!
//! This facade re-exports the five member crates:
//!
//! * [`graphs`] — graph substrate: CSR graphs, Gallai trees, exact
//!   `mad`/arboricity via max-flow, exact coloring verifiers, generators.
//! * [`local_model`] — LOCAL simulator: Cole–Vishkin, `(Δ+1)`-coloring,
//!   Barenboim–Elkin baseline, ruling forests, round ledgers.
//! * [`engine`] — the sharded, message-passing LOCAL execution runtime:
//!   per-node programs, round-synchronized delivery, deterministic replay
//!   at any shard count, fault injection, observed per-round metrics.
//! * [`distributed_coloring`] — the paper: Theorem 1.3, constructive
//!   Theorem 1.1, Lemma 3.1/3.2 machinery, Corollaries 1.4/2.1/2.3/2.11,
//!   Theorem 6.1.
//! * [`lower_bounds`] — Theorems 1.5/2.5/2.6: Klein-bottle grids, `H_{2l}`,
//!   locally planar 5-chromatic triangulations, Observation 2.4 tooling.
//!
//! # Quickstart
//!
//! ```
//! use fewer_colors::prelude::*;
//!
//! // A planar graph (mad < 6) with arbitrary 6-color lists:
//! let g = graphs::gen::apollonian(100, 7);
//! let lists = ListAssignment::random(g.n(), 6, 12, 1);
//! let outcome = list_color_sparse(&g, &lists, 6, SparseColoringConfig::default())?;
//! let result = outcome.coloring().expect("planar graphs have no K7");
//! assert!(graphs::is_proper(&g, &result.colors));
//! println!("colored {} vertices in {} LOCAL rounds", g.n(), result.ledger.total());
//! # Ok::<(), distributed_coloring::ColoringError>(())
//! ```

pub use distributed_coloring;
pub use engine;
pub use graphs;
pub use local_model;
pub use lower_bounds;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use distributed_coloring::{
        brooks_list_coloring, color_by_arboricity, color_planar, color_planar_girth6,
        color_planar_triangle_free, list_color_sparse, nice_list_coloring, ColoringError,
        ListAssignment, Outcome, RadiusPolicy, SparseColoring, SparseColoringConfig,
    };
    pub use engine::{
        engine_cole_vishkin_3color, engine_degree_plus_one_coloring, engine_h_partition,
        engine_randomized_list_coloring, CongestMode, EngineConfig, EngineMessage, EngineMetrics,
        EngineSession, FaultPlan, GraphView, NodeCtx, NodeProgram, Outbox, Stop, VertexOrder,
        WireCodec,
    };
    pub use graphs;
    pub use local_model::{barenboim_elkin_coloring, RoundLedger};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_smoke() {
        let g = graphs::gen::grid(5, 5);
        let lists = ListAssignment::uniform(25, 4);
        let outcome = list_color_sparse(&g, &lists, 4, SparseColoringConfig::default()).unwrap();
        assert!(outcome.coloring().is_some());
    }
}
