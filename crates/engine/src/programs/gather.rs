//! Radius-`r` ball gathering and the paper's two-round `(d+1)`-clique
//! detection as message-passing node programs — the communication half of
//! Theorem 1.3's happy/sad classification, executed.
//!
//! Both programs run the **same per-round step functions as the sequential
//! simulations** ([`local_model::merge_fresh`] for the flood,
//! [`local_model::clique_at_apex`] for the apex-local clique decision), so
//! the substrates cannot drift:
//!
//! * [`GatherProgram`] floods ball membership one hop per round. In
//!   [`engine_gather_balls`] every live vertex starts flooding at wake-up
//!   and `B^r` is complete after exactly `r` rounds — the `"ball-gather"`
//!   charge of [`local_model::gather_balls`]. In
//!   [`engine_classification_gather`] a **rich/poor round** precedes the
//!   flood: every vertex of residual degree ≤ `d` announces itself rich,
//!   and the subsequent flood runs strictly inside the rich subgraph —
//!   `1 + r` rounds, matching the sequential `classify`'s
//!   `"rich-poor"` + `"ball-gather"` charges.
//! * [`CliqueProgram`] is §3's two-round handshake: round one exchanges
//!   (live) adjacency lists, round two decides locally whether the node is
//!   the apex of a `(d+1)`-clique. [`engine_detect_clique`] returns the
//!   smallest apex's clique — exactly the sequential
//!   [`local_model::detect_clique`] scan order.

use graphs::{Graph, VertexId, VertexSet};
use local_model::{clique_at_apex, merge_fresh, RoundLedger};

use crate::context::NodeCtx;
use crate::driver::{EngineConfig, EngineSession, Stop};
use crate::metrics::EngineMetrics;
use crate::program::{Activation, EngineMessage, NodeProgram, Outbox, WireCodec};

/// Gather traffic: the rich/poor wake-up announcement, or one round's fresh
/// ball members.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GatherMsg {
    /// "My residual degree is at most d" — the classification's first round.
    Rich,
    /// Newly-learned ball members (sorted), flooded one hop per round.
    Ball(Vec<VertexId>),
}

/// Wire sentinel for [`GatherMsg::Rich`] — distinguishable from any vertex
/// id, which is bounded by the graph order.
const RICH_WORD: u64 = u64::MAX;
/// Wire sentinel for an empty [`GatherMsg::Ball`] (never emitted by the
/// flood, but the codec is total over the type).
const EMPTY_BALL_WORD: u64 = u64::MAX - 1;

/// One word per ball member (vertex ids are the payload; the two sentinels
/// above are unreachable ids), so the wire cost is exactly
/// [`EngineMessage::width`].
impl WireCodec for GatherMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        match self {
            GatherMsg::Rich => out.push(RICH_WORD),
            GatherMsg::Ball(members) if members.is_empty() => out.push(EMPTY_BALL_WORD),
            GatherMsg::Ball(members) => {
                debug_assert!(members.iter().all(|&v| (v as u64) < EMPTY_BALL_WORD));
                out.extend(members.iter().map(|&v| v as u64));
            }
        }
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [] => None,
            [RICH_WORD] => Some(GatherMsg::Rich),
            [EMPTY_BALL_WORD] => Some(GatherMsg::Ball(Vec::new())),
            _ => words
                .iter()
                .map(|&w| (w < EMPTY_BALL_WORD).then_some(w as VertexId))
                .collect::<Option<Vec<_>>>()
                .map(GatherMsg::Ball),
        }
    }
}

impl EngineMessage for GatherMsg {
    fn width(&self) -> usize {
        match self {
            GatherMsg::Rich => 1,
            GatherMsg::Ball(members) => members.len().max(1),
        }
    }
}

/// How a [`GatherProgram`] starts its flood.
#[derive(Clone, Copy, Debug)]
enum GatherMode {
    /// Every live vertex floods from wake-up; `B^r` after `r` rounds.
    Direct,
    /// Round 1 is the rich/poor exchange (degree ≤ `d` vertices announce);
    /// the flood then runs inside the rich subgraph for `r` more rounds.
    RichFirst {
        /// The rich/poor degree threshold.
        d: usize,
    },
}

/// Per-node radius-`r` ball-gathering state.
#[derive(Clone, Debug)]
pub struct GatherProgram {
    mode: GatherMode,
    radius: usize,
    /// Whether this node participates in the flood (always true in direct
    /// mode; decided by the degree threshold in rich-first mode).
    rich: bool,
    /// Flood recipients: all live neighbors in direct mode, the rich ones
    /// in rich-first mode (learned in the rich/poor round).
    rich_nbrs: Vec<VertexId>,
    /// Ball members known so far (sorted) — `B^k` after `k` flood rounds,
    /// by [`merge_fresh`].
    known: Vec<VertexId>,
    done: bool,
}

impl GatherProgram {
    fn direct(radius: usize) -> Self {
        GatherProgram {
            mode: GatherMode::Direct,
            radius,
            rich: true,
            rich_nbrs: Vec::new(),
            known: Vec::new(),
            done: false,
        }
    }

    fn rich_first(radius: usize, d: usize) -> Self {
        GatherProgram {
            mode: GatherMode::RichFirst { d },
            radius,
            rich: false,
            rich_nbrs: Vec::new(),
            known: Vec::new(),
            done: false,
        }
    }

    /// The gathered ball (empty for non-participating vertices).
    pub fn ball(&self) -> &[VertexId] {
        &self.known
    }

    /// Whether this node classified itself rich (direct mode: always true).
    pub fn is_rich(&self) -> bool {
        self.rich
    }

    /// Absorbs one round of flood traffic, returning the fresh members to
    /// forward.
    fn absorb(&mut self, inbox: &[(VertexId, GatherMsg)]) -> Vec<VertexId> {
        let incoming: Vec<&[VertexId]> = inbox
            .iter()
            .filter_map(|(_, m)| match m {
                GatherMsg::Ball(members) => Some(members.as_slice()),
                GatherMsg::Rich => None,
            })
            .collect();
        merge_fresh(&mut self.known, &incoming)
    }

    /// Sends `fresh` to the flood recipients, if anything is left to say.
    fn forward(&self, fresh: Vec<VertexId>) -> Outbox<GatherMsg> {
        if fresh.is_empty() || self.rich_nbrs.is_empty() {
            return Outbox::Silent;
        }
        Outbox::Multi(
            self.rich_nbrs
                .iter()
                .map(|&w| (w, GatherMsg::Ball(fresh.clone())))
                .collect(),
        )
    }
}

impl NodeProgram for GatherProgram {
    type Message = GatherMsg;

    fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<GatherMsg> {
        match self.mode {
            GatherMode::Direct => {
                self.rich_nbrs = ctx.neighbors.to_vec();
                self.known = vec![ctx.id];
                if self.radius == 0 {
                    self.done = true;
                    Outbox::Silent
                } else {
                    Outbox::Broadcast(GatherMsg::Ball(vec![ctx.id]))
                }
            }
            GatherMode::RichFirst { d } => {
                self.rich = ctx.degree() <= d;
                if self.rich {
                    Outbox::Broadcast(GatherMsg::Rich)
                } else {
                    Outbox::Silent
                }
            }
        }
    }

    fn on_round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[(VertexId, GatherMsg)],
    ) -> Outbox<GatherMsg> {
        // The flood spans rounds `flood_start ..= flood_start + radius - 1`;
        // round `r` of the flood absorbs the hop-`r` traffic.
        let flood_start = match self.mode {
            GatherMode::Direct => 1,
            GatherMode::RichFirst { .. } => 2,
        };
        let round = ctx.round as usize;
        if round < flood_start {
            // Rich-first mode only: the rich/poor round. Learn which
            // neighbors are rich and seed the flood among them.
            self.rich_nbrs = inbox
                .iter()
                .filter(|(_, m)| matches!(m, GatherMsg::Rich))
                .map(|&(src, _)| src)
                .collect();
            if !self.rich {
                self.done = true;
                return Outbox::Silent;
            }
            self.known = vec![ctx.id];
            if self.radius == 0 {
                self.done = true;
                return Outbox::Silent;
            }
            return self.forward(vec![ctx.id]);
        }
        if !self.rich || self.done {
            return Outbox::Silent;
        }
        let fresh = self.absorb(inbox);
        if round + 1 - flood_start >= self.radius {
            // Final flood round: `known` is `B^radius`; nothing further to
            // forward would ever be delivered.
            self.done = true;
            return Outbox::Silent;
        }
        self.forward(fresh)
    }

    fn halted(&self) -> bool {
        self.done
    }

    /// Done nodes (poor vertices after the rich/poor round, everyone once
    /// the flood completes) step only on traffic — their step is a pure
    /// `Silent`. Unfinished nodes keep the full scan: an empty-inbox step
    /// can still seed the flood or retire the node at the final flood round.
    fn activation(&self) -> Activation {
        if self.done {
            Activation::OnMessage
        } else {
            Activation::EveryRound
        }
    }
}

/// Engine twin of [`local_model::gather_balls`]: every live vertex learns
/// `B^radius_mask(v)` in exactly `radius` executed rounds (charged to
/// `"ball-gather"`), and the balls of `centers` are returned — bit-identical
/// to the sequential flood, masked or not, at any shard count. Centers
/// outside the mask get empty balls, per the paper's convention.
///
/// # Examples
///
/// ```
/// use engine::{engine_gather_balls, EngineConfig};
/// use graphs::gen;
/// use local_model::RoundLedger;
///
/// let g = gen::grid(5, 5);
/// let mut ledger = RoundLedger::new();
/// let (balls, _) =
///     engine_gather_balls(&g, None, &[12], 2, EngineConfig::default(), &mut ledger);
/// assert_eq!(balls[0], graphs::ball(&g, 12, 2, None));
/// assert_eq!(ledger.phase_total("ball-gather"), 2);
/// ```
pub fn engine_gather_balls(
    g: &Graph,
    mask: Option<&VertexSet>,
    centers: &[VertexId],
    radius: usize,
    mut config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (Vec<Vec<VertexId>>, EngineMetrics) {
    config.mask = mask.cloned();
    let mut sess = EngineSession::new(g, config, |_| GatherProgram::direct(radius));
    let report = sess.run_phase("ball-gather", Stop::Rounds(radius as u64));
    assert_eq!(
        report.rounds, radius as u64,
        "max_rounds interrupted the ball gather"
    );
    let balls = centers
        .iter()
        .map(|&c| match sess.view().dense_of(c) {
            Some(dv) => sess.programs()[dv].ball().to_vec(),
            None => Vec::new(),
        })
        .collect();
    let (_, metrics, run_ledger) = sess.into_parts();
    ledger.absorb(run_ledger);
    (balls, metrics)
}

/// The communication of Theorem 1.3's classification, executed: one
/// rich/poor degree-announcement round over `g[alive]` (charged to
/// `"rich-poor"`), then a `radius`-round ball flood strictly inside the
/// rich subgraph (charged to `"ball-gather"`) — the same `1 + radius`
/// rounds the sequential `classify` charges. Returns the rich set and, for
/// every rich vertex, its ball `B^radius_rich(v)` (empty for poor or dead
/// vertices), indexed by original vertex id.
pub fn engine_classification_gather(
    g: &Graph,
    alive: &VertexSet,
    d: usize,
    radius: usize,
    mut config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (VertexSet, Vec<Vec<VertexId>>, EngineMetrics) {
    config.mask = Some(alive.clone());
    let mut sess = EngineSession::new(g, config, |_| GatherProgram::rich_first(radius, d));
    let rich_report = sess.run_phase("rich-poor", Stop::Rounds(1));
    let flood_report = sess.run_phase("ball-gather", Stop::Rounds(radius as u64));
    assert_eq!(
        rich_report.rounds + flood_report.rounds,
        1 + radius as u64,
        "max_rounds interrupted the classification gather"
    );
    let mut rich = VertexSet::new(g.n());
    let mut balls: Vec<Vec<VertexId>> = vec![Vec::new(); g.n()];
    sess.for_each_program(|v, p| {
        if p.is_rich() {
            rich.insert(v);
            balls[v] = p.ball().to_vec();
        }
    });
    let (_, metrics, run_ledger) = sess.into_parts();
    ledger.absorb(run_ledger);
    (rich, balls, metrics)
}

/// Clique-handshake traffic: a node's live adjacency list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NbrList(pub Vec<VertexId>);

/// Wire sentinel for an empty adjacency list (an isolated node's
/// handshake).
const EMPTY_LIST_WORD: u64 = u64::MAX;

/// One word per listed neighbor, so the wire cost is exactly
/// [`EngineMessage::width`].
impl WireCodec for NbrList {
    fn encode(&self, out: &mut Vec<u64>) {
        if self.0.is_empty() {
            out.push(EMPTY_LIST_WORD);
        } else {
            debug_assert!(self.0.iter().all(|&v| (v as u64) < EMPTY_LIST_WORD));
            out.extend(self.0.iter().map(|&v| v as u64));
        }
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [] => None,
            [EMPTY_LIST_WORD] => Some(NbrList(Vec::new())),
            _ => words
                .iter()
                .map(|&w| (w < EMPTY_LIST_WORD).then_some(w as VertexId))
                .collect::<Option<Vec<_>>>()
                .map(NbrList),
        }
    }
}

impl EngineMessage for NbrList {
    fn width(&self) -> usize {
        self.0.len().max(1)
    }
}

/// Per-node state of §3's two-round `(d+1)`-clique detection: broadcast the
/// live adjacency list in round one, decide apex-locally in round two with
/// [`clique_at_apex`] — the same decision function the sequential scan
/// runs, fed only with exchanged knowledge.
#[derive(Clone, Debug)]
pub struct CliqueProgram {
    d: usize,
    /// Senders of round-one adjacency lists (sorted — inbox order).
    heard_from: Vec<VertexId>,
    /// Their lists, aligned to `heard_from`.
    lists: Vec<Vec<VertexId>>,
    /// The clique this apex found (sorted, apex included), if any.
    found: Option<Vec<VertexId>>,
    done: bool,
}

impl CliqueProgram {
    fn new(d: usize) -> Self {
        CliqueProgram {
            d,
            heard_from: Vec::new(),
            lists: Vec::new(),
            found: None,
            done: false,
        }
    }

    /// The `(d+1)`-clique containing this apex, if the handshake found one.
    pub fn found(&self) -> Option<&Vec<VertexId>> {
        self.found.as_ref()
    }

    fn list_of(&self, w: VertexId) -> Option<&[VertexId]> {
        self.heard_from
            .binary_search(&w)
            .ok()
            .map(|i| self.lists[i].as_slice())
    }
}

impl NodeProgram for CliqueProgram {
    type Message = NbrList;

    fn init(&mut self, _ctx: &mut NodeCtx<'_>) -> Outbox<NbrList> {
        Outbox::Silent
    }

    fn on_round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[(VertexId, NbrList)],
    ) -> Outbox<NbrList> {
        match ctx.round {
            1 => Outbox::Broadcast(NbrList(ctx.neighbors.to_vec())),
            2 => {
                for (src, NbrList(list)) in inbox {
                    self.heard_from.push(*src);
                    self.lists.push(list.clone());
                }
                // A lost or faulted list degrades the neighbor to degree 0 —
                // it simply cannot join a clique through this apex.
                self.found = clique_at_apex(
                    ctx.id,
                    ctx.neighbors,
                    self.d,
                    |w| self.list_of(w).map_or(0, <[VertexId]>::len),
                    |u, w| self.list_of(w).is_some_and(|l| l.binary_search(&u).is_ok()),
                );
                self.done = true;
                Outbox::Silent
            }
            _ => Outbox::Silent,
        }
    }

    fn halted(&self) -> bool {
        self.done
    }
}

/// Engine twin of [`local_model::detect_clique`]: the two-round handshake
/// executed over `g[mask]`, charged to `"clique-detection"` exactly like
/// the sequential scan, returning the same clique (the smallest apex wins).
pub fn engine_detect_clique(
    g: &Graph,
    mask: Option<&VertexSet>,
    d: usize,
    mut config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (Option<Vec<VertexId>>, EngineMetrics) {
    config.mask = mask.cloned();
    let mut sess = EngineSession::new(g, config, |_| CliqueProgram::new(d));
    let report = sess.run_phase("clique-detection", Stop::Rounds(2));
    assert_eq!(
        report.rounds, 2,
        "max_rounds interrupted the clique handshake"
    );
    let mut found = None;
    sess.for_each_program(|_, p| {
        if found.is_none() {
            found = p.found().cloned();
        }
    });
    let (_, metrics, run_ledger) = sess.into_parts();
    ledger.absorb(run_ledger);
    (found, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;
    use local_model::{detect_clique, gather_balls};

    fn assert_balls_match(g: &Graph, mask: Option<&VertexSet>, radius: usize, label: &str) {
        let centers: Vec<VertexId> = (0..g.n()).collect();
        let mut seq_ledger = RoundLedger::new();
        let seq = gather_balls(g, mask, &centers, radius, &mut seq_ledger);
        for shards in [1usize, 2, 8] {
            let mut eng_ledger = RoundLedger::new();
            let (balls, metrics) = engine_gather_balls(
                g,
                mask,
                &centers,
                radius,
                EngineConfig::default().with_shards(shards),
                &mut eng_ledger,
            );
            assert_eq!(balls, seq, "{label} shards={shards}");
            assert_eq!(eng_ledger.total(), seq_ledger.total(), "{label}");
            assert_eq!(metrics.total_rounds(), radius as u64, "{label}");
        }
    }

    #[test]
    fn balls_match_sequential_gather() {
        assert_balls_match(&gen::grid(6, 6), None, 3, "grid");
        assert_balls_match(&gen::random_tree(50, 3), None, 2, "tree");
        let g = gen::triangular(5, 5);
        let mask = VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 3 != 1));
        assert_balls_match(&g, Some(&mask), 4, "masked triangular");
    }

    #[test]
    fn gather_codec_round_trips() {
        for msg in [
            GatherMsg::Rich,
            GatherMsg::Ball(Vec::new()),
            GatherMsg::Ball(vec![0]),
            GatherMsg::Ball(vec![3, 17, 19, 523]),
        ] {
            let words = msg.encode_to_vec();
            assert_eq!(words.len(), msg.width(), "{msg:?}");
            assert_eq!(GatherMsg::decode(&words), Some(msg));
        }
        for list in [
            NbrList(Vec::new()),
            NbrList(vec![7]),
            NbrList(vec![1, 2, 3]),
        ] {
            let words = list.encode_to_vec();
            assert_eq!(words.len(), list.width());
            assert_eq!(NbrList::decode(&words), Some(list));
        }
        assert_eq!(GatherMsg::decode(&[]), None);
        assert_eq!(NbrList::decode(&[]), None);
    }

    #[test]
    fn split_mode_gather_matches_unlimited_and_charges_extra_rounds() {
        use crate::driver::SPLIT_PHASE;
        let g = gen::grid(7, 7);
        let centers: Vec<VertexId> = (0..g.n()).collect();
        let radius = 3;
        let mut base_ledger = RoundLedger::new();
        let (base, base_metrics) = engine_gather_balls(
            &g,
            None,
            &centers,
            radius,
            EngineConfig::default(),
            &mut base_ledger,
        );
        assert!(
            base_metrics.max_width() > 1,
            "the flood ships wide messages"
        );
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (balls, metrics) = engine_gather_balls(
                &g,
                None,
                &centers,
                radius,
                EngineConfig::default().with_shards(shards).congest_split(1),
                &mut ledger,
            );
            assert_eq!(balls, base, "shards={shards}: split changed the balls");
            assert!(metrics.total_fragments() > 0, "wide messages fragmented");
            assert!(
                metrics.total_physical_rounds() > metrics.total_rounds(),
                "splitting must cost physical rounds"
            );
            assert_eq!(
                ledger.phase_total("ball-gather"),
                base_ledger.phase_total("ball-gather"),
                "logical charge unchanged"
            );
            assert_eq!(
                ledger.phase_total(SPLIT_PHASE) + ledger.phase_total("ball-gather"),
                ledger.total(),
                "surplus lands under {SPLIT_PHASE}"
            );
            assert_eq!(
                ledger.phase_total(SPLIT_PHASE) + metrics.total_rounds(),
                metrics.total_physical_rounds(),
                "ledger surplus equals the observed physical surplus"
            );
        }
    }

    #[test]
    fn radius_zero_balls_are_singletons() {
        let g = gen::cycle(5);
        let mut ledger = RoundLedger::new();
        let (balls, metrics) =
            engine_gather_balls(&g, None, &[0, 3], 0, EngineConfig::default(), &mut ledger);
        assert_eq!(balls, vec![vec![0], vec![3]]);
        assert_eq!(metrics.total_rounds(), 0);
        assert_eq!(ledger.total(), 0);
    }

    #[test]
    fn classification_gather_splits_rich_and_floods_rich_subgraph() {
        // Star K_{1,5} with d = 3: the center is poor, the leaves rich. A
        // leaf's rich ball is just itself — the poor center blocks every
        // path between leaves.
        let g = gen::star(5);
        let alive = VertexSet::full(g.n());
        let mut ledger = RoundLedger::new();
        let (rich, balls, metrics) = engine_classification_gather(
            &g,
            &alive,
            3,
            4,
            EngineConfig::default().with_shards(2),
            &mut ledger,
        );
        assert!(!rich.contains(0));
        assert_eq!(rich.len(), 5);
        assert!(balls[0].is_empty(), "poor vertices gather nothing");
        for (leaf, ball) in balls.iter().enumerate().take(6).skip(1) {
            assert_eq!(ball, &vec![leaf]);
        }
        assert_eq!(ledger.phase_total("rich-poor"), 1);
        assert_eq!(ledger.phase_total("ball-gather"), 4);
        assert_eq!(metrics.total_rounds(), 5);
    }

    #[test]
    fn classification_balls_match_masked_bfs_balls() {
        let g = gen::triangular(5, 5);
        let alive = VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 5 != 2));
        let d = 4;
        for radius in [1usize, 2, 3] {
            let mut ledger = RoundLedger::new();
            let (rich, balls, _) = engine_classification_gather(
                &g,
                &alive,
                d,
                radius,
                EngineConfig::default().with_shards(2),
                &mut ledger,
            );
            for v in alive.iter() {
                if rich.contains(v) {
                    assert_eq!(
                        balls[v],
                        graphs::ball(&g, v, radius, Some(&rich)),
                        "vertex {v} radius {radius}"
                    );
                }
            }
        }
    }

    #[test]
    fn clique_detection_matches_sequential() {
        // K4 glued into a path (the sequential module's own fixture), K5,
        // and a clique-free grid.
        let mut edges: Vec<(usize, usize)> = (0..10).map(|i| (i, i + 1)).collect();
        edges.extend([(0, 2), (0, 3), (1, 3)]);
        let glued = graphs::Graph::from_edges(11, edges);
        let cases: Vec<(Graph, usize)> =
            vec![(glued, 3), (gen::complete(5), 4), (gen::grid(5, 5), 3)];
        for (g, d) in &cases {
            let mut seq_ledger = RoundLedger::new();
            let seq = detect_clique(g, None, *d, &mut seq_ledger);
            for shards in [1usize, 2, 8] {
                let mut eng_ledger = RoundLedger::new();
                let (found, metrics) = engine_detect_clique(
                    g,
                    None,
                    *d,
                    EngineConfig::default().with_shards(shards),
                    &mut eng_ledger,
                );
                assert_eq!(found, seq, "n={} d={d} shards={shards}", g.n());
                assert_eq!(eng_ledger.total(), seq_ledger.total());
                assert_eq!(
                    eng_ledger.phase_total("clique-detection"),
                    seq_ledger.phase_total("clique-detection")
                );
                assert_eq!(metrics.total_rounds(), 2);
            }
        }
    }

    #[test]
    fn masked_clique_detection_matches_sequential() {
        let g = gen::complete(6);
        let mask = VertexSet::from_iter_with_universe(6, [0, 2, 3, 5]);
        let mut seq_ledger = RoundLedger::new();
        let seq = detect_clique(&g, Some(&mask), 3, &mut seq_ledger);
        assert!(seq.is_some(), "K4 survives the mask");
        let mut eng_ledger = RoundLedger::new();
        let (found, _) = engine_detect_clique(
            &g,
            Some(&mask),
            3,
            EngineConfig::default().with_shards(2),
            &mut eng_ledger,
        );
        assert_eq!(found, seq);
    }
}
