//! The §6 randomized `(deg+1)`-list-coloring as a message-passing program.
//!
//! Each propose/resolve cycle costs two engine rounds, matching the
//! sequential twin's `2 · cycles` ledger charge (see
//! [`local_model::randomized`]):
//!
//! * **Propose** (odd rounds): an uncolored node first strikes the colors
//!   its neighbors committed last cycle (the `Committed` messages in its
//!   inbox), then draws a uniform color from its live list and broadcasts
//!   `Proposal`.
//! * **Resolve** (even rounds): the node hears every neighbor proposal and
//!   commits unless some neighbor proposed — or is known to own — the same
//!   color; on commit it broadcasts `Committed` and halts.
//!
//! Because each node draws from [`local_model::per_vertex_rng`]`(seed, id)`
//! — the engine seeds [`NodeCtx::rng`](crate::NodeCtx) with exactly that
//! stream — and inboxes are sorted by sender, the engine run commits the
//! same vertices with the same colors in the same cycles as the sequential
//! implementation, at any shard count.

use graphs::{Graph, VertexId, VertexSet};
use local_model::{RandomizedColoring, RoundLedger};
use rand::Rng;

use crate::context::NodeCtx;
use crate::driver::{EngineConfig, EngineSession, Stop};
use crate::metrics::EngineMetrics;
use crate::program::{EngineMessage, NodeProgram, Outbox, WireCodec};

/// Cycle traffic: a color proposal, or a committed color.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColorMsg {
    /// "I propose this color for the current cycle."
    Proposal(usize),
    /// "I committed this color last resolve round."
    Committed(usize),
}

/// One word on the wire: the color in the high bits, the
/// proposal/commitment flag in bit 0.
impl WireCodec for ColorMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        let (c, tag) = match *self {
            ColorMsg::Proposal(c) => (c as u64, 0),
            ColorMsg::Committed(c) => (c as u64, 1),
        };
        debug_assert_eq!(c >> 63, 0, "color must fit the 63-bit wire field");
        out.push((c << 1) | tag);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [w] if w & 1 == 0 => Some(ColorMsg::Proposal((w >> 1) as usize)),
            [w] => Some(ColorMsg::Committed((w >> 1) as usize)),
            _ => None,
        }
    }
}

impl EngineMessage for ColorMsg {
    const MAX_WIDTH: Option<usize> = Some(1);
}

/// Per-node randomized list-coloring state.
#[derive(Clone, Debug)]
pub struct RandomizedProgram {
    live: Vec<usize>,
    color: usize,
    proposal: usize,
    /// Colors committed by neighbors (for the "neighbor owns it" conflict).
    taken: Vec<usize>,
}

impl RandomizedProgram {
    /// The node's committed color (`usize::MAX` while uncolored).
    pub fn color(&self) -> usize {
        self.color
    }

    fn strike(&mut self, inbox: &[(VertexId, ColorMsg)]) {
        for &(_, msg) in inbox {
            if let ColorMsg::Committed(c) = msg {
                self.taken.push(c);
                if let Some(pos) = self.live.iter().position(|&x| x == c) {
                    self.live.remove(pos);
                }
            }
        }
    }
}

impl NodeProgram for RandomizedProgram {
    type Message = ColorMsg;

    fn init(&mut self, _ctx: &mut NodeCtx<'_>) -> Outbox<ColorMsg> {
        Outbox::Silent
    }

    fn on_round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[(VertexId, ColorMsg)],
    ) -> Outbox<ColorMsg> {
        if self.color != usize::MAX {
            // Committed (and announced in the commit round): silent forever.
            return Outbox::Silent;
        }
        if ctx.round % 2 == 1 {
            // Propose: strike last cycle's commitments first, exactly the
            // knowledge the sequential implementation draws with.
            self.strike(inbox);
            self.proposal = self.live[ctx.rng.gen_range(0..self.live.len())];
            Outbox::Broadcast(ColorMsg::Proposal(self.proposal))
        } else {
            // Resolve: ties kill both, owned colors kill the proposer.
            // Strike first: fault-free resolve inboxes hold only proposals
            // (a no-op), but a fault-delayed `Committed` can land here and
            // must not be lost — dropping it could let this node commit a
            // neighbor's color.
            self.strike(inbox);
            let p = self.proposal;
            let conflict =
                inbox.iter().any(|&(_, m)| m == ColorMsg::Proposal(p)) || self.taken.contains(&p);
            if conflict {
                Outbox::Silent
            } else {
                self.color = p;
                Outbox::Broadcast(ColorMsg::Committed(p))
            }
        }
    }

    fn halted(&self) -> bool {
        self.color != usize::MAX
    }
}

/// Runs the engine randomized list-coloring over `g[mask]`: same output
/// contract and `"randomized-coloring"` ledger total as
/// [`local_model::randomized_list_coloring`] — including bit-identical
/// colors for equal `seed`, masked or not — plus the observed
/// [`EngineMetrics`]. `max_cycles` caps propose/resolve cycles, like the
/// sequential `max_rounds`. Masked-out vertices run no program and keep
/// `usize::MAX`. Any `config.mask` is overridden by `mask`.
///
/// # Panics
///
/// Panics if some masked vertex's list is smaller than its masked degree
/// plus one.
///
/// # Examples
///
/// ```
/// use engine::{engine_randomized_list_coloring, EngineConfig};
/// use graphs::gen;
/// use local_model::RoundLedger;
///
/// let g = gen::cycle(12);
/// let lists: Vec<Vec<usize>> = (0..12).map(|_| vec![0, 1, 2]).collect();
/// let mut ledger = RoundLedger::new();
/// let (out, _) = engine_randomized_list_coloring(
///     &g, None, &lists, 1, 100, EngineConfig::default(), &mut ledger,
/// );
/// assert!(out.complete);
/// for (u, v) in g.edges() {
///     assert_ne!(out.colors[u], out.colors[v]);
/// }
/// ```
pub fn engine_randomized_list_coloring(
    g: &Graph,
    mask: Option<&VertexSet>,
    lists: &[Vec<usize>],
    seed: u64,
    max_cycles: u64,
    mut config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (RandomizedColoring, EngineMetrics) {
    let n = g.n();
    assert_eq!(lists.len(), n);
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    for (v, list) in lists.iter().enumerate() {
        if in_mask(v) {
            let deg = g.neighbors(v).iter().filter(|&&w| in_mask(w)).count();
            assert!(
                list.len() > deg,
                "vertex {v}: randomized coloring needs deg+1 lists"
            );
        }
    }
    // The node RNG stream is the sequential contract: per_vertex_rng(seed, v).
    config.seed = seed;
    config.mask = mask.cloned();
    config.max_rounds = config.max_rounds.min(2 * max_cycles);
    let mut sess = EngineSession::new(g, config, |ctx| RandomizedProgram {
        live: lists[ctx.id].clone(),
        color: usize::MAX,
        proposal: usize::MAX,
        taken: Vec::new(),
    });
    let report = sess.run_phase("randomized-coloring", Stop::AllHalted);
    let colors = sess.view().scatter(
        usize::MAX,
        sess.programs().iter().map(RandomizedProgram::color),
    );
    let (_, metrics, run_ledger) = sess.into_parts();
    ledger.absorb(run_ledger);
    (
        RandomizedColoring {
            colors,
            rounds: report.rounds / 2,
            complete: report.converged,
        },
        metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    fn deg_plus_one_lists(g: &Graph, slack: usize) -> Vec<Vec<usize>> {
        g.vertices()
            .map(|v| (0..g.degree(v) + 1 + slack).collect())
            .collect()
    }

    #[test]
    fn matches_sequential_bit_for_bit() {
        for seed in 0..4u64 {
            let g = gen::random_regular(200, 4, seed);
            let lists = deg_plus_one_lists(&g, 0);
            let mut seq_ledger = RoundLedger::new();
            let seq =
                local_model::randomized_list_coloring(&g, None, &lists, seed, 500, &mut seq_ledger);
            for shards in [1usize, 2, 8] {
                let mut eng_ledger = RoundLedger::new();
                let (out, _) = engine_randomized_list_coloring(
                    &g,
                    None,
                    &lists,
                    seed,
                    500,
                    EngineConfig::default().with_shards(shards),
                    &mut eng_ledger,
                );
                assert_eq!(out.colors, seq.colors, "seed={seed} shards={shards}");
                assert_eq!(out.rounds, seq.rounds);
                assert_eq!(out.complete, seq.complete);
                assert_eq!(eng_ledger.total(), seq_ledger.total());
            }
        }
    }

    #[test]
    fn proper_and_on_list() {
        let g = gen::grid(9, 9);
        let lists: Vec<Vec<usize>> = g
            .vertices()
            .map(|v| (7 * v..7 * v + g.degree(v) + 1).collect())
            .collect();
        let mut ledger = RoundLedger::new();
        let (out, metrics) = engine_randomized_list_coloring(
            &g,
            None,
            &lists,
            3,
            500,
            EngineConfig::default(),
            &mut ledger,
        );
        assert!(out.complete);
        for (u, v) in g.edges() {
            assert_ne!(out.colors[u], out.colors[v]);
        }
        for v in g.vertices() {
            assert!(lists[v].contains(&out.colors[v]));
        }
        assert_eq!(metrics.total_rounds(), 2 * out.rounds);
    }

    #[test]
    fn cycle_budget_respected() {
        let g = gen::random_regular(100, 3, 1);
        let lists = deg_plus_one_lists(&g, 0);
        let mut ledger = RoundLedger::new();
        let (out, _) = engine_randomized_list_coloring(
            &g,
            None,
            &lists,
            1,
            1,
            EngineConfig::default(),
            &mut ledger,
        );
        assert_eq!(out.rounds, 1);
        assert!(!out.complete, "one cycle cannot finish 100 vertices");
        for (u, v) in g.edges() {
            if out.colors[u] != usize::MAX && out.colors[v] != usize::MAX {
                assert_ne!(out.colors[u], out.colors[v]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "deg+1")]
    fn tight_lists_rejected() {
        let g = gen::cycle(6);
        let lists = vec![vec![0, 1]; 6];
        let mut ledger = RoundLedger::new();
        engine_randomized_list_coloring(
            &g,
            None,
            &lists,
            1,
            10,
            EngineConfig::default(),
            &mut ledger,
        );
    }

    #[test]
    fn delayed_commit_announcements_never_cause_improper_colorings() {
        // Delay node 0's outbox by 1 in every resolve (even) round: its
        // `Committed` then lands in a *resolve* inbox (2c + 2) instead of a
        // propose inbox. The late announcement must still be struck there —
        // losing it would let a neighbor commit node 0's color.
        use crate::faults::FaultPlan;
        for seed in 0..6u64 {
            let g = gen::cycle(20);
            let lists = deg_plus_one_lists(&g, 0);
            let mut faults = FaultPlan::new();
            for resolve_round in (2..400u64).step_by(2) {
                faults = faults.delay_outbox(0, resolve_round, 1);
            }
            let mut ledger = RoundLedger::new();
            let (out, metrics) = engine_randomized_list_coloring(
                &g,
                None,
                &lists,
                seed,
                1000,
                EngineConfig::default().with_faults(faults),
                &mut ledger,
            );
            assert!(
                metrics.total_delayed() > 0,
                "seed {seed}: fault never fired"
            );
            assert!(out.complete, "seed {seed}: delayed run must still finish");
            for (u, v) in g.edges() {
                assert_ne!(out.colors[u], out.colors[v], "seed {seed}: edge ({u},{v})");
            }
        }
    }

    #[test]
    fn masked_run_matches_sequential_masked_primitive() {
        use graphs::VertexSet;
        for seed in 0..3u64 {
            let g = gen::grid(12, 12);
            let mask = VertexSet::from_iter_with_universe(
                g.n(),
                (0..g.n()).filter(|v| !(v * 7 + seed as usize).is_multiple_of(4)),
            );
            let lists = deg_plus_one_lists(&g, 0);
            let mut seq_ledger = RoundLedger::new();
            let seq = local_model::randomized_list_coloring(
                &g,
                Some(&mask),
                &lists,
                seed,
                500,
                &mut seq_ledger,
            );
            for shards in [1usize, 2, 8] {
                let mut eng_ledger = RoundLedger::new();
                let (out, _) = engine_randomized_list_coloring(
                    &g,
                    Some(&mask),
                    &lists,
                    seed,
                    500,
                    EngineConfig::default().with_shards(shards),
                    &mut eng_ledger,
                );
                assert_eq!(out.colors, seq.colors, "seed={seed} shards={shards}");
                assert_eq!(out.rounds, seq.rounds);
                assert_eq!(out.complete, seq.complete);
                assert_eq!(eng_ledger.total(), seq_ledger.total());
            }
            for v in 0..g.n() {
                if !mask.contains(v) {
                    assert_eq!(seq.colors[v], usize::MAX, "dead vertices stay uncolored");
                }
            }
        }
    }
}
