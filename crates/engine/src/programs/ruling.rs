//! The (α, β)-ruling forest construction as a message-passing node program
//! — the scaffolding phase of the paper's Lemma 3.2, executed.
//!
//! [`RulingProgram`] runs three stages back to back in one masked session,
//! deriving its schedule purely from the round number (no host seams):
//!
//! 1. **Ruling levels** (rounds `1 ..= α·bits`, charged `"ruling-set"`):
//!    bit level `b` spans α rounds. In its first round every surviving
//!    ruler whose bit `b` is 0 injects a token tagged with its identifier
//!    prefix `id >> (b+1)`; tokens flood `g[mask]` one hop per round for
//!    α − 1 hops ([`local_model::merge_fresh`] — the same step the
//!    sequential [`local_model::ruling_set`] simulates); a ruler whose bit
//!    `b` is 1 drops out on receiving a token of its own prefix. In the
//!    **final** level round the surviving rulers become roots and
//!    broadcast their first claim, so the claiming BFS below reaches
//!    distance β in β rounds — exactly the sequential claim depth.
//! 2. **Claiming** (β rounds, charged `"ruling-forest-claim"`): an
//!    unclaimed vertex adopts the smallest `(root, sender)` claim it hears
//!    ([`local_model::claim_choice`], the shared tie-break) and forwards
//!    its own claim the same round.
//! 3. **Pruning** (β rounds, charged `"ruling-forest-prune"`): subset
//!    vertices and roots mark themselves kept; `Keep` climbs each parent
//!    chain one hop per round, marking exactly the root-to-subset chains —
//!    the set the sequential prune walks centrally.
//!
//! [`engine_ruling_forest`] is the adapter with the sequential signature:
//! same [`RulingForest`], same ledger charges, at any shard count.

use graphs::{Graph, VertexId, VertexSet};
use local_model::{claim_choice, merge_fresh, ruling_beta, ruling_bits, RoundLedger, RulingForest};

use crate::context::NodeCtx;
use crate::driver::{EngineConfig, EngineSession, Stop};
use crate::metrics::EngineMetrics;
use crate::program::{Activation, EngineMessage, NodeProgram, Outbox, WireCodec};

/// Ruling-construction traffic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RulingMsg {
    /// Fresh prefix tokens of one bit level (tagged so a stray token can
    /// never leak into the wrong level).
    Tokens {
        /// The bit level these tokens belong to.
        bit: usize,
        /// The fresh prefixes (sorted).
        prefixes: Vec<usize>,
    },
    /// "I belong to this root's tree" — the claiming BFS frontier.
    Claim {
        /// The claimed root.
        root: VertexId,
    },
    /// "You are on a kept chain" — the pruning walk, sent parent-ward.
    Keep,
}

/// Wire layout of [`RulingMsg`]: every word carries a 2-bit tag in its top
/// bits. `Tokens` packs `(bit, prefix)` into each word — one word per
/// prefix — so the wire cost is exactly [`EngineMessage::width`]; `Claim`
/// and `Keep` are single words.
const TAG_SHIFT: u32 = 62;
const TAG_TOKENS: u64 = 0b00;
const TAG_CLAIM: u64 = 0b01;
const TAG_KEEP: u64 = 0b10;
const TAG_EMPTY_TOKENS: u64 = 0b11;
/// `Tokens` words: bits 48..62 hold the bit level, bits 0..48 the prefix.
const BIT_SHIFT: u32 = 48;
const PREFIX_MASK: u64 = (1 << BIT_SHIFT) - 1;
const BIT_MASK: u64 = (1 << (TAG_SHIFT - BIT_SHIFT)) - 1;
const PAYLOAD_MASK: u64 = (1 << TAG_SHIFT) - 1;

fn token_word(tag: u64, bit: usize, prefix: u64) -> u64 {
    debug_assert!((bit as u64) <= BIT_MASK, "bit level exceeds the wire field");
    debug_assert!(prefix <= PREFIX_MASK, "prefix exceeds the wire field");
    (tag << TAG_SHIFT) | ((bit as u64) << BIT_SHIFT) | prefix
}

impl WireCodec for RulingMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        match self {
            RulingMsg::Tokens { bit, prefixes } if prefixes.is_empty() => {
                out.push(token_word(TAG_EMPTY_TOKENS, *bit, 0));
            }
            RulingMsg::Tokens { bit, prefixes } => {
                out.extend(
                    prefixes
                        .iter()
                        .map(|&p| token_word(TAG_TOKENS, *bit, p as u64)),
                );
            }
            RulingMsg::Claim { root } => {
                debug_assert!((*root as u64) <= PAYLOAD_MASK);
                out.push((TAG_CLAIM << TAG_SHIFT) | *root as u64);
            }
            RulingMsg::Keep => out.push(TAG_KEEP << TAG_SHIFT),
        }
    }

    fn decode(words: &[u64]) -> Option<Self> {
        let first = *words.first()?;
        match first >> TAG_SHIFT {
            TAG_TOKENS => {
                let bit = ((first >> BIT_SHIFT) & BIT_MASK) as usize;
                let prefixes = words
                    .iter()
                    .map(|&w| {
                        (w >> TAG_SHIFT == TAG_TOKENS
                            && ((w >> BIT_SHIFT) & BIT_MASK) as usize == bit)
                            .then_some((w & PREFIX_MASK) as usize)
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(RulingMsg::Tokens { bit, prefixes })
            }
            TAG_CLAIM if words.len() == 1 => Some(RulingMsg::Claim {
                root: (first & PAYLOAD_MASK) as VertexId,
            }),
            TAG_KEEP if words == [TAG_KEEP << TAG_SHIFT] => Some(RulingMsg::Keep),
            TAG_EMPTY_TOKENS if words.len() == 1 && first & PREFIX_MASK == 0 => {
                Some(RulingMsg::Tokens {
                    bit: ((first >> BIT_SHIFT) & BIT_MASK) as usize,
                    prefixes: Vec::new(),
                })
            }
            _ => None,
        }
    }
}

impl EngineMessage for RulingMsg {
    fn width(&self) -> usize {
        match self {
            RulingMsg::Tokens { prefixes, .. } => prefixes.len().max(1),
            RulingMsg::Claim { .. } | RulingMsg::Keep => 1,
        }
    }
}

/// Per-node state of the ruling-forest construction.
#[derive(Clone, Debug)]
pub struct RulingProgram {
    alpha: usize,
    bits: usize,
    beta: usize,
    in_subset: bool,
    /// Still a ruler candidate (subset vertices start true; bit levels may
    /// drop them).
    ruler: bool,
    /// Prefix tokens seen at the current bit level (sorted; cleared when a
    /// new level starts).
    seen: Vec<usize>,
    root_of: usize,
    parent: usize,
    dist: usize,
    keep: bool,
    /// Next round whose step this node needs even without traffic — the
    /// frontier-sparse wake schedule, recomputed after every step (see
    /// [`RulingProgram::next_wake`]).
    wake: u64,
}

impl RulingProgram {
    fn new(alpha: usize, bits: usize, beta: usize, in_subset: bool) -> Self {
        RulingProgram {
            alpha,
            bits,
            beta,
            in_subset,
            ruler: in_subset,
            seen: Vec::new(),
            root_of: usize::MAX,
            parent: usize::MAX,
            dist: usize::MAX,
            keep: false,
            wake: 1,
        }
    }

    /// Whether this node survived as a ruling-set member (a tree root).
    pub fn is_root(&self) -> bool {
        self.ruler
    }

    /// `(parent, root, depth)` if this node is on a kept chain.
    pub fn tree_entry(&self) -> Option<(VertexId, VertexId, usize)> {
        self.keep.then_some((self.parent, self.root_of, self.dist))
    }

    fn on_rule_round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, RulingMsg)],
        b: usize,
        k: usize,
    ) -> Outbox<RulingMsg> {
        if k == 1 {
            self.seen.clear();
        }
        let incoming: Vec<&[usize]> = inbox
            .iter()
            .filter_map(|(_, m)| match m {
                RulingMsg::Tokens { bit, prefixes } if *bit == b => Some(prefixes.as_slice()),
                _ => None,
            })
            .collect();
        let mut fresh = merge_fresh(&mut self.seen, &incoming);
        let prefix = ctx.id >> (b + 1);
        if self.ruler && (ctx.id >> b) & 1 == 1 && self.seen.binary_search(&prefix).is_ok() {
            // A kept ruler of this node's own group is within distance
            // < α: drop out.
            self.ruler = false;
        }
        if k == 1 && self.ruler && (ctx.id >> b) & 1 == 0 {
            // Source injection: announce the group prefix (only useful when
            // a propagation round exists to deliver it).
            merge_fresh(&mut self.seen, &[&[prefix]]);
            fresh = vec![prefix];
        }
        let last_level_round = b + 1 == self.bits && k == self.alpha;
        if last_level_round {
            // The ruling set is final: survivors crown themselves roots and
            // seed the claiming BFS so round 1 of the claim phase already
            // claims distance-1 vertices (the sequential BFS depth).
            if self.ruler {
                self.root_of = ctx.id;
                self.parent = ctx.id;
                self.dist = 0;
                return Outbox::Broadcast(RulingMsg::Claim { root: ctx.id });
            }
            return Outbox::Silent;
        }
        if k < self.alpha && !fresh.is_empty() {
            // A token arriving in level round k has traveled k − 1 hops;
            // forwarding keeps it within the α − 1 budget.
            return Outbox::Broadcast(RulingMsg::Tokens {
                bit: b,
                prefixes: fresh,
            });
        }
        Outbox::Silent
    }

    fn on_claim_round(&mut self, inbox: &[(VertexId, RulingMsg)], k: usize) -> Outbox<RulingMsg> {
        if self.root_of != usize::MAX {
            return Outbox::Silent;
        }
        let claims: Vec<(VertexId, VertexId)> = inbox
            .iter()
            .filter_map(|&(src, ref m)| match m {
                RulingMsg::Claim { root } => Some((*root, src)),
                _ => None,
            })
            .collect();
        if let Some((root, parent)) = claim_choice(&claims) {
            self.root_of = root;
            self.parent = parent;
            self.dist = k;
            if k < self.beta {
                // Claims forwarded in the final round could never be
                // processed — the sequential BFS stops at distance β too.
                return Outbox::Broadcast(RulingMsg::Claim { root });
            }
        }
        Outbox::Silent
    }

    fn on_prune_round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, RulingMsg)],
        k: usize,
    ) -> Outbox<RulingMsg> {
        let heard_keep = inbox.iter().any(|(_, m)| matches!(m, RulingMsg::Keep));
        if k == 1 {
            // Roots and claimed subset vertices are kept unconditionally;
            // each subset vertex starts its chain's climb.
            if self.ruler {
                self.keep = true;
            }
            if self.in_subset && self.root_of != usize::MAX {
                self.keep = true;
                if self.parent != ctx.id {
                    return Outbox::Unicast(self.parent, RulingMsg::Keep);
                }
            }
            return Outbox::Silent;
        }
        if heard_keep && !self.keep {
            self.keep = true;
            if self.parent != ctx.id && self.parent != usize::MAX {
                return Outbox::Unicast(self.parent, RulingMsg::Keep);
            }
        }
        Outbox::Silent
    }

    /// The next round strictly after `r` whose step this node needs even
    /// when no message arrives — every other round's step is a pure
    /// `Silent` (tokens, claims, and `Keep` all arrive as traffic, which
    /// always wakes a node). Three kinds of scheduled work exist:
    ///
    /// * the first round of the next bit level, where stale tokens must be
    ///   cleared (`seen` non-empty) and surviving rulers may inject;
    /// * the final level round, where surviving rulers crown themselves
    ///   roots and seed the claiming BFS;
    /// * the first pruning round, where roots and claimed subset vertices
    ///   mark themselves kept and start the chain climbs.
    ///
    /// `u64::MAX` once every remaining step is message-driven.
    fn next_wake(&self, r: usize) -> u64 {
        let rule_rounds = self.alpha * self.bits;
        let mut wake = u64::MAX;
        if r < rule_rounds && (self.ruler || !self.seen.is_empty()) {
            let level = r / self.alpha + usize::from(!r.is_multiple_of(self.alpha));
            if level < self.bits {
                wake = wake.min((level * self.alpha + 1) as u64);
            }
        }
        if self.ruler && r < rule_rounds {
            wake = wake.min(rule_rounds as u64);
        }
        let prune_start = rule_rounds + self.beta + 1;
        if (self.ruler || self.in_subset) && r < prune_start {
            wake = wake.min(prune_start as u64);
        }
        wake
    }
}

impl NodeProgram for RulingProgram {
    type Message = RulingMsg;

    fn init(&mut self, _ctx: &mut NodeCtx<'_>) -> Outbox<RulingMsg> {
        self.wake = self.next_wake(0);
        Outbox::Silent
    }

    fn on_round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[(VertexId, RulingMsg)],
    ) -> Outbox<RulingMsg> {
        let r = ctx.round as usize;
        let rule_rounds = self.alpha * self.bits;
        let out = if r <= rule_rounds {
            let b = (r - 1) / self.alpha;
            let k = (r - 1) % self.alpha + 1;
            self.on_rule_round(ctx, inbox, b, k)
        } else if r <= rule_rounds + self.beta {
            self.on_claim_round(inbox, r - rule_rounds)
        } else if r <= rule_rounds + 2 * self.beta {
            self.on_prune_round(ctx, inbox, r - rule_rounds - self.beta)
        } else {
            Outbox::Silent
        };
        self.wake = self.next_wake(r);
        out
    }

    fn halted(&self) -> bool {
        self.keep
    }

    /// Kept nodes are done (every later step is a pure `Silent`); everyone
    /// else sleeps until the next scheduled round — tokens, claims, and
    /// `Keep` climbs arrive as traffic and wake their receivers on their
    /// own. This is what collapses the long claim/prune tails from `O(n)`
    /// steps per round to the BFS frontier.
    fn activation(&self) -> Activation {
        if self.keep {
            Activation::OnMessage
        } else {
            Activation::WakeAt(self.wake)
        }
    }
}

/// Engine twin of [`local_model::ruling_forest`]: the full construction
/// executed as message passing over `g[mask]` — identical
/// [`RulingForest`] (roots, parents, depths, membership) and identical
/// ledger charges (`"ruling-set"`, `"ruling-forest-claim"`,
/// `"ruling-forest-prune"`) at any shard count.
///
/// # Panics
///
/// Panics if `alpha == 0` or some `subset` vertex is outside the mask,
/// like the sequential twin.
pub fn engine_ruling_forest(
    g: &Graph,
    mask: Option<&VertexSet>,
    subset: &[VertexId],
    alpha: usize,
    mut config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (RulingForest, EngineMetrics) {
    assert!(alpha >= 1, "alpha must be at least 1");
    let n = g.n();
    for &u in subset {
        assert!(
            mask.is_none_or(|m| m.contains(u)),
            "subset vertex {u} outside mask"
        );
    }
    let bits = ruling_bits(n);
    let beta = ruling_beta(n, alpha);
    let subset_set = VertexSet::from_iter_with_universe(n, subset.iter().copied());
    config.mask = mask.cloned();
    let faults_free = config.faults.is_empty();
    let mut sess = EngineSession::new(g, config, |ctx| {
        RulingProgram::new(alpha, bits, beta, subset_set.contains(ctx.id))
    });
    let mut executed = 0;
    for _ in 0..bits {
        executed += sess
            .run_phase("ruling-set", Stop::Rounds(alpha as u64))
            .rounds;
    }
    executed += sess
        .run_phase("ruling-forest-claim", Stop::Rounds(beta as u64))
        .rounds;
    executed += sess
        .run_phase("ruling-forest-prune", Stop::Rounds(beta as u64))
        .rounds;
    assert_eq!(
        executed,
        (alpha * bits + 2 * beta) as u64,
        "max_rounds interrupted the ruling construction"
    );

    let mut roots = Vec::new();
    let mut parent = vec![usize::MAX; n];
    let mut root_of = vec![usize::MAX; n];
    let mut depth = vec![usize::MAX; n];
    sess.for_each_program(|v, p| {
        if p.is_root() {
            roots.push(v);
        }
        if let Some((pa, root, d)) = p.tree_entry() {
            parent[v] = pa;
            root_of[v] = root;
            depth[v] = d;
        }
    });
    if faults_free {
        for &u in subset {
            debug_assert_ne!(
                root_of[u],
                usize::MAX,
                "ruling-set domination must reach {u} within beta"
            );
        }
    }
    let (_, metrics, run_ledger) = sess.into_parts();
    ledger.absorb(run_ledger);
    (
        RulingForest {
            roots,
            parent,
            root_of,
            depth,
            alpha,
        },
        metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;
    use local_model::ruling_forest;

    fn assert_forests_match(
        g: &Graph,
        mask: Option<&VertexSet>,
        subset: &[VertexId],
        alpha: usize,
        label: &str,
    ) {
        let mut seq_ledger = RoundLedger::new();
        let seq = ruling_forest(g, mask, subset, alpha, &mut seq_ledger);
        for shards in [1usize, 2, 8] {
            let mut eng_ledger = RoundLedger::new();
            let (rf, _) = engine_ruling_forest(
                g,
                mask,
                subset,
                alpha,
                EngineConfig::default().with_shards(shards),
                &mut eng_ledger,
            );
            assert_eq!(rf.roots, seq.roots, "{label} shards={shards}: roots");
            assert_eq!(rf.parent, seq.parent, "{label} shards={shards}: parents");
            assert_eq!(rf.root_of, seq.root_of, "{label} shards={shards}: root_of");
            assert_eq!(rf.depth, seq.depth, "{label} shards={shards}: depth");
            assert_eq!(
                eng_ledger.total(),
                seq_ledger.total(),
                "{label} shards={shards}: ledger totals"
            );
            for phase in ["ruling-set", "ruling-forest-claim", "ruling-forest-prune"] {
                assert_eq!(
                    eng_ledger.phase_total(phase),
                    seq_ledger.phase_total(phase),
                    "{label} shards={shards}: {phase}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_on_paths_grids_trees() {
        let every_path: Vec<usize> = (0..64).collect();
        assert_forests_match(&gen::path(64), None, &every_path, 4, "path");
        let g = gen::grid(9, 9);
        let subset: Vec<usize> = (0..g.n()).step_by(3).collect();
        assert_forests_match(&g, None, &subset, 5, "grid");
        let t = gen::random_tree(80, 11);
        let subset: Vec<usize> = (0..80).step_by(2).collect();
        assert_forests_match(&t, None, &subset, 6, "tree");
    }

    #[test]
    fn matches_sequential_under_masks() {
        let g = gen::path(30);
        let mut mask = VertexSet::full(30);
        mask.remove(15);
        let subset: Vec<usize> = (0..30).filter(|&v| v != 15).collect();
        assert_forests_match(&g, Some(&mask), &subset, 4, "split path");

        let g = gen::triangular(5, 5);
        let mask = VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 4 != 2));
        let subset: Vec<usize> = mask.iter().step_by(2).collect();
        assert_forests_match(&g, Some(&mask), &subset, 3, "masked triangular");
    }

    #[test]
    fn ruling_codec_round_trips() {
        use crate::program::WireCodec;
        for msg in [
            RulingMsg::Tokens {
                bit: 0,
                prefixes: Vec::new(),
            },
            RulingMsg::Tokens {
                bit: 13,
                prefixes: vec![0, 5, 1 << 20],
            },
            RulingMsg::Claim { root: 9217 },
            RulingMsg::Keep,
        ] {
            let words = msg.encode_to_vec();
            assert_eq!(words.len(), crate::EngineMessage::width(&msg), "{msg:?}");
            assert_eq!(RulingMsg::decode(&words), Some(msg));
        }
        // Mixed-level token frames are malformed, not silently merged.
        let a = RulingMsg::Tokens {
            bit: 1,
            prefixes: vec![4],
        }
        .encode_to_vec();
        let b = RulingMsg::Tokens {
            bit: 2,
            prefixes: vec![4],
        }
        .encode_to_vec();
        assert_eq!(RulingMsg::decode(&[a[0], b[0]]), None);
    }

    #[test]
    fn split_mode_ruling_matches_unlimited() {
        let g = gen::grid(7, 7);
        let subset: Vec<usize> = (0..g.n()).step_by(2).collect();
        let alpha = 4;
        let mut base_ledger = RoundLedger::new();
        let (base, _) = engine_ruling_forest(
            &g,
            None,
            &subset,
            alpha,
            EngineConfig::default(),
            &mut base_ledger,
        );
        for shards in [1usize, 2] {
            let mut ledger = RoundLedger::new();
            let (rf, metrics) = engine_ruling_forest(
                &g,
                None,
                &subset,
                alpha,
                EngineConfig::default().with_shards(shards).congest_split(1),
                &mut ledger,
            );
            assert_eq!(rf.roots, base.roots, "shards={shards}");
            assert_eq!(rf.parent, base.parent, "shards={shards}");
            assert_eq!(rf.root_of, base.root_of, "shards={shards}");
            assert_eq!(rf.depth, base.depth, "shards={shards}");
            assert!(metrics.total_fragments() > 0, "token floods fragment");
            assert_eq!(
                ledger.total() - ledger.phase_total(crate::SPLIT_PHASE),
                base_ledger.total(),
                "split ledgers reconcile against the unlimited charge"
            );
        }
    }

    #[test]
    fn singleton_and_empty_subsets() {
        let g = gen::cycle(10);
        assert_forests_match(&g, None, &[7], 3, "singleton");
        assert_forests_match(&g, None, &[], 3, "empty");
    }

    #[test]
    fn alpha_one_keeps_every_subset_vertex_a_root() {
        let g = gen::grid(4, 4);
        let subset: Vec<usize> = (0..g.n()).collect();
        assert_forests_match(&g, None, &subset, 1, "alpha=1");
    }
}
