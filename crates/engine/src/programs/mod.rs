//! Ports of the repository's LOCAL algorithms onto the engine.
//!
//! Each port is a genuine message-passing re-implementation — per-node
//! state, explicit messages, no global reads — paired with an adapter
//! function whose signature mirrors the sequential original and whose
//! output (coloring/partition **and** ledger totals) is equivalence-tested
//! against it:
//!
//! * [`engine_cole_vishkin_3color`] ↔ [`local_model::cole_vishkin_3color`]
//! * [`engine_h_partition`] ↔ [`local_model::h_partition`]
//! * [`engine_randomized_list_coloring`] ↔
//!   [`local_model::randomized_list_coloring`] (mask-aware)
//! * [`engine_degree_plus_one_coloring`] ↔
//!   [`local_model::degree_plus_one_coloring`] (mask-aware; the per-level
//!   coloring Theorem 1.3's peel loop runs on the engine)
//! * [`engine_gather_balls`] ↔ [`local_model::gather_balls`], plus the
//!   rich/poor + ball-flood session behind Theorem 1.3's classification
//!   ([`engine_classification_gather`])
//! * [`engine_detect_clique`] ↔ [`local_model::detect_clique`] (§3's
//!   two-round handshake as two engine rounds)
//! * [`engine_ruling_forest`] ↔ [`local_model::ruling_forest`]
//! * [`engine_layered_greedy`] ↔ the sequential layered greedy of
//!   Lemma 3.2 (`distributed_coloring::extend`), sharing its slot schedule
//!   via [`layered_slots`]
//!
//! Together the last four retire the last sequential phases inside an
//! engine-mode Theorem 1.3 run: with `engine_shards` set, classification,
//! clique detection, ruling forests, per-level coloring, and the layered
//! greedy all execute as masked engine sessions.
//!
//! # Worst-case logical message widths
//!
//! Every message type carries a [`WireCodec`](crate::WireCodec) whose
//! encoding is exactly [`width`](crate::EngineMessage::width) words
//! (property-tested in `tests/engine_equivalence.rs`), so these bounds are
//! the wire budgets that decide whether a program runs unmodified under
//! [`CongestMode::Reject`](crate::CongestMode::Reject) or needs
//! [`CongestMode::Split`](crate::CongestMode::Split):
//!
//! | Program | Message | Worst-case logical width |
//! |---|---|---|
//! | [`CvProgram`] | `usize` color | **1** |
//! | [`SweepProgram`] | `usize` color | **1** |
//! | [`LayeredGreedyProgram`] | `usize` color | **1** |
//! | [`HPartitionProgram`] | `Peeled` | **1** |
//! | [`RandomizedProgram`] | `ColorMsg` | **1** |
//! | [`GatherProgram`] | `GatherMsg::Ball` | **\|B^r(v)\|** — the fresh ball members forwarded in one hop, up to the whole radius-`r` ball (Θ(d^r) on degree-`d` rich subgraphs) |
//! | [`CliqueProgram`] | `NbrList` | **deg(v)** — the full live adjacency list (≤ d in Theorem 1.3's rich scope) |
//! | [`RulingProgram`] | `RulingMsg::Tokens` | **fresh prefixes per level round** — up to the surviving ruler count of one bit level's group (claim/keep rounds are width 1) |
//!
//! The constant-width programs are CONGEST-safe at one word as they stand;
//! the gather, clique, and ruling floods are the `Vec`-payload traffic that
//! dominates Theorem 1.3 and the reason split mode exists.
//!
//! # Worst-case frontier sizes
//!
//! Programs opt into frontier-sparse rounds by returning a non-default
//! [`Activation`](crate::Activation) hint; the driver then skips `on_round`
//! for hinted nodes with an empty inbox. The gain is bounded by how fast a
//! program's frontier actually shrinks, and the worst case is always the
//! full live set — gating degrades to the historical full scan (`O(n)`
//! stepped nodes per round), never below it:
//!
//! * [`GatherProgram`] / [`CliqueProgram`]: every round floods every live
//!   node until the radius is exhausted, so the frontier stays at `n` for
//!   the whole session; `OnMessage` only trims the post-completion tail.
//! * [`RulingProgram`]: the frontier is the surviving-ruler set plus every
//!   node still receiving tokens — worst case `n` on a star-like level,
//!   decaying with the ruler count on bounded-degree inputs.
//! * [`LayeredGreedyProgram`]: `WakeAt` wakes exactly one (depth, class)
//!   layer per slot round, so the per-round frontier is the largest layer —
//!   worst case `n` when the layering is flat (e.g. a single depth).
//! * `EveryRound` programs ([`CvProgram`], [`HPartitionProgram`],
//!   [`RandomizedProgram`], [`SweepProgram`]): the frontier is `n` by
//!   declaration; they broadcast every round, so there is nothing to skip.
//!
//! Wake-queue contract for `WakeAt` programs: the engine re-reads the
//! activation hint after every step and keeps only the **latest** reading,
//! so a `WakeAt(r)` is a single-shot alarm — it steps the node once at
//! round `r` (or earlier, if traffic arrives first), and the program must
//! return a fresh `WakeAt` from that step to schedule the next slot.
//! [`LayeredGreedyProgram`] does exactly this: each layer step registers
//! the next `(depth, class)` slot round, so between slots the node costs
//! the scheduler one bucket-queue entry and zero compute. A hint must be a
//! pure function of program state (it is re-derived on rescans), never of
//! wall-clock or shard placement.
//!
//! [`RoundMetrics::active_frac`](crate::RoundMetrics) reports the realized
//! ratio per round; `bench_trend` charts its decay across committed bench
//! artifacts.
//!
//! # Sender-rank memory cost
//!
//! Every program pays one fixed per-session charge for the `O(traffic)`
//! routing epoch: the sender-rank table, built once from the live CSR so
//! each routed message can carry its final inbox position instead of
//! being comparison-sorted on arrival. The table is a `u32` per live
//! adjacency entry plus a `u32` offset per live vertex (plus one) —
//! ~`4·(m_live + n_live + 1)` bytes per session, about 8 MB at the 10⁶
//! tier on 4-regular inputs and independent of round count or traffic
//! volume. Composite pipelines (Theorem 1.3's peel loop) pay it once per
//! internal session on that session's *masked* CSR, so the charge shrinks
//! with the residual graph exactly like the compacted adjacency it
//! annotates.

pub mod cole_vishkin;
pub mod gather;
pub mod h_partition;
pub mod layered;
pub mod randomized;
pub mod ruling;
pub mod sweep;

pub use cole_vishkin::{engine_cole_vishkin_3color, CvProgram};
pub use gather::{
    engine_classification_gather, engine_detect_clique, engine_gather_balls, CliqueProgram,
    GatherProgram,
};
pub use h_partition::{engine_h_partition, HPartitionProgram};
pub use layered::{engine_layered_greedy, layered_slot, layered_slots, LayeredGreedyProgram};
pub use randomized::{engine_randomized_list_coloring, RandomizedProgram};
pub use ruling::{engine_ruling_forest, RulingProgram};
pub use sweep::{engine_coloring_by_forest_merge, engine_degree_plus_one_coloring, SweepProgram};
