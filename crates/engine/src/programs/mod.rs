//! Ports of the repository's LOCAL algorithms onto the engine.
//!
//! Each port is a genuine message-passing re-implementation — per-node
//! state, explicit messages, no global reads — paired with an adapter
//! function whose signature mirrors the sequential original and whose
//! output (coloring/partition **and** ledger totals) is equivalence-tested
//! against it:
//!
//! * [`engine_cole_vishkin_3color`] ↔ [`local_model::cole_vishkin_3color`]
//! * [`engine_h_partition`] ↔ [`local_model::h_partition`]
//! * [`engine_randomized_list_coloring`] ↔
//!   [`local_model::randomized_list_coloring`] (mask-aware)
//! * [`engine_degree_plus_one_coloring`] ↔
//!   [`local_model::degree_plus_one_coloring`] (mask-aware; the per-level
//!   coloring Theorem 1.3's peel loop runs on the engine)

pub mod cole_vishkin;
pub mod h_partition;
pub mod randomized;
pub mod sweep;

pub use cole_vishkin::{engine_cole_vishkin_3color, CvProgram};
pub use h_partition::{engine_h_partition, HPartitionProgram};
pub use randomized::{engine_randomized_list_coloring, RandomizedProgram};
pub use sweep::{engine_coloring_by_forest_merge, engine_degree_plus_one_coloring, SweepProgram};
