//! The Barenboim–Elkin H-partition phase as a message-passing node program.
//!
//! Layer-by-layer peeling, executed: a node whose residual degree is at most
//! `⌊(2+ε)a⌋` assigns itself the current layer and tells its neighbors,
//! which decrement their residual degree when the peel messages arrive next
//! round. The layer index *is* the round index — one LOCAL round per layer,
//! exactly what [`local_model::h_partition`] charges.

use graphs::{Graph, VertexId, VertexSet};
use local_model::{HPartition, RoundLedger};

use crate::context::NodeCtx;
use crate::driver::{EngineConfig, EngineSession, Stop};
use crate::metrics::EngineMetrics;
use crate::program::{EngineMessage, NodeProgram, Outbox, WireCodec};

/// "I peeled this round" — the only thing neighbors need to hear.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Peeled;

/// One fixed word on the wire — the message carries no payload, only its
/// arrival.
const PEELED_WORD: u64 = 0x5045_454c; // "PEEL"

impl WireCodec for Peeled {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(PEELED_WORD);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        (words == [PEELED_WORD]).then_some(Peeled)
    }
}

impl EngineMessage for Peeled {
    const MAX_WIDTH: Option<usize> = Some(1);
}

/// Per-node H-partition state.
#[derive(Clone, Debug)]
pub struct HPartitionProgram {
    threshold: usize,
    resid: usize,
    layer: usize,
}

impl HPartitionProgram {
    /// The node's layer (`usize::MAX` until peeled).
    pub fn layer(&self) -> usize {
        self.layer
    }
}

impl NodeProgram for HPartitionProgram {
    type Message = Peeled;

    fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<Peeled> {
        self.resid = ctx.degree();
        Outbox::Silent
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[(VertexId, Peeled)]) -> Outbox<Peeled> {
        if self.layer != usize::MAX {
            return Outbox::Silent;
        }
        // Saturating: exact in fault-free runs (each neighbor peels once),
        // but duplication faults can re-deliver a peel announcement and the
        // degraded run must stay observable instead of underflowing.
        self.resid = self.resid.saturating_sub(inbox.len());
        if self.resid <= self.threshold {
            // Round r assigns layer r − 1, matching the sequential loop.
            self.layer = (ctx.round - 1) as usize;
            Outbox::Broadcast(Peeled)
        } else {
            Outbox::Silent
        }
    }

    fn halted(&self) -> bool {
        self.layer != usize::MAX
    }
}

/// Runs the engine H-partition over `g[mask]`: same output contract and
/// `"h-partition"` ledger charge as [`local_model::h_partition`], plus the
/// observed [`EngineMetrics`]. Masked-out vertices run no program and keep
/// layer `usize::MAX`; residual degrees count masked neighbors only. Any
/// `config.mask` is overridden by `mask`.
///
/// # Panics
///
/// Panics (like the sequential twin) if the peeling stalls — certifying
/// `arboricity > a` — or if `a == 0` / `epsilon <= 0`.
///
/// # Examples
///
/// ```
/// use engine::{engine_h_partition, EngineConfig};
/// use graphs::gen;
/// use local_model::RoundLedger;
///
/// let g = gen::forest_union(80, 2, 5);
/// let mut ledger = RoundLedger::new();
/// let (hp, _) = engine_h_partition(&g, None, 2, 1.0, EngineConfig::default(), &mut ledger);
/// assert_eq!(ledger.phase_total("h-partition"), hp.layers as u64);
/// ```
pub fn engine_h_partition(
    g: &Graph,
    mask: Option<&VertexSet>,
    a: usize,
    epsilon: f64,
    mut config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (HPartition, EngineMetrics) {
    assert!(a >= 1, "arboricity parameter must be positive");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let threshold = ((2.0 + epsilon) * a as f64).floor() as usize;
    // Fault-free, every round peels at least one vertex or the partition has
    // stalled, so n rounds always suffice; don't let a huge default cap spin
    // on a stall. Delay faults insert quiet waiting rounds, so a faulted run
    // keeps the caller's own cap instead of this tightened one.
    if config.faults.is_empty() {
        config.max_rounds = config.max_rounds.min(g.n() as u64 + 1);
    }
    config.mask = mask.cloned();
    let mut sess = EngineSession::new(g, config, |_| HPartitionProgram {
        threshold,
        resid: 0,
        layer: usize::MAX,
    });
    let report = sess.run_phase("h-partition", Stop::AllHalted);
    assert!(
        report.converged,
        "H-partition stalled: arboricity exceeds {a} (threshold {threshold})"
    );
    let layer = sess.view().scatter(
        usize::MAX,
        sess.programs().iter().map(HPartitionProgram::layer),
    );
    let (_, metrics, run_ledger) = sess.into_parts();
    ledger.absorb(run_ledger);
    let layers = layer
        .iter()
        .filter(|&&l| l != usize::MAX)
        .map(|&l| l + 1)
        .max()
        .unwrap_or(0);
    (
        HPartition {
            layer,
            layers,
            threshold,
        },
        metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn matches_sequential_exactly() {
        for (n, a, eps, seed) in [
            (80usize, 3usize, 0.5f64, 11u64),
            (500, 2, 1.0, 3),
            (64, 1, 1.0, 9),
        ] {
            let g = gen::forest_union(n, a, seed);
            let mut seq_ledger = RoundLedger::new();
            let seq = local_model::h_partition(&g, None, a, eps, &mut seq_ledger);
            for shards in [1usize, 8] {
                let mut eng_ledger = RoundLedger::new();
                let (hp, metrics) = engine_h_partition(
                    &g,
                    None,
                    a,
                    eps,
                    EngineConfig::default().with_shards(shards),
                    &mut eng_ledger,
                );
                assert_eq!(hp.layer, seq.layer, "n={n} a={a} shards={shards}");
                assert_eq!(hp.layers, seq.layers);
                assert_eq!(hp.threshold, seq.threshold);
                assert_eq!(
                    eng_ledger.phase_total("h-partition"),
                    seq_ledger.phase_total("h-partition")
                );
                assert_eq!(metrics.total_rounds(), hp.layers as u64);
            }
        }
    }

    #[test]
    fn masked_partition_matches_sequential() {
        let g = gen::forest_union(200, 2, 13);
        let mask = VertexSet::from_iter_with_universe(200, (0..200).filter(|v| v % 5 != 2));
        let mut seq_ledger = RoundLedger::new();
        let seq = local_model::h_partition(&g, Some(&mask), 2, 1.0, &mut seq_ledger);
        for shards in [1usize, 4] {
            let mut eng_ledger = RoundLedger::new();
            let (hp, _) = engine_h_partition(
                &g,
                Some(&mask),
                2,
                1.0,
                EngineConfig::default().with_shards(shards),
                &mut eng_ledger,
            );
            assert_eq!(hp.layer, seq.layer, "shards={shards}");
            assert_eq!(hp.layers, seq.layers);
            assert_eq!(
                eng_ledger.phase_total("h-partition"),
                seq_ledger.phase_total("h-partition")
            );
        }
    }

    #[test]
    fn up_degree_bounded_by_threshold() {
        let g = gen::forest_union(120, 2, 7);
        let mut ledger = RoundLedger::new();
        let (hp, _) = engine_h_partition(&g, None, 2, 1.0, EngineConfig::default(), &mut ledger);
        for v in 0..g.n() {
            let up = g
                .neighbors(v)
                .iter()
                .filter(|&&w| hp.layer[w] >= hp.layer[v])
                .count();
            assert!(up <= hp.threshold, "vertex {v}: {up} up-neighbors");
        }
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn dense_graph_stalls_detectably() {
        let g = gen::complete(10);
        let mut ledger = RoundLedger::new();
        engine_h_partition(&g, None, 1, 0.1, EngineConfig::default(), &mut ledger);
    }

    #[test]
    fn peel_messages_are_counted() {
        let g = gen::random_tree(50, 2);
        let mut ledger = RoundLedger::new();
        let (_, metrics) =
            engine_h_partition(&g, None, 1, 1.0, EngineConfig::default(), &mut ledger);
        // Every vertex announces its peel to every then-unpeeled neighbor at
        // most once; a tree has 49 edges, so ≤ 98 messages, and > 0.
        assert!(metrics.total_messages() > 0);
        assert!(metrics.total_messages() <= 2 * g.m());
    }

    #[test]
    fn long_delay_faults_wait_out_the_quiet_rounds_without_stall_panics() {
        // A star: the 9 leaves peel in round 1; with their announcements
        // delayed 20 rounds the center idles far past the fault-free n+1
        // cap, then peels once the batch lands. The run must converge with
        // the correct layers, not panic with a bogus arboricity diagnosis.
        use crate::faults::FaultPlan;
        let center = 0usize;
        let g = graphs::Graph::from_edges(10, (1..10).map(|v| (center, v)));
        let mut faults = FaultPlan::new();
        for leaf in 1..10 {
            faults = faults.delay_outbox(leaf, 1, 20);
        }
        let mut ledger = RoundLedger::new();
        let (hp, metrics) = engine_h_partition(
            &g,
            None,
            1,
            1.0,
            EngineConfig::default().with_faults(faults),
            &mut ledger,
        );
        assert!(metrics.total_delayed() > 0);
        assert!(hp.layer.iter().all(|&l| l != usize::MAX));
        assert_eq!(
            hp.layer[center], 21,
            "center peels right after the batch lands"
        );
        assert!((1..10).all(|v| hp.layer[v] == 0));
    }
}
