//! Lemma 3.2's layered greedy — coloring a ruling forest leaves-to-roots,
//! one (depth, class) stable set per round — as a **masked** engine
//! execution, reusing the masked-session machinery the class sweep
//! ([`super::sweep::SweepProgram`]) established.
//!
//! The sequential extension (step 4 of `distributed_coloring::extend`)
//! walks slots `(max_depth, 0), (max_depth, 1), …, (1, class_count − 1)`
//! and greedily assigns each slot's vertices the first free color of their
//! reduced list. A slot is an independent set of the tree scope (same
//! class ⇒ non-adjacent in `G[T]`), so one engine round per slot suffices:
//! the slot's vertices pick their color and broadcast it; every later slot
//! hears the announcement a round before it decides — exactly the
//! `max_depth · class_count` rounds the sequential twin charges to
//! `"layered-coloring"`. The slot schedule itself, [`layered_slot`] /
//! [`layered_slots`], is shared with the sequential loop so the two
//! substrates cannot disagree on which vertex colors when.

use graphs::{Graph, VertexId, VertexSet};
use local_model::RoundLedger;

use crate::context::NodeCtx;
use crate::driver::{EngineConfig, EngineSession, Stop};
use crate::metrics::EngineMetrics;
use crate::program::{Activation, NodeProgram, Outbox};

/// The (depth, class) slot handled in 1-based round `round` of the layered
/// sweep: depths count down from `max_depth`, classes count up within each
/// depth.
pub fn layered_slot(round: usize, max_depth: usize, class_count: usize) -> (usize, usize) {
    debug_assert!(round >= 1 && round <= max_depth * class_count);
    (
        max_depth - (round - 1) / class_count,
        (round - 1) % class_count,
    )
}

/// The full slot schedule, in execution order — the sequential layered
/// greedy iterates exactly this (one simulated round per slot), the engine
/// program evaluates [`layered_slot`] per executed round.
pub fn layered_slots(max_depth: usize, class_count: usize) -> impl Iterator<Item = (usize, usize)> {
    (1..=max_depth * class_count).map(move |r| layered_slot(r, max_depth, class_count))
}

/// Per-node state of the layered greedy: the host-reduced color list, the
/// node's forest depth and `(d+1)`-class, and the slot geometry.
#[derive(Clone, Debug)]
pub struct LayeredGreedyProgram {
    /// Live list: the reduced list minus every color heard so far (sorted).
    list: Vec<usize>,
    depth: usize,
    class: usize,
    max_depth: usize,
    class_count: usize,
    color: usize,
}

impl LayeredGreedyProgram {
    /// The committed color (`usize::MAX` for roots and not-yet-reached
    /// slots).
    pub fn color(&self) -> usize {
        self.color
    }
}

impl NodeProgram for LayeredGreedyProgram {
    type Message = usize;

    fn init(&mut self, _ctx: &mut NodeCtx<'_>) -> Outbox<usize> {
        Outbox::Silent
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[(VertexId, usize)]) -> Outbox<usize> {
        // Strike the colors committed by scope neighbors last round — the
        // same removals the sequential `ColoringState::assign` performs.
        for &(_, c) in inbox {
            if let Ok(pos) = self.list.binary_search(&c) {
                self.list.remove(pos);
            }
        }
        let round = ctx.round as usize;
        if self.color != usize::MAX || round > self.max_depth * self.class_count {
            return Outbox::Silent;
        }
        let (depth, class) = layered_slot(round, self.max_depth, self.class_count);
        if self.depth == depth && self.class == class {
            let c = *self
                .list
                .first()
                .expect("Observation 5.1: parent uncolored ⇒ free color");
            self.color = c;
            return Outbox::Broadcast(c);
        }
        Outbox::Silent
    }

    fn halted(&self) -> bool {
        self.color != usize::MAX || self.depth == 0
    }

    /// A node's only scheduled event is its own slot round (inverting
    /// [`layered_slot`]); every other empty-inbox step is a pure `Silent`.
    /// Once colored — or for depth-0 roots, whose slot round lands past the
    /// sweep — only neighbor announcements matter, and those arrive as
    /// traffic. The sweep therefore steps one stable set (plus its
    /// listeners) per round instead of the whole scope.
    fn activation(&self) -> Activation {
        if self.color != usize::MAX {
            return Activation::OnMessage;
        }
        let slot_round = (self.max_depth - self.depth) * self.class_count + self.class + 1;
        Activation::WakeAt(slot_round as u64)
    }
}

/// Engine twin of the sequential layered greedy: colors the forest scope
/// leaves-to-roots on a masked session over `g[scope]`, charging
/// `"layered-coloring"` exactly `max_depth · class_count` rounds. `lists`
/// are the host-reduced lists (original indexing; only scope entries are
/// read), `depth`/`classes` the forest depth and `(d+1)`-class per vertex.
/// Returns the committed colors (original indexing, `usize::MAX` for
/// masked-out vertices and depth-0 roots) plus the observed metrics —
/// bit-identical to the sequential sweep at any shard count.
///
/// # Panics
///
/// Panics if a slot vertex runs out of colors (an upstream invariant
/// violation, like the sequential `expect`), or if `config.max_rounds`
/// interrupts the sweep.
#[allow(clippy::too_many_arguments)]
pub fn engine_layered_greedy(
    g: &Graph,
    scope: &VertexSet,
    lists: &[Vec<usize>],
    depth: &[usize],
    classes: &[usize],
    class_count: usize,
    mut config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (Vec<usize>, EngineMetrics) {
    assert_eq!(lists.len(), g.n());
    let max_depth = scope.iter().map(|v| depth[v]).max().unwrap_or(0);
    config.mask = Some(scope.clone());
    let mut sess = EngineSession::new(g, config, |ctx| {
        // The same normalization `ColoringState::new` applies.
        let mut list = lists[ctx.id].clone();
        list.sort_unstable();
        list.dedup();
        LayeredGreedyProgram {
            list,
            depth: depth[ctx.id],
            class: classes[ctx.id],
            max_depth,
            class_count,
            color: usize::MAX,
        }
    });
    let rounds = (max_depth * class_count) as u64;
    let report = sess.run_phase("layered-coloring", Stop::Rounds(rounds));
    assert_eq!(
        report.rounds, rounds,
        "max_rounds interrupted the layered sweep"
    );
    let colors = sess.view().scatter(
        usize::MAX,
        sess.programs().iter().map(LayeredGreedyProgram::color),
    );
    let (_, metrics, run_ledger) = sess.into_parts();
    ledger.absorb(run_ledger);
    (colors, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn slot_schedule_counts_depths_down_and_classes_up() {
        let slots: Vec<(usize, usize)> = layered_slots(3, 2).collect();
        assert_eq!(slots, vec![(3, 0), (3, 1), (2, 0), (2, 1), (1, 0), (1, 1)]);
        assert_eq!(layered_slot(1, 3, 2), (3, 0));
        assert_eq!(layered_slot(6, 3, 2), (1, 1));
    }

    /// A hand-built forest on a path: 0 (root) ← 1 ← 2 ← 3, colored
    /// leaves-to-roots with 2-entry lists. The engine must assign exactly
    /// what the slot-by-slot greedy computes.
    #[test]
    fn colors_a_path_forest_like_the_sequential_greedy() {
        let g = gen::path(4);
        let scope = VertexSet::full(4);
        let lists: Vec<Vec<usize>> = vec![vec![0, 1]; 4];
        let depth = vec![0usize, 1, 2, 3];
        // Proper 2-coloring of the path as the (d+1)-classes.
        let classes = vec![0usize, 1, 0, 1];
        let class_count = 2;
        let mut ledger = RoundLedger::new();
        for shards in [1usize, 2] {
            let mut run_ledger = RoundLedger::new();
            let (colors, metrics) = engine_layered_greedy(
                &g,
                &scope,
                &lists,
                &depth,
                &classes,
                class_count,
                EngineConfig::default().with_shards(shards),
                &mut run_ledger,
            );
            // Slot order: (3,0)? depth-3 vertex 3 has class 1 → slot (3,1).
            // 3 takes 0; 2 (slot (2,0)) hears nothing by its slot? It does:
            // 3's broadcast lands before slot (2,0) runs... simulate the
            // shared schedule directly to assert:
            let mut expect = [usize::MAX; 4];
            let mut live: Vec<Vec<usize>> = lists.clone();
            for (d, c) in layered_slots(3, class_count) {
                for v in 0..4 {
                    if depth[v] == d && classes[v] == c {
                        let chosen = live[v][0];
                        expect[v] = chosen;
                        for &w in g.neighbors(v) {
                            live[w].retain(|&x| x != chosen);
                        }
                    }
                }
            }
            assert_eq!(&colors[1..], &expect[1..], "shards={shards}");
            assert_eq!(colors[0], usize::MAX, "roots stay uncolored");
            assert_eq!(metrics.total_rounds(), 6);
            assert_eq!(run_ledger.phase_total("layered-coloring"), 6);
            ledger.absorb(run_ledger);
        }
    }

    #[test]
    fn empty_scope_charges_nothing() {
        let g = gen::path(3);
        let scope = VertexSet::new(3);
        let mut ledger = RoundLedger::new();
        let (colors, metrics) = engine_layered_greedy(
            &g,
            &scope,
            &[vec![], vec![], vec![]],
            &[0, 0, 0],
            &[0, 0, 0],
            1,
            EngineConfig::default(),
            &mut ledger,
        );
        assert!(colors.iter().all(|&c| c == usize::MAX));
        assert_eq!(metrics.total_rounds(), 0);
        assert_eq!(ledger.total(), 0);
    }
}
