//! The merge-reduce `(Δ+1)`-coloring — Lemma 3.2's "(d+1)-coloring computed
//! deterministically \[17\]" step — as a **masked** engine execution.
//!
//! [`local_model::coloring_by_forest_merge`] decomposes the (masked) graph
//! into rooted forests, 3-colors each with Cole–Vishkin, and repeatedly
//! sweeps product-color classes down into `0..target`. The communication
//! in that scheme lives in two places, and both run on the engine here:
//!
//! * each forest's Cole–Vishkin pass is the existing
//!   [`engine_cole_vishkin_3color`] port (own session over the forest
//!   edges);
//! * each class sweep runs on a **single masked [`EngineSession`] over the
//!   host graph** (the first masked consumer of the engine's
//!   [`GraphView`](crate::GraphView)): one announce round in which every
//!   live vertex broadcasts its product color, then one round per swept
//!   class in which exactly that class recolors greedily and announces the
//!   change. That is exactly the `current_colors − target + 1` rounds the
//!   sequential twin charges to `"class-sweep"`.
//!
//! Because a product-color class is an independent set of the union graph
//! and the greedy choice reads only union-neighbor colors — all announced
//! a round earlier — the engine run commits the same color per vertex as
//! the sequential member-order loop, at any shard count: the sweep is
//! order-independent within a class.
//!
//! This is the port Theorem 1.3's peel loop rides on: every peeling level
//! hands its residual scope to [`engine_degree_plus_one_coloring`] as a
//! mask (see `distributed_coloring::extend`).

use graphs::{Graph, VertexId, VertexSet};
use local_model::{Orientation, RoundLedger};

use crate::context::NodeCtx;
use crate::driver::{EngineConfig, EngineSession, Stop};
use crate::metrics::EngineMetrics;
use crate::program::{NodeProgram, Outbox};
use crate::programs::cole_vishkin::engine_cole_vishkin_3color;

/// Where a sweep-phase node is in the announce → sweep cycle (reset by the
/// host via [`SweepProgram::load`] before every merge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SweepStage {
    /// Not participating (between merges, or before the first).
    Idle,
    /// Next round: broadcast the freshly loaded product color.
    Announce,
    /// Counting classes down, recoloring when `cursor - 1` matches.
    Sweep,
}

/// Per-node state of the class sweep.
#[derive(Clone, Debug)]
pub struct SweepProgram {
    color: usize,
    /// Union-forest neighbors (original ids, sorted) — the only colors the
    /// greedy step may read.
    union_nbrs: Vec<VertexId>,
    /// Latest color heard from each union neighbor, aligned to
    /// `union_nbrs`.
    nbr_colors: Vec<usize>,
    /// Next sweep round handles class `cursor - 1`.
    cursor: usize,
    target: usize,
    stage: SweepStage,
}

impl SweepProgram {
    /// A node that does nothing until the host loads a merge.
    pub fn idle() -> Self {
        SweepProgram {
            color: usize::MAX,
            union_nbrs: Vec::new(),
            nbr_colors: Vec::new(),
            cursor: 0,
            target: 0,
            stage: SweepStage::Idle,
        }
    }

    /// Host seam: arm the node for one merge's sweep phase. `union_nbrs`
    /// must be sorted ascending.
    pub fn load(
        &mut self,
        color: usize,
        union_nbrs: Vec<VertexId>,
        current_colors: usize,
        target: usize,
    ) {
        debug_assert!(union_nbrs.windows(2).all(|w| w[0] < w[1]));
        self.color = color;
        self.nbr_colors = vec![usize::MAX; union_nbrs.len()];
        self.union_nbrs = union_nbrs;
        self.cursor = current_colors;
        self.target = target;
        self.stage = SweepStage::Announce;
    }

    /// The node's current color.
    pub fn color(&self) -> usize {
        self.color
    }

    fn absorb(&mut self, inbox: &[(VertexId, usize)]) {
        for &(src, c) in inbox {
            if let Ok(i) = self.union_nbrs.binary_search(&src) {
                self.nbr_colors[i] = c;
            }
        }
    }
}

impl NodeProgram for SweepProgram {
    type Message = usize;

    fn init(&mut self, _ctx: &mut NodeCtx<'_>) -> Outbox<usize> {
        Outbox::Silent
    }

    fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, inbox: &[(VertexId, usize)]) -> Outbox<usize> {
        match self.stage {
            SweepStage::Idle => Outbox::Silent,
            SweepStage::Announce => {
                // The inbox holds leftovers of the previous merge's last
                // sweep round — stale product inputs, deliberately ignored.
                self.stage = SweepStage::Sweep;
                Outbox::Broadcast(self.color)
            }
            SweepStage::Sweep => {
                self.absorb(inbox);
                self.cursor -= 1;
                let class = self.cursor;
                if class == self.target {
                    // Last class this merge; go quiet afterwards.
                    self.stage = SweepStage::Idle;
                }
                if self.color != class {
                    return Outbox::Silent;
                }
                debug_assert!(
                    self.nbr_colors.iter().all(|&c| c != usize::MAX),
                    "every union neighbor announced before the first sweep"
                );
                let fresh = (0..self.target)
                    .find(|c| !self.nbr_colors.contains(c))
                    .expect("target exceeds union degree, a free color exists");
                self.color = fresh;
                Outbox::Broadcast(fresh)
            }
        }
    }

    fn halted(&self) -> bool {
        self.stage == SweepStage::Idle
    }
}

/// Engine twin of [`local_model::coloring_by_forest_merge`]: same colors
/// (bit for bit, masked or not, at any shard count) and same ledger phase
/// totals (`"forest-decomposition"`, `"cole-vishkin"`, `"shift-down"`,
/// `"class-sweep"`), plus the sweep session's observed [`EngineMetrics`].
///
/// `config.faults`/`config.congest` apply to the masked sweep session; the
/// per-forest Cole–Vishkin sessions run fault-free (they execute over
/// separate forest graphs). Any `config.mask` is overridden by `mask`.
///
/// # Panics
///
/// Panics if `target` does not exceed the masked maximum degree, or if
/// `config.max_rounds` interrupts a sweep.
pub fn engine_coloring_by_forest_merge(
    g: &Graph,
    mask: Option<&VertexSet>,
    priority: &[usize],
    target: usize,
    config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (Vec<usize>, EngineMetrics) {
    let (members, max_deg) = masked_members_and_max_deg(g, mask);
    forest_merge_with_members(g, mask, priority, target, &members, max_deg, config, ledger)
}

/// One pass over the masked adjacency: the member list and the masked
/// maximum degree (shared by both public entry points, and by Theorem
/// 1.3's per-level calls, so the scan runs once per invocation).
fn masked_members_and_max_deg(g: &Graph, mask: Option<&VertexSet>) -> (Vec<VertexId>, usize) {
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    let members: Vec<VertexId> = (0..g.n()).filter(|&v| in_mask(v)).collect();
    let max_deg = members
        .iter()
        .map(|&v| g.neighbors(v).iter().filter(|&&w| in_mask(w)).count())
        .max()
        .unwrap_or(0);
    (members, max_deg)
}

#[allow(clippy::too_many_arguments)]
fn forest_merge_with_members(
    g: &Graph,
    mask: Option<&VertexSet>,
    priority: &[usize],
    target: usize,
    members: &[VertexId],
    max_deg: usize,
    config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (Vec<usize>, EngineMetrics) {
    let n = g.n();
    assert_eq!(priority.len(), n);
    assert!(
        target > max_deg,
        "target ({target}) must exceed the masked maximum degree ({max_deg})"
    );

    let orientation = Orientation::by_priority(g, mask, priority);
    let forests = orientation.forest_decomposition(mask, ledger);

    let mut color = vec![usize::MAX; n];
    let mut union_adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut current_colors = 1usize;

    let mut sweep_config = config.clone();
    sweep_config.mask = mask.cloned();
    let cv_config = EngineConfig::default()
        .with_shards(config.shards)
        .with_workers(config.workers);
    let mut sess = EngineSession::new(g, sweep_config, |_| SweepProgram::idle());

    for (fi, forest) in forests.iter().enumerate() {
        let (f3, _) = engine_cole_vishkin_3color(forest, cv_config.clone(), ledger);
        for &v in members {
            let p = forest.parent(v);
            if p != usize::MAX && p != v {
                union_adj[v].push(p);
                union_adj[p].push(v);
            }
        }
        if fi == 0 {
            for &v in members {
                color[v] = f3[v];
            }
            current_colors = 3;
        } else {
            // Product coloring: 3 * old + forest color; proper on the union.
            for &v in members {
                color[v] = 3 * color[v] + f3[v];
            }
            current_colors *= 3;
        }
        if current_colors > target {
            sess.for_each_program(|v, p| {
                let mut nbrs = union_adj[v].clone();
                nbrs.sort_unstable();
                p.load(color[v], nbrs, current_colors, target);
            });
            let rounds = (current_colors - target + 1) as u64;
            let report = sess.run_phase("class-sweep", Stop::Rounds(rounds));
            assert_eq!(
                report.rounds, rounds,
                "max_rounds interrupted a class sweep"
            );
            sess.for_each_program(|v, p| color[v] = p.color());
        }
        current_colors = current_colors.min(target).max(
            color
                .iter()
                .filter(|&&c| c != usize::MAX)
                .max()
                .map_or(0, |&c| c + 1),
        );
    }
    if !members.is_empty() && forests.is_empty() {
        // Edgeless subgraph: everyone takes color 0.
        for &v in members {
            color[v] = 0;
        }
    }
    debug_assert!(members.iter().all(|&v| color[v] < target));
    let (_, metrics, sweep_ledger) = sess.into_parts();
    ledger.absorb(sweep_ledger);
    (color, metrics)
}

/// Engine twin of [`local_model::degree_plus_one_coloring`]: the classic
/// `(Δ+1)`-coloring of `g[mask]`, executed. Returns `color[v] ∈
/// 0..masked_Δ+1` for masked vertices, `usize::MAX` elsewhere — identical
/// to the sequential output, with identical ledger totals.
///
/// # Examples
///
/// ```
/// use engine::{engine_degree_plus_one_coloring, EngineConfig};
/// use graphs::gen;
/// use local_model::RoundLedger;
///
/// let g = gen::grid(5, 5);
/// let mut ledger = RoundLedger::new();
/// let (col, _) =
///     engine_degree_plus_one_coloring(&g, None, EngineConfig::default(), &mut ledger);
/// for (u, v) in g.edges() {
///     assert_ne!(col[u], col[v]);
/// }
/// assert!(col.iter().all(|&c| c < 5));
/// ```
pub fn engine_degree_plus_one_coloring(
    g: &Graph,
    mask: Option<&VertexSet>,
    config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (Vec<usize>, EngineMetrics) {
    let (members, max_deg) = masked_members_and_max_deg(g, mask);
    forest_merge_with_members(
        g,
        mask,
        &vec![0; g.n()],
        max_deg + 1,
        &members,
        max_deg,
        config,
        ledger,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;
    use local_model::degree_plus_one_coloring;

    fn assert_matches_sequential(g: &Graph, mask: Option<&VertexSet>, label: &str) {
        let mut seq_ledger = RoundLedger::new();
        let seq = degree_plus_one_coloring(g, mask, &mut seq_ledger);
        for shards in [1usize, 2, 8] {
            let mut eng_ledger = RoundLedger::new();
            let (col, _) = engine_degree_plus_one_coloring(
                g,
                mask,
                EngineConfig::default().with_shards(shards),
                &mut eng_ledger,
            );
            assert_eq!(col, seq, "{label} shards={shards}: colors diverged");
            assert_eq!(
                eng_ledger.total(),
                seq_ledger.total(),
                "{label} shards={shards}: ledger totals diverged"
            );
            assert_eq!(
                eng_ledger.phase_total("class-sweep"),
                seq_ledger.phase_total("class-sweep"),
                "{label} shards={shards}"
            );
        }
    }

    #[test]
    fn matches_sequential_on_whole_graphs() {
        assert_matches_sequential(&gen::grid(7, 7), None, "grid");
        assert_matches_sequential(&gen::random_regular(40, 4, 3), None, "4-regular");
        assert_matches_sequential(&gen::random_tree(60, 9), None, "tree");
    }

    #[test]
    fn matches_sequential_on_masked_subgraphs() {
        let g = gen::complete(8);
        let mask = VertexSet::from_iter_with_universe(8, [0, 2, 4, 6]);
        assert_matches_sequential(&g, Some(&mask), "masked K8");
        let g = gen::triangular(5, 5);
        let mask = VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 3 != 0));
        assert_matches_sequential(&g, Some(&mask), "masked triangular");
    }

    #[test]
    fn colors_are_proper_and_in_range() {
        let g = gen::grid(8, 8);
        let mut ledger = RoundLedger::new();
        let (col, metrics) =
            engine_degree_plus_one_coloring(&g, None, EngineConfig::default(), &mut ledger);
        for (u, v) in g.edges() {
            assert_ne!(col[u], col[v]);
        }
        assert!(col.iter().all(|&c| c < 5));
        assert!(metrics.total_rounds() > 0, "the sweeps actually executed");
        assert_eq!(
            ledger.phase_total("class-sweep"),
            metrics.total_rounds(),
            "every sweep round was executed on the engine"
        );
    }

    #[test]
    fn edgeless_and_empty_masks() {
        let g = Graph::empty(5);
        let mut ledger = RoundLedger::new();
        let (col, _) =
            engine_degree_plus_one_coloring(&g, None, EngineConfig::default(), &mut ledger);
        assert!(col.iter().all(|&c| c == 0));

        let g = gen::cycle(6);
        let empty = VertexSet::new(6);
        let mut ledger = RoundLedger::new();
        let (col, _) =
            engine_degree_plus_one_coloring(&g, Some(&empty), EngineConfig::default(), &mut ledger);
        assert!(col.iter().all(|&c| c == usize::MAX));
    }
}
