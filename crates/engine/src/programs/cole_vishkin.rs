//! Cole–Vishkin forest 3-coloring as a message-passing node program.
//!
//! The same algorithm as [`local_model::cole_vishkin_3color`], but executed:
//! every node broadcasts its color each round and recomputes from its
//! parent's broadcast. The host drives the standard phase structure — the
//! `O(log* n)` bit-shrink loop until six colors remain (all-halted vote),
//! then three fixed two-round shift-down phases eliminating colors 5, 4, 3 —
//! and the run is equivalence-tested to produce the *same colors and the
//! same ledger totals* as the sequential twin.

use graphs::{Graph, VertexId};
use local_model::{RootedForest, RoundLedger};

use crate::context::NodeCtx;
use crate::driver::{EngineConfig, EngineSession, Stop};
use crate::metrics::EngineMetrics;
use crate::program::{NodeProgram, Outbox};

/// Which stage of the algorithm the node is in (switched by the host
/// between engine phases — the "synchronizer" seam).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    /// Iterated bit-shrink until the color is below 6.
    Shrink,
    /// Two-round shift-down eliminating `target`: `step` 0 shifts, `step` 1
    /// recolors the `target` class into `{0, 1, 2}`.
    Shift { target: usize, step: u8 },
}

/// Per-node Cole–Vishkin state.
#[derive(Clone, Debug)]
pub struct CvProgram {
    /// Parent id; `== id` for roots, `usize::MAX` for non-members.
    parent: usize,
    color: usize,
    stage: Stage,
}

impl CvProgram {
    fn member(&self) -> bool {
        self.parent != usize::MAX
    }

    fn is_root(&self, id: VertexId) -> bool {
        self.parent == id
    }

    /// The node's current color (`usize::MAX` for non-members).
    pub fn color(&self) -> usize {
        self.color
    }

    /// Host hook: enter the two-round shift-down phase for `target`.
    pub fn begin_shift(&mut self, target: usize) {
        self.stage = Stage::Shift { target, step: 0 };
    }

    /// The parent's latest broadcast color, if any.
    fn parent_color(&self, id: VertexId, inbox: &[(VertexId, usize)]) -> Option<usize> {
        if self.is_root(id) {
            return None;
        }
        inbox
            .iter()
            .find(|&&(src, _)| src == self.parent)
            .map(|&(_, c)| c)
    }
}

impl NodeProgram for CvProgram {
    type Message = usize;

    fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<usize> {
        if !self.member() {
            return Outbox::Silent;
        }
        // Initial color: the unique id, published as free initial knowledge.
        self.color = ctx.id;
        Outbox::Broadcast(self.color)
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[(VertexId, usize)]) -> Outbox<usize> {
        if !self.member() {
            return Outbox::Silent;
        }
        match self.stage {
            Stage::Shrink => {
                let my = self.color;
                // Roots compare against a fixed differing value, exactly as
                // the sequential implementation does.
                let other = match self.parent_color(ctx.id, inbox) {
                    Some(c) => c,
                    None => usize::from(my == 0),
                };
                debug_assert_ne!(my, other, "proper coloring invariant");
                let diff = my ^ other;
                let i = diff.trailing_zeros() as usize;
                self.color = 2 * i + ((my >> i) & 1);
                Outbox::Broadcast(self.color)
            }
            Stage::Shift { target, step: 0 } => {
                // Shift down: adopt the parent's color; roots pick the
                // smallest of the six colors differing from their own.
                self.color = match self.parent_color(ctx.id, inbox) {
                    Some(c) => c,
                    None => (0..6)
                        .find(|&c| c != self.color)
                        .expect("six colors available"),
                };
                self.stage = Stage::Shift { target, step: 1 };
                Outbox::Broadcast(self.color)
            }
            Stage::Shift { target, step: _ } => {
                // Recolor the `target` class: after a shift every child of a
                // node carries one color, so two constraints remain.
                if self.color == target {
                    let parent_color = self.parent_color(ctx.id, inbox).unwrap_or(usize::MAX);
                    let child_color = inbox
                        .iter()
                        .find(|&&(src, _)| src != self.parent)
                        .map_or(usize::MAX, |&(_, c)| c);
                    self.color = (0..3)
                        .find(|&c| c != parent_color && c != child_color)
                        .expect("three colors, two constraints");
                }
                self.stage = Stage::Shrink; // inert until the host intervenes
                Outbox::Broadcast(self.color)
            }
        }
    }

    fn halted(&self) -> bool {
        // During the shrink phase this is the convergence vote; shift-down
        // phases run on fixed round counts and ignore it.
        !self.member() || self.color < 6
    }
}

/// Runs engine Cole–Vishkin over `forest`: same output contract as
/// [`local_model::cole_vishkin_3color`] (colors in `{0,1,2}` for members,
/// `usize::MAX` outside), same ledger phases (`"cole-vishkin"`,
/// `"shift-down"`), plus the observed [`EngineMetrics`].
///
/// # Panics
///
/// Panics if `config.max_rounds` interrupts the shrink loop (it converges in
/// `O(log* n)` rounds, so that indicates a hostile config or fault plan).
///
/// # Examples
///
/// ```
/// use engine::{engine_cole_vishkin_3color, EngineConfig};
/// use local_model::{RootedForest, RoundLedger};
///
/// let f = RootedForest::new(vec![0, 0, 1, 2, 3]);
/// let mut ledger = RoundLedger::new();
/// let (colors, metrics) = engine_cole_vishkin_3color(&f, EngineConfig::default(), &mut ledger);
/// for v in 1..5 {
///     assert!(colors[v] < 3);
///     assert_ne!(colors[v], colors[f.parent(v)]);
/// }
/// assert_eq!(metrics.total_rounds(), ledger.total());
/// ```
pub fn engine_cole_vishkin_3color(
    forest: &RootedForest,
    config: EngineConfig,
    ledger: &mut RoundLedger,
) -> (Vec<usize>, EngineMetrics) {
    let n = forest.n();
    let g = Graph::from_edges(
        n,
        forest.members().filter_map(|v| {
            let p = forest.parent(v);
            (p != v).then_some((v, p))
        }),
    );
    let mut sess = EngineSession::new(&g, config, |ctx| CvProgram {
        parent: forest.parent(ctx.id),
        color: usize::MAX,
        stage: Stage::Shrink,
    });
    let report = sess.run_phase("cole-vishkin", Stop::AllHalted);
    assert!(
        report.converged,
        "Cole–Vishkin shrink loop hit the round cap after {} rounds",
        report.rounds
    );
    for target in (3..6).rev() {
        sess.for_each_program(|_, p| p.begin_shift(target));
        sess.run_phase("shift-down", Stop::Rounds(2));
    }
    let colors = sess
        .view()
        .scatter(usize::MAX, sess.programs().iter().map(CvProgram::color));
    let (_, metrics, run_ledger) = sess.into_parts();
    ledger.absorb(run_ledger);
    (colors, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    fn forest_from_bfs(g: &Graph, root: usize) -> RootedForest {
        RootedForest::new(graphs::bfs_parents(g, root, None))
    }

    #[test]
    fn engine_run_is_proper_on_paths_and_trees() {
        for g in [
            gen::path(500),
            gen::binary_tree(8),
            gen::random_tree(300, 4),
        ] {
            let f = forest_from_bfs(&g, 0);
            let mut ledger = RoundLedger::new();
            let (colors, _) = engine_cole_vishkin_3color(&f, EngineConfig::default(), &mut ledger);
            for v in f.members() {
                assert!(colors[v] < 3);
                if f.parent(v) != v {
                    assert_ne!(colors[v], colors[f.parent(v)]);
                }
            }
            assert_eq!(ledger.phase_total("shift-down"), 6);
        }
    }

    #[test]
    fn matches_sequential_exactly() {
        for (n, seed) in [(50usize, 1u64), (200, 2), (1000, 3)] {
            let g = gen::random_tree(n, seed);
            let f = forest_from_bfs(&g, 0);
            let mut seq_ledger = RoundLedger::new();
            let seq = local_model::cole_vishkin_3color(&f, &mut seq_ledger);
            for shards in [1usize, 4] {
                let mut eng_ledger = RoundLedger::new();
                let (colors, metrics) = engine_cole_vishkin_3color(
                    &f,
                    EngineConfig::default().with_shards(shards),
                    &mut eng_ledger,
                );
                assert_eq!(colors, seq, "n={n} seed={seed} shards={shards}");
                assert_eq!(eng_ledger.total(), seq_ledger.total());
                assert_eq!(
                    eng_ledger.phase_total("cole-vishkin"),
                    seq_ledger.phase_total("cole-vishkin")
                );
                assert_eq!(metrics.total_rounds(), eng_ledger.total());
            }
        }
    }

    #[test]
    fn handles_non_members_and_multi_trees() {
        let mut parent = vec![usize::MAX; 8];
        parent[0] = 0;
        parent[1] = 0;
        parent[2] = 0;
        parent[3] = 3;
        parent[4] = 3;
        parent[5] = 3;
        let f = RootedForest::new(parent);
        let mut ledger = RoundLedger::new();
        let (colors, _) = engine_cole_vishkin_3color(&f, EngineConfig::default(), &mut ledger);
        let mut seq_ledger = RoundLedger::new();
        let seq = local_model::cole_vishkin_3color(&f, &mut seq_ledger);
        assert_eq!(colors, seq);
        assert_eq!(colors[6], usize::MAX);
    }
}
