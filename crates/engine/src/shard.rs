//! Vertex sharding: how the network is split across worker threads.
//!
//! Shards are contiguous, near-equal ranges of the session's **dense**
//! live-vertex index (see [`GraphView`]) — for an
//! unmasked identity-order session that is the vertex-id range itself;
//! under [`VertexOrder::Locality`](crate::VertexOrder) it is a span of the
//! relabeled cache-local layout, so a shard is a graph neighborhood.
//! Contiguity matters twice: worker threads walk cache-friendly slices,
//! and shard ranges tile the dense index space, so the routing epoch can
//! hand each worker one contiguous block of spans. Delivery order does not
//! depend on the partition at all: each inbox is put into ascending
//! original-sender order by a counting pass on precomputed sender ranks
//! (see `mailbox`), and under the identity layout a span fed by one worker
//! group arrives already rank-sorted (staging walks ascending ids), so the
//! pass's monotonicity fast path skips it.

use std::ops::Range;

use crate::view::GraphView;

/// A partition of `0..n` into contiguous shards with sizes differing by at
/// most one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Splits `n` vertices into `shards` contiguous ranges.
    ///
    /// `shards` is clamped to `1..=max(n, 1)` so tiny graphs never produce
    /// empty worker threads.
    pub fn contiguous(n: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n.max(1));
        let base = n / shards;
        let extra = n % shards;
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0);
        for s in 0..shards {
            let size = base + usize::from(s < extra);
            bounds.push(bounds[s] + size);
        }
        debug_assert_eq!(*bounds.last().unwrap(), n);
        ShardPlan { bounds }
    }

    /// Splits a view's live vertices into `shards` contiguous dense ranges
    /// balanced by **edge mass** — each vertex weighs `deg + 1`, so skewed
    /// families (apollonian hubs, random-tree roots) stop concentrating
    /// their CSR work in one hot shard. Ranges stay contiguous and ascend
    /// in dense id, so this is a pure rebalancing of `contiguous`: every
    /// determinism argument (stable sender order, group-ordered drains)
    /// holds unchanged, and shard *placement* remains a performance knob.
    ///
    /// Every shard is non-empty (cut points are strictly ascending), so the
    /// clamping contract of [`contiguous`](ShardPlan::contiguous) carries
    /// over.
    pub fn for_view(view: &GraphView<'_>, shards: usize) -> Self {
        let n = view.live_count();
        let shards = shards.clamp(1, n.max(1));
        if shards == 1 || n == 0 {
            return ShardPlan::contiguous(n, shards);
        }
        let total: usize = (0..n).map(|dv| view.neighbors(dv).len() + 1).sum();
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0);
        let mut acc = 0usize;
        let mut next_cut = 1usize;
        for dv in 0..n {
            acc += view.neighbors(dv).len() + 1;
            // Cut once the running mass crosses the next ideal boundary
            // (`acc / total >= next_cut / shards`, in integers), but never
            // so late that the remaining vertices cannot give every later
            // shard at least one, and never twice at the same vertex.
            while next_cut < shards
                && acc * shards >= total * next_cut
                && dv < n - (shards - next_cut)
                && dv + 1 > bounds[next_cut - 1]
            {
                bounds.push(dv + 1);
                next_cut += 1;
            }
        }
        // Mass exhausted with cuts to spare (heavy tail vertex): fill the
        // remaining cuts with the latest legal positions, one vertex each.
        while next_cut < shards {
            bounds.push(n - (shards - next_cut));
            next_cut += 1;
        }
        bounds.push(n);
        debug_assert_eq!(bounds.len(), shards + 1);
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        ShardPlan { bounds }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of vertices partitioned.
    pub fn n(&self) -> usize {
        *self.bounds.last().unwrap()
    }

    /// The vertex range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Iterator over all shard ranges in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.shards()).map(|s| self.range(s))
    }

    /// Groups the shards into `groups` contiguous vertex ranges (one per
    /// worker of the pooled executor), balanced to within one shard and
    /// aligned to shard boundaries. `groups` is clamped to
    /// `1..=shards()` — a worker never owns a fraction of a shard, and no
    /// worker is left without one.
    ///
    /// The ranges ascend in vertex id, so draining per-worker staging
    /// arenas in group order reproduces the sequential vertex walk.
    pub fn group_ranges(&self, groups: usize) -> Vec<std::ops::Range<usize>> {
        let shards = self.shards();
        let groups = groups.clamp(1, shards.max(1));
        let base = shards / groups;
        let extra = shards % groups;
        let mut out = Vec::with_capacity(groups);
        let mut s = 0;
        for g in 0..groups {
            let take = base + usize::from(g < extra);
            let start = self.bounds[s];
            s += take;
            out.push(start..self.bounds[s]);
        }
        debug_assert_eq!(s, shards);
        out
    }

    /// Splits a slice into per-shard sub-slices (mutably), in shard order.
    pub fn split_mut<'a, T>(&self, mut slice: &'a mut [T]) -> Vec<&'a mut [T]> {
        assert_eq!(slice.len(), self.n(), "slice length must match plan");
        let mut out = Vec::with_capacity(self.shards());
        for s in 0..self.shards() {
            let (head, tail) = slice.split_at_mut(self.range(s).len());
            out.push(head);
            slice = tail;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{gen, Graph};

    #[test]
    fn for_view_balances_edge_mass_on_a_star() {
        // star(7): hub 0 (weight 8) + 7 leaves (weight 2 each), total 22.
        let g = gen::star(7);
        let view = GraphView::new(&g, None);
        let plan = ShardPlan::for_view(&view, 2);
        let masses: Vec<usize> = plan
            .ranges()
            .map(|r| r.map(|dv| view.neighbors(dv).len() + 1).sum::<usize>())
            .collect();
        assert_eq!(masses.iter().sum::<usize>(), 22);
        // A vertex-count split ([0,4,8]) puts mass 14 in shard 0; the
        // edge-mass split cuts earlier.
        assert_eq!(masses, vec![12, 10]);
    }

    #[test]
    fn for_view_matches_contiguous_on_uniform_degrees() {
        let g = gen::cycle(12);
        let view = GraphView::new(&g, None);
        for shards in [1usize, 2, 3, 4, 6] {
            assert_eq!(
                ShardPlan::for_view(&view, shards),
                ShardPlan::contiguous(12, shards),
                "shards = {shards}"
            );
        }
    }

    #[test]
    fn for_view_covers_everything_with_nonempty_shards() {
        // The last graph is a star with the hub at the END: its mass is
        // exhausted before all cuts are placed, exercising the tail fill.
        let graphs = [
            gen::star(40),
            gen::random_tree(97, 3),
            gen::complete(9),
            gen::path(5),
            Graph::from_edges(5, [(4usize, 0usize), (4, 1), (4, 2), (4, 3)]),
        ];
        for g in &graphs {
            let view = GraphView::new(g, None);
            for shards in [1usize, 2, 3, 8, 16, 64, 200] {
                let plan = ShardPlan::for_view(&view, shards);
                assert_eq!(plan.n(), g.n());
                assert_eq!(plan.shards(), shards.clamp(1, g.n().max(1)));
                let mut prev = 0;
                for r in plan.ranges() {
                    assert_eq!(r.start, prev, "contiguous (n={}, k={shards})", g.n());
                    assert!(!r.is_empty(), "empty shard (n={}, k={shards})", g.n());
                    prev = r.end;
                }
                assert_eq!(prev, g.n());
            }
        }
    }

    #[test]
    fn covers_all_vertices_without_overlap() {
        for n in [0usize, 1, 2, 7, 8, 100] {
            for k in [1usize, 2, 3, 8, 200] {
                let plan = ShardPlan::contiguous(n, k);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in plan.ranges() {
                    assert_eq!(r.start, prev_end, "ranges must be contiguous");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, n, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn sizes_balanced_within_one() {
        let plan = ShardPlan::contiguous(10, 3);
        let sizes: Vec<usize> = plan.ranges().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn clamps_shard_count() {
        assert_eq!(ShardPlan::contiguous(3, 100).shards(), 3);
        assert_eq!(ShardPlan::contiguous(3, 0).shards(), 1);
        assert_eq!(ShardPlan::contiguous(0, 4).shards(), 1);
    }

    #[test]
    fn group_ranges_cover_all_vertices_on_shard_boundaries() {
        for (n, shards) in [(100usize, 8usize), (7, 3), (50, 16), (0, 4), (1, 1)] {
            let plan = ShardPlan::contiguous(n, shards);
            for groups in [1usize, 2, 3, 8, 100] {
                let ranges = plan.group_ranges(groups);
                assert!(!ranges.is_empty());
                assert!(ranges.len() <= plan.shards());
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end, "contiguous groups");
                    prev_end = r.end;
                    // Each boundary is a shard boundary.
                    assert!(
                        plan.ranges().any(|s| s.start == r.start),
                        "group start {} off shard boundary (n={n} shards={shards})",
                        r.start
                    );
                }
            }
        }
    }

    #[test]
    fn group_ranges_balance_shards_within_one() {
        let plan = ShardPlan::contiguous(80, 8);
        let ranges = plan.group_ranges(3);
        // 8 shards of 10 vertices over 3 groups: 3/3/2 shards.
        let sizes: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
        assert_eq!(sizes, vec![30, 30, 20]);
    }

    #[test]
    fn split_mut_matches_ranges() {
        let plan = ShardPlan::contiguous(7, 3);
        let mut data: Vec<usize> = (0..7).collect();
        let parts = plan.split_mut(&mut data);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[0, 1, 2]);
        assert_eq!(parts[1], &[3, 4]);
        assert_eq!(parts[2], &[5, 6]);
    }
}
