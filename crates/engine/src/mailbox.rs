//! Double-buffered mailboxes: the synchronous message fabric.
//!
//! Two buffers per **live** vertex — `cur` (read this round) and `next`
//! (filled for the coming round) — plus a schedule of fault-delayed batches.
//! Inboxes are indexed by the session's dense live-vertex index (see
//! [`GraphView`](crate::GraphView)); the `(sender, payload)` entries carry
//! *original* sender ids, which is what programs observe and what the
//! delivery order sorts on. The strict buffer flip is what makes the
//! execution *synchronous*: a message sent in round `r` is visible in round
//! `r + 1` and never earlier, no matter how threads interleave.
//!
//! Delivery order contract: each inbox is sorted by original sender id
//! (stable, so multiple messages from one sender keep their send order,
//! duplicated deliveries immediately follow their original, and delayed
//! batches due the same round precede fresh traffic from the same sender
//! because they are injected first). The order is therefore a pure function
//! of the traffic, independent of shard count and thread schedule.
//!
//! Since the routing refactor the sender sort runs in the **routing phase**
//! (each worker sorts the inboxes of its own vertex range — see
//! `pool::route_range`), not in `flip`; driver-side fill paths call
//! `sort_next` explicitly.

use std::collections::BTreeMap;

use graphs::VertexId;

/// A routed point-to-point message: `(destination dense index, original
/// sender id, payload)`.
pub(crate) type Routed<M> = (usize, VertexId, M);

/// The engine's mailbox fabric. See module docs.
pub(crate) struct Mailboxes<M> {
    cur: Vec<Vec<(VertexId, M)>>,
    next: Vec<Vec<(VertexId, M)>>,
    delayed: BTreeMap<u64, Vec<Routed<M>>>,
}

impl<M> Mailboxes<M> {
    /// Mailboxes for `live` vertices (the session's dense index space).
    pub(crate) fn new(live: usize) -> Self {
        Mailboxes {
            cur: (0..live).map(|_| Vec::new()).collect(),
            next: (0..live).map(|_| Vec::new()).collect(),
            delayed: BTreeMap::new(),
        }
    }

    /// The inboxes to read this round, dense-indexed.
    pub(crate) fn inboxes(&self) -> &[Vec<(VertexId, M)>] {
        &self.cur
    }

    /// Raw base pointer of the `next` buffers, for the worker-parallel
    /// routing phase: each worker fills (and sorts) a disjoint dense range.
    pub(crate) fn next_ptr(&mut self) -> *mut Vec<(VertexId, M)> {
        self.next.as_mut_ptr()
    }

    /// Injects any batch whose delay expires at `round` — must happen
    /// *before* fresh traffic is routed so late traffic precedes fresh
    /// traffic from the same sender after the stable sort.
    pub(crate) fn inject_due(&mut self, round: u64) {
        if let Some(batch) = self.delayed.remove(&round) {
            for (dst, src, m) in batch {
                self.next[dst].push((src, m));
            }
        }
    }

    /// Queues messages for delivery next round, draining the caller's
    /// staging arena so its capacity survives for the next round. Driver-side
    /// path (round 0 init); steady-state rounds route on the workers.
    pub(crate) fn ingest(&mut self, sent: &mut Vec<Routed<M>>) {
        for (dst, src, m) in sent.drain(..) {
            self.next[dst].push((src, m));
        }
    }

    /// Schedules a fault-delayed batch for delivery at `round`.
    pub(crate) fn schedule(&mut self, round: u64, batch: Vec<Routed<M>>) {
        self.delayed.entry(round).or_default().extend(batch);
    }

    /// Sorts every filled `next` inbox by original sender id (stable) —
    /// the driver-side twin of the per-range sort the routing phase does.
    pub(crate) fn sort_next(&mut self) {
        for inbox in &mut self.next {
            if inbox.len() > 1 {
                inbox.sort_by_key(|&(src, _)| src);
            }
        }
    }

    /// Ends the routing of a round: flips the buffers (callers must have
    /// sorted `next` already — on the workers or via
    /// [`sort_next`](Mailboxes::sort_next)).
    pub(crate) fn flip(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
        for inbox in &mut self.next {
            inbox.clear();
        }
    }

    /// Whether any delayed batch is still pending.
    pub(crate) fn has_pending_delays(&self) -> bool {
        !self.delayed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_visible_only_after_flip() {
        let mut mail: Mailboxes<u32> = Mailboxes::new(3);
        let mut staged = vec![(2, 0, 7)];
        mail.ingest(&mut staged);
        assert!(staged.is_empty(), "staging arena drained, not consumed");
        assert!(
            mail.inboxes()[2].is_empty(),
            "sent this round, not visible yet"
        );
        mail.sort_next();
        mail.flip();
        assert_eq!(mail.inboxes()[2], vec![(0, 7)]);
        mail.flip();
        assert!(mail.inboxes()[2].is_empty(), "consumed after next flip");
    }

    #[test]
    fn inboxes_sorted_by_sender_stably() {
        let mut mail: Mailboxes<u32> = Mailboxes::new(4);
        // Sender 2 then sender 0, sender 2 again: sorted to 0, 2, 2 with
        // sender 2's messages in send order.
        mail.ingest(&mut vec![(3, 2, 10), (3, 0, 20), (3, 2, 11)]);
        mail.sort_next();
        mail.flip();
        assert_eq!(mail.inboxes()[3], vec![(0, 20), (2, 10), (2, 11)]);
    }

    #[test]
    fn delayed_batches_arrive_on_time_and_first() {
        let mut mail: Mailboxes<u32> = Mailboxes::new(2);
        mail.schedule(3, vec![(1, 0, 99)]);
        // Rounds 1 and 2: nothing due.
        for round in 1..3u64 {
            mail.inject_due(round);
            mail.sort_next();
            mail.flip();
            assert!(mail.inboxes()[1].is_empty(), "round {round}");
        }
        assert!(mail.has_pending_delays());
        // Round 3: due batch plus fresh traffic from the same sender — the
        // delayed message comes first.
        mail.inject_due(3);
        mail.ingest(&mut vec![(1, 0, 100)]);
        mail.sort_next();
        mail.flip();
        assert_eq!(mail.inboxes()[1], vec![(0, 99), (0, 100)]);
        assert!(!mail.has_pending_delays());
    }
}
