//! Double-buffered mailboxes: the synchronous message fabric — plus the
//! CONGEST **reassembly layer** for split-mode runs.
//!
//! Two buffers per **live** vertex — `cur` (read this round) and `next`
//! (filled for the coming round) — plus a schedule of fault-delayed batches.
//! Inboxes are indexed by the session's dense live-vertex index (see
//! [`GraphView`](crate::GraphView)); the `(sender, payload)` entries carry
//! *original* sender ids, which is what programs observe and what the
//! delivery order sorts on. The strict buffer flip is what makes the
//! execution *synchronous*: a message sent in round `r` is visible in round
//! `r + 1` and never earlier, no matter how threads interleave.
//!
//! Delivery order contract: each inbox is sorted by original sender id
//! (stable, so multiple messages from one sender keep their send order,
//! duplicated deliveries immediately follow their original, and delayed
//! batches due the same round precede fresh traffic from the same sender
//! because they are injected first). The order is therefore a pure function
//! of the traffic, independent of shard count and thread schedule. An
//! installed [`FaultPlan::reorder`](crate::FaultPlan::reorder) rule then
//! adversarially permutes each same-sender run — seeded, shard-invariant.
//!
//! # Fragmentation and reassembly
//!
//! Under [`CongestMode::Split`](crate::CongestMode::Split) a logical
//! message wider than the budget never crosses an edge whole. The routing
//! phase encodes it through its [`WireCodec`](crate::WireCodec), chops the
//! words into `(seq, total)`-headed frames of at most the budget, and feeds
//! them — in order, over consecutive virtual rounds — into the receiving
//! edge’s `Reassembly` buffer, which releases the decoded logical message
//! to the program **only when the last frame lands**. Each live vertex owns
//! one `EdgeReassembly` map (sender → in-flight buffer), persisted across
//! rounds so buffer capacity is reused. Faults act on *logical* messages in
//! the staging phase, before fragmentation, so fault replay is identical
//! across split and unlimited modes.
//!
//! Since the routing refactor the sender sort runs in the **routing phase**
//! (each worker finalizes the inboxes of its own vertex range — see
//! `pool::route_range`), not in `flip`; driver-side fill paths call
//! `Mailboxes::finalize_next` explicitly.

use std::collections::BTreeMap;

use graphs::VertexId;

use crate::faults::reorder_inbox;
use crate::pool::RouteEnv;
use crate::program::EngineMessage;

/// A routed point-to-point message: `(destination dense index, original
/// sender id, payload)`.
pub(crate) type Routed<M> = (usize, VertexId, M);

/// One edge's in-flight fragment buffer: accumulates the `(seq, total)`
/// frames of a single logical message and reports completion. The words
/// vector is retained across messages, so steady-state reassembly
/// allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct Reassembly {
    total: u32,
    next_seq: u32,
    words: Vec<u64>,
}

impl Reassembly {
    /// Feeds one frame; returns `true` when the message is complete (the
    /// accumulated words are then readable via [`Reassembly::words`] until
    /// [`Reassembly::reset`]).
    ///
    /// # Panics
    ///
    /// Panics on a protocol violation — a frame out of sequence, a `total`
    /// that changes mid-message, or a frame after completion. The engine
    /// delivers frames in order per edge, so a violation is a runtime bug,
    /// never a valid execution.
    pub(crate) fn push(&mut self, seq: u32, total: u32, frame: &[u64]) -> bool {
        if seq == 0 {
            assert_eq!(
                self.next_seq, 0,
                "new message started before the previous one completed"
            );
            assert!(total >= 1, "a fragmented message has at least one frame");
            self.total = total;
            self.words.clear();
        }
        assert_eq!(seq, self.next_seq, "fragment out of sequence");
        assert_eq!(
            total, self.total,
            "fragment header total changed mid-message"
        );
        self.words.extend_from_slice(frame);
        self.next_seq += 1;
        self.next_seq == self.total
    }

    /// The reassembled words of a completed message.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Readies the buffer for the edge's next message, keeping capacity.
    pub(crate) fn reset(&mut self) {
        self.total = 0;
        self.next_seq = 0;
        self.words.clear();
    }

    /// Whether a message is mid-reassembly.
    pub(crate) fn in_flight(&self) -> bool {
        self.next_seq != 0 && self.next_seq < self.total
    }
}

/// One receiver's reassembly state: a per-sender ([`Reassembly`]) buffer
/// for every edge that is currently — or was ever — delivering fragmented
/// traffic to this vertex, plus a reusable encode scratch so steady-state
/// splitting allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct EdgeReassembly {
    streams: BTreeMap<VertexId, Reassembly>,
    /// Encode scratch, reused across messages and rounds.
    scratch: Vec<u64>,
}

impl EdgeReassembly {
    /// Whether any edge has a message mid-reassembly (must be false at
    /// every round boundary: fragments of one logical round never leak
    /// into the next).
    pub(crate) fn any_in_flight(&self) -> bool {
        self.streams.values().any(Reassembly::in_flight)
    }
}

/// What one inbox's finalization observed: CONGEST frames produced, and
/// the widest logical message actually **delivered** (0 outside split
/// mode) — the width that decides the round's physical cost. Charging on
/// delivered widths keeps fault-suppressed traffic free: a dropped,
/// crashed, or lost wide message never crossed the wire, so it costs no
/// virtual rounds.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RouteTally {
    /// Frames produced by fragmenting over-budget messages.
    pub(crate) fragments: usize,
    /// Widest delivered logical message, in words.
    pub(crate) wire_width: usize,
}

impl RouteTally {
    /// Merges another range's tally into this one.
    pub(crate) fn absorb(&mut self, other: RouteTally) {
        self.fragments += other.fragments;
        self.wire_width = self.wire_width.max(other.wire_width);
    }
}

/// Ships one over-budget logical message through the wire: encode, chop
/// into ≤ `budget`-word `(seq, total)` frames, feed every frame through the
/// receiving edge's buffer, decode on completion. Returns the decoded
/// message — what the program will actually observe, so a codec defect is a
/// visible output divergence, never a silent one — and the frame count.
///
/// # Panics
///
/// Panics if the codec violates its contract (encode/decode mismatch).
pub(crate) fn split_roundtrip<M: EngineMessage>(
    src: VertexId,
    m: &M,
    budget: usize,
    reasm: &mut EdgeReassembly,
) -> (M, usize) {
    debug_assert!(budget >= 1);
    let EdgeReassembly { streams, scratch } = reasm;
    scratch.clear();
    m.encode(scratch);
    let total = scratch.len().div_ceil(budget).max(1) as u32;
    let stream = streams.entry(src).or_default();
    let mut complete = false;
    if scratch.is_empty() {
        // A zero-word encoding still crosses as one (empty) frame.
        complete = stream.push(0, 1, &[]);
    } else {
        for (seq, frame) in scratch.chunks(budget).enumerate() {
            assert!(!complete, "message released before its last frame");
            complete = stream.push(seq as u32, total, frame);
        }
    }
    assert!(complete, "last frame must complete the message");
    let decoded = M::decode(stream.words()).expect("wire codec must round-trip its own encoding");
    stream.reset();
    (decoded, total as usize)
}

/// Finalizes one freshly routed inbox — the per-inbox half of the routing
/// phase, shared by the worker-parallel path (`pool::route_range`) and the
/// driver-side init path:
///
/// 1. **split mode**: every over-budget message is fragmented and
///    reassembled through the receiver's per-edge buffers ([`split_roundtrip`]);
/// 2. the stable sender sort;
/// 3. the optional seeded adversarial reorder of same-sender runs.
///
/// Returns the frames produced and the widest delivered message.
pub(crate) fn finalize_inbox<M: EngineMessage>(
    inbox: &mut [(VertexId, M)],
    reasm: &mut EdgeReassembly,
    receiver: VertexId,
    env: &RouteEnv<'_>,
) -> RouteTally {
    let mut tally = RouteTally::default();
    if env.split != usize::MAX {
        for (src, m) in inbox.iter_mut() {
            let width = m.width();
            tally.wire_width = tally.wire_width.max(width);
            if width > env.split {
                let (decoded, frames) = split_roundtrip(*src, m, env.split, reasm);
                *m = decoded;
                tally.fragments += frames;
            }
        }
        debug_assert!(
            !reasm.any_in_flight(),
            "fragments of one round must not leak into the next"
        );
    }
    if inbox.len() > 1 {
        inbox.sort_by_key(|&(src, _)| src);
        if let Some(seed) = env.reorder {
            reorder_inbox(inbox, seed, env.round, receiver);
        }
    }
    tally
}

/// The engine's mailbox fabric. See module docs.
pub(crate) struct Mailboxes<M> {
    cur: Vec<Vec<(VertexId, M)>>,
    next: Vec<Vec<(VertexId, M)>>,
    /// Per-receiver reassembly buffers (dense-indexed, like the inboxes).
    reasm: Vec<EdgeReassembly>,
    delayed: BTreeMap<u64, Vec<Routed<M>>>,
}

impl<M: EngineMessage> Mailboxes<M> {
    /// Mailboxes for `live` vertices (the session's dense index space).
    pub(crate) fn new(live: usize) -> Self {
        Mailboxes {
            cur: (0..live).map(|_| Vec::new()).collect(),
            next: (0..live).map(|_| Vec::new()).collect(),
            reasm: (0..live).map(|_| EdgeReassembly::default()).collect(),
            delayed: BTreeMap::new(),
        }
    }

    /// The inboxes to read this round, dense-indexed.
    pub(crate) fn inboxes(&self) -> &[Vec<(VertexId, M)>] {
        &self.cur
    }

    /// Raw base pointer of the `next` buffers, for the worker-parallel
    /// routing phase: each worker fills (and finalizes) a disjoint dense
    /// range.
    pub(crate) fn next_ptr(&mut self) -> *mut Vec<(VertexId, M)> {
        self.next.as_mut_ptr()
    }

    /// Raw base pointer of the reassembly buffers, partitioned across
    /// workers exactly like [`next_ptr`](Mailboxes::next_ptr).
    pub(crate) fn reasm_ptr(&mut self) -> *mut EdgeReassembly {
        self.reasm.as_mut_ptr()
    }

    /// Injects any batch whose delay expires at `round` — must happen
    /// *before* fresh traffic is routed so late traffic precedes fresh
    /// traffic from the same sender after the stable sort.
    pub(crate) fn inject_due(&mut self, round: u64) {
        if let Some(batch) = self.delayed.remove(&round) {
            for (dst, src, m) in batch {
                self.next[dst].push((src, m));
            }
        }
    }

    /// Queues messages for delivery next round, draining the caller's
    /// staging arena so its capacity survives for the next round. Driver-side
    /// path (round 0 init); steady-state rounds route on the workers.
    pub(crate) fn ingest(&mut self, sent: &mut Vec<Routed<M>>) {
        for (dst, src, m) in sent.drain(..) {
            self.next[dst].push((src, m));
        }
    }

    /// Schedules a fault-delayed batch for delivery at `round`.
    pub(crate) fn schedule(&mut self, round: u64, batch: Vec<Routed<M>>) {
        self.delayed.entry(round).or_default().extend(batch);
    }

    /// Finalizes every `next` inbox serially ([`finalize_inbox`]: split /
    /// sort / reorder) — the driver-side twin of the worker-parallel
    /// routing phase, used for round-0 init traffic. `live` maps dense
    /// indices to original receiver ids.
    pub(crate) fn finalize_next(&mut self, live: &[VertexId], env: &RouteEnv<'_>) -> RouteTally {
        let mut tally = RouteTally::default();
        for (dv, inbox) in self.next.iter_mut().enumerate() {
            tally.absorb(finalize_inbox(inbox, &mut self.reasm[dv], live[dv], env));
        }
        tally
    }

    /// Ends the routing of a round: flips the buffers (callers must have
    /// finalized `next` already — on the workers or via
    /// [`finalize_next`](Mailboxes::finalize_next)).
    pub(crate) fn flip(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
        for inbox in &mut self.next {
            inbox.clear();
        }
    }

    /// Whether any delayed batch is still pending.
    pub(crate) fn has_pending_delays(&self) -> bool {
        !self.delayed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_env<'a>() -> RouteEnv<'a> {
        RouteEnv {
            split: usize::MAX,
            round: 1,
            reorder: None,
            live: &[],
        }
    }

    fn finalize_all(mail: &mut Mailboxes<u64>, env: &RouteEnv<'_>) {
        let live: Vec<VertexId> = (0..mail.next.len()).collect();
        mail.finalize_next(&live, env);
    }

    #[test]
    fn messages_visible_only_after_flip() {
        let mut mail: Mailboxes<u64> = Mailboxes::new(3);
        let mut staged = vec![(2, 0, 7)];
        mail.ingest(&mut staged);
        assert!(staged.is_empty(), "staging arena drained, not consumed");
        assert!(
            mail.inboxes()[2].is_empty(),
            "sent this round, not visible yet"
        );
        finalize_all(&mut mail, &plain_env());
        mail.flip();
        assert_eq!(mail.inboxes()[2], vec![(0, 7)]);
        mail.flip();
        assert!(mail.inboxes()[2].is_empty(), "consumed after next flip");
    }

    #[test]
    fn inboxes_sorted_by_sender_stably() {
        let mut mail: Mailboxes<u64> = Mailboxes::new(4);
        // Sender 2 then sender 0, sender 2 again: sorted to 0, 2, 2 with
        // sender 2's messages in send order.
        mail.ingest(&mut vec![(3, 2, 10), (3, 0, 20), (3, 2, 11)]);
        finalize_all(&mut mail, &plain_env());
        mail.flip();
        assert_eq!(mail.inboxes()[3], vec![(0, 20), (2, 10), (2, 11)]);
    }

    #[test]
    fn delayed_batches_arrive_on_time_and_first() {
        let mut mail: Mailboxes<u64> = Mailboxes::new(2);
        mail.schedule(3, vec![(1, 0, 99)]);
        // Rounds 1 and 2: nothing due.
        for round in 1..3u64 {
            mail.inject_due(round);
            finalize_all(&mut mail, &plain_env());
            mail.flip();
            assert!(mail.inboxes()[1].is_empty(), "round {round}");
        }
        assert!(mail.has_pending_delays());
        // Round 3: due batch plus fresh traffic from the same sender — the
        // delayed message comes first.
        mail.inject_due(3);
        mail.ingest(&mut vec![(1, 0, 100)]);
        finalize_all(&mut mail, &plain_env());
        mail.flip();
        assert_eq!(mail.inboxes()[1], vec![(0, 99), (0, 100)]);
        assert!(!mail.has_pending_delays());
    }

    #[test]
    fn reassembly_releases_only_on_completion() {
        let mut r = Reassembly::default();
        assert!(!r.push(0, 3, &[1, 2]));
        assert!(r.in_flight());
        assert!(!r.push(1, 3, &[3, 4]));
        assert!(r.push(2, 3, &[5]));
        assert!(!r.in_flight());
        assert_eq!(r.words(), &[1, 2, 3, 4, 5]);
        r.reset();
        assert!(r.push(0, 1, &[9]), "single-frame messages complete at once");
        assert_eq!(r.words(), &[9]);
    }

    #[test]
    #[should_panic(expected = "out of sequence")]
    fn reassembly_rejects_gaps() {
        let mut r = Reassembly::default();
        r.push(0, 3, &[1]);
        r.push(2, 3, &[3]);
    }

    #[test]
    #[should_panic(expected = "before the previous one completed")]
    fn reassembly_rejects_interleaved_messages() {
        let mut r = Reassembly::default();
        r.push(0, 3, &[1]);
        r.push(0, 2, &[7]);
    }

    #[test]
    fn split_roundtrip_counts_frames_and_round_trips() {
        // u32 is not an EngineMessage; use u64's codec via the blanket
        // impls in lib.rs on a wide Vec-like payload: the gather message.
        use crate::programs::gather::NbrList;
        let mut reasm = EdgeReassembly::default();
        let msg = NbrList(vec![3, 5, 8, 13, 21]);
        let (decoded, frames) = split_roundtrip(7, &msg, 2, &mut reasm);
        assert_eq!(decoded.0, msg.0);
        assert_eq!(frames, 3, "5 words at 2 per frame");
        // The edge buffer is reusable for the next message.
        let (decoded, frames) = split_roundtrip(7, &NbrList(vec![1]), 2, &mut reasm);
        assert_eq!(decoded.0, vec![1]);
        assert_eq!(frames, 1);
        assert!(!reasm.any_in_flight());
    }

    #[test]
    fn finalize_inbox_splits_sorts_and_counts() {
        use crate::programs::gather::NbrList;
        let mut reasm = EdgeReassembly::default();
        let env = RouteEnv {
            split: 2,
            round: 1,
            reorder: None,
            live: &[],
        };
        let mut inbox = vec![
            (4usize, NbrList(vec![1, 2, 3, 4, 5])), // 3 frames at width 2
            (1, NbrList(vec![9])),                  // within budget: whole
        ];
        let tally = finalize_inbox(&mut inbox, &mut reasm, 0, &env);
        assert_eq!(tally.fragments, 3);
        assert_eq!(tally.wire_width, 5, "delivered width drives the charge");
        assert_eq!(inbox[0].0, 1, "sender sort still applies");
        assert_eq!(inbox[0].1 .0, vec![9]);
        assert_eq!(inbox[1].1 .0, vec![1, 2, 3, 4, 5]);
    }
}
