//! Double-buffered mailboxes: the synchronous message fabric — plus the
//! CONGEST **reassembly layer** for split-mode runs.
//!
//! Inboxes are stored struct-of-arrays: one contiguous payload **segment**
//! per routing group holds the `(sender, payload)` entries of the group's
//! whole dense vertex range packed back to back, and a per-vertex table of
//! `(start, len)` **spans** says where each inbox lives inside its group's
//! segment. The routing epoch rebuilds a segment with a **two-pass
//! counting sort** — count per receiver, prefix-sum into spans, place each
//! message once, then put each span into delivery order with a second
//! per-inbox counting pass keyed on the message's precomputed **sender
//! rank** (see `view::SenderRanks` and `sort_span_by_rank`) — so a
//! routing epoch is O(traffic) with **zero
//! comparison sorts** and **no per-message allocation**: segments, spans,
//! and every counting scratch are reused round over round. The first pass
//! additionally emits a per-group **active list** — the ascending dense
//! indices of exactly the non-empty spans — nearly for free: it is the
//! compute epoch's frontier index (only listed vertices plus the driver's
//! due wake list are stepped) and the buffer's own next span-reset list,
//! which is what makes quiescent rounds O(frontier) rather than O(range).
//!
//! Two such buffers — `cur` (read this round) and `next` (rebuilt for the
//! coming round) — plus a schedule of fault-delayed batches. Inboxes are
//! indexed by the session's dense live-vertex index (see
//! [`GraphView`](crate::GraphView)); entries carry *original* sender ids,
//! which is what programs observe and what the delivery order sorts on.
//! The strict buffer flip is what makes the execution *synchronous*: a
//! message sent in round `r` is visible in round `r + 1` and never
//! earlier, no matter how threads interleave.
//!
//! Delivery order contract: each inbox is sorted by original sender id
//! (stable, so multiple messages from one sender keep their send order,
//! duplicated deliveries immediately follow their original, and delayed
//! batches due the same round precede fresh traffic from the same sender
//! because they are placed first). The order is therefore a pure function
//! of the traffic, independent of shard count and thread schedule. An
//! installed [`FaultPlan::reorder`](crate::FaultPlan::reorder) rule then
//! adversarially permutes each same-sender run — seeded, shard-invariant.
//!
//! The contract is *implemented* without comparing senders: every staged
//! message carries the rank of its sender in the receiver's neighbor list
//! (attached in O(1) at stage time from the session's
//! `SenderRanks` table in `view`). Neighbor lists ascend
//! in original id, so rank order per receiver ≡ original-sender order,
//! and a stable per-span counting sort on ranks reproduces the old stable
//! comparison sort verbatim. Stability comes from placement order —
//! pending delayed batches are enumerated before the arenas, arenas in
//! ascending group order — which is exactly the "reserved front sub-band"
//! each `(receiver, sender)` rank slot gives its late traffic.
//!
//! # Fragmentation and reassembly
//!
//! Under [`CongestMode::Split`](crate::CongestMode::Split) a logical
//! message wider than the budget never crosses an edge whole. The routing
//! phase encodes it through its [`WireCodec`](crate::WireCodec), chops the
//! words into `(seq, total)`-headed frames of at most the budget, and feeds
//! them — in order, over consecutive virtual rounds — into the receiving
//! edge’s `Reassembly` buffer, which releases the decoded logical message
//! to the program **only when the last frame lands**. Each live vertex owns
//! one `EdgeReassembly` map (sender → in-flight buffer), persisted across
//! rounds so buffer capacity is reused. Faults act on *logical* messages in
//! the staging phase, before fragmentation, so fault replay is identical
//! across split and unlimited modes.
//!
//! The per-group rebuild itself runs on the workers (`pool::route_range`,
//! fed a `RouteTargets` pointer bundle from
//! `Mailboxes::next_targets`); round-0 init traffic takes the same path
//! through the pool, so there is no separate driver-side fill.

use std::collections::BTreeMap;
use std::ops::Range;

use graphs::VertexId;

use crate::faults::reorder_inbox;
use crate::pool::RouteEnv;
use crate::program::EngineMessage;

/// A routed point-to-point message: `(destination dense index, original
/// sender id, sender rank at the destination, payload)`. The rank — the
/// sender's position in the receiver's neighbor list, attached at stage
/// time from the session's [`SenderRanks`](crate::view::SenderRanks)
/// table — is the routing epoch's counting-sort key; it rides through
/// delay schedules and duplication so late and cloned traffic sorts
/// exactly like fresh traffic.
pub(crate) type Routed<M> = (usize, VertexId, u32, M);

/// A reusable two-level bitmap: one bit per element plus a summary bit
/// per 64-bit word, so the set bits of a sparse domain are enumerable in
/// ascending order in O(set + domain/4096) — the routing epoch's
/// replacement for sorting its touched-key lists. Grown on demand and
/// cleared by its own drain, it allocates nothing at steady state.
#[derive(Default)]
pub(crate) struct TwoLevelBits {
    words: Vec<u64>,
    summary: Vec<u64>,
    any: bool,
}

impl TwoLevelBits {
    /// Grows the bitmap to cover `bits` elements (zero-filled).
    pub(crate) fn ensure(&mut self, bits: usize) {
        let w = bits.div_ceil(64);
        if self.words.len() < w {
            self.words.resize(w, 0);
            self.summary.resize(w.div_ceil(64), 0);
        }
    }

    /// Sets bit `i` (idempotent). `i` must be within the ensured domain.
    #[inline]
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
        self.summary[i >> 12] |= 1u64 << ((i >> 6) & 63);
        self.any = true;
    }

    /// Whether any bit is set.
    pub(crate) fn any(&self) -> bool {
        self.any
    }

    /// Visits every set bit in ascending order without clearing.
    pub(crate) fn for_each(&self, mut f: impl FnMut(usize)) {
        if !self.any {
            return;
        }
        for (si, &sw0) in self.summary.iter().enumerate() {
            let mut sw = sw0;
            while sw != 0 {
                let wi = (si << 6) | sw.trailing_zeros() as usize;
                sw &= sw - 1;
                let mut w = self.words[wi];
                while w != 0 {
                    f((wi << 6) | w.trailing_zeros() as usize);
                    w &= w - 1;
                }
            }
        }
    }

    /// Visits every set bit in ascending order, clearing the bitmap —
    /// only the touched words are rewritten.
    pub(crate) fn drain(&mut self, mut f: impl FnMut(usize)) {
        if !self.any {
            return;
        }
        for si in 0..self.summary.len() {
            let mut sw = self.summary[si];
            if sw == 0 {
                continue;
            }
            self.summary[si] = 0;
            while sw != 0 {
                let wi = (si << 6) | sw.trailing_zeros() as usize;
                sw &= sw - 1;
                let mut w = self.words[wi];
                self.words[wi] = 0;
                while w != 0 {
                    f((wi << 6) | w.trailing_zeros() as usize);
                    w &= w - 1;
                }
            }
        }
        self.any = false;
    }
}

/// Per-group scratch of the per-span rank counting sort
/// ([`sort_span_by_rank`]): grow-on-demand rank counters, the two-level
/// bitmap that enumerates touched ranks in ascending order, and a
/// capacity-only spill buffer for the stable placement pass. All three
/// persist across spans and rounds, so the sort allocates nothing once
/// the session's degree profile has been seen.
pub(crate) struct RankScratch<M> {
    /// Rank → count, then placement cursor. All-zeros between spans.
    counts: Vec<u32>,
    /// The ranks touched by the current span.
    bits: TwoLevelBits,
    /// Spill buffer for the stable pass; `len` stays 0 — only its
    /// capacity is used, via raw pointers, so `M` values are moved, never
    /// dropped here.
    tmp: Vec<(VertexId, M)>,
}

impl<M> Default for RankScratch<M> {
    fn default() -> Self {
        RankScratch {
            counts: Vec::new(),
            bits: TwoLevelBits::default(),
            tmp: Vec::new(),
        }
    }
}

/// Puts one freshly placed span into delivery order with a **stable
/// counting sort on sender ranks** — the comparison-free twin of the old
/// `sort_by_key(|(src, _)| src)`: rank order ≡ original-sender order per
/// receiver (neighbor lists ascend in original id), and placing the
/// span's entries in their pre-sort order keeps every equal-rank run —
/// one sender's send order, delayed-before-fresh, duplicate-after-
/// original — intact.
///
/// `ranks[i]` is the sort key of `span[i]`; the ranks are *consumed* (not
/// permuted alongside), so the buffer they live in is free for reuse
/// right after. Spans whose ranks already ascend — under the identity
/// layout, every span fed by a single worker group, in particular all
/// single-worker runs — skip the counting entirely (a monotonicity
/// *check* is not a comparison sort: nothing is reordered by comparisons).
pub(crate) fn sort_span_by_rank<M>(
    span: &mut [(VertexId, M)],
    ranks: &[u32],
    scratch: &mut RankScratch<M>,
) {
    debug_assert_eq!(span.len(), ranks.len());
    if ranks.len() < 2 || ranks.windows(2).all(|w| w[0] <= w[1]) {
        return;
    }
    let RankScratch { counts, bits, tmp } = scratch;
    let max = *ranks.iter().max().expect("span is non-empty") as usize;
    if counts.len() <= max {
        counts.resize(max + 1, 0);
    }
    bits.ensure(max + 1);
    for &r in ranks {
        counts[r as usize] += 1;
        bits.set(r as usize);
    }
    // Prefix-sum the touched ranks in ascending order: counters become
    // placement cursors.
    let mut total = 0u32;
    bits.for_each(|r| {
        let c = counts[r];
        counts[r] = total;
        total += c;
    });
    let len = span.len();
    tmp.reserve(len);
    let spill = tmp.as_mut_ptr();
    let base = span.as_mut_ptr();
    // SAFETY: `spill` has capacity for `len` entries and `tmp.len()` stays
    // 0, so the copies below are moves — each value is read exactly once
    // and written exactly once back into `span` (the cursors partition
    // `0..len`), and nothing is double-dropped.
    unsafe {
        std::ptr::copy_nonoverlapping(base, spill, len);
        for (i, &r) in ranks.iter().enumerate() {
            let cursor = &mut counts[r as usize];
            base.add(*cursor as usize).write(spill.add(i).read());
            *cursor += 1;
        }
    }
    // Restore the all-zeros counter invariant, touched entries only.
    bits.drain(|r| counts[r] = 0);
}

/// One edge's in-flight fragment buffer: accumulates the `(seq, total)`
/// frames of a single logical message and reports completion. The words
/// vector is retained across messages, so steady-state reassembly
/// allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct Reassembly {
    total: u32,
    next_seq: u32,
    words: Vec<u64>,
}

impl Reassembly {
    /// Feeds one frame; returns `true` when the message is complete (the
    /// accumulated words are then readable via [`Reassembly::words`] until
    /// [`Reassembly::reset`]).
    ///
    /// # Panics
    ///
    /// Panics on a protocol violation — a frame out of sequence, a `total`
    /// that changes mid-message, or a frame after completion. The engine
    /// delivers frames in order per edge, so a violation is a runtime bug,
    /// never a valid execution.
    pub(crate) fn push(&mut self, seq: u32, total: u32, frame: &[u64]) -> bool {
        if seq == 0 {
            assert_eq!(
                self.next_seq, 0,
                "new message started before the previous one completed"
            );
            assert!(total >= 1, "a fragmented message has at least one frame");
            self.total = total;
            self.words.clear();
        }
        assert_eq!(seq, self.next_seq, "fragment out of sequence");
        assert_eq!(
            total, self.total,
            "fragment header total changed mid-message"
        );
        self.words.extend_from_slice(frame);
        self.next_seq += 1;
        self.next_seq == self.total
    }

    /// The reassembled words of a completed message.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Readies the buffer for the edge's next message, keeping capacity.
    pub(crate) fn reset(&mut self) {
        self.total = 0;
        self.next_seq = 0;
        self.words.clear();
    }

    /// Whether a message is mid-reassembly.
    pub(crate) fn in_flight(&self) -> bool {
        self.next_seq != 0 && self.next_seq < self.total
    }
}

/// One receiver's reassembly state: a per-sender ([`Reassembly`]) buffer
/// for every edge that is currently — or was ever — delivering fragmented
/// traffic to this vertex. Encode scratch lives **per routing group** (see
/// [`Mailboxes`]), not here: one arena per worker instead of one per
/// vertex, reused across every message the worker splits.
#[derive(Debug, Default)]
pub(crate) struct EdgeReassembly {
    streams: BTreeMap<VertexId, Reassembly>,
}

impl EdgeReassembly {
    /// Whether any edge has a message mid-reassembly (must be false at
    /// every round boundary: fragments of one logical round never leak
    /// into the next).
    pub(crate) fn any_in_flight(&self) -> bool {
        self.streams.values().any(Reassembly::in_flight)
    }
}

/// What one inbox's finalization observed: CONGEST frames produced, and
/// the widest logical message actually **delivered** (0 outside split
/// mode) — the width that decides the round's physical cost. Charging on
/// delivered widths keeps fault-suppressed traffic free: a dropped,
/// crashed, or lost wide message never crossed the wire, so it costs no
/// virtual rounds.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RouteTally {
    /// Frames produced by fragmenting over-budget messages.
    pub(crate) fragments: usize,
    /// Widest delivered logical message, in words.
    pub(crate) wire_width: usize,
}

impl RouteTally {
    /// Merges another range's tally into this one.
    pub(crate) fn absorb(&mut self, other: RouteTally) {
        self.fragments += other.fragments;
        self.wire_width = self.wire_width.max(other.wire_width);
    }
}

/// Ships one over-budget logical message through the wire: encode (into
/// the caller's reusable `scratch` arena), chop into ≤ `budget`-word
/// `(seq, total)` frames, feed every frame through the receiving edge's
/// buffer, decode on completion. Returns the decoded message — what the
/// program will actually observe, so a codec defect is a visible output
/// divergence, never a silent one — and the frame count.
///
/// # Panics
///
/// Panics if the codec violates its contract (encode/decode mismatch).
pub(crate) fn split_roundtrip<M: EngineMessage>(
    src: VertexId,
    m: &M,
    budget: usize,
    reasm: &mut EdgeReassembly,
    scratch: &mut Vec<u64>,
) -> (M, usize) {
    debug_assert!(budget >= 1);
    let EdgeReassembly { streams } = reasm;
    scratch.clear();
    m.encode(scratch);
    let total = scratch.len().div_ceil(budget).max(1) as u32;
    let stream = streams.entry(src).or_default();
    let mut complete = false;
    if scratch.is_empty() {
        // A zero-word encoding still crosses as one (empty) frame.
        complete = stream.push(0, 1, &[]);
    } else {
        for (seq, frame) in scratch.chunks(budget).enumerate() {
            assert!(!complete, "message released before its last frame");
            complete = stream.push(seq as u32, total, frame);
        }
    }
    assert!(complete, "last frame must complete the message");
    let decoded = M::decode(stream.words()).expect("wire codec must round-trip its own encoding");
    stream.reset();
    (decoded, total as usize)
}

/// Finalizes one freshly routed inbox — the per-inbox half of the routing
/// phase (`pool::route_range` runs it on each span of the rebuilt
/// segment):
///
/// 1. **split mode**: every over-budget message is fragmented and
///    reassembled through the receiver's per-edge buffers ([`split_roundtrip`]);
/// 2. the optional seeded adversarial reorder of same-sender runs.
///
/// The span arrives **already in delivery order**: the routing epoch's
/// rank counting pass (`sort_span_by_rank`) put it there, so finalize no
/// longer sorts anything.
///
/// Message types with a static width bound within the budget
/// ([`EngineMessage::MAX_WIDTH`]) skip the per-message width scan: no
/// message can fragment, and any delivered width ≤ budget charges exactly
/// one physical round, so reporting the bound itself is equivalent.
///
/// Returns the frames produced and the widest delivered message.
pub(crate) fn finalize_inbox<M: EngineMessage>(
    inbox: &mut [(VertexId, M)],
    reasm: &mut EdgeReassembly,
    receiver: VertexId,
    env: &RouteEnv<'_>,
    scratch: &mut Vec<u64>,
) -> RouteTally {
    let mut tally = RouteTally::default();
    if env.split != usize::MAX {
        match M::MAX_WIDTH {
            // Width-specialized fast path: statically within budget.
            Some(bound) if bound <= env.split => {
                if !inbox.is_empty() {
                    tally.wire_width = bound;
                }
            }
            _ => {
                for (src, m) in inbox.iter_mut() {
                    let width = m.width();
                    tally.wire_width = tally.wire_width.max(width);
                    if width > env.split {
                        let (decoded, frames) = split_roundtrip(*src, m, env.split, reasm, scratch);
                        *m = decoded;
                        tally.fragments += frames;
                    }
                }
                debug_assert!(
                    !reasm.any_in_flight(),
                    "fragments of one round must not leak into the next"
                );
            }
        }
    }
    if inbox.len() > 1 {
        if let Some(seed) = env.reorder {
            reorder_inbox(inbox, seed, env.round, receiver);
        }
    }
    tally
}

/// One side of the double buffer, struct-of-arrays: per-group payload
/// segments plus per-vertex spans. See the module docs.
pub(crate) struct Inboxes<M> {
    /// One contiguous payload segment per routing group: the inboxes of
    /// the group's whole dense range, packed back to back.
    segs: Vec<Vec<(VertexId, M)>>,
    /// Per dense vertex: `(start, len)` into its group's segment.
    spans: Vec<(usize, usize)>,
    /// Per group: the **active list** — absolute dense indices of exactly
    /// the non-empty spans of this buffer, ascending. Built by the routing
    /// epoch as a by-product of the counting sort, it is both the compute
    /// epoch's frontier index (step only these plus the due wake list) and
    /// the next routing of this buffer's O(frontier) span-reset list.
    active: Vec<Vec<usize>>,
}

impl<M> Inboxes<M> {
    fn new(live: usize, groups: usize) -> Self {
        Inboxes {
            segs: (0..groups).map(|_| Vec::new()).collect(),
            spans: vec![(0, 0); live],
            active: (0..groups).map(|_| Vec::new()).collect(),
        }
    }

    /// Group `g`'s read view: its segment plus the span rows of its dense
    /// `range` (span starts are relative to the segment) and its active
    /// list (absolute dense indices of the non-empty spans).
    pub(crate) fn group(&self, g: usize, range: Range<usize>) -> GroupInboxes<'_, M> {
        GroupInboxes {
            seg: &self.segs[g],
            spans: &self.spans[range.start..range.end],
            active: &self.active[g],
        }
    }
}

/// A compute-epoch read view of one group's inboxes: `inbox(i)` is the
/// `i`-th vertex of the group's dense range. Plain shared slices, so the
/// view is `Copy` and crosses the task slot as two pointers.
pub(crate) struct GroupInboxes<'a, M> {
    pub(crate) seg: &'a [(VertexId, M)],
    pub(crate) spans: &'a [(usize, usize)],
    /// Absolute dense indices of the non-empty spans, ascending — the
    /// vertices that received traffic, i.e. the message half of the round's
    /// frontier.
    pub(crate) active: &'a [usize],
}

impl<M> Clone for GroupInboxes<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for GroupInboxes<'_, M> {}

impl<'a, M> GroupInboxes<'a, M> {
    /// Vertices in this view (the group's dense range length).
    pub(crate) fn len(&self) -> usize {
        self.spans.len()
    }

    /// The inbox of the `i`-th vertex of the range.
    pub(crate) fn inbox(&self, i: usize) -> &'a [(VertexId, M)] {
        let (start, len) = self.spans[i];
        &self.seg[start..start + len]
    }
}

/// The raw-pointer bundle the routing epoch writes through — base pointers
/// of the `next` buffer's segments and spans, the counting scratch, the
/// per-group pending lists, and the reassembly buffers. Built by
/// [`Mailboxes::next_targets`]; each worker touches only its own group's
/// segment/pending slot and its own dense range of the per-vertex arrays,
/// so the epoch-barrier discipline (see `pool`) makes the writes disjoint.
pub(crate) struct RouteTargets<M> {
    /// Per-group `next` segments (`add(group)` = the group's own).
    pub(crate) segs: *mut Vec<(VertexId, M)>,
    /// Per-vertex span rows of the `next` buffer.
    pub(crate) spans: *mut (usize, usize),
    /// Per-group active lists of the `next` buffer (`add(group)` = the
    /// group's own). On entry each holds the indices of the spans the
    /// buffer's *previous* routing left non-empty — exactly the spans that
    /// need resetting; on exit, the freshly non-empty ones.
    pub(crate) active: *mut Vec<usize>,
    /// Per-vertex counting-sort scratch. All-zeros between epochs: each
    /// routing zeroes exactly the entries it touched.
    pub(crate) counts: *mut usize,
    /// Per-group due-delayed lists (`add(group)`), drained first.
    pub(crate) pending: *mut Vec<Routed<M>>,
    /// Per-vertex reassembly buffers.
    pub(crate) reasm: *mut EdgeReassembly,
    /// Per-group encode arenas (`add(group)` = the group's own), reused by
    /// every split encode the group's worker performs.
    pub(crate) scratch: *mut Vec<u64>,
    /// Per-group rank side-buffers (`add(group)`): during placement the
    /// routing epoch writes each message's sender rank at the same cursor
    /// its payload takes in the segment, so the rank counting pass reads
    /// the span's keys contiguously.
    pub(crate) rank_bufs: *mut Vec<u32>,
    /// Per-group vertex bitmaps (`add(group)`) marking the dense indices
    /// that received traffic — drained ascending to rebuild the active
    /// list without sorting it.
    pub(crate) vbits: *mut TwoLevelBits,
    /// Per-group [`sort_span_by_rank`] scratch (`add(group)`).
    pub(crate) rank_scratch: *mut RankScratch<M>,
}

impl<M> Clone for RouteTargets<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for RouteTargets<M> {}

// SAFETY: a `RouteTargets` is a bundle of raw pointers whose pointees are
// partitioned by group/vertex index under the routing epoch's barrier
// discipline — worker `g` touches only slot `g` of the per-group arrays and
// the vertex entries of its own range. The bundle itself carries no state,
// so sharing the *value* across worker threads is sound; all aliasing rules
// live with `route_range`'s safety contract.
unsafe impl<M: Send> Send for RouteTargets<M> {}
unsafe impl<M: Send> Sync for RouteTargets<M> {}

/// The engine's mailbox fabric. See module docs.
pub(crate) struct Mailboxes<M> {
    cur: Inboxes<M>,
    next: Inboxes<M>,
    /// Dense group boundaries, ascending, `len = groups + 1` — the same
    /// partition the pool's worker groups use.
    bounds: Vec<usize>,
    /// Per-vertex counting-sort scratch for the routing epoch.
    counts: Vec<usize>,
    /// Per-group delayed batches due the round being routed: filled by
    /// [`inject_due`](Mailboxes::inject_due), drained **first** by the
    /// routing epoch so late traffic precedes fresh traffic from the same
    /// sender after the stable sort.
    pending: Vec<Vec<Routed<M>>>,
    /// Per-receiver reassembly buffers (dense-indexed, like the spans).
    reasm: Vec<EdgeReassembly>,
    /// Per-group split-encode arenas: each routing worker reuses its own
    /// across every over-budget message it fragments, so steady-state
    /// split routing performs zero per-message allocation.
    scratch: Vec<Vec<u64>>,
    /// Per-group rank side-buffers for the routing epoch (see
    /// [`RouteTargets::rank_bufs`]).
    rank_bufs: Vec<Vec<u32>>,
    /// Per-group traffic-receiver bitmaps (see [`RouteTargets::vbits`]).
    vbits: Vec<TwoLevelBits>,
    /// Per-group rank counting-sort scratch.
    rank_scratch: Vec<RankScratch<M>>,
    delayed: BTreeMap<u64, Vec<Routed<M>>>,
}

impl<M: EngineMessage> Mailboxes<M> {
    /// Mailboxes for `live` vertices partitioned by `bounds` (ascending
    /// group boundaries, `len = groups + 1`, `bounds[0] = 0`, last entry
    /// `live`).
    pub(crate) fn new(live: usize, bounds: Vec<usize>) -> Self {
        debug_assert!(bounds.len() >= 2 && bounds[0] == 0 && bounds[bounds.len() - 1] == live);
        let groups = bounds.len() - 1;
        Mailboxes {
            cur: Inboxes::new(live, groups),
            next: Inboxes::new(live, groups),
            bounds,
            counts: vec![0; live],
            pending: (0..groups).map(|_| Vec::new()).collect(),
            reasm: (0..live).map(|_| EdgeReassembly::default()).collect(),
            scratch: (0..groups).map(|_| Vec::new()).collect(),
            rank_bufs: (0..groups).map(|_| Vec::new()).collect(),
            vbits: (0..groups).map(|_| TwoLevelBits::default()).collect(),
            rank_scratch: (0..groups).map(|_| RankScratch::default()).collect(),
            delayed: BTreeMap::new(),
        }
    }

    /// The buffer read this round.
    pub(crate) fn cur(&self) -> &Inboxes<M> {
        &self.cur
    }

    /// The inbox dense vertex `dv` reads this round (test/inspection
    /// convenience over [`cur`](Mailboxes::cur)).
    #[cfg(test)]
    pub(crate) fn inbox(&self, dv: usize) -> &[(VertexId, M)] {
        let g = self.group_of(dv);
        let (start, len) = self.cur.spans[dv];
        &self.cur.segs[g][start..start + len]
    }

    fn group_of(&self, dv: usize) -> usize {
        self.bounds.partition_point(|&b| b <= dv) - 1
    }

    /// The raw-pointer bundle the routing epoch rebuilds `next` through.
    /// The caller must not touch this `Mailboxes` until the epoch closes.
    pub(crate) fn next_targets(&mut self) -> RouteTargets<M> {
        RouteTargets {
            segs: self.next.segs.as_mut_ptr(),
            spans: self.next.spans.as_mut_ptr(),
            active: self.next.active.as_mut_ptr(),
            counts: self.counts.as_mut_ptr(),
            pending: self.pending.as_mut_ptr(),
            reasm: self.reasm.as_mut_ptr(),
            scratch: self.scratch.as_mut_ptr(),
            rank_bufs: self.rank_bufs.as_mut_ptr(),
            vbits: self.vbits.as_mut_ptr(),
            rank_scratch: self.rank_scratch.as_mut_ptr(),
        }
    }

    /// Moves any batch whose delay expires at `round` into the per-group
    /// pending lists — must happen *before* fresh traffic is routed so
    /// late traffic precedes fresh traffic from the same sender after the
    /// stable sort.
    pub(crate) fn inject_due(&mut self, round: u64) {
        if let Some(batch) = self.delayed.remove(&round) {
            for (dst, src, rank, m) in batch {
                let g = self.group_of(dst);
                self.pending[g].push((dst, src, rank, m));
            }
        }
    }

    /// Schedules a fault-delayed batch for delivery at `round`.
    pub(crate) fn schedule(&mut self, round: u64, batch: Vec<Routed<M>>) {
        self.delayed.entry(round).or_default().extend(batch);
    }

    /// Ends the routing of a round: flips the buffers. The routing epoch
    /// rebuilt every span and segment of `next`, so no clearing is needed
    /// — the old `cur` becomes the next round's scratch.
    pub(crate) fn flip(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Whether any delayed batch is still pending (scheduled or already
    /// injected for the round being routed).
    pub(crate) fn has_pending_delays(&self) -> bool {
        !self.delayed.is_empty() || self.pending.iter().any(|p| !p.is_empty())
    }

    /// Serial twin of the worker-parallel routing epoch, for unit tests:
    /// distributes `staged` traffic (plus due-delayed pending batches)
    /// into the `next` segments group by group and finalizes every inbox.
    /// Deliberately the **comparison-sort executable spec** — a stable
    /// sort by destination, placement, then a stable per-inbox sort by
    /// original sender — that the production rank counting path must
    /// reproduce verbatim.
    #[cfg(test)]
    pub(crate) fn route_serial(
        &mut self,
        staged: Vec<Routed<M>>,
        env: &RouteEnv<'_>,
    ) -> RouteTally {
        let groups = self.bounds.len() - 1;
        let mut buckets: Vec<Vec<Routed<M>>> = (0..groups).map(|_| Vec::new()).collect();
        for r in staged {
            let g = self.group_of(r.0);
            buckets[g].push(r);
        }
        let mut tally = RouteTally::default();
        let Mailboxes {
            next,
            bounds,
            pending,
            reasm,
            scratch,
            ..
        } = self;
        let Inboxes {
            segs,
            spans,
            active,
        } = next;
        for (g, mut fresh) in buckets.into_iter().enumerate() {
            let mut items: Vec<Routed<M>> = std::mem::take(&mut pending[g]);
            items.append(&mut fresh);
            // A stable sort by destination is the counting sort's twin:
            // per receiver, pending-then-staged order is preserved.
            items.sort_by_key(|r| r.0);
            let seg = &mut segs[g];
            seg.clear();
            active[g].clear();
            let mut iter = items.into_iter().peekable();
            for dv in bounds[g]..bounds[g + 1] {
                let start = seg.len();
                while iter.peek().is_some_and(|r| r.0 == dv) {
                    let (_, src, _rank, m) = iter.next().expect("peeked");
                    seg.push((src, m));
                }
                spans[dv] = (start, seg.len() - start);
                if spans[dv].1 > 0 {
                    active[g].push(dv);
                }
                // The spec's delivery order: a stable comparison sort on
                // original sender ids (placement already put pending-
                // before-fresh within each sender).
                seg[start..].sort_by_key(|&(src, _)| src);
                tally.absorb(finalize_inbox(
                    &mut seg[start..],
                    &mut reasm[dv],
                    env.live[dv],
                    env,
                    &mut scratch[g],
                ));
            }
        }
        tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static LIVE: [usize; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

    fn plain_env<'a>() -> RouteEnv<'a> {
        RouteEnv {
            split: usize::MAX,
            round: 1,
            reorder: None,
            live: &LIVE,
        }
    }

    #[test]
    fn messages_visible_only_after_flip() {
        let mut mail: Mailboxes<u64> = Mailboxes::new(3, vec![0, 3]);
        mail.route_serial(vec![(2, 0, 0, 7)], &plain_env());
        assert!(mail.inbox(2).is_empty(), "sent this round, not visible yet");
        mail.flip();
        assert_eq!(mail.inbox(2), &[(0, 7)]);
        mail.route_serial(Vec::new(), &plain_env());
        mail.flip();
        assert!(mail.inbox(2).is_empty(), "consumed after next flip");
    }

    #[test]
    fn inboxes_sorted_by_sender_stably() {
        let mut mail: Mailboxes<u64> = Mailboxes::new(4, vec![0, 4]);
        // Sender 2 then sender 0, sender 2 again: sorted to 0, 2, 2 with
        // sender 2's messages in send order.
        mail.route_serial(
            vec![(3, 2, 2, 10), (3, 0, 0, 20), (3, 2, 2, 11)],
            &plain_env(),
        );
        mail.flip();
        assert_eq!(mail.inbox(3), &[(0, 20), (2, 10), (2, 11)]);
    }

    #[test]
    fn segments_pack_a_group_contiguously() {
        // Two groups split at dense 2: group 0's segment holds the inboxes
        // of vertices 0 and 1 back to back; group 1's those of 2 and 3.
        let mut mail: Mailboxes<u64> = Mailboxes::new(4, vec![0, 2, 4]);
        mail.route_serial(
            vec![(1, 3, 3, 30), (0, 2, 2, 20), (1, 0, 0, 10), (3, 1, 1, 40)],
            &plain_env(),
        );
        mail.flip();
        assert_eq!(mail.inbox(0), &[(2, 20)]);
        assert_eq!(mail.inbox(1), &[(0, 10), (3, 30)]);
        assert_eq!(mail.inbox(2), &[]);
        assert_eq!(mail.inbox(3), &[(1, 40)]);
        assert_eq!(mail.cur.segs[0], vec![(2, 20), (0, 10), (3, 30)]);
        assert_eq!(mail.cur.segs[1], vec![(1, 40)]);
        assert_eq!(
            mail.cur.spans,
            vec![(0, 1), (1, 2), (0, 0), (0, 1)],
            "span starts are relative to the group's segment"
        );
        assert_eq!(
            mail.cur.active,
            vec![vec![0, 1], vec![3]],
            "active lists index exactly the non-empty spans"
        );
    }

    #[test]
    fn delayed_batches_arrive_on_time_and_first() {
        let mut mail: Mailboxes<u64> = Mailboxes::new(2, vec![0, 2]);
        mail.schedule(3, vec![(1, 0, 0, 99)]);
        // Rounds 1 and 2: nothing due.
        for round in 1..3u64 {
            mail.inject_due(round);
            mail.route_serial(Vec::new(), &plain_env());
            mail.flip();
            assert!(mail.inbox(1).is_empty(), "round {round}");
        }
        assert!(mail.has_pending_delays());
        // Round 3: due batch plus fresh traffic from the same sender — the
        // delayed message comes first.
        mail.inject_due(3);
        mail.route_serial(vec![(1, 0, 0, 100)], &plain_env());
        mail.flip();
        assert_eq!(mail.inbox(1), &[(0, 99), (0, 100)]);
        assert!(!mail.has_pending_delays());
    }

    #[test]
    fn reassembly_releases_only_on_completion() {
        let mut r = Reassembly::default();
        assert!(!r.push(0, 3, &[1, 2]));
        assert!(r.in_flight());
        assert!(!r.push(1, 3, &[3, 4]));
        assert!(r.push(2, 3, &[5]));
        assert!(!r.in_flight());
        assert_eq!(r.words(), &[1, 2, 3, 4, 5]);
        r.reset();
        assert!(r.push(0, 1, &[9]), "single-frame messages complete at once");
        assert_eq!(r.words(), &[9]);
    }

    #[test]
    #[should_panic(expected = "out of sequence")]
    fn reassembly_rejects_gaps() {
        let mut r = Reassembly::default();
        r.push(0, 3, &[1]);
        r.push(2, 3, &[3]);
    }

    #[test]
    #[should_panic(expected = "before the previous one completed")]
    fn reassembly_rejects_interleaved_messages() {
        let mut r = Reassembly::default();
        r.push(0, 3, &[1]);
        r.push(0, 2, &[7]);
    }

    #[test]
    fn split_roundtrip_counts_frames_and_round_trips() {
        // u32 is not an EngineMessage; use u64's codec via the blanket
        // impls in lib.rs on a wide Vec-like payload: the gather message.
        use crate::programs::gather::NbrList;
        let mut reasm = EdgeReassembly::default();
        let mut scratch = Vec::new();
        let msg = NbrList(vec![3, 5, 8, 13, 21]);
        let (decoded, frames) = split_roundtrip(7, &msg, 2, &mut reasm, &mut scratch);
        assert_eq!(decoded.0, msg.0);
        assert_eq!(frames, 3, "5 words at 2 per frame");
        // The edge buffer and encode arena are reusable for the next message.
        let (decoded, frames) = split_roundtrip(7, &NbrList(vec![1]), 2, &mut reasm, &mut scratch);
        assert_eq!(decoded.0, vec![1]);
        assert_eq!(frames, 1);
        assert!(!reasm.any_in_flight());
        assert!(scratch.capacity() >= 5, "arena capacity is retained");
    }

    #[test]
    fn finalize_inbox_splits_and_counts_without_reordering() {
        use crate::programs::gather::NbrList;
        let mut reasm = EdgeReassembly::default();
        let env = RouteEnv {
            split: 2,
            round: 1,
            reorder: None,
            live: &[],
        };
        let mut inbox = vec![
            (4usize, NbrList(vec![1, 2, 3, 4, 5])), // 3 frames at width 2
            (1, NbrList(vec![9])),                  // within budget: whole
        ];
        let tally = finalize_inbox(&mut inbox, &mut reasm, 0, &env, &mut Vec::new());
        assert_eq!(tally.fragments, 3);
        assert_eq!(tally.wire_width, 5, "delivered width drives the charge");
        // Delivery order is the routing epoch's job now: finalize must
        // leave the placed order untouched.
        assert_eq!(inbox[0].0, 4);
        assert_eq!(inbox[0].1 .0, vec![1, 2, 3, 4, 5]);
        assert_eq!(inbox[1].1 .0, vec![9]);
    }

    #[test]
    fn static_width_bound_skips_the_scan_identically() {
        // u64 carries MAX_WIDTH = Some(1): under any budget ≥ 1 the fast
        // path reports width 1 for non-empty inboxes and 0 for empty ones —
        // exactly what the scan would have found.
        let mut reasm = EdgeReassembly::default();
        let env = RouteEnv {
            split: 4,
            round: 1,
            reorder: None,
            live: &[],
        };
        let mut inbox: Vec<(VertexId, u64)> = vec![(2, 5), (0, 9)];
        let tally = finalize_inbox(&mut inbox, &mut reasm, 0, &env, &mut Vec::new());
        assert_eq!(tally.wire_width, 1);
        assert_eq!(tally.fragments, 0);
        assert_eq!(inbox, vec![(2, 5), (0, 9)], "placed order is preserved");
        let mut empty: Vec<(VertexId, u64)> = Vec::new();
        let tally = finalize_inbox(&mut empty, &mut reasm, 0, &env, &mut Vec::new());
        assert_eq!(tally.wire_width, 0, "empty inbox charges nothing");
    }

    #[test]
    fn two_level_bits_enumerates_ascending_and_drains_clean() {
        let mut bits = TwoLevelBits::default();
        assert!(!bits.any());
        bits.ensure(10_000);
        for i in [9_999usize, 0, 4_096, 63, 64, 4_095, 9_999] {
            bits.set(i);
        }
        let mut seen = Vec::new();
        bits.for_each(|i| seen.push(i));
        assert_eq!(seen, vec![0, 63, 64, 4_095, 4_096, 9_999]);
        let mut drained = Vec::new();
        bits.drain(|i| drained.push(i));
        assert_eq!(drained, seen, "drain visits the same ascending set");
        assert!(!bits.any());
        bits.for_each(|_| panic!("cleared bitmap must be empty"));
        // Reusable after draining.
        bits.set(7);
        let mut again = Vec::new();
        bits.drain(|i| again.push(i));
        assert_eq!(again, vec![7]);
    }

    #[test]
    fn rank_sort_matches_the_stable_comparison_sort() {
        let mut scratch = RankScratch::default();
        // Deterministic pseudo-random spans, checked against the spec.
        let mut state = 0x9e37_79b9u64;
        for len in [0usize, 1, 2, 3, 7, 64, 257] {
            let mut span: Vec<(VertexId, u32)> = Vec::new();
            let mut ranks: Vec<u32> = Vec::new();
            for i in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = (state >> 33) as u32 % 17;
                // Payload i makes every entry unique, so stability is
                // observable: equal ranks must keep their span order.
                span.push((r as usize, i as u32));
                ranks.push(r);
            }
            let mut expect = span.clone();
            expect.sort_by_key(|&(src, _)| src);
            sort_span_by_rank(&mut span, &ranks, &mut scratch);
            assert_eq!(span, expect, "len {len}");
            assert!(scratch.tmp.is_empty(), "spill buffer must stay length 0");
        }
    }

    #[test]
    fn rank_sort_fast_path_skips_sorted_spans() {
        let mut scratch = RankScratch::default();
        let mut span: Vec<(VertexId, u32)> = vec![(3, 0), (3, 1), (5, 2), (9, 3)];
        let ranks = vec![0u32, 0, 1, 4];
        sort_span_by_rank(&mut span, &ranks, &mut scratch);
        assert_eq!(span, vec![(3, 0), (3, 1), (5, 2), (9, 3)]);
        assert_eq!(
            scratch.counts.len(),
            0,
            "already-sorted spans never touch the counters"
        );
    }
}
