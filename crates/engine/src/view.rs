//! `GraphView` — the engine's active-set abstraction: a graph plus an
//! optional vertex mask, compacted for dense per-vertex indexing.
//!
//! The sequential primitives in `local-model` all take `Option<&VertexSet>`;
//! this type is the engine-side twin. A view over a masked graph exposes the
//! **live** vertices (the mask members) as a dense range `0..live_count()`,
//! so sessions allocate programs, contexts, and mailboxes only for live
//! vertices — masked-out nodes never get a program, a mailbox, an RNG
//! stream, or a ledger charge. Everything observable stays keyed on the
//! *original* [`VertexId`]: contexts report original ids, neighbor lists
//! hold original ids, inboxes are sorted by original sender id, and RNG
//! streams derive from `(seed, original id)` — which is what makes a masked
//! engine run bit-identical to the sequential masked primitives at any
//! shard count.
//!
//! Neighbor lists are filtered to live vertices: an edge with a masked-out
//! endpoint does not exist for the session, so a broadcast never reaches a
//! dead vertex and a unicast to one is a LOCAL-model violation (panics like
//! any other non-neighbor send).

use graphs::{Graph, VertexId, VertexSet};

/// A graph restricted to an optional vertex mask, with a dense live-vertex
/// index. See the module docs.
pub struct GraphView<'g> {
    graph: &'g Graph,
    mask: Option<VertexSet>,
    /// Dense index → original id, ascending.
    live: Vec<VertexId>,
    /// Original id → dense index (`usize::MAX` for masked-out vertices).
    dense: Vec<usize>,
    /// Masked case only: a compacted CSR over the live vertices — row
    /// `dv`'s filtered neighbors (original ids, sorted) live at
    /// `packed[offsets[dv]..offsets[dv + 1]]`. Both vecs stay empty for
    /// whole-graph views, which borrow the graph's own CSR. The flat
    /// buffers are never mutated after construction, so their heap
    /// addresses are stable and the session can hand out `&'g`-extended
    /// borrows into `packed` (see `driver.rs`).
    offsets: Vec<usize>,
    packed: Vec<VertexId>,
}

impl<'g> GraphView<'g> {
    /// A view of the whole graph: every vertex live, adjacency borrowed.
    pub fn whole(graph: &'g Graph) -> Self {
        let n = graph.n();
        GraphView {
            graph,
            mask: None,
            live: (0..n).collect(),
            dense: (0..n).collect(),
            offsets: Vec::new(),
            packed: Vec::new(),
        }
    }

    /// A view of `graph` restricted to `mask`.
    ///
    /// # Panics
    ///
    /// Panics if the mask's universe differs from the graph's vertex count.
    pub fn masked(graph: &'g Graph, mask: &VertexSet) -> Self {
        assert_eq!(
            mask.universe(),
            graph.n(),
            "mask universe must match the graph"
        );
        let n = graph.n();
        let live: Vec<VertexId> = mask.iter().collect();
        let mut dense = vec![usize::MAX; n];
        for (dv, &v) in live.iter().enumerate() {
            dense[v] = dv;
        }
        // Compact the live rows of the graph's CSR into one flat pair of
        // arrays: a single pass over the masked adjacency, no per-vertex
        // allocations, and the same cache-friendly layout `Graph` itself
        // uses.
        let mut offsets = Vec::with_capacity(live.len() + 1);
        offsets.push(0);
        let mut packed = Vec::new();
        for &v in &live {
            packed.extend(
                graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| mask.contains(w)),
            );
            offsets.push(packed.len());
        }
        GraphView {
            graph,
            mask: Some(mask.clone()),
            live,
            dense,
            offsets,
            packed,
        }
    }

    /// Builds a view from an optional mask (the `Option<&VertexSet>`
    /// convention of the sequential primitives).
    pub fn new(graph: &'g Graph, mask: Option<&VertexSet>) -> Self {
        match mask {
            None => GraphView::whole(graph),
            Some(m) => GraphView::masked(graph, m),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The mask, if this view is restricted.
    pub fn mask(&self) -> Option<&VertexSet> {
        self.mask.as_ref()
    }

    /// Whether this view restricts the graph.
    pub fn is_masked(&self) -> bool {
        self.mask.is_some()
    }

    /// Original vertex count of the underlying graph.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of live vertices.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Dense index → original id table (ascending).
    pub fn live(&self) -> &[VertexId] {
        &self.live
    }

    /// The original id of dense index `dv`.
    pub fn original(&self, dv: usize) -> VertexId {
        self.live[dv]
    }

    /// The dense index of original vertex `v`, if live.
    pub fn dense_of(&self, v: VertexId) -> Option<usize> {
        let dv = self.dense[v];
        (dv != usize::MAX).then_some(dv)
    }

    /// Original id → dense index table (`usize::MAX` outside the mask).
    pub(crate) fn dense_table(&self) -> &[usize] {
        &self.dense
    }

    /// Whether original vertex `v` is live.
    pub fn contains(&self, v: VertexId) -> bool {
        self.dense[v] != usize::MAX
    }

    /// Live neighbors (original ids, sorted ascending) of dense index `dv`.
    /// Whole views answer straight from the graph's CSR; masked views from
    /// the compacted live-vertex CSR.
    pub fn neighbors(&self, dv: usize) -> &[VertexId] {
        if self.offsets.is_empty() {
            self.graph.neighbors(self.live[dv])
        } else {
            &self.packed[self.offsets[dv]..self.offsets[dv + 1]]
        }
    }

    /// Scatters dense-indexed values back to an original-indexed vector,
    /// filling masked-out positions with `fill`. The adapter idiom for
    /// returning per-vertex outputs with the sequential shape.
    pub fn scatter<T: Clone>(&self, fill: T, values: impl IntoIterator<Item = T>) -> Vec<T> {
        let mut out = vec![fill; self.n()];
        let mut count = 0;
        for (dv, value) in values.into_iter().enumerate() {
            out[self.live[dv]] = value;
            count += 1;
        }
        assert_eq!(count, self.live_count(), "one value per live vertex");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn whole_view_is_identity() {
        let g = gen::cycle(6);
        let view = GraphView::whole(&g);
        assert_eq!(view.live_count(), 6);
        assert!(!view.is_masked());
        for v in 0..6 {
            assert_eq!(view.original(v), v);
            assert_eq!(view.dense_of(v), Some(v));
            assert_eq!(view.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn masked_view_compacts_and_filters() {
        // Cycle 0-1-2-3-4-5, mask {0, 2, 3, 5}: edges (2,3) and (5,0) live.
        let g = gen::cycle(6);
        let mask = VertexSet::from_iter_with_universe(6, [0, 2, 3, 5]);
        let view = GraphView::masked(&g, &mask);
        assert_eq!(view.live(), &[0, 2, 3, 5]);
        assert_eq!(view.dense_of(2), Some(1));
        assert_eq!(view.dense_of(1), None);
        assert!(view.contains(5));
        assert!(!view.contains(4));
        assert_eq!(view.neighbors(0), &[5], "0's live neighbor is only 5");
        assert_eq!(view.neighbors(1), &[3], "2's live neighbor is only 3");
        assert_eq!(view.neighbors(2), &[2], "3's live neighbor is only 2");
    }

    #[test]
    fn scatter_restores_original_indexing() {
        let g = gen::path(5);
        let mask = VertexSet::from_iter_with_universe(5, [1, 3]);
        let view = GraphView::masked(&g, &mask);
        let out = view.scatter(usize::MAX, [10, 30]);
        assert_eq!(out, vec![usize::MAX, 10, usize::MAX, 30, usize::MAX]);
    }

    #[test]
    fn empty_mask_yields_no_live_vertices() {
        let g = gen::path(4);
        let mask = VertexSet::new(4);
        let view = GraphView::masked(&g, &mask);
        assert_eq!(view.live_count(), 0);
        assert_eq!(view.scatter(0usize, []), vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn mismatched_mask_universe_panics() {
        let g = gen::path(4);
        let mask = VertexSet::new(5);
        GraphView::masked(&g, &mask);
    }
}
