//! `GraphView` — the engine's active-set abstraction: a graph plus an
//! optional vertex mask, compacted for dense per-vertex indexing.
//!
//! The sequential primitives in `local-model` all take `Option<&VertexSet>`;
//! this type is the engine-side twin. A view over a masked graph exposes the
//! **live** vertices (the mask members) as a dense range `0..live_count()`,
//! so sessions allocate programs, contexts, and mailboxes only for live
//! vertices — masked-out nodes never get a program, a mailbox, an RNG
//! stream, or a ledger charge. Everything observable stays keyed on the
//! *original* [`VertexId`]: contexts report original ids, neighbor lists
//! hold original ids, inboxes are sorted by original sender id, and RNG
//! streams derive from `(seed, original id)` — which is what makes a masked
//! engine run bit-identical to the sequential masked primitives at any
//! shard count.
//!
//! Neighbor lists are filtered to live vertices: an edge with a masked-out
//! endpoint does not exist for the session, so a broadcast never reaches a
//! dead vertex and a unicast to one is a LOCAL-model violation (panics like
//! any other non-neighbor send).
//!
//! # Vertex ordering
//!
//! The dense index is additionally an internal **placement knob**: with
//! [`VertexOrder::Locality`] the live vertices are relabeled by a seeded
//! deterministic RCM-style order ([`graphs::locality_order`]) so that
//! graph-adjacent vertices share cache lines and shard spans become
//! neighborhoods instead of arbitrary id ranges. The permutation follows
//! the exact playbook mask compaction proved: every observable — context
//! ids, neighbor lists, inbox sender order, `(seed, original id)` RNG
//! streams, fault keys, [`scatter`](GraphView::scatter) output — stays
//! keyed on *original* ids, so a relabeled run is bit-identical to an
//! identity-order run at every shard count. Code that must walk vertices
//! in ascending original order (program factories, host hooks) uses
//! [`ascending`](GraphView::ascending) instead of the dense range.

use graphs::{Graph, VertexId, VertexSet};

/// How a session maps live vertices onto the dense index — a pure
/// performance knob: results are bit-identical for every variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VertexOrder {
    /// Dense index ascends in original vertex id (the historical layout).
    #[default]
    Identity,
    /// Seeded deterministic RCM-style relabeling: BFS layers packed
    /// contiguously, low-degree periphery first, reversed — adjacent
    /// vertices land at nearby dense indices, so worker shards walk
    /// cache-contiguous neighborhoods.
    Locality,
}

/// A graph restricted to an optional vertex mask, with a dense live-vertex
/// index. See the module docs.
pub struct GraphView<'g> {
    graph: &'g Graph,
    mask: Option<VertexSet>,
    /// How the dense index orders the live vertices.
    order: VertexOrder,
    /// Dense index → original id (ascending under
    /// [`VertexOrder::Identity`]; permuted under
    /// [`VertexOrder::Locality`]).
    live: Vec<VertexId>,
    /// Original id → dense index (`usize::MAX` for masked-out vertices).
    dense: Vec<usize>,
    /// Masked or relabeled case: a compacted CSR over the live vertices —
    /// row `dv`'s filtered neighbors (original ids, sorted) live at
    /// `packed[offsets[dv]..offsets[dv + 1]]`. Both vecs stay empty for
    /// identity whole-graph views, which borrow the graph's own CSR. The
    /// flat buffers are never mutated after construction, so their heap
    /// addresses are stable and the session can hand out `&'g`-extended
    /// borrows into `packed` (see `driver.rs`).
    offsets: Vec<usize>,
    packed: Vec<VertexId>,
    /// Locality case only: dense indices in ascending **original**-id
    /// order (`asc[k]` = dense index of the k-th smallest live original
    /// id). Empty when the dense order itself ascends.
    asc: Vec<usize>,
}

impl<'g> GraphView<'g> {
    /// A view of the whole graph: every vertex live, adjacency borrowed.
    pub fn whole(graph: &'g Graph) -> Self {
        let n = graph.n();
        GraphView {
            graph,
            mask: None,
            order: VertexOrder::Identity,
            live: (0..n).collect(),
            dense: (0..n).collect(),
            offsets: Vec::new(),
            packed: Vec::new(),
            asc: Vec::new(),
        }
    }

    /// A view of `graph` restricted to `mask`.
    ///
    /// # Panics
    ///
    /// Panics if the mask's universe differs from the graph's vertex count.
    pub fn masked(graph: &'g Graph, mask: &VertexSet) -> Self {
        assert_eq!(
            mask.universe(),
            graph.n(),
            "mask universe must match the graph"
        );
        let n = graph.n();
        let live: Vec<VertexId> = mask.iter().collect();
        let mut dense = vec![usize::MAX; n];
        for (dv, &v) in live.iter().enumerate() {
            dense[v] = dv;
        }
        // Compact the live rows of the graph's CSR into one flat pair of
        // arrays: a single pass over the masked adjacency, no per-vertex
        // allocations, and the same cache-friendly layout `Graph` itself
        // uses.
        let mut offsets = Vec::with_capacity(live.len() + 1);
        offsets.push(0);
        let mut packed = Vec::new();
        for &v in &live {
            packed.extend(
                graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| mask.contains(w)),
            );
            offsets.push(packed.len());
        }
        GraphView {
            graph,
            mask: Some(mask.clone()),
            order: VertexOrder::Identity,
            live,
            dense,
            offsets,
            packed,
            asc: Vec::new(),
        }
    }

    /// Builds a view from an optional mask (the `Option<&VertexSet>`
    /// convention of the sequential primitives).
    pub fn new(graph: &'g Graph, mask: Option<&VertexSet>) -> Self {
        match mask {
            None => GraphView::whole(graph),
            Some(m) => GraphView::masked(graph, m),
        }
    }

    /// Builds a view with an explicit [`VertexOrder`]:
    /// [`VertexOrder::Locality`] relabels the live vertices by the seeded
    /// RCM-style order (see the module docs), materializing a permuted
    /// compacted CSR; [`VertexOrder::Identity`] is exactly
    /// [`new`](GraphView::new).
    pub fn with_order(
        graph: &'g Graph,
        mask: Option<&VertexSet>,
        order: VertexOrder,
        seed: u64,
    ) -> Self {
        let mut view = GraphView::new(graph, mask);
        if order == VertexOrder::Locality && view.live_count() > 1 {
            view.relabel(seed);
        }
        view
    }

    /// Relabels the live vertices in place by the seeded locality order,
    /// rebuilding the dense tables and materializing the permuted CSR
    /// (row order follows the new dense index; row *contents* stay
    /// original ids, ascending — the neighbor-list contract is untouched).
    fn relabel(&mut self, seed: u64) {
        let n = self.live.len();
        // The permutation runs over the current (identity-compacted) dense
        // index: `perm[pos]` = the old dense index placed at `pos`.
        let perm = graphs::locality_order(n, seed, |dv, buf| {
            buf.extend(self.neighbors(dv).iter().map(|&w| self.dense[w]));
        });
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut packed = Vec::with_capacity(if self.offsets.is_empty() {
            (0..n).map(|dv| self.neighbors(dv).len()).sum()
        } else {
            self.packed.len()
        });
        for &od in &perm {
            packed.extend_from_slice(self.neighbors(od));
            offsets.push(packed.len());
        }
        let live: Vec<VertexId> = perm.iter().map(|&od| self.live[od]).collect();
        for (pos, &v) in live.iter().enumerate() {
            self.dense[v] = pos;
        }
        // `asc[k]`: where the k-th smallest original id (= old dense k)
        // landed — the inverse permutation.
        let mut asc = vec![0usize; n];
        for (pos, &od) in perm.iter().enumerate() {
            asc[od] = pos;
        }
        self.order = VertexOrder::Locality;
        self.live = live;
        self.offsets = offsets;
        self.packed = packed;
        self.asc = asc;
    }

    /// The dense-index ordering this view was built with.
    pub fn order(&self) -> VertexOrder {
        self.order
    }

    /// Dense indices in ascending **original**-id order — the iteration
    /// order for anything whose contract is "ascending original id"
    /// (program factories, [`for_each_program`]
    /// hooks). The identity of `0..live_count()` unless the view is
    /// relabeled.
    ///
    /// [`for_each_program`]: crate::EngineSession::for_each_program
    pub fn ascending(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.live.len()).map(move |k| if self.asc.is_empty() { k } else { self.asc[k] })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The mask, if this view is restricted.
    pub fn mask(&self) -> Option<&VertexSet> {
        self.mask.as_ref()
    }

    /// Whether this view restricts the graph.
    pub fn is_masked(&self) -> bool {
        self.mask.is_some()
    }

    /// Original vertex count of the underlying graph.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of live vertices.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Dense index → original id table (ascending under
    /// [`VertexOrder::Identity`]; permuted under
    /// [`VertexOrder::Locality`] — use [`ascending`](GraphView::ascending)
    /// when original-id order matters).
    pub fn live(&self) -> &[VertexId] {
        &self.live
    }

    /// The original id of dense index `dv`.
    pub fn original(&self, dv: usize) -> VertexId {
        self.live[dv]
    }

    /// The dense index of original vertex `v`, if live.
    pub fn dense_of(&self, v: VertexId) -> Option<usize> {
        let dv = self.dense[v];
        (dv != usize::MAX).then_some(dv)
    }

    /// Original id → dense index table (`usize::MAX` outside the mask).
    pub(crate) fn dense_table(&self) -> &[usize] {
        &self.dense
    }

    /// Whether original vertex `v` is live.
    pub fn contains(&self, v: VertexId) -> bool {
        self.dense[v] != usize::MAX
    }

    /// Live neighbors (original ids, sorted ascending) of dense index `dv`.
    /// Whole views answer straight from the graph's CSR; masked views from
    /// the compacted live-vertex CSR.
    pub fn neighbors(&self, dv: usize) -> &[VertexId] {
        if self.offsets.is_empty() {
            self.graph.neighbors(self.live[dv])
        } else {
            &self.packed[self.offsets[dv]..self.offsets[dv + 1]]
        }
    }

    /// Scatters dense-indexed values back to an original-indexed vector,
    /// filling masked-out positions with `fill`. The adapter idiom for
    /// returning per-vertex outputs with the sequential shape.
    pub fn scatter<T: Clone>(&self, fill: T, values: impl IntoIterator<Item = T>) -> Vec<T> {
        let mut out = vec![fill; self.n()];
        let mut count = 0;
        for (dv, value) in values.into_iter().enumerate() {
            out[self.live[dv]] = value;
            count += 1;
        }
        assert_eq!(count, self.live_count(), "one value per live vertex");
        out
    }
}

/// Per-directed-edge **sender ranks**: for every live edge `u → v`, the
/// position of `u` in `v`'s (ascending-original, live-filtered) neighbor
/// list. Precomputed once per session in O(m), the table lets the staging
/// path attach each message's final inbox position key in O(1), which is
/// what makes the routing epoch's two-pass counting sort reproduce the
/// stable sort-by-original-sender delivery order with **no comparison
/// sorts** (see `mailbox`). Rank order ≡ original-sender order per
/// receiver because neighbor lists ascend in original id.
///
/// Storage is CSR-aligned with the view's adjacency — one `u32` per
/// directed edge plus one per vertex — so the per-program memory cost is
/// `4·(adjacency entries + live vertices + 1)` bytes.
pub(crate) struct SenderRanks {
    /// Per dense sender: start of its rank row (prefix degrees).
    offsets: Vec<u32>,
    /// `ranks[offsets[sv] + i]`: sender `sv`'s rank at its `i`-th
    /// neighbor's inbox.
    ranks: Vec<u32>,
}

impl SenderRanks {
    /// Builds the table for `view` in one O(m) pass: senders are visited
    /// in ascending **original** order, so each receiver's counter hands
    /// out ranks 0, 1, … exactly in its neighbor-list order.
    pub(crate) fn build(view: &GraphView<'_>) -> Self {
        let live = view.live_count();
        let mut offsets = Vec::with_capacity(live + 1);
        offsets.push(0u32);
        let mut total = 0usize;
        for dv in 0..live {
            total += view.neighbors(dv).len();
            assert!(
                u32::try_from(total).is_ok(),
                "adjacency too large for the u32 rank table"
            );
            offsets.push(total as u32);
        }
        let mut ranks = vec![0u32; total];
        let mut counter = vec![0u32; live];
        for sv in view.ascending() {
            let base = offsets[sv] as usize;
            for (i, &dst) in view.neighbors(sv).iter().enumerate() {
                let c = &mut counter[view.dense[dst]];
                ranks[base + i] = *c;
                *c += 1;
            }
        }
        SenderRanks { offsets, ranks }
    }

    /// The rank of dense sender `sv`'s message to its `i`-th live
    /// neighbor: the sender's ascending-original position among that
    /// receiver's neighbors.
    #[inline]
    pub(crate) fn rank(&self, sv: usize, i: usize) -> u32 {
        self.ranks[self.offsets[sv] as usize + i]
    }

    /// A test-only table where every rank is the sender's dense index
    /// (valid for identity layouts: monotone in original id per receiver),
    /// sized so any sender may address up to `n` neighbors.
    #[cfg(test)]
    pub(crate) fn by_src(n: usize) -> Self {
        SenderRanks {
            offsets: (0..=n).map(|v| (v * n) as u32).collect(),
            ranks: (0..n)
                .flat_map(|v| std::iter::repeat_n(v as u32, n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn whole_view_is_identity() {
        let g = gen::cycle(6);
        let view = GraphView::whole(&g);
        assert_eq!(view.live_count(), 6);
        assert!(!view.is_masked());
        for v in 0..6 {
            assert_eq!(view.original(v), v);
            assert_eq!(view.dense_of(v), Some(v));
            assert_eq!(view.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn masked_view_compacts_and_filters() {
        // Cycle 0-1-2-3-4-5, mask {0, 2, 3, 5}: edges (2,3) and (5,0) live.
        let g = gen::cycle(6);
        let mask = VertexSet::from_iter_with_universe(6, [0, 2, 3, 5]);
        let view = GraphView::masked(&g, &mask);
        assert_eq!(view.live(), &[0, 2, 3, 5]);
        assert_eq!(view.dense_of(2), Some(1));
        assert_eq!(view.dense_of(1), None);
        assert!(view.contains(5));
        assert!(!view.contains(4));
        assert_eq!(view.neighbors(0), &[5], "0's live neighbor is only 5");
        assert_eq!(view.neighbors(1), &[3], "2's live neighbor is only 3");
        assert_eq!(view.neighbors(2), &[2], "3's live neighbor is only 2");
    }

    #[test]
    fn scatter_restores_original_indexing() {
        let g = gen::path(5);
        let mask = VertexSet::from_iter_with_universe(5, [1, 3]);
        let view = GraphView::masked(&g, &mask);
        let out = view.scatter(usize::MAX, [10, 30]);
        assert_eq!(out, vec![usize::MAX, 10, usize::MAX, 30, usize::MAX]);
    }

    #[test]
    fn empty_mask_yields_no_live_vertices() {
        let g = gen::path(4);
        let mask = VertexSet::new(4);
        let view = GraphView::masked(&g, &mask);
        assert_eq!(view.live_count(), 0);
        assert_eq!(view.scatter(0usize, []), vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn mismatched_mask_universe_panics() {
        let g = gen::path(4);
        let mask = VertexSet::new(5);
        GraphView::masked(&g, &mask);
    }

    #[test]
    fn locality_view_permutes_but_keeps_observables_original() {
        let g = gen::random_tree(60, 5);
        let view = GraphView::with_order(&g, None, VertexOrder::Locality, 7);
        assert_eq!(view.order(), VertexOrder::Locality);
        assert_eq!(view.live_count(), 60);
        // live is a permutation of 0..60 and dense is its inverse.
        let mut seen = [false; 60];
        for dv in 0..60 {
            let v = view.original(dv);
            assert!(!seen[v]);
            seen[v] = true;
            assert_eq!(view.dense_of(v), Some(dv));
            // Neighbor rows carry original ids, ascending, matching the
            // graph's own row for this vertex.
            assert_eq!(view.neighbors(dv), g.neighbors(v));
        }
        // ascending() walks original ids 0, 1, 2, … regardless of layout.
        let asc: Vec<VertexId> = view.ascending().map(|dv| view.original(dv)).collect();
        assert_eq!(asc, (0..60).collect::<Vec<_>>());
        // scatter lands values at original positions.
        let out = view.scatter(usize::MAX, (0..60).map(|dv| view.original(dv)));
        assert_eq!(out, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn locality_view_composes_with_masks() {
        let g = gen::grid(5, 6);
        let mask = VertexSet::from_iter_with_universe(30, (0..30).filter(|v| v % 7 != 0));
        let identity = GraphView::new(&g, Some(&mask));
        let view = GraphView::with_order(&g, Some(&mask), VertexOrder::Locality, 3);
        assert_eq!(view.live_count(), identity.live_count());
        let asc: Vec<VertexId> = view.ascending().map(|dv| view.original(dv)).collect();
        assert_eq!(
            asc,
            identity.live().to_vec(),
            "same live set, original order"
        );
        for dv in 0..view.live_count() {
            let v = view.original(dv);
            let idv = identity.dense_of(v).unwrap();
            assert_eq!(view.neighbors(dv), identity.neighbors(idv), "v = {v}");
        }
    }

    #[test]
    fn sender_ranks_match_neighbor_positions() {
        let g = gen::random_tree(40, 9);
        let mask = VertexSet::from_iter_with_universe(40, (0..40).filter(|v| v % 5 != 0));
        for (mask, order) in [
            (None, VertexOrder::Identity),
            (None, VertexOrder::Locality),
            (Some(&mask), VertexOrder::Identity),
            (Some(&mask), VertexOrder::Locality),
        ] {
            let view = GraphView::with_order(&g, mask, order, 11);
            let ranks = SenderRanks::build(&view);
            for sv in 0..view.live_count() {
                let src = view.original(sv);
                for (i, &dst) in view.neighbors(sv).iter().enumerate() {
                    let rv = view.dense_of(dst).unwrap();
                    let expect = view
                        .neighbors(rv)
                        .binary_search(&src)
                        .expect("sender is the receiver's neighbor");
                    assert_eq!(
                        ranks.rank(sv, i) as usize,
                        expect,
                        "rank({src} → {dst}), order {order:?}"
                    );
                }
            }
        }
    }
}
