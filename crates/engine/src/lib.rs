//! # engine — a sharded, message-passing LOCAL-model execution runtime
//!
//! The seed crates *simulate* LOCAL algorithms: sequential functions iterate
//! over vertices and charge rounds to a [`local_model::RoundLedger`] by
//! analysis. This crate *executes* them: explicit per-node programs exchange
//! messages in synchronized rounds, run in parallel across vertex shards,
//! and every round bound is **observed**, not hand-computed — the move the
//! distributed-coloring literature (Barenboim–Elkin, Ghaffari-style
//! runtimes) assumes when it states round and message complexity.
//!
//! Pieces:
//!
//! * [`NodeProgram`] — per-vertex state machine:
//!   [`init`](NodeProgram::init) / [`on_round`](NodeProgram::on_round)
//!   (inbox → outbox + state transition) / [`halted`](NodeProgram::halted)
//!   vote.
//! * [`GraphView`] — the active-set abstraction: a graph plus an optional
//!   [`VertexSet`](graphs::VertexSet) mask ([`EngineConfig::with_mask`]).
//!   Masked sessions run the induced subgraph only — dead vertices get no
//!   program, mailbox, RNG stream, or ledger charge — while every
//!   observable stays keyed on original vertex ids, so masked runs match
//!   the sequential masked primitives bit for bit.
//! * [`EngineSession`] — the driver: partitions the view with a
//!   [`ShardPlan`], executes shards on a **persistent worker pool** (threads
//!   spawned once per session, parked on reusable barriers, staging
//!   outbound traffic in per-worker arenas bucketed by destination group —
//!   see the `pool` module internals), routes messages through
//!   double-buffered **struct-of-arrays mailboxes** (one contiguous
//!   segment per worker group plus per-vertex `(start, len)` spans,
//!   rebuilt by counting sort — zero per-message allocation) in a second
//!   **worker-parallel routing phase**, and records [`EngineMetrics`]
//!   (messages, max width,
//!   active nodes, wall and routing time) alongside a
//!   [`RoundLedger`](local_model::RoundLedger). [`EngineConfig::shards`]
//!   and [`EngineConfig::workers`] are pure performance knobs: any
//!   combination replays the same run.
//! * Determinism — per-node random streams are derived from
//!   `(seed, node id)` only ([`node_rng`]), inboxes are delivered in
//!   ascending original-sender order (enforced by a counting pass on
//!   precomputed sender ranks — the routing epoch performs no comparison
//!   sort), so randomized programs replay **bit-identically regardless of
//!   shard count**. The internal vertex layout is itself a free variable:
//!   [`EngineConfig::with_order`] ([`VertexOrder`]) relabels the dense
//!   index space into a cache-local order without changing one observable.
//! * [`FaultPlan`] — drop or delay a node's outbox at a chosen round, or
//!   duplicate / lose individual messages with seeded per-edge rules
//!   ([`FaultPlan::duplicate_edges`], [`FaultPlan::lose_edges`]), without
//!   the program's knowledge.
//! * CONGEST accounting — every message carries a typed wire format
//!   ([`WireCodec`]: encode to / decode from word frames), and
//!   [`CongestMode`] decides what the recorded
//!   [`EngineMessage::width`]s mean: [`CongestMode::Reject`]
//!   ([`EngineConfig::congest_width`]) aborts on any over-budget message,
//!   certifying completed phases CONGEST-safe; [`CongestMode::Split`]
//!   ([`EngineConfig::congest_split`]) fragments wide messages into
//!   budget-sized `(seq, total)` frames delivered over consecutive virtual
//!   rounds and reassembled per edge, with the extra physical rounds
//!   charged to the [`SPLIT_PHASE`] ledger phase and counted in
//!   [`EngineMetrics`] (`physical_rounds`, `fragments`).
//! * [`programs`] — ports of the repository's algorithms onto the engine,
//!   each equivalence-tested against its sequential twin.
//!
//! # Examples
//!
//! ```
//! use engine::{EngineConfig, EngineSession, NodeCtx, NodeProgram, Outbox, Stop};
//! use graphs::gen;
//!
//! // Every node learns its neighborhood's max id in one round.
//! struct MaxOfNeighbors {
//!     best: usize,
//!     done: bool,
//! }
//! impl NodeProgram for MaxOfNeighbors {
//!     type Message = usize;
//!     fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<usize> {
//!         self.best = ctx.id;
//!         Outbox::Broadcast(ctx.id)
//!     }
//!     fn on_round(&mut self, _: &mut NodeCtx<'_>, inbox: &[(usize, usize)]) -> Outbox<usize> {
//!         self.best = inbox.iter().map(|&(_, m)| m).fold(self.best, usize::max);
//!         self.done = true;
//!         Outbox::Silent
//!     }
//!     fn halted(&self) -> bool {
//!         self.done
//!     }
//! }
//!
//! let g = gen::cycle(8);
//! let mut sess = EngineSession::new(&g, EngineConfig::default().with_shards(2), |_| {
//!     MaxOfNeighbors { best: 0, done: false }
//! });
//! let report = sess.run_phase("max", Stop::AllHalted);
//! assert!(report.converged);
//! assert_eq!(report.rounds, 1);
//! assert_eq!(sess.programs()[0].best, 7); // neighbors of 0 on the cycle: 1 and 7
//! ```

pub mod context;
pub mod driver;
pub mod faults;
pub mod mailbox;
pub mod metrics;
pub(crate) mod pool;
pub mod program;
pub mod programs;
pub mod shard;
pub mod view;

pub use context::{node_rng, NodeCtx};
pub use driver::{CongestMode, EngineConfig, EngineSession, PhaseReport, Stop, SPLIT_PHASE};
pub use faults::{FaultAction, FaultPlan};
pub use metrics::{EngineMetrics, RoundMetrics};
pub use pool::EnginePool;
pub use program::{Activation, EngineMessage, NodeProgram, Outbox, WireCodec};
pub use programs::{
    engine_classification_gather, engine_cole_vishkin_3color, engine_degree_plus_one_coloring,
    engine_detect_clique, engine_gather_balls, engine_h_partition, engine_layered_greedy,
    engine_randomized_list_coloring, engine_ruling_forest, layered_slot, layered_slots,
};
pub use shard::ShardPlan;
pub use view::{GraphView, VertexOrder};

/// Total worker threads spawned by engine pools since process start — the
/// observable a pipeline test pins to prove pool *sharing* actually shares:
/// with one [`EnginePool`] threaded through every session, the delta across
/// a peeling run stays at the pool's size instead of growing per level.
pub fn worker_threads_spawned() -> usize {
    pool::SPAWNED.load(std::sync::atomic::Ordering::Relaxed)
}

/// `usize` is a first-class message: several programs exchange bare ids or
/// colors. The wire format is the value itself, one word.
impl WireCodec for usize {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [w] => Some(*w as usize),
            _ => None,
        }
    }
}

impl EngineMessage for usize {
    const MAX_WIDTH: Option<usize> = Some(1);
}

/// `u64` is likewise a first-class one-word message.
impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(*self);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [w] => Some(*w),
            _ => None,
        }
    }
}

impl EngineMessage for u64 {
    const MAX_WIDTH: Option<usize> = Some(1);
}
