//! Per-node execution context: the knowledge a LOCAL processor wakes up with.

use graphs::VertexId;
use rand::rngs::StdRng;

/// What a node knows and owns while running: its identifier, its
/// neighborhood, the global vertex count, the current round, and a private
/// deterministic random stream.
///
/// In a masked session (see [`GraphView`](crate::GraphView)) everything
/// here keeps the **original** vertex numbering: `id` is the original id,
/// `neighbors` lists the node's *live* neighbors by original id (edges to
/// masked-out vertices do not exist), and the random stream is still seeded
/// by the original id — so a masked program observes exactly what the
/// sequential masked primitives compute with.
///
/// The stream is seeded from `(engine seed, original node id)` only — never
/// from the shard layout, the worker-pool size, or the thread schedule — so
/// randomized programs replay bit-identically across any shard and worker
/// count. During a round the context is visited exclusively by the worker
/// group that owns its vertex range; between rounds the driver owns it.
pub struct NodeCtx<'g> {
    /// This node's unique identifier (original, even under a mask).
    pub id: VertexId,
    /// Number of nodes in the full network (the LOCAL model's global `n`,
    /// not the live count).
    pub n: usize,
    /// Sorted live-neighbor identifiers (original ids).
    pub neighbors: &'g [VertexId],
    /// Current round: 0 during [`init`](crate::NodeProgram::init), then 1, 2, …
    pub round: u64,
    /// Private per-node random stream; identical for a given `(seed, id)`
    /// regardless of sharding.
    pub rng: StdRng,
}

impl<'g> NodeCtx<'g> {
    /// Builds the context for node `id` under the given engine seed.
    pub fn new(id: VertexId, n: usize, neighbors: &'g [VertexId], seed: u64) -> Self {
        NodeCtx {
            id,
            n,
            neighbors,
            round: 0,
            rng: node_rng(seed, id),
        }
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

/// The per-node random stream for `(seed, node)` — the engine's determinism
/// contract. Delegates to [`local_model::per_vertex_rng`] so the engine and
/// the sequential implementations can never drift apart: replay parity is
/// definitional, not coincidental.
pub fn node_rng(seed: u64, node: VertexId) -> StdRng {
    local_model::per_vertex_rng(seed, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn node_streams_are_stable_and_distinct() {
        let draw = |seed, node| {
            let mut r = node_rng(seed, node);
            (0..8)
                .map(|_| r.gen_range(0u64..1 << 40))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7, 3), draw(7, 3));
        assert_ne!(draw(7, 3), draw(7, 4));
        assert_ne!(draw(7, 3), draw(8, 3));
    }

    #[test]
    fn ctx_exposes_neighborhood() {
        let nbrs = [1usize, 4, 9];
        let ctx = NodeCtx::new(2, 10, &nbrs, 0);
        assert_eq!(ctx.degree(), 3);
        assert_eq!(ctx.round, 0);
        assert_eq!(ctx.neighbors, &[1, 4, 9]);
    }
}
