//! The node-program abstraction: what one vertex runs.
//!
//! A [`NodeProgram`] is the per-vertex half of a LOCAL-model algorithm:
//! private state, an [`init`](NodeProgram::init) hook that may publish the
//! node's initial knowledge, an [`on_round`](NodeProgram::on_round) step
//! mapping last round's inbox to this round's outbox, and a
//! [`halted`](NodeProgram::halted) vote. The engine owns synchronization,
//! routing, sharding, and accounting; programs never see anything beyond
//! their own neighborhood — which is exactly the LOCAL model's promise.
//!
//! Messages additionally carry a **wire format** ([`WireCodec`]): every
//! payload encodes to, and decodes from, a sequence of abstract machine
//! words. The codec is what turns the LOCAL-model runtime into a CONGEST
//! one — under [`CongestMode::Split`](crate::CongestMode::Split) the engine
//! fragments over-budget encodings into budget-sized frames, delivers them
//! over consecutive virtual rounds, and reassembles them at the receiver,
//! charging the extra rounds honestly.

use graphs::VertexId;

use crate::context::NodeCtx;

/// The typed wire format of a message: how it serializes into CONGEST word
/// frames.
///
/// The engine uses the codec whenever a message must actually cross a
/// bandwidth-limited edge — [`CongestMode::Split`](crate::CongestMode::Split)
/// encodes every over-budget message, chops the words into `(seq, total)`
/// fragments of at most the budget, and decodes at the receiver once the
/// last fragment lands. The contract every implementation must keep:
///
/// * **Round trip** — `decode(encode(m)) == Some(m)` for every message the
///   program can emit.
/// * **Width honesty** — the encoding has exactly
///   [`EngineMessage::width`] words, so the recorded width *is* the wire
///   cost (property-tested in `tests/engine_equivalence.rs` for every
///   program message type).
pub trait WireCodec: Sized {
    /// Appends the message's word frames to `out`.
    fn encode(&self, out: &mut Vec<u64>);

    /// Rebuilds a message from the exact word sequence
    /// [`encode`](WireCodec::encode) produced. `None` marks a malformed
    /// frame sequence — a codec bug or corrupted reassembly, never a valid
    /// run.
    fn decode(words: &[u64]) -> Option<Self>;

    /// Convenience: the encoding as a fresh vector.
    fn encode_to_vec(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// A message payload moved between nodes by the engine.
///
/// [`width`](EngineMessage::width) is the abstract size of the message in
/// words; the engine records the per-round maximum so experiments can report
/// *observed* message-size bounds (CONGEST-style accounting) next to round
/// counts. The default of 1 fits constant-size messages. The width must
/// equal the [`WireCodec`] encoding's word count (except that zero-word
/// encodings report width 1 — a message exists even when it carries no
/// payload).
///
/// Messages are `'static`: they outlive the round that produced them (they
/// sit in mailboxes, fault-delay queues, and the worker pool's staging
/// arenas), so they may not borrow from the graph or the session.
pub trait EngineMessage: Clone + Send + Sync + WireCodec + 'static {
    /// Static upper bound on [`width`](EngineMessage::width), if one exists.
    ///
    /// `Some(w)` promises `m.width() <= w` for **every** value of the type.
    /// Constant-size message types (one machine word) declare `Some(1)`,
    /// which lets the routing epoch skip the per-message width scan under
    /// [`CongestMode::Split`](crate::CongestMode::Split) whenever the bound
    /// already fits the budget — no message can fragment, so the split
    /// outcome is known without touching a single payload. Variable-width
    /// types keep the default `None` and take the scan.
    const MAX_WIDTH: Option<usize> = None;

    /// Abstract message size in words.
    fn width(&self) -> usize {
        1
    }
}

/// What a node emits at the end of a round.
#[derive(Clone, Debug)]
pub enum Outbox<M> {
    /// Nothing this round.
    Silent,
    /// The same message to every neighbor (the LOCAL-model default).
    Broadcast(M),
    /// One message to one neighbor.
    Unicast(VertexId, M),
    /// Arbitrary per-neighbor messages.
    Multi(Vec<(VertexId, M)>),
}

impl<M> Outbox<M> {
    /// Number of point-to-point messages this outbox expands to, given the
    /// sender's degree.
    pub fn fanout(&self, degree: usize) -> usize {
        match self {
            Outbox::Silent => 0,
            Outbox::Broadcast(_) => degree,
            Outbox::Unicast(..) => 1,
            Outbox::Multi(v) => v.len(),
        }
    }
}

/// When a node wants its `on_round` step, **beyond** message arrival.
///
/// The engine always steps a node whose inbox is non-empty. `Activation`
/// is the node's standing request for the empty-inbox case — the hint
/// that lets frontier-sparse rounds skip the quiescent bulk of the graph
/// (see [`NodeProgram::activation`]). A skipped step is semantically an
/// `on_round` that would have returned [`Outbox::Silent`] without touching
/// state, so the hint is purely an optimization *when the program keeps
/// that contract*; the engine cannot check it, but
/// [`EngineConfig::with_frontier(false)`](crate::EngineConfig::with_frontier)
/// forces full scans so equivalence tests can.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Step every round regardless of traffic — the conservative default;
    /// a program that never overrides [`NodeProgram::activation`] runs
    /// exactly as it always did.
    EveryRound,
    /// Step only when a message arrives. Right for nodes that are done (a
    /// step is a no-op) or purely reactive (an empty-inbox step reads
    /// nothing and changes nothing).
    OnMessage,
    /// Step when a message arrives **or** once `round >= the given round`
    /// — for programs with an offline schedule (a peeling level, a
    /// color-class slot, a flood deadline) that must fire on time even if
    /// no neighbor speaks first.
    ///
    /// Wake-queue contract: the hint is re-read after **every** step (and
    /// after every [`for_each_program`](crate::EngineSession::for_each_program)
    /// rescan), and only the latest reading stands — returning
    /// `WakeAt(r)` registers one future wake at `r` (a past `r` collapses
    /// to the next round; the node was stepped on time, so only the future
    /// matters), and any earlier registration is superseded. A wake fires
    /// the node exactly once at round `r` even if its inbox is empty; to
    /// fire again the program must return a fresh `WakeAt` from that step.
    WakeAt(u64),
}

/// The per-vertex program executed by the engine.
///
/// Synchronous semantics: in every round the engine steps every node whose
/// inbox is non-empty or whose [`activation`](NodeProgram::activation)
/// hint requests the round — with the default hint
/// ([`Activation::EveryRound`]) that is **every** node, halted or not —
/// passing the messages its neighbors sent in the previous round, sorted
/// by sender id. A node skipped by its own hint behaves exactly as if its
/// `on_round` had returned [`Outbox::Silent`] without touching state.
/// [`halted`](NodeProgram::halted)
/// is a *vote*: the engine ends a [`Stop::AllHalted`](crate::Stop::AllHalted)
/// phase once every node votes to halt; a node may keep participating after
/// voting (its vote is re-read every round). This mirrors the LOCAL model,
/// where all processors run in lockstep and termination is a global event.
pub trait NodeProgram: Send {
    /// Message type this program exchanges.
    type Message: EngineMessage;

    /// Called once before the first round, with an empty network.
    ///
    /// The returned outbox is delivered in round 1 and charged **zero**
    /// rounds: it models the standard LOCAL assumption that nodes start
    /// knowing their neighbors' identifiers (equivalently, a free port-number
    /// exchange at wake-up).
    fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<Self::Message>;

    /// One synchronous round: previous round's inbox in, outbox out.
    ///
    /// `inbox` holds `(sender, message)` pairs sorted by sender id; the order
    /// is deterministic and independent of the shard count.
    fn on_round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[(VertexId, Self::Message)],
    ) -> Outbox<Self::Message>;

    /// The node's current halt vote.
    fn halted(&self) -> bool;

    /// The node's standing wake-up request for rounds in which **no
    /// message arrives** (a non-empty inbox always steps the node). Read
    /// once per round, before the step; must be a pure function of program
    /// state, so it is shard-invariant like everything else.
    ///
    /// Overriding this is the frontier-sparse contract: whenever the hint
    /// lets the engine skip a round, that round's `on_round` **would have
    /// returned [`Outbox::Silent`] without changing state**. The default
    /// keeps the engine's historical behavior of stepping everyone.
    fn activation(&self) -> Activation {
        Activation::EveryRound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Unit;
    impl WireCodec for Unit {
        fn encode(&self, out: &mut Vec<u64>) {
            out.push(0);
        }
        fn decode(words: &[u64]) -> Option<Self> {
            (words == [0]).then_some(Unit)
        }
    }
    impl EngineMessage for Unit {}

    #[test]
    fn fanout_counts() {
        assert_eq!(Outbox::<Unit>::Silent.fanout(5), 0);
        assert_eq!(Outbox::Broadcast(Unit).fanout(5), 5);
        assert_eq!(Outbox::Unicast(3, Unit).fanout(5), 1);
        assert_eq!(Outbox::Multi(vec![(0, Unit), (1, Unit)]).fanout(5), 2);
    }

    #[test]
    fn default_width_is_one() {
        assert_eq!(Unit.width(), 1);
    }

    #[test]
    fn codec_round_trips() {
        assert_eq!(Unit.encode_to_vec(), vec![0]);
        assert_eq!(Unit::decode(&[0]), Some(Unit));
        assert_eq!(Unit::decode(&[1]), None);
        assert_eq!(Unit::decode(&[]), None);
    }
}
