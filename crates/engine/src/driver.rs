//! The engine driver: shard-parallel, round-synchronized execution on a
//! persistent worker pool.
//!
//! One [`EngineSession`] runs one network of [`NodeProgram`]s. Worker
//! threads are spawned **once**, when the session boots, and park on a
//! reusable barrier between rounds (see the `pool` module). Each round:
//!
//! 1. **Compute** — every worker group walks its vertex range, calling
//!    `on_round` with the inbox routed last round and staging outbound
//!    traffic in its own arena; the `done` barrier is the round's
//!    synchronization point: nothing proceeds until every node has stepped.
//! 2. **Faults** — each node's outbox passes through the [`FaultPlan`]
//!    (deliver / drop / delay) as it is staged.
//! 3. **Route** — the driver drains the arenas in group order into the
//!    double-buffered mailboxes ([`mailbox`](crate::mailbox)), delayed
//!    batches due next round first, and the buffers flip.
//! 4. **Account** — a [`RoundMetrics`] record is appended and the phase's
//!    rounds are charged to a [`RoundLedger`] when the phase ends.
//!
//! Determinism: program state is touched only by its owning worker group,
//! inboxes are sorted by sender, per-node RNG streams depend on
//! `(seed, id)` alone, and fault plans are keyed by `(round, node)` — so
//! colorings, round counts, and per-round message counts are bit-identical
//! across shard counts, worker counts, and thread schedules.

use std::sync::Arc;
use std::time::Instant;

use graphs::{Graph, VertexId};
use local_model::RoundLedger;

use crate::context::NodeCtx;
use crate::faults::FaultPlan;
use crate::mailbox::Mailboxes;
use crate::metrics::{EngineMetrics, RoundMetrics};
use crate::pool::{stage_outbox, ShardYield, WorkerPool};
use crate::program::NodeProgram;
use crate::shard::ShardPlan;

/// Engine tuning knobs. All fields are plain data; cloning a config and
/// rerunning reproduces a run exactly.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Logical shard count; 0 means one shard per available CPU.
    pub shards: usize,
    /// Worker-thread cap: the session spawns `min(workers, shards)` worker
    /// groups (one of which is the driver thread itself); 0 means one per
    /// available CPU. Purely a performance knob — results are bit-identical
    /// for any value.
    pub workers: usize,
    /// Global seed from which every per-node random stream is derived.
    pub seed: u64,
    /// Hard cap on total rounds across all phases of a session.
    pub max_rounds: u64,
    /// Outbox fault schedule (empty by default).
    pub faults: FaultPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 1,
            workers: 0,
            seed: 0,
            max_rounds: 100_000,
            faults: FaultPlan::new(),
        }
    }
}

impl EngineConfig {
    /// Sets the logical shard count (0 = one per available CPU).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the worker-thread cap (0 = one per available CPU). Values above
    /// the hardware parallelism are honored — useful for exercising the
    /// pooled executor on small machines — but never exceed the shard count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the global seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the total round cap.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Installs a fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    fn resolve_shards(&self, n: usize) -> usize {
        let requested = if self.shards == 0 {
            available_cpus()
        } else {
            self.shards
        };
        requested.clamp(1, n.max(1))
    }

    /// Worker groups for a resolved shard count: explicit caps are honored
    /// (so tests can force real threads on small machines); the automatic
    /// default never oversubscribes the hardware.
    fn resolve_workers(&self, shards: usize) -> usize {
        let cap = if self.workers == 0 {
            available_cpus()
        } else {
            self.workers
        };
        cap.clamp(1, shards)
    }
}

fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// When a phase ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stop {
    /// Run until every node votes to halt (or the session round cap trips).
    AllHalted,
    /// Run exactly this many rounds — the host knows the phase length, as
    /// LOCAL algorithms with offline round bounds do.
    Rounds(u64),
}

/// What one phase did.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Phase name (also the ledger phase the rounds were charged to).
    pub phase: String,
    /// Rounds executed in this phase.
    pub rounds: u64,
    /// Messages sent in this phase.
    pub messages: usize,
    /// False iff the session round cap interrupted a [`Stop::AllHalted`]
    /// phase before every node halted.
    pub converged: bool,
}

/// A running network: programs, contexts, mailboxes, the worker pool, and
/// both books of account. Create with [`EngineSession::new`], drive with
/// [`run_phase`](EngineSession::run_phase), inspect or
/// [`into_parts`](EngineSession::into_parts) when done. Dropping the session
/// (or dismantling it) parks, releases, and joins the pool's threads.
pub struct EngineSession<'g, P: NodeProgram + 'static> {
    graph: &'g Graph,
    config: EngineConfig,
    plan: ShardPlan,
    /// One contiguous vertex range per worker group, ascending, aligned to
    /// shard boundaries.
    groups: Vec<std::ops::Range<usize>>,
    pool: WorkerPool<P>,
    programs: Vec<P>,
    ctxs: Vec<NodeCtx<'g>>,
    mail: Mailboxes<P::Message>,
    metrics: EngineMetrics,
    ledger: RoundLedger,
    round: u64,
    /// Set when a node-program panic unwound out of a round: program state
    /// is partially stepped and the round was rolled back, so continuing
    /// would silently break the replay contract. Further stepping refuses
    /// loudly; read-only inspection and `into_parts` still work.
    poisoned: bool,
}

impl<'g, P: NodeProgram + 'static> EngineSession<'g, P> {
    /// Boots a network over `graph`: builds one context and one program per
    /// vertex (`factory` is called in vertex order), spawns the session's
    /// persistent worker pool, runs every program's `init`, and routes the
    /// initial outboxes into round 1's inboxes.
    ///
    /// `init` traffic is charged zero rounds (see [`NodeProgram::init`]);
    /// fault rules for round 0 apply to it.
    pub fn new(
        graph: &'g Graph,
        config: EngineConfig,
        mut factory: impl FnMut(&NodeCtx<'_>) -> P,
    ) -> Self {
        let n = graph.n();
        let plan = ShardPlan::contiguous(n, config.resolve_shards(n));
        let groups = plan.group_ranges(config.resolve_workers(plan.shards()));
        let pool = WorkerPool::spawn(groups.len() - 1);
        let mut ctxs: Vec<NodeCtx<'g>> = (0..n)
            .map(|v| NodeCtx::new(v, n, graph.neighbors(v), config.seed))
            .collect();
        let mut programs: Vec<P> = ctxs.iter().map(&mut factory).collect();

        // Round 0: init every node and route the initial knowledge exchange.
        // Single staging arena — init runs once, on the driver thread.
        let mut mail = Mailboxes::new(n);
        let mut metrics = EngineMetrics::default();
        let mut y: ShardYield<P::Message> = ShardYield::default();
        for (v, (p, ctx)) in programs.iter_mut().zip(ctxs.iter_mut()).enumerate() {
            ctx.round = 0;
            let outbox = p.init(ctx);
            stage_outbox(v, outbox, ctx.neighbors, 0, &config.faults, &mut y);
        }
        metrics.record_init(y.messages, y.dropped, y.delayed, y.max_width);
        for (due, batch) in y.delayed_batches.drain(..) {
            mail.schedule(due, batch);
        }
        mail.inject_due(1);
        mail.ingest(&mut y.sent);
        mail.flip();

        EngineSession {
            graph,
            config,
            plan,
            groups,
            pool,
            programs,
            ctxs,
            mail,
            metrics,
            ledger: RoundLedger::new(),
            round: 0,
            poisoned: false,
        }
    }

    /// Runs rounds under `phase` until `stop` is satisfied, then charges the
    /// executed rounds to the ledger under `phase`.
    ///
    /// # Panics
    ///
    /// Panics immediately on a [`poisoned`](EngineSession::poisoned)
    /// session — program state is partially stepped, so even a zero-round
    /// phase could report converged state that never existed.
    pub fn run_phase(&mut self, phase: &str, stop: Stop) -> PhaseReport {
        assert!(
            !self.poisoned,
            "EngineSession is poisoned: a node program panicked mid-round, \
             so program state is partially stepped and no further phases can \
             run; rebuild the session"
        );
        let start_round = self.round;
        let start_msgs = self.metrics.total_messages();
        let label: Arc<str> = Arc::from(phase);
        let mut converged = true;
        match stop {
            Stop::Rounds(k) => {
                for _ in 0..k {
                    if self.round >= self.config.max_rounds {
                        converged = false;
                        break;
                    }
                    self.step_round(&label);
                }
            }
            Stop::AllHalted => loop {
                if self.programs.iter().all(NodeProgram::halted) {
                    break;
                }
                if self.round >= self.config.max_rounds {
                    converged = false;
                    break;
                }
                self.step_round(&label);
            },
        }
        let rounds = self.round - start_round;
        self.ledger.charge(phase, rounds);
        PhaseReport {
            phase: phase.to_owned(),
            rounds,
            messages: self.metrics.total_messages() - start_msgs,
            converged,
        }
    }

    /// Host-side hook between phases: mutate every program (in vertex
    /// order). This is the "synchronizer" seam multi-phase algorithms use to
    /// switch modes without spending communication rounds.
    pub fn for_each_program(&mut self, mut f: impl FnMut(VertexId, &mut P)) {
        for (v, p) in self.programs.iter_mut().enumerate() {
            f(v, p);
        }
    }

    /// The graph this session runs over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The programs, in vertex order.
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// Observed per-round metrics so far.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// LOCAL rounds charged so far, phase by phase.
    pub fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }

    /// Total rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Number of logical shards this session runs with.
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// Number of worker groups executing those shards (spawned threads + the
    /// driver thread itself). At most [`shards`](EngineSession::shards);
    /// capped by the hardware unless [`EngineConfig::workers`] forces more.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// True while fault-delayed batches are still undelivered.
    pub fn has_pending_delays(&self) -> bool {
        self.mail.has_pending_delays()
    }

    /// True once a node-program panic unwound out of a round: program state
    /// is partially stepped, further `run_phase` calls panic immediately,
    /// and only inspection / [`into_parts`](EngineSession::into_parts)
    /// remain meaningful.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Dismantles the session into programs, metrics, and ledger, shutting
    /// the worker pool down.
    pub fn into_parts(self) -> (Vec<P>, EngineMetrics, RoundLedger) {
        (self.programs, self.metrics, self.ledger)
    }

    /// Executes one synchronized round (compute ∥ worker groups → faults →
    /// route).
    ///
    /// # Panics
    ///
    /// Resumes any panic raised by a node program, after the round's epoch
    /// is fully closed — the pool survives and later shuts down cleanly.
    /// The round is rolled back (metrics, ledger, and mailboxes are
    /// untouched by the aborted round) and the session is **poisoned**:
    /// program state is partially stepped, so any further `run_phase` call
    /// panics immediately instead of silently replaying garbage. Read-only
    /// accessors and [`into_parts`](EngineSession::into_parts) keep working
    /// on a poisoned session.
    fn step_round(&mut self, phase: &Arc<str>) {
        debug_assert!(!self.poisoned, "run_phase must refuse poisoned sessions");
        self.round += 1;
        let round = self.round;
        let started = Instant::now();

        if let Err(payload) = self.pool.execute(
            &mut self.programs,
            &mut self.ctxs,
            self.mail.inboxes(),
            &self.config.faults,
            round,
            &self.groups,
        ) {
            self.poisoned = true;
            self.round -= 1;
            std::panic::resume_unwind(payload);
        }

        let mut messages = 0;
        let mut dropped = 0;
        let mut delayed = 0;
        let mut max_width = 0;
        let mut active_nodes = 0;
        self.mail.inject_due(round + 1);
        let mail = &mut self.mail;
        self.pool.drain_yields(|y| {
            messages += y.messages;
            dropped += y.dropped;
            delayed += y.delayed;
            max_width = max_width.max(y.max_width);
            active_nodes += y.active;
            for (due, batch) in y.delayed_batches.drain(..) {
                mail.schedule(due, batch);
            }
            mail.ingest(&mut y.sent);
        });
        self.mail.flip();

        self.metrics.push(RoundMetrics {
            round,
            phase: Arc::clone(phase),
            messages,
            dropped,
            delayed,
            max_width,
            active_nodes,
            wall: started.elapsed(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{EngineMessage, Outbox};
    use graphs::gen;

    impl EngineMessage for u64 {}

    /// Floods the maximum id seen so far; halts once its value is stable for
    /// a round. Converges in eccentricity+1 rounds; every run is a pure
    /// function of the graph.
    struct MaxFlood {
        value: u64,
        changed: bool,
    }

    impl NodeProgram for MaxFlood {
        type Message = u64;

        fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<u64> {
            self.value = ctx.id as u64;
            Outbox::Broadcast(self.value)
        }

        fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, inbox: &[(usize, u64)]) -> Outbox<u64> {
            let best = inbox.iter().map(|&(_, m)| m).max().unwrap_or(0);
            self.changed = best > self.value;
            if self.changed {
                self.value = best;
                Outbox::Broadcast(self.value)
            } else {
                Outbox::Silent
            }
        }

        fn halted(&self) -> bool {
            !self.changed
        }
    }

    fn flood(g: &graphs::Graph, config: EngineConfig) -> (Vec<u64>, u64, Vec<usize>) {
        let mut sess = EngineSession::new(g, config, |_| MaxFlood {
            value: 0,
            changed: true,
        });
        let report = sess.run_phase("flood", Stop::AllHalted);
        assert!(report.converged);
        let counts = sess.metrics().message_counts();
        let (programs, _, ledger) = sess.into_parts();
        let values = programs.iter().map(|p| p.value).collect();
        (values, ledger.phase_total("flood"), counts)
    }

    #[test]
    fn flood_reaches_everyone() {
        let g = gen::path(20);
        let (values, rounds, _) = flood(&g, EngineConfig::default());
        assert!(values.iter().all(|&v| v == 19));
        // The path's eccentricity from vertex 19 is 19; one extra round to
        // notice stability.
        assert!((19..=21).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn shard_count_does_not_change_anything() {
        let g = gen::random_tree(200, 11);
        let baseline = flood(&g, EngineConfig::default().with_shards(1));
        for shards in [2, 3, 8, 0] {
            let run = flood(&g, EngineConfig::default().with_shards(shards));
            assert_eq!(run, baseline, "shards = {shards}");
        }
    }

    #[test]
    fn worker_count_does_not_change_anything() {
        let g = gen::random_tree(150, 3);
        let baseline = flood(&g, EngineConfig::default().with_shards(8).with_workers(1));
        for workers in [2, 3, 8, 0] {
            let run = flood(
                &g,
                EngineConfig::default().with_shards(8).with_workers(workers),
            );
            assert_eq!(run, baseline, "workers = {workers}");
        }
    }

    #[test]
    fn workers_capped_by_shards_and_forceable_past_cpus() {
        let g = gen::path(40);
        let sess = EngineSession::new(
            &g,
            EngineConfig::default().with_shards(4).with_workers(64),
            |_| MaxFlood {
                value: 0,
                changed: true,
            },
        );
        assert_eq!(sess.shards(), 4);
        assert_eq!(sess.workers(), 4, "explicit cap clamps to shards only");
        let inline =
            EngineSession::new(&g, EngineConfig::default().with_workers(1), |_| MaxFlood {
                value: 0,
                changed: true,
            });
        assert_eq!(inline.workers(), 1);
    }

    #[test]
    fn messages_have_one_round_latency() {
        // On a 2-path the init broadcasts cross during round 0 and arrive
        // with round 1: node 0 adopts 1 and rebroadcasts (1 message), node 1
        // hears nothing better and goes quiet. Round 2 is the quiet round
        // that lets node 0's vote flip; then the phase ends.
        let g = gen::path(2);
        let (values, rounds, counts) = flood(&g, EngineConfig::default());
        assert_eq!(values, vec![1, 1]);
        assert_eq!(rounds, 2);
        assert_eq!(counts, vec![1, 0]);
    }

    #[test]
    fn round_cap_interrupts_and_reports() {
        let g = gen::cycle(50);
        let mut sess = EngineSession::new(&g, EngineConfig::default().with_max_rounds(3), |_| {
            MaxFlood {
                value: 0,
                changed: true,
            }
        });
        let report = sess.run_phase("flood", Stop::AllHalted);
        assert!(!report.converged);
        assert_eq!(report.rounds, 3);
        assert_eq!(sess.ledger().phase_total("flood"), 3);
    }

    #[test]
    fn fixed_round_phases_charge_exactly() {
        let g = gen::grid(4, 4);
        let mut sess = EngineSession::new(&g, EngineConfig::default(), |_| MaxFlood {
            value: 0,
            changed: true,
        });
        let r = sess.run_phase("warmup", Stop::Rounds(2));
        assert_eq!(r.rounds, 2);
        assert_eq!(sess.ledger().phase_total("warmup"), 2);
        assert_eq!(sess.rounds(), 2);
    }

    #[test]
    fn drop_fault_partitions_the_flood() {
        // Path 0-1-2-3: drop everything nodes 2 and 3 ever send; the max id
        // 3 can never cross to the left half.
        let mut faults = FaultPlan::new();
        for r in 0..20 {
            faults = faults.drop_outbox(3, r).drop_outbox(2, r);
        }
        let g = gen::path(4);
        let mut sess = EngineSession::new(
            &g,
            EngineConfig::default()
                .with_faults(faults)
                .with_max_rounds(10),
            |_| MaxFlood {
                value: 0,
                changed: true,
            },
        );
        sess.run_phase("flood", Stop::AllHalted);
        let values: Vec<u64> = sess.programs().iter().map(|p| p.value).collect();
        assert_eq!(values[0], 1, "id 3 must not have crossed the faulted cut");
        assert_eq!(values[1], 1);
        // The init broadcasts of node 2 (to 1 and 3) and node 3 (to 2) were
        // dropped: 3 messages.
        assert_eq!(sess.metrics().total_dropped(), 3);
    }

    #[test]
    fn drop_fault_mid_run_is_observed_and_survivable() {
        // Drop node 2's round-1 rebroadcast on a 6-path: 2 messages lost,
        // the flood still completes because later waves re-cover the edge.
        let g = gen::path(6);
        let (values, _, _) = flood(&g, EngineConfig::default());
        assert!(values.iter().all(|&v| v == 5));
        let mut sess = EngineSession::new(
            &g,
            EngineConfig::default().with_faults(FaultPlan::new().drop_outbox(2, 1)),
            |_| MaxFlood {
                value: 0,
                changed: true,
            },
        );
        let report = sess.run_phase("flood", Stop::AllHalted);
        assert!(report.converged);
        assert_eq!(sess.metrics().total_dropped(), 2);
        assert!(sess.programs().iter().all(|p| p.value == 5));
    }

    #[test]
    fn delay_fault_slows_but_preserves_outcome() {
        let g = gen::path(6);
        let fast = flood(&g, EngineConfig::default());
        let slow = flood(
            &g,
            EngineConfig::default().with_faults(FaultPlan::new().delay_outbox(5, 0, 4)),
        );
        assert_eq!(slow.0, fast.0, "all nodes still learn the max");
        assert!(
            slow.1 > fast.1,
            "delay must cost rounds: {} vs {}",
            slow.1,
            fast.1
        );
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn unicast_to_stranger_panics() {
        struct Chatty;
        impl NodeProgram for Chatty {
            type Message = u64;
            fn init(&mut self, _: &mut NodeCtx<'_>) -> Outbox<u64> {
                Outbox::Silent
            }
            fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _: &[(usize, u64)]) -> Outbox<u64> {
                Outbox::Unicast((ctx.id + 2) % ctx.n, 1)
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let g = gen::path(5);
        let mut sess = EngineSession::new(&g, EngineConfig::default(), |_| Chatty);
        sess.run_phase("x", Stop::Rounds(1));
    }

    #[test]
    fn metrics_track_rounds_and_activity() {
        let g = gen::path(10);
        let mut sess = EngineSession::new(&g, EngineConfig::default(), |_| MaxFlood {
            value: 0,
            changed: true,
        });
        sess.run_phase("flood", Stop::AllHalted);
        let m = sess.metrics();
        assert_eq!(m.total_rounds(), sess.rounds());
        assert!(m.per_round()[0].active_nodes == 10);
        assert!(m.total_messages() > 0);
        assert_eq!(m.max_width(), 1);
    }
}
