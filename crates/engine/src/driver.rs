//! The engine driver: shard-parallel, round-synchronized execution on a
//! persistent worker pool, over a (possibly masked) [`GraphView`].
//!
//! One [`EngineSession`] runs one network of [`NodeProgram`]s — one program
//! per **live** vertex of its view. With [`EngineConfig::with_mask`] the
//! session restricts itself to an induced subgraph: masked-out vertices get
//! no program, no mailbox, no RNG stream, and no ledger charge, and edges
//! with a dead endpoint do not exist. Determinism stays keyed on *original*
//! vertex ids (contexts, inboxes, RNG streams, fault plans), so a masked
//! run is bit-identical to the sequential masked primitives at any shard
//! count. Worker threads are spawned **once**, when the session boots, and
//! park on a reusable barrier between epochs (see the `pool` module). Each
//! round has **two worker-parallel phases**:
//!
//! 1. **Compute** — every worker group walks its dense vertex range,
//!    calling `on_round` with the inbox routed last round and staging
//!    outbound traffic in its own arena, bucketed by destination group;
//!    faults (deliver / drop / delay / duplicate) and the strict CONGEST
//!    width budget ([`EngineConfig::congest_width`]) apply as traffic is
//!    staged.
//! 2. **Route** — after the driver tallies counters and (re)schedules
//!    fault-delayed batches, every worker counting-sorts its own bucket of
//!    every arena into its group's contiguous inbox segment (spans per
//!    vertex, no per-message allocation) and puts each span into the
//!    deterministic sender order with a second counting pass on
//!    precomputed sender ranks — no comparison sort anywhere in the epoch;
//!    the buffers then flip. Routing no longer serializes on
//!    the driver thread — its wall time is recorded per round
//!    ([`RoundMetrics::route_wall`]), measured from the moment the compute
//!    epoch closes so the driver-side drain, batch scheduling, and wake
//!    bookkeeping between the epochs are charged to the routing epoch too.
//!
//! Determinism: program state is touched only by its owning worker group,
//! inboxes are delivered in ascending original-sender order, per-node RNG
//! streams depend on `(seed, original id)` alone, and fault plans are keyed
//! by `(round, original node)` — so colorings, round counts, and per-round
//! message counts are bit-identical across shard counts, worker counts, and
//! thread schedules, masked or not. The same original-id keying makes the
//! internal vertex layout a free variable: [`EngineConfig::with_order`]
//! relabels the dense index space into a cache-local order
//! ([`VertexOrder::Locality`]) without perturbing a single observable.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use graphs::{Graph, VertexId, VertexSet};
use local_model::RoundLedger;

use crate::context::NodeCtx;
use crate::faults::FaultPlan;
use crate::mailbox::Mailboxes;
use crate::metrics::{EngineMetrics, RoundMetrics};
use crate::pool::{stage_outbox, EnginePool, RouteEnv, StageEnv, WorkerPool};
use crate::program::{Activation, NodeProgram};
use crate::shard::ShardPlan;
use crate::view::{GraphView, SenderRanks, VertexOrder};

/// Resolves an [`Activation`] hint read after `round` into the wake-queue
/// key: the first round at which the node must be stepped even without
/// traffic (`u64::MAX` = never). `EveryRound` wants the very next round; a
/// `WakeAt` in the past collapses to it too — the node was already stepped
/// on time, so only future rounds matter.
fn wake_round(hint: Activation, round: u64) -> u64 {
    match hint {
        Activation::EveryRound => round + 1,
        Activation::OnMessage => u64::MAX,
        Activation::WakeAt(r) => r.max(round + 1),
    }
}

/// The ledger phase the extra physical rounds of
/// [`CongestMode::Split`] are charged to — kept separate from the logical
/// phases so split-mode ledgers reconcile against the sequential twins:
/// `total() − phase_total(SPLIT_PHASE)` equals the unlimited-width charge.
pub const SPLIT_PHASE: &str = "congest-split";

/// How the engine treats message widths against a CONGEST bandwidth budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CongestMode {
    /// No budget: widths are recorded, never enforced.
    #[default]
    Unlimited,
    /// Strict certification: any message wider than the budget aborts the
    /// run with a diagnostic panic, so a phase that completes is certified
    /// CONGEST-safe at that width.
    Reject(usize),
    /// Automatic fragmentation: over-budget messages are encoded through
    /// their [`WireCodec`](crate::WireCodec), chopped into frames of at
    /// most the budget's words, delivered over consecutive **virtual
    /// rounds**, and reassembled at the receiver. One logical round costs
    /// `ceil(w / budget)` physical rounds, where `w` is the widest message
    /// *delivered* that round (fault-suppressed traffic never crosses the
    /// wire and costs nothing); the surplus is charged to the
    /// [`SPLIT_PHASE`] ledger phase and reported via
    /// [`RoundMetrics::physical_rounds`] / [`RoundMetrics::fragments`].
    Split(usize),
}

impl CongestMode {
    /// The stage-side rejection budget: `usize::MAX` unless this is
    /// [`CongestMode::Reject`] (split mode lets wide messages through to
    /// the fragmentation layer).
    pub(crate) fn reject_budget(self) -> usize {
        match self {
            CongestMode::Reject(w) => w,
            CongestMode::Unlimited | CongestMode::Split(_) => usize::MAX,
        }
    }

    /// The routing-side fragmentation budget, if splitting is on.
    pub(crate) fn split_width(self) -> Option<usize> {
        match self {
            CongestMode::Split(w) => Some(w),
            CongestMode::Unlimited | CongestMode::Reject(_) => None,
        }
    }

    /// Physical rounds one logical round with widest message `max_width`
    /// costs under this mode (always ≥ 1).
    pub(crate) fn physical_rounds(self, max_width: usize) -> u64 {
        match self {
            CongestMode::Split(w) => (max_width.div_ceil(w) as u64).max(1),
            CongestMode::Unlimited | CongestMode::Reject(_) => 1,
        }
    }
}

/// Engine tuning knobs. All fields are plain data; cloning a config and
/// rerunning reproduces a run exactly.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Logical shard count; 0 means one shard per available CPU.
    pub shards: usize,
    /// Worker-thread cap: the session spawns `min(workers, shards)` worker
    /// groups (one of which is the driver thread itself); 0 means one per
    /// available CPU. Purely a performance knob — results are bit-identical
    /// for any value.
    pub workers: usize,
    /// Global seed from which every per-node random stream is derived.
    pub seed: u64,
    /// Hard cap on total **logical** rounds across all phases of a session.
    pub max_rounds: u64,
    /// Outbox fault schedule (empty by default).
    pub faults: FaultPlan,
    /// Active-set mask: `Some` restricts the session to the induced
    /// subgraph on these vertices (see [`GraphView`]). `None` runs the
    /// whole graph.
    pub mask: Option<VertexSet>,
    /// CONGEST bandwidth treatment: record only, reject over-budget
    /// messages, or split them across virtual rounds. See [`CongestMode`].
    pub congest: CongestMode,
    /// Frontier-sparse rounds (default `true`): skip the `on_round` step of
    /// nodes with an empty inbox whose [`Activation`]
    /// hint does not request the round. Purely a performance knob when
    /// programs keep the activation contract — results are bit-identical;
    /// `false` forces the historical full scan (used by equivalence tests).
    pub frontier: bool,
    /// Shared worker pool: `Some` makes the session borrow these threads
    /// instead of spawning its own — see [`EnginePool`]. When set, the pool
    /// supersedes `workers` as the worker-group cap.
    pub pool: Option<EnginePool>,
    /// Internal vertex layout (default [`VertexOrder::Identity`]): how the
    /// session maps live vertices to dense indices. Purely a performance
    /// knob — every observable is keyed on original ids, so results are
    /// bit-identical for any value. See [`EngineConfig::with_order`].
    pub order: VertexOrder,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 1,
            workers: 0,
            seed: 0,
            max_rounds: 100_000,
            faults: FaultPlan::new(),
            mask: None,
            congest: CongestMode::Unlimited,
            frontier: true,
            pool: None,
            order: VertexOrder::Identity,
        }
    }
}

impl EngineConfig {
    /// Sets the logical shard count (0 = one per available CPU).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the worker-thread cap (0 = one per available CPU). Values above
    /// the hardware parallelism are honored — useful for exercising the
    /// pooled executor on small machines — but never exceed the shard count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the global seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the total round cap.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Installs a fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Restricts the session to the induced subgraph on `mask` (cloned into
    /// the config — configs stay plain, cloneable data). The mask's
    /// universe must match the graph the session later runs over.
    #[must_use]
    pub fn with_mask(mut self, mask: &VertexSet) -> Self {
        self.mask = Some(mask.clone());
        self
    }

    /// Enables strict CONGEST mode ([`CongestMode::Reject`]): any message
    /// wider than `words` aborts the session with a diagnostic panic, so
    /// phases that complete are certified to fit the budget.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn congest_width(mut self, words: usize) -> Self {
        assert!(words >= 1, "a CONGEST budget must allow at least one word");
        self.congest = CongestMode::Reject(words);
        self
    }

    /// Enables automatic message splitting ([`CongestMode::Split`]): wider
    /// messages are fragmented into ≤ `words`-word frames delivered over
    /// consecutive virtual rounds and reassembled at the receiver, with the
    /// extra physical rounds charged to the [`SPLIT_PHASE`] ledger phase.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn congest_split(mut self, words: usize) -> Self {
        assert!(words >= 1, "a CONGEST budget must allow at least one word");
        self.congest = CongestMode::Split(words);
        self
    }

    /// Sets the CONGEST mode directly.
    #[must_use]
    pub fn with_congest(mut self, mode: CongestMode) -> Self {
        self.congest = mode;
        self
    }

    /// Enables or disables frontier-sparse rounds (default on). With
    /// `false` every node steps every round regardless of traffic or its
    /// [`Activation`] hint — the engine's historical
    /// behavior, kept as the reference side of equivalence tests.
    #[must_use]
    pub fn with_frontier(mut self, frontier: bool) -> Self {
        self.frontier = frontier;
        self
    }

    /// Shares `pool`'s worker threads with this session instead of spawning
    /// a private set — the per-pipeline amortization knob: a peeling loop
    /// spawns one [`EnginePool`] and threads it through every level's
    /// config, so thread creation is a constant cost regardless of level
    /// count. Purely a performance knob — results are bit-identical with or
    /// without sharing.
    #[must_use]
    pub fn with_pool(mut self, pool: &EnginePool) -> Self {
        self.pool = Some(pool.clone());
        self
    }

    /// Chooses the internal vertex layout. [`VertexOrder::Locality`]
    /// relabels live vertices into a seeded RCM-style cache-local order
    /// (derived from `seed` and the view's adjacency), so shard spans
    /// become graph neighborhoods instead of arbitrary id ranges. Purely a
    /// performance knob: contexts, inboxes, RNG streams, fault keys, and
    /// [`GraphView::scatter`] stay keyed on original ids, so a locality run
    /// is bit-identical to an identity run at every shard count.
    #[must_use]
    pub fn with_order(mut self, order: VertexOrder) -> Self {
        self.order = order;
        self
    }

    fn resolve_shards(&self, n: usize) -> usize {
        let requested = if self.shards == 0 {
            available_cpus()
        } else {
            self.shards
        };
        requested.clamp(1, n.max(1))
    }

    /// Worker groups for a resolved shard count: explicit caps are honored
    /// (so tests can force real threads on small machines); the automatic
    /// default never oversubscribes the hardware.
    fn resolve_workers(&self, shards: usize) -> usize {
        let cap = if self.workers == 0 {
            available_cpus()
        } else {
            self.workers
        };
        cap.clamp(1, shards)
    }
}

fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// When a phase ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stop {
    /// Run until every node votes to halt (or the session round cap trips).
    AllHalted,
    /// Run exactly this many rounds — the host knows the phase length, as
    /// LOCAL algorithms with offline round bounds do.
    Rounds(u64),
}

/// What one phase did.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Phase name (also the ledger phase the rounds were charged to).
    pub phase: String,
    /// Logical rounds executed in this phase.
    pub rounds: u64,
    /// Physical rounds spent on the wire: equals
    /// [`rounds`](PhaseReport::rounds) outside [`CongestMode::Split`];
    /// under splitting each logical round costs `ceil(max_width / budget)`
    /// virtual rounds, and the surplus is charged to the [`SPLIT_PHASE`]
    /// ledger phase.
    pub physical_rounds: u64,
    /// Messages sent in this phase.
    pub messages: usize,
    /// False iff the session round cap interrupted a [`Stop::AllHalted`]
    /// phase before every node halted.
    pub converged: bool,
}

/// A running network: programs, contexts, mailboxes, the worker pool, and
/// both books of account, all indexed by the view's dense live-vertex
/// order. Create with [`EngineSession::new`], drive with
/// [`run_phase`](EngineSession::run_phase), inspect or
/// [`into_parts`](EngineSession::into_parts) when done. Dropping the session
/// (or dismantling it) parks, releases, and joins the pool's threads.
pub struct EngineSession<'g, P: NodeProgram + 'static> {
    /// The active set. Must not be mutated after construction: contexts
    /// hold `'g`-extended borrows of its filtered adjacency (see `new`).
    view: GraphView<'g>,
    config: EngineConfig,
    plan: ShardPlan,
    /// One contiguous dense vertex range per worker group, ascending,
    /// aligned to shard boundaries.
    groups: Vec<std::ops::Range<usize>>,
    /// `groups` as flat boundaries (`len = groups + 1`), for the staging
    /// path's destination-group lookup.
    bounds: Vec<usize>,
    pool: WorkerPool<P>,
    programs: Vec<P>,
    ctxs: Vec<NodeCtx<'g>>,
    /// Per-directed-edge sender ranks, built once from the view: the
    /// routing epoch's counting-sort keys (see [`SenderRanks`]).
    ranks: SenderRanks,
    mail: Mailboxes<P::Message>,
    metrics: EngineMetrics,
    ledger: RoundLedger,
    round: u64,
    /// Running count of nodes currently voting to halt, maintained from the
    /// per-round halt deltas the workers report (an unstepped node's vote
    /// cannot change), so the [`Stop::AllHalted`] check and the
    /// `active_nodes` metric are O(1) instead of an O(n) census.
    halted: usize,
    /// Per dense vertex: the wake-queue round this node's latest
    /// registration targets (`u64::MAX` = none). The dedup/invalidation
    /// key: a queue entry fires only while it still matches, and is
    /// consumed (set to `MAX`) when it does.
    next_wake: Vec<u64>,
    /// Per worker group: scheduled wakes, bucketed by due round. Fed by the
    /// workers' post-step [`Activation`] hints (via `ShardYield::new_wakes`)
    /// and the boot/`for_each_program` rescans; drained into `due` at the
    /// round's start. Empty when `config.frontier` is off.
    wakes: Vec<BTreeMap<u64, Vec<usize>>>,
    /// Per worker group: this round's validated due list (absolute dense
    /// indices), handed to the compute epoch alongside the inbox active
    /// lists.
    due: Vec<Vec<usize>>,
    /// Recycled wake-bucket vectors, so steady-state queue churn (one
    /// bucket per round for `EveryRound` programs) allocates nothing.
    spare: Vec<Vec<usize>>,
    /// Set when a node-program panic unwound out of a round: program state
    /// is partially stepped and the round was rolled back, so continuing
    /// would silently break the replay contract. Further stepping refuses
    /// loudly; read-only inspection and `into_parts` still work.
    poisoned: bool,
}

impl<'g, P: NodeProgram + 'static> EngineSession<'g, P> {
    /// Boots a network over `graph` (restricted to `config.mask` if set):
    /// builds one context and one program per live vertex (`factory` is
    /// called in ascending original-id order), spawns the session's
    /// persistent worker pool, runs every program's `init`, and routes the
    /// initial outboxes into round 1's inboxes.
    ///
    /// `init` traffic is charged zero rounds (see [`NodeProgram::init`]);
    /// fault rules for round 0 apply to it.
    ///
    /// # Panics
    ///
    /// Panics if `config.mask` has a universe other than `graph.n()`.
    pub fn new(
        graph: &'g Graph,
        config: EngineConfig,
        mut factory: impl FnMut(&NodeCtx<'_>) -> P,
    ) -> Self {
        let view = GraphView::with_order(graph, config.mask.as_ref(), config.order, config.seed);
        let live = view.live_count();
        let plan = ShardPlan::for_view(&view, config.resolve_shards(live));
        // A shared pool fixes the worker-group budget (its thread count);
        // otherwise the session sizes — and below spawns — its own.
        let pool_workers = config
            .pool
            .as_ref()
            .map(|p| p.workers().min(plan.shards()).max(1))
            .unwrap_or_else(|| config.resolve_workers(plan.shards()));
        let groups = plan.group_ranges(pool_workers);
        let bounds: Vec<usize> = groups.iter().map(|r| r.start).chain([live]).collect();
        let mut pool = WorkerPool::new(
            config
                .pool
                .clone()
                .unwrap_or_else(|| EnginePool::new(groups.len())),
            groups.len(),
        );
        let mut ctxs: Vec<NodeCtx<'g>> = (0..live)
            .map(|dv| {
                let nbrs = view.neighbors(dv);
                // SAFETY: for whole-graph identity views this slice already
                // borrows the graph (`'g`). For masked and/or relabeled
                // views it points into the view's flat materialized CSR
                // (`packed`), whose heap buffer is address-stable for the
                // session's whole lifetime: the view moves into the session
                // below, is never mutated, and `NodeCtx` values never
                // escape the session at `'g` (only reborrows reach
                // factories and programs).
                let nbrs: &'g [VertexId] =
                    unsafe { std::slice::from_raw_parts(nbrs.as_ptr(), nbrs.len()) };
                NodeCtx::new(view.original(dv), graph.n(), nbrs, config.seed)
            })
            .collect();
        // The factory contract is ascending *original* id order — under a
        // relabeled layout that is not dense order, so visit via the
        // view's ascending index.
        let mut programs: Vec<P> = {
            let mut slots: Vec<Option<P>> = (0..live).map(|_| None).collect();
            for dv in view.ascending() {
                slots[dv] = Some(factory(&ctxs[dv]));
            }
            slots
                .into_iter()
                .map(|p| p.expect("ascending() visits every live vertex"))
                .collect()
        };
        let ranks = SenderRanks::build(&view);

        // Round 0: init every node and route the initial knowledge
        // exchange. Staging runs on the driver into the pool's group-0
        // arena (bucketed by destination group, like any round); routing
        // then runs as an ordinary worker-parallel epoch.
        let mut mail = Mailboxes::new(live, bounds.clone());
        let mut metrics = EngineMetrics::default();
        let counters = {
            let env = StageEnv {
                faults: &config.faults,
                dense: view.dense_table(),
                live: view.live(),
                bounds: &bounds,
                ranks: &ranks,
                congest: config.congest.reject_budget(),
                frontier: config.frontier,
            };
            let y = pool.home_arena();
            for (p, ctx) in programs.iter_mut().zip(ctxs.iter_mut()) {
                ctx.round = 0;
                let outbox = p.init(ctx);
                stage_outbox(ctx.id, outbox, ctx.neighbors, 0, &env, y);
            }
            for (due, batch) in y.delayed_batches.drain(..) {
                mail.schedule(due, batch);
            }
            (
                y.messages,
                y.dropped,
                y.delayed,
                y.duplicated,
                y.lost,
                y.max_width,
            )
        };
        mail.inject_due(1);
        let targets = mail.next_targets();
        let init_tally = match pool.route(
            targets,
            &groups,
            &RouteEnv {
                split: config.congest.split_width().unwrap_or(usize::MAX),
                round: 0,
                reorder: config.faults.reorder_seed(),
                live: view.live(),
            },
        ) {
            Ok(tally) => tally,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        metrics.record_init(
            counters.0,
            counters.1,
            counters.2,
            counters.3,
            counters.4,
            counters.5,
            init_tally.fragments,
        );
        mail.flip();

        // Boot the frontier bookkeeping off the post-init program state:
        // the running halt count, and one wake registration per node (round
        // base 1 — the first round that can fire).
        let halted = programs.iter().filter(|p| NodeProgram::halted(*p)).count();
        let mut next_wake = vec![u64::MAX; live];
        let mut wakes: Vec<BTreeMap<u64, Vec<usize>>> =
            (0..groups.len()).map(|_| BTreeMap::new()).collect();
        if config.frontier {
            for (g, range) in groups.iter().enumerate() {
                for dv in range.clone() {
                    let wake = wake_round(programs[dv].activation(), 0);
                    if wake != u64::MAX {
                        next_wake[dv] = wake;
                        wakes[g].entry(wake).or_default().push(dv);
                    }
                }
            }
        }
        let due = (0..groups.len()).map(|_| Vec::new()).collect();

        EngineSession {
            view,
            config,
            plan,
            groups,
            bounds,
            pool,
            programs,
            ctxs,
            ranks,
            mail,
            metrics,
            ledger: RoundLedger::new(),
            round: 0,
            halted,
            next_wake,
            wakes,
            due,
            spare: Vec::new(),
            poisoned: false,
        }
    }

    /// Runs rounds under `phase` until `stop` is satisfied, then charges the
    /// executed rounds to the ledger under `phase`.
    ///
    /// # Panics
    ///
    /// Panics immediately on a [`poisoned`](EngineSession::poisoned)
    /// session — program state is partially stepped, so even a zero-round
    /// phase could report converged state that never existed.
    pub fn run_phase(&mut self, phase: &str, stop: Stop) -> PhaseReport {
        assert!(
            !self.poisoned,
            "EngineSession is poisoned: a node program panicked mid-round, \
             so program state is partially stepped and no further phases can \
             run; rebuild the session"
        );
        let start_round = self.round;
        let start_msgs = self.metrics.total_messages();
        let start_physical = self.metrics.total_physical_rounds();
        let label: Arc<str> = Arc::from(phase);
        let mut converged = true;
        match stop {
            Stop::Rounds(k) => {
                for _ in 0..k {
                    if self.round >= self.config.max_rounds {
                        converged = false;
                        break;
                    }
                    self.step_round(&label);
                }
            }
            Stop::AllHalted => loop {
                // O(1): the running halt count is maintained from worker
                // deltas — see the `halted` field.
                if self.halted == self.programs.len() {
                    break;
                }
                if self.round >= self.config.max_rounds {
                    converged = false;
                    break;
                }
                self.step_round(&label);
            },
        }
        let rounds = self.round - start_round;
        self.ledger.charge(phase, rounds);
        let physical_rounds = self.metrics.total_physical_rounds() - start_physical;
        // Split mode stretched some logical rounds into several physical
        // ones; charge the surplus honestly, under its own ledger phase so
        // the logical charges stay reconcilable with the sequential twins.
        if physical_rounds > rounds {
            self.ledger.charge(SPLIT_PHASE, physical_rounds - rounds);
        }
        PhaseReport {
            phase: phase.to_owned(),
            rounds,
            physical_rounds,
            messages: self.metrics.total_messages() - start_msgs,
            converged,
        }
    }

    /// Host-side hook between phases: mutate every live program, in
    /// ascending **original** vertex order (the id passed to `f`). This is
    /// the "synchronizer" seam multi-phase algorithms use to switch modes
    /// without spending communication rounds.
    pub fn for_each_program(&mut self, mut f: impl FnMut(VertexId, &mut P)) {
        // Dense order is not ascending-original under a relabeled layout;
        // the view's ascending index restores the documented order.
        let view = &self.view;
        for dv in view.ascending() {
            f(view.original(dv), &mut self.programs[dv]);
        }
        // The hook may have rewritten any program's state: recount the halt
        // votes and re-register every activation hint. Queue entries the
        // rescan supersedes are invalidated at fire time by the `next_wake`
        // match, so nothing needs removing here.
        self.halted = self.programs.iter().filter(|p| p.halted()).count();
        if self.config.frontier {
            let round = self.round;
            for (g, range) in self.groups.iter().enumerate() {
                for dv in range.clone() {
                    let wake = wake_round(self.programs[dv].activation(), round);
                    if self.next_wake[dv] == wake {
                        continue;
                    }
                    self.next_wake[dv] = wake;
                    if wake != u64::MAX {
                        self.wakes[g]
                            .entry(wake)
                            .or_insert_with(|| self.spare.pop().unwrap_or_default())
                            .push(dv);
                    }
                }
            }
        }
    }

    /// The graph this session runs over (unrestricted).
    pub fn graph(&self) -> &'g Graph {
        self.view.graph()
    }

    /// The active-set view this session runs over.
    pub fn view(&self) -> &GraphView<'g> {
        &self.view
    }

    /// The live programs, in ascending original-id (dense) order. Use
    /// [`view`](EngineSession::view) to map positions back to original ids
    /// (identity for unmasked sessions).
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// Observed per-round metrics so far.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// LOCAL rounds charged so far, phase by phase.
    pub fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }

    /// Total rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Number of logical shards this session runs with.
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// Number of worker groups executing those shards (spawned threads + the
    /// driver thread itself). At most [`shards`](EngineSession::shards);
    /// capped by the hardware unless [`EngineConfig::workers`] forces more.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// True while fault-delayed batches are still undelivered.
    pub fn has_pending_delays(&self) -> bool {
        self.mail.has_pending_delays()
    }

    /// True once a node-program panic unwound out of a round: program state
    /// is partially stepped, further `run_phase` calls panic immediately,
    /// and only inspection / [`into_parts`](EngineSession::into_parts)
    /// remain meaningful.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Dismantles the session into programs (dense live order), metrics,
    /// and ledger, shutting the worker pool down.
    pub fn into_parts(self) -> (Vec<P>, EngineMetrics, RoundLedger) {
        (self.programs, self.metrics, self.ledger)
    }

    /// Executes one synchronized round: compute epoch ∥ worker groups →
    /// driver bookkeeping (counters, fault-delay scheduling) → routing
    /// epoch ∥ worker groups → buffer flip.
    ///
    /// # Panics
    ///
    /// Resumes any panic raised by a node program, after the round's epoch
    /// is fully closed — the pool survives and later shuts down cleanly.
    /// The round is rolled back (metrics, ledger, and mailboxes are
    /// untouched by the aborted round) and the session is **poisoned**:
    /// program state is partially stepped, so any further `run_phase` call
    /// panics immediately instead of silently replaying garbage. Read-only
    /// accessors and [`into_parts`](EngineSession::into_parts) keep working
    /// on a poisoned session.
    fn step_round(&mut self, phase: &Arc<str>) {
        debug_assert!(!self.poisoned, "run_phase must refuse poisoned sessions");
        self.round += 1;
        let round = self.round;
        let started = Instant::now();
        // The round-start activity census, O(1) off the running halt count.
        let live = self.programs.len();
        let active_nodes = live - self.halted;

        // Assemble this round's due wake lists: pop the round's bucket per
        // group and keep only entries whose registration still stands —
        // superseded ones are invalidated here, at fire time, and a firing
        // entry is consumed (its node re-registers after its step).
        if self.config.frontier {
            for (g, due) in self.due.iter_mut().enumerate() {
                due.clear();
                if let Some(mut bucket) = self.wakes[g].remove(&round) {
                    for &dv in &bucket {
                        if self.next_wake[dv] == round {
                            self.next_wake[dv] = u64::MAX;
                            due.push(dv);
                        }
                    }
                    bucket.clear();
                    self.spare.push(bucket);
                }
            }
        }

        let env = StageEnv {
            faults: &self.config.faults,
            dense: self.view.dense_table(),
            live: self.view.live(),
            bounds: &self.bounds,
            ranks: &self.ranks,
            congest: self.config.congest.reject_budget(),
            frontier: self.config.frontier,
        };
        if let Err(payload) = self.pool.execute(
            &mut self.programs,
            &mut self.ctxs,
            self.mail.cur(),
            &self.due,
            &env,
            round,
            &self.groups,
        ) {
            self.poisoned = true;
            self.round -= 1;
            std::panic::resume_unwind(payload);
        }

        // The routing epoch starts when the compute epoch closes: the
        // driver-side arena drain, delay scheduling, and wake bookkeeping
        // below all feed the rebuild of `next`, so `route_wall` charges
        // them too — `--max-route-frac` judges the whole epoch.
        let route_started = Instant::now();
        let mut messages = 0;
        let mut dropped = 0;
        let mut delayed = 0;
        let mut duplicated = 0;
        let mut lost = 0;
        let mut max_width = 0;
        let mut stepped = 0;
        let mut newly_halted = 0;
        let mut newly_unhalted = 0;
        let mail = &mut self.mail;
        let next_wake = &mut self.next_wake;
        let wakes = &mut self.wakes;
        let spare = &mut self.spare;
        let frontier = self.config.frontier;
        self.pool.collect_yields(|g, y| {
            messages += y.messages;
            dropped += y.dropped;
            delayed += y.delayed;
            duplicated += y.duplicated;
            lost += y.lost;
            max_width = max_width.max(y.max_width);
            stepped += y.stepped;
            newly_halted += y.newly_halted;
            newly_unhalted += y.newly_unhalted;
            for (due, batch) in y.delayed_batches.drain(..) {
                mail.schedule(due, batch);
            }
            if frontier {
                // Register each stepped node's next wake. Group `g`'s arena
                // holds only its own range, so the group index is the
                // bucket-queue key — no per-node group lookup.
                for (dv, wake) in y.new_wakes.drain(..) {
                    if next_wake[dv] == wake {
                        continue;
                    }
                    next_wake[dv] = wake;
                    if wake != u64::MAX {
                        wakes[g]
                            .entry(wake)
                            .or_insert_with(|| spare.pop().unwrap_or_default())
                            .push(dv);
                    }
                }
            }
        });
        self.halted = self.halted + newly_halted - newly_unhalted;
        self.mail.inject_due(round + 1);

        let targets = self.mail.next_targets();
        let route_env = RouteEnv {
            split: self.config.congest.split_width().unwrap_or(usize::MAX),
            round,
            reorder: self.config.faults.reorder_seed(),
            live: self.view.live(),
        };
        let tally = match self.pool.route(targets, &self.groups, &route_env) {
            Ok(tally) => tally,
            Err(payload) => {
                // Routing is engine code, not program code — a panic here is
                // a bug, but the epoch still closed, so poison and propagate.
                self.poisoned = true;
                self.round -= 1;
                std::panic::resume_unwind(payload);
            }
        };
        self.mail.flip();
        let route_wall = route_started.elapsed();

        self.metrics.push(RoundMetrics {
            round,
            phase: Arc::clone(phase),
            messages,
            dropped,
            delayed,
            duplicated,
            lost,
            max_width,
            // Charged on *delivered* widths: traffic a fault suppressed
            // never crossed the wire, so it costs no virtual rounds.
            physical_rounds: self.config.congest.physical_rounds(tally.wire_width),
            fragments: tally.fragments,
            active_nodes,
            live,
            stepped,
            active_frac: if live == 0 {
                1.0
            } else {
                stepped as f64 / live as f64
            },
            wall: started.elapsed(),
            route_wall,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{EngineMessage, Outbox, WireCodec};
    use graphs::gen;

    /// Floods the maximum id seen so far; halts once its value is stable for
    /// a round. Converges in eccentricity+1 rounds; every run is a pure
    /// function of the graph.
    struct MaxFlood {
        value: u64,
        changed: bool,
    }

    impl NodeProgram for MaxFlood {
        type Message = u64;

        fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<u64> {
            self.value = ctx.id as u64;
            Outbox::Broadcast(self.value)
        }

        fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, inbox: &[(usize, u64)]) -> Outbox<u64> {
            let best = inbox.iter().map(|&(_, m)| m).max().unwrap_or(0);
            self.changed = best > self.value;
            if self.changed {
                self.value = best;
                Outbox::Broadcast(self.value)
            } else {
                Outbox::Silent
            }
        }

        fn halted(&self) -> bool {
            !self.changed
        }
    }

    fn new_flood(g: &graphs::Graph, config: EngineConfig) -> EngineSession<'_, MaxFlood> {
        EngineSession::new(g, config, |_| MaxFlood {
            value: 0,
            changed: true,
        })
    }

    fn flood(g: &graphs::Graph, config: EngineConfig) -> (Vec<u64>, u64, Vec<usize>) {
        let mut sess = new_flood(g, config);
        let report = sess.run_phase("flood", Stop::AllHalted);
        assert!(report.converged);
        let counts = sess.metrics().message_counts();
        let (programs, _, ledger) = sess.into_parts();
        let values = programs.iter().map(|p| p.value).collect();
        (values, ledger.phase_total("flood"), counts)
    }

    #[test]
    fn flood_reaches_everyone() {
        let g = gen::path(20);
        let (values, rounds, _) = flood(&g, EngineConfig::default());
        assert!(values.iter().all(|&v| v == 19));
        // The path's eccentricity from vertex 19 is 19; one extra round to
        // notice stability.
        assert!((19..=21).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn shard_count_does_not_change_anything() {
        let g = gen::random_tree(200, 11);
        let baseline = flood(&g, EngineConfig::default().with_shards(1));
        for shards in [2, 3, 8, 0] {
            let run = flood(&g, EngineConfig::default().with_shards(shards));
            assert_eq!(run, baseline, "shards = {shards}");
        }
    }

    #[test]
    fn worker_count_does_not_change_anything() {
        let g = gen::random_tree(150, 3);
        let baseline = flood(&g, EngineConfig::default().with_shards(8).with_workers(1));
        for workers in [2, 3, 8, 0] {
            let run = flood(
                &g,
                EngineConfig::default().with_shards(8).with_workers(workers),
            );
            assert_eq!(run, baseline, "workers = {workers}");
        }
    }

    #[test]
    fn workers_capped_by_shards_and_forceable_past_cpus() {
        let g = gen::path(40);
        let sess = new_flood(&g, EngineConfig::default().with_shards(4).with_workers(64));
        assert_eq!(sess.shards(), 4);
        assert_eq!(sess.workers(), 4, "explicit cap clamps to shards only");
        let inline = new_flood(&g, EngineConfig::default().with_workers(1));
        assert_eq!(inline.workers(), 1);
    }

    #[test]
    fn messages_have_one_round_latency() {
        // On a 2-path the init broadcasts cross during round 0 and arrive
        // with round 1: node 0 adopts 1 and rebroadcasts (1 message), node 1
        // hears nothing better and goes quiet. Round 2 is the quiet round
        // that lets node 0's vote flip; then the phase ends.
        let g = gen::path(2);
        let (values, rounds, counts) = flood(&g, EngineConfig::default());
        assert_eq!(values, vec![1, 1]);
        assert_eq!(rounds, 2);
        assert_eq!(counts, vec![1, 0]);
    }

    #[test]
    fn round_cap_interrupts_and_reports() {
        let g = gen::cycle(50);
        let mut sess = new_flood(&g, EngineConfig::default().with_max_rounds(3));
        let report = sess.run_phase("flood", Stop::AllHalted);
        assert!(!report.converged);
        assert_eq!(report.rounds, 3);
        assert_eq!(sess.ledger().phase_total("flood"), 3);
    }

    #[test]
    fn fixed_round_phases_charge_exactly() {
        let g = gen::grid(4, 4);
        let mut sess = new_flood(&g, EngineConfig::default());
        let r = sess.run_phase("warmup", Stop::Rounds(2));
        assert_eq!(r.rounds, 2);
        assert_eq!(sess.ledger().phase_total("warmup"), 2);
        assert_eq!(sess.rounds(), 2);
    }

    #[test]
    fn masked_session_runs_only_the_induced_subgraph() {
        // Path 0-…-9 masked to {0, 1, 2, 3, 7, 8, 9}: two components. The
        // flood converges to each component's max (3 and 9); vertices 4-6
        // never run, and no message crosses the cut.
        let g = gen::path(10);
        let mask = VertexSet::from_iter_with_universe(10, [0, 1, 2, 3, 7, 8, 9]);
        for shards in [1usize, 2, 4] {
            let mut sess = new_flood(
                &g,
                EngineConfig::default().with_mask(&mask).with_shards(shards),
            );
            assert_eq!(sess.programs().len(), 7, "one program per live vertex");
            assert_eq!(sess.view().live(), &[0, 1, 2, 3, 7, 8, 9]);
            let report = sess.run_phase("flood", Stop::AllHalted);
            assert!(report.converged);
            let values = sess
                .view()
                .scatter(u64::MAX, sess.programs().iter().map(|p| p.value));
            assert_eq!(
                values,
                vec![3, 3, 3, 3, u64::MAX, u64::MAX, u64::MAX, 9, 9, 9],
                "shards = {shards}"
            );
        }
    }

    #[test]
    fn masked_runs_are_shard_invariant() {
        let g = gen::random_tree(150, 5);
        let mask = VertexSet::from_iter_with_universe(150, (0..150).filter(|v| v % 3 != 0));
        let base = flood(&g, EngineConfig::default().with_mask(&mask).with_shards(1));
        for shards in [2usize, 5, 8] {
            let run = flood(
                &g,
                EngineConfig::default().with_mask(&mask).with_shards(shards),
            );
            assert_eq!(run, base, "shards = {shards}");
        }
    }

    #[test]
    fn empty_mask_session_is_inert() {
        let g = gen::path(5);
        let mask = VertexSet::new(5);
        let mut sess = new_flood(&g, EngineConfig::default().with_mask(&mask));
        assert_eq!(sess.programs().len(), 0);
        let report = sess.run_phase("flood", Stop::AllHalted);
        assert!(report.converged);
        assert_eq!(report.rounds, 0, "no live vertex, no rounds");
    }

    #[test]
    fn for_each_program_reports_original_ids() {
        let g = gen::path(6);
        let mask = VertexSet::from_iter_with_universe(6, [1, 4, 5]);
        let mut sess = new_flood(&g, EngineConfig::default().with_mask(&mask));
        let mut seen = Vec::new();
        sess.for_each_program(|v, _| seen.push(v));
        assert_eq!(seen, vec![1, 4, 5]);
    }

    #[test]
    fn congest_mode_accepts_runs_within_budget() {
        let g = gen::path(12);
        let mut sess = new_flood(&g, EngineConfig::default().congest_width(1));
        let report = sess.run_phase("flood", Stop::AllHalted);
        assert!(report.converged, "1-word flood is CONGEST-safe at 1 word");
        assert_eq!(sess.metrics().max_width(), 1);
    }

    #[test]
    fn congest_mode_rejects_wide_messages_and_poisons() {
        struct Wide;
        #[derive(Clone)]
        struct Words(usize);
        impl WireCodec for Words {
            fn encode(&self, out: &mut Vec<u64>) {
                out.resize(out.len() + self.0, 0);
            }
            fn decode(words: &[u64]) -> Option<Self> {
                Some(Words(words.len()))
            }
        }
        impl EngineMessage for Words {
            fn width(&self) -> usize {
                self.0
            }
        }
        impl NodeProgram for Wide {
            type Message = Words;
            fn init(&mut self, _: &mut NodeCtx<'_>) -> Outbox<Words> {
                Outbox::Silent
            }
            fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _: &[(usize, Words)]) -> Outbox<Words> {
                // Width grows with the round: fine at round 1, over at 3.
                Outbox::Broadcast(Words(ctx.round as usize))
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let g = gen::path(6);
        let mut sess = EngineSession::new(&g, EngineConfig::default().congest_width(2), |_| Wide);
        sess.run_phase("ok", Stop::Rounds(2));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sess.run_phase("too-wide", Stop::Rounds(1));
        }));
        let payload = caught.expect_err("3-word message must violate the budget");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic message is a String");
        assert!(msg.contains("CONGEST violation"), "{msg}");
        assert!(sess.poisoned());
    }

    /// Broadcasts a growing list every round — width r at round r — so a
    /// split budget is exceeded from round `budget + 1` on. The payload is
    /// the node's id repeated, so a codec defect would corrupt `seen`.
    struct Chunky {
        rounds: u64,
        seen: usize,
    }

    #[derive(Clone, PartialEq, Debug)]
    struct IdList(Vec<u64>);
    impl WireCodec for IdList {
        fn encode(&self, out: &mut Vec<u64>) {
            out.extend_from_slice(&self.0);
        }
        fn decode(words: &[u64]) -> Option<Self> {
            (!words.is_empty()).then(|| IdList(words.to_vec()))
        }
    }
    impl EngineMessage for IdList {
        fn width(&self) -> usize {
            self.0.len()
        }
    }

    impl NodeProgram for Chunky {
        type Message = IdList;
        fn init(&mut self, _: &mut NodeCtx<'_>) -> Outbox<IdList> {
            Outbox::Silent
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[(usize, IdList)]) -> Outbox<IdList> {
            for (src, IdList(words)) in inbox {
                assert!(words.iter().all(|&w| w == *src as u64), "payload corrupted");
                self.seen += words.len();
            }
            if ctx.round <= self.rounds {
                Outbox::Broadcast(IdList(vec![ctx.id as u64; ctx.round as usize]))
            } else {
                Outbox::Silent
            }
        }
        fn halted(&self) -> bool {
            false
        }
    }

    #[test]
    fn split_mode_charges_physical_rounds_and_replays_unlimited_outputs() {
        let g = gen::cycle(10);
        let run = |config: EngineConfig| {
            let mut sess = EngineSession::new(&g, config, |_| Chunky { rounds: 4, seen: 0 });
            sess.run_phase("chunky", Stop::Rounds(5));
            let ledger_total = sess.ledger().total();
            let split_total = sess.ledger().phase_total(SPLIT_PHASE);
            let (programs, metrics, _) = sess.into_parts();
            let seen: Vec<usize> = programs.iter().map(|p| p.seen).collect();
            (seen, metrics, ledger_total, split_total)
        };
        let unlimited = run(EngineConfig::default());
        assert_eq!(unlimited.1.total_physical_rounds(), 5);
        assert_eq!(unlimited.1.total_fragments(), 0);
        assert_eq!(unlimited.3, 0);

        for shards in [1usize, 2, 4] {
            let split = run(EngineConfig::default()
                .with_shards(shards)
                .with_workers(shards)
                .congest_split(2));
            assert_eq!(split.0, unlimited.0, "shards={shards}: outputs diverged");
            // Rounds 1..=5 deliver widths 1..=4 (round 5 routes round 4's
            // sends… widths observed per round r are r for r ≤ 4, then 0):
            // physical = ceil(1/2)+ceil(2/2)+ceil(3/2)+ceil(4/2)+1 = 7.
            assert_eq!(split.1.total_rounds(), 5, "logical rounds unchanged");
            assert_eq!(split.1.total_physical_rounds(), 7, "shards={shards}");
            assert_eq!(split.3, 2, "surplus charged to {SPLIT_PHASE}");
            assert_eq!(split.2, unlimited.2 + 2, "total = logical + split surplus");
            // Widths 3 and 4 exceed the budget on every edge: rounds 4 and
            // 5 fragment all 20 deliveries into 2 frames each.
            assert_eq!(split.1.total_fragments(), 80, "shards={shards}");
            assert_eq!(split.1.max_width(), 4, "logical widths still recorded");
        }
    }

    #[test]
    fn fault_suppressed_traffic_costs_no_physical_rounds() {
        // Crash every node before its first wide send: nothing ever crosses
        // the wire, so a Split(1) run charges no virtual-round surplus even
        // though wide messages were *emitted* (and counted as dropped).
        let g = gen::cycle(4);
        let mut faults = FaultPlan::new();
        for v in 0..4 {
            faults = faults.crash(v, 0);
        }
        let mut sess = EngineSession::new(
            &g,
            EngineConfig::default().congest_split(1).with_faults(faults),
            |_| Chunky { rounds: 3, seen: 0 },
        );
        let report = sess.run_phase("chunky", Stop::Rounds(4));
        assert_eq!(report.rounds, 4);
        assert_eq!(
            report.physical_rounds, 4,
            "suppressed traffic must not be charged"
        );
        assert_eq!(sess.ledger().phase_total(SPLIT_PHASE), 0);
        assert_eq!(sess.metrics().total_fragments(), 0);
        assert!(sess.metrics().total_dropped() > 0, "the sends were real");
        assert!(
            sess.metrics().max_width() > 1,
            "emitted widths still recorded"
        );
    }

    #[test]
    fn split_report_exposes_physical_rounds() {
        let g = gen::path(6);
        let mut sess = EngineSession::new(&g, EngineConfig::default().congest_split(1), |_| {
            Chunky { rounds: 3, seen: 0 }
        });
        let report = sess.run_phase("chunky", Stop::Rounds(4));
        assert_eq!(report.rounds, 4);
        // Widths 1, 2, 3 then silence: 1 + 2 + 3 + 1 physical rounds.
        assert_eq!(report.physical_rounds, 7);
        assert_eq!(sess.ledger().phase_total("chunky"), 4);
        assert_eq!(sess.ledger().phase_total(SPLIT_PHASE), 3);
    }

    #[test]
    fn reorder_fault_keeps_flood_outcome_and_replays() {
        let g = gen::random_tree(120, 9);
        let clean = flood(&g, EngineConfig::default());
        let run = |shards: usize| {
            flood(
                &g,
                EngineConfig::default()
                    .with_shards(shards)
                    .with_workers(shards)
                    .with_faults(FaultPlan::new().reorder(5)),
            )
        };
        let base = run(1);
        assert_eq!(base.0, clean.0, "max-flood is order-insensitive");
        for shards in [2usize, 4] {
            assert_eq!(run(shards), base, "shards = {shards}");
        }
    }

    #[test]
    fn crash_stop_silences_a_node_forever() {
        // Path 0-1-2-3-4: crash node 2 at round 0 (before init): the max id
        // 4 can never cross it, and every suppressed outbox counts dropped.
        let g = gen::path(5);
        let mut sess = new_flood(
            &g,
            EngineConfig::default()
                .with_faults(FaultPlan::new().crash(2, 0))
                .with_max_rounds(10),
        );
        sess.run_phase("flood", Stop::AllHalted);
        let values: Vec<u64> = sess.programs().iter().map(|p| p.value).collect();
        assert_eq!(values[0], 1, "id 4 must not have crossed the crash");
        assert_eq!(values[1], 1);
        assert_eq!(values[3], 4);
        assert!(
            sess.metrics().total_dropped() >= 2,
            "init broadcast dropped"
        );
    }

    #[test]
    fn drop_fault_partitions_the_flood() {
        // Path 0-1-2-3: drop everything nodes 2 and 3 ever send; the max id
        // 3 can never cross to the left half.
        let mut faults = FaultPlan::new();
        for r in 0..20 {
            faults = faults.drop_outbox(3, r).drop_outbox(2, r);
        }
        let g = gen::path(4);
        let mut sess = new_flood(
            &g,
            EngineConfig::default()
                .with_faults(faults)
                .with_max_rounds(10),
        );
        sess.run_phase("flood", Stop::AllHalted);
        let values: Vec<u64> = sess.programs().iter().map(|p| p.value).collect();
        assert_eq!(values[0], 1, "id 3 must not have crossed the faulted cut");
        assert_eq!(values[1], 1);
        // The init broadcasts of node 2 (to 1 and 3) and node 3 (to 2) were
        // dropped: 3 messages.
        assert_eq!(sess.metrics().total_dropped(), 3);
    }

    #[test]
    fn drop_fault_mid_run_is_observed_and_survivable() {
        // Drop node 2's round-1 rebroadcast on a 6-path: 2 messages lost,
        // the flood still completes because later waves re-cover the edge.
        let g = gen::path(6);
        let (values, _, _) = flood(&g, EngineConfig::default());
        assert!(values.iter().all(|&v| v == 5));
        let mut sess = new_flood(
            &g,
            EngineConfig::default().with_faults(FaultPlan::new().drop_outbox(2, 1)),
        );
        let report = sess.run_phase("flood", Stop::AllHalted);
        assert!(report.converged);
        assert_eq!(sess.metrics().total_dropped(), 2);
        assert!(sess.programs().iter().all(|p| p.value == 5));
    }

    #[test]
    fn delay_fault_slows_but_preserves_outcome() {
        let g = gen::path(6);
        let fast = flood(&g, EngineConfig::default());
        let slow = flood(
            &g,
            EngineConfig::default().with_faults(FaultPlan::new().delay_outbox(5, 0, 4)),
        );
        assert_eq!(slow.0, fast.0, "all nodes still learn the max");
        assert!(
            slow.1 > fast.1,
            "delay must cost rounds: {} vs {}",
            slow.1,
            fast.1
        );
    }

    #[test]
    fn duplication_fault_is_counted_and_replayable() {
        let g = gen::random_tree(80, 7);
        let run = |shards: usize| {
            let cfg = EngineConfig::default()
                .with_shards(shards)
                .with_workers(shards)
                .with_faults(FaultPlan::new().duplicate_edges(11, 0.4));
            let mut sess = new_flood(&g, cfg);
            let report = sess.run_phase("flood", Stop::AllHalted);
            assert!(report.converged, "duplicated floods still converge");
            let dup = sess.metrics().total_duplicated();
            let (programs, metrics, _) = sess.into_parts();
            (
                programs.iter().map(|p| p.value).collect::<Vec<_>>(),
                metrics.message_counts(),
                dup,
            )
        };
        let base = run(1);
        assert!(base.2 > 0, "p = 0.4 must duplicate something");
        assert!(base.0.iter().all(|&v| v == 79), "flood is dup-idempotent");
        for shards in [2usize, 4, 8] {
            assert_eq!(run(shards), base, "shards = {shards}");
        }
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn unicast_to_stranger_panics() {
        struct Chatty;
        impl NodeProgram for Chatty {
            type Message = u64;
            fn init(&mut self, _: &mut NodeCtx<'_>) -> Outbox<u64> {
                Outbox::Silent
            }
            fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _: &[(usize, u64)]) -> Outbox<u64> {
                Outbox::Unicast((ctx.id + 2) % ctx.n, 1)
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let g = gen::path(5);
        let mut sess = EngineSession::new(&g, EngineConfig::default(), |_| Chatty);
        sess.run_phase("x", Stop::Rounds(1));
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn unicast_to_masked_out_neighbor_panics() {
        // Vertex 1's graph neighbor 0 is masked out: for this session the
        // edge does not exist, so the unicast is a LOCAL violation.
        struct CallDead;
        impl NodeProgram for CallDead {
            type Message = u64;
            fn init(&mut self, _: &mut NodeCtx<'_>) -> Outbox<u64> {
                Outbox::Silent
            }
            fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _: &[(usize, u64)]) -> Outbox<u64> {
                if ctx.id == 1 {
                    Outbox::Unicast(0, 1)
                } else {
                    Outbox::Silent
                }
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let g = gen::path(4);
        let mask = VertexSet::from_iter_with_universe(4, [1, 2, 3]);
        let mut sess =
            EngineSession::new(&g, EngineConfig::default().with_mask(&mask), |_| CallDead);
        sess.run_phase("x", Stop::Rounds(1));
    }

    #[test]
    fn metrics_track_rounds_and_activity() {
        let g = gen::path(10);
        let mut sess = new_flood(&g, EngineConfig::default());
        sess.run_phase("flood", Stop::AllHalted);
        let m = sess.metrics();
        assert_eq!(m.total_rounds(), sess.rounds());
        assert!(m.per_round()[0].active_nodes == 10);
        assert!(m.total_messages() > 0);
        assert_eq!(m.max_width(), 1);
        assert!(m.total_route_wall() <= m.total_wall());
    }
}
