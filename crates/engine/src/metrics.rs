//! Observed execution metrics: what the run *actually did*, round by round.
//!
//! The seed crates charge rounds to a [`local_model::RoundLedger`] by
//! analysis; the engine instead *observes* every round — messages routed,
//! widest message, active (non-halted) nodes, wall-clock time — and keeps
//! both books: the ledger for comparability with the paper's bounds, the
//! metrics for everything the ledger cannot see.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Everything the engine observed about one executed round.
#[derive(Clone, Debug)]
pub struct RoundMetrics {
    /// Global 1-based round index (monotone across phases).
    pub round: u64,
    /// The phase this round was charged to. Shared, not owned: the driver
    /// interns the label once per phase so per-round accounting allocates
    /// nothing.
    pub phase: Arc<str>,
    /// Point-to-point messages emitted this round (including messages a
    /// fault later dropped or delayed — they were *sent*).
    pub messages: usize,
    /// Messages discarded by an injected drop fault.
    pub dropped: usize,
    /// Messages rescheduled by an injected delay fault.
    pub delayed: usize,
    /// Extra deliveries created by seeded per-edge duplication.
    pub duplicated: usize,
    /// Messages discarded by seeded per-edge loss.
    pub lost: usize,
    /// Widest message emitted this round, in abstract words
    /// ([`EngineMessage::width`](crate::EngineMessage::width)).
    pub max_width: usize,
    /// Physical rounds this logical round cost on the wire: 1 unless
    /// [`CongestMode::Split`](crate::CongestMode::Split) stretched it to
    /// `ceil(w / budget)` virtual rounds, where `w` is the widest message
    /// actually **delivered** this round. Charging follows delivery, not
    /// emission: traffic a fault suppressed (dropped, crashed, lost) never
    /// crossed the wire and costs nothing, and a fault-delayed wide
    /// message is charged in the round its frames actually traverse.
    pub physical_rounds: u64,
    /// CONGEST frames produced by fragmenting over-budget messages
    /// delivered this round (0 outside split mode; a message within budget
    /// is delivered whole and counts no fragment).
    pub fragments: usize,
    /// Nodes whose halt vote was still "active" when the round started.
    pub active_nodes: usize,
    /// Live-range size when the round ran — the denominator behind
    /// [`active_frac`](RoundMetrics::active_frac), kept so session-level
    /// aggregation ([`EngineMetrics::mean_active_frac`]) can weight rounds
    /// by how much work a full scan *would* have cost.
    pub live: usize,
    /// Nodes actually stepped this round — the realized frontier. Equals
    /// [`live`](RoundMetrics::live) with frontier gating off.
    pub stepped: usize,
    /// Fraction of live nodes actually *stepped* this round — the frontier
    /// density (`stepped / live`). 1.0 with frontier gating off (or every
    /// node active); tails of peeling levels and ruling-forest floods decay
    /// toward 0 as the quiescent bulk is skipped. `bench_trend` charts this
    /// decay.
    pub active_frac: f64,
    /// Wall-clock time of the round (compute + routing).
    pub wall: Duration,
    /// Wall-clock time of the whole routing epoch: everything between the
    /// compute epoch's close and the buffer flip — yield collection, split
    /// continuation scheduling, delayed-fault injection, the worker-parallel
    /// counting passes (dest placement + sender-rank ordering), and inbox
    /// finalization. A subset of [`wall`](RoundMetrics::wall); the
    /// `bench_gate --max-route-frac` budget judges this number, so it must
    /// not under-count any epoch step.
    pub route_wall: Duration,
}

impl RoundMetrics {
    /// Wall-clock milliseconds as a float, for tables and JSON artifacts.
    pub fn wall_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3
    }

    /// Routing-phase milliseconds as a float.
    pub fn route_ms(&self) -> f64 {
        self.route_wall.as_secs_f64() * 1e3
    }
}

/// Per-round metrics for a whole engine session, with aggregate views.
///
/// The free round-0 knowledge exchange emitted by
/// [`init`](crate::NodeProgram::init) is accounted in the `init_*` fields —
/// it is traffic (and faults apply to it) but not a round, so it appears in
/// the totals yet not in [`per_round`](EngineMetrics::per_round).
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    rounds: Vec<RoundMetrics>,
    /// Messages emitted by `init` (round 0).
    pub init_messages: usize,
    /// Round-0 messages discarded by drop faults.
    pub init_dropped: usize,
    /// Round-0 messages rescheduled by delay faults.
    pub init_delayed: usize,
    /// Round-0 extra deliveries created by per-edge duplication.
    pub init_duplicated: usize,
    /// Round-0 messages discarded by per-edge loss.
    pub init_lost: usize,
    /// Widest round-0 message.
    pub init_max_width: usize,
    /// CONGEST frames produced by splitting round-0 init traffic (the
    /// free knowledge exchange is fragmented like any other traffic, but
    /// stays free of round charges).
    pub init_fragments: usize,
}

impl EngineMetrics {
    /// Records one executed round.
    pub(crate) fn push(&mut self, m: RoundMetrics) {
        self.rounds.push(m);
    }

    /// Records the round-0 init traffic.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_init(
        &mut self,
        messages: usize,
        dropped: usize,
        delayed: usize,
        duplicated: usize,
        lost: usize,
        max_width: usize,
        fragments: usize,
    ) {
        self.init_messages = messages;
        self.init_dropped = dropped;
        self.init_delayed = delayed;
        self.init_duplicated = duplicated;
        self.init_lost = lost;
        self.init_max_width = max_width;
        self.init_fragments = fragments;
    }

    /// Folds another session's metrics into this accumulator — the
    /// composite-pipeline aggregation (`SparseColoring::engine_metrics`):
    /// init counters add up, per-round records concatenate in absorption
    /// order. Round indices restart per absorbed session; the totals are
    /// what composite reports consume.
    pub fn absorb(&mut self, other: EngineMetrics) {
        self.init_messages += other.init_messages;
        self.init_dropped += other.init_dropped;
        self.init_delayed += other.init_delayed;
        self.init_duplicated += other.init_duplicated;
        self.init_lost += other.init_lost;
        self.init_max_width = self.init_max_width.max(other.init_max_width);
        self.init_fragments += other.init_fragments;
        self.rounds.extend(other.rounds);
    }

    /// All executed rounds, in order.
    pub fn per_round(&self) -> &[RoundMetrics] {
        &self.rounds
    }

    /// Number of rounds executed.
    pub fn total_rounds(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// Total messages sent, init traffic included.
    pub fn total_messages(&self) -> usize {
        self.init_messages + self.rounds.iter().map(|r| r.messages).sum::<usize>()
    }

    /// Total messages lost to injected drop faults, init traffic included.
    pub fn total_dropped(&self) -> usize {
        self.init_dropped + self.rounds.iter().map(|r| r.dropped).sum::<usize>()
    }

    /// Total messages rescheduled by injected delay faults, init included.
    pub fn total_delayed(&self) -> usize {
        self.init_delayed + self.rounds.iter().map(|r| r.delayed).sum::<usize>()
    }

    /// Total extra deliveries created by per-edge duplication, init included.
    pub fn total_duplicated(&self) -> usize {
        self.init_duplicated + self.rounds.iter().map(|r| r.duplicated).sum::<usize>()
    }

    /// Total messages discarded by seeded per-edge loss, init included.
    pub fn total_lost(&self) -> usize {
        self.init_lost + self.rounds.iter().map(|r| r.lost).sum::<usize>()
    }

    /// Total physical rounds spent on the wire — equals
    /// [`total_rounds`](EngineMetrics::total_rounds) outside
    /// [`CongestMode::Split`](crate::CongestMode::Split); under splitting,
    /// each logical round contributes `ceil(max_width / budget)`.
    pub fn total_physical_rounds(&self) -> u64 {
        self.rounds.iter().map(|r| r.physical_rounds).sum()
    }

    /// Total CONGEST frames produced by fragmentation, init included.
    pub fn total_fragments(&self) -> usize {
        self.init_fragments + self.rounds.iter().map(|r| r.fragments).sum::<usize>()
    }

    /// Widest message observed anywhere in the run.
    pub fn max_width(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.max_width)
            .max()
            .unwrap_or(0)
            .max(self.init_max_width)
    }

    /// Total wall-clock time across rounds.
    pub fn total_wall(&self) -> Duration {
        self.rounds.iter().map(|r| r.wall).sum()
    }

    /// Total routing-phase wall-clock time across rounds — what the
    /// worker-parallel routing barrier actually costs, for the bench
    /// artifact's routing-overhead budget.
    pub fn total_route_wall(&self) -> Duration {
        self.rounds.iter().map(|r| r.route_wall).sum()
    }

    /// Mean frontier density across all executed rounds, **weighted by
    /// live-range size**: `Σ stepped / Σ live`. An unweighted mean of
    /// per-round fractions would let a masked 10-node tail session drag the
    /// average as hard as a million-node bulk round; weighting makes the
    /// number answer "what fraction of the full-scan work did the engine
    /// actually do". 1.0 for an empty run (nothing was skippable).
    pub fn mean_active_frac(&self) -> f64 {
        let live: usize = self.rounds.iter().map(|r| r.live).sum();
        if live == 0 {
            return 1.0;
        }
        let stepped: usize = self.rounds.iter().map(|r| r.stepped).sum();
        stepped as f64 / live as f64
    }

    /// Total node-steps skipped by frontier gating across the run:
    /// `Σ (live - stepped)`. 0 with gating off; the companion number to
    /// [`mean_active_frac`](EngineMetrics::mean_active_frac) in
    /// `bench_trend`'s frontier column (density says how sparse rounds
    /// were, this says how much absolute work that sparsity saved).
    pub fn total_frontier_skipped(&self) -> usize {
        self.rounds.iter().map(|r| r.live - r.stepped).sum()
    }

    /// The per-round message counts — the replay-determinism fingerprint
    /// (equal seeds must produce equal fingerprints at any shard count).
    pub fn message_counts(&self) -> Vec<usize> {
        self.rounds.iter().map(|r| r.messages).collect()
    }
}

impl fmt::Display for EngineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {} rounds, {} messages (max width {}), {:.2} ms",
            self.total_rounds(),
            self.total_messages(),
            self.max_width(),
            self.total_wall().as_secs_f64() * 1e3,
        )?;
        for r in &self.rounds {
            writeln!(
                f,
                "  r{:<4} {:<24} msgs {:<8} width {:<4} active {:<7} {:.3} ms",
                r.round,
                r.phase,
                r.messages,
                r.max_width,
                r.active_nodes,
                r.wall_ms()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(i: u64, messages: usize, width: usize) -> RoundMetrics {
        RoundMetrics {
            round: i,
            phase: "p".into(),
            messages,
            dropped: 0,
            delayed: 0,
            duplicated: 0,
            lost: 0,
            max_width: width,
            physical_rounds: 1,
            fragments: 0,
            active_nodes: 3,
            live: 3,
            stepped: 3,
            active_frac: 1.0,
            wall: Duration::from_micros(10),
            route_wall: Duration::from_micros(4),
        }
    }

    #[test]
    fn aggregates() {
        let mut m = EngineMetrics::default();
        m.push(round(1, 5, 2));
        m.push(round(2, 7, 1));
        assert_eq!(m.total_rounds(), 2);
        assert_eq!(m.total_messages(), 12);
        assert_eq!(m.max_width(), 2);
        assert_eq!(m.message_counts(), vec![5, 7]);
        assert_eq!(m.total_dropped(), 0);
        assert_eq!(m.total_duplicated(), 0);
        assert_eq!(m.total_lost(), 0);
        assert_eq!(m.total_physical_rounds(), 2);
        assert_eq!(m.total_fragments(), 0);
        assert_eq!(m.total_route_wall(), Duration::from_micros(8));
    }

    #[test]
    fn split_rounds_accumulate_physical_cost() {
        let mut m = EngineMetrics::default();
        let mut wide = round(1, 4, 9);
        wide.physical_rounds = 3;
        wide.fragments = 12;
        m.push(wide);
        m.push(round(2, 1, 1));
        assert_eq!(m.total_rounds(), 2);
        assert_eq!(m.total_physical_rounds(), 4);
        assert_eq!(m.total_fragments(), 12);
    }

    #[test]
    fn absorb_concatenates_sessions() {
        let mut a = EngineMetrics::default();
        a.record_init(3, 1, 0, 0, 0, 2, 0);
        a.push(round(1, 5, 2));
        let mut b = EngineMetrics::default();
        b.record_init(4, 0, 0, 0, 0, 5, 6);
        b.push(round(1, 7, 1));
        b.push(round(2, 2, 1));
        a.absorb(b);
        assert_eq!(a.total_rounds(), 3);
        assert_eq!(a.total_messages(), 3 + 4 + 5 + 7 + 2);
        assert_eq!(a.init_messages, 7);
        assert_eq!(a.init_max_width, 5);
        assert_eq!(a.total_fragments(), 6);
        assert_eq!(a.total_dropped(), 1);
        assert_eq!(a.message_counts(), vec![5, 7, 2]);
    }

    #[test]
    fn mean_active_frac_weights_by_live_range() {
        let mut m = EngineMetrics::default();
        // A big full-scan round and a tiny sparse one: the unweighted mean
        // would be (1.0 + 0.1) / 2 = 0.55; weighting by live size keeps the
        // big round dominant.
        let mut big = round(1, 0, 0);
        big.live = 1000;
        big.stepped = 1000;
        big.active_frac = 1.0;
        let mut small = round(2, 0, 0);
        small.live = 10;
        small.stepped = 1;
        small.active_frac = 0.1;
        m.push(big);
        m.push(small);
        assert!((m.mean_active_frac() - 1001.0 / 1010.0).abs() < 1e-12);
        assert_eq!(m.total_frontier_skipped(), 9);
    }

    #[test]
    fn empty_metrics() {
        let m = EngineMetrics::default();
        assert_eq!(m.total_rounds(), 0);
        assert_eq!(m.max_width(), 0);
        assert!(m.message_counts().is_empty());
    }

    #[test]
    fn display_lists_rounds() {
        let mut m = EngineMetrics::default();
        m.push(round(1, 5, 2));
        let s = m.to_string();
        assert!(s.contains("r1"));
        assert!(s.contains("msgs 5"));
    }
}
