//! Deterministic fault injection: perturb a run without touching programs.
//!
//! A [`FaultPlan`] names (node, round) pairs whose **outbox** is dropped or
//! delayed. Faults are applied by the engine between compute and routing, so
//! node programs stay oblivious — exactly how one probes an algorithm's
//! sensitivity to loss and asynchrony. Plans are plain data: the same plan
//! on the same seed perturbs the run identically at any shard count.

use std::collections::BTreeMap;

use graphs::VertexId;

/// What happens to a node's outbox in a given round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally next round.
    Deliver,
    /// Discard every message of the outbox.
    Drop,
    /// Deliver the outbox `by` rounds late (`by ≥ 1`).
    Delay(u64),
}

/// A deterministic schedule of outbox faults, keyed by `(round, node)`.
///
/// # Examples
///
/// ```
/// use engine::{FaultAction, FaultPlan};
/// let plan = FaultPlan::new().drop_outbox(3, 1).delay_outbox(5, 2, 4);
/// assert_eq!(plan.action(1, 3), FaultAction::Drop);
/// assert_eq!(plan.action(2, 5), FaultAction::Delay(4));
/// assert_eq!(plan.action(1, 5), FaultAction::Deliver);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    schedule: BTreeMap<(u64, VertexId), FaultAction>,
}

impl FaultPlan {
    /// An empty plan: every outbox delivers normally.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Drops `node`'s entire outbox in `round` (round 0 is
    /// [`init`](crate::NodeProgram::init)).
    #[must_use]
    pub fn drop_outbox(mut self, node: VertexId, round: u64) -> Self {
        self.schedule.insert((round, node), FaultAction::Drop);
        self
    }

    /// Delays `node`'s round-`round` outbox by `by` extra rounds (clamped to
    /// at least 1): receivers see it with their round `round + 1 + by` inbox.
    #[must_use]
    pub fn delay_outbox(mut self, node: VertexId, round: u64, by: u64) -> Self {
        self.schedule
            .insert((round, node), FaultAction::Delay(by.max(1)));
        self
    }

    /// The action for `node`'s outbox in `round`.
    pub fn action(&self, round: u64, node: VertexId) -> FaultAction {
        self.schedule
            .get(&(round, node))
            .copied()
            .unwrap_or(FaultAction::Deliver)
    }

    /// Whether the plan injects any fault at all.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_transparent() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.action(10, 10), FaultAction::Deliver);
    }

    #[test]
    fn delay_clamped_to_one() {
        let plan = FaultPlan::new().delay_outbox(0, 1, 0);
        assert_eq!(plan.action(1, 0), FaultAction::Delay(1));
    }

    #[test]
    fn later_insert_wins() {
        let plan = FaultPlan::new().drop_outbox(2, 4).delay_outbox(2, 4, 3);
        assert_eq!(plan.action(4, 2), FaultAction::Delay(3));
        assert_eq!(plan.len(), 1);
    }
}
