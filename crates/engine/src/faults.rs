//! Deterministic fault injection: perturb a run without touching programs.
//!
//! A [`FaultPlan`] names (node, round) pairs whose **outbox** is dropped or
//! delayed, plus an optional seeded **per-edge duplication** rule that
//! re-delivers individual messages. Faults are applied by the engine between
//! compute and routing, so node programs stay oblivious — exactly how one
//! probes an algorithm's sensitivity to loss, asynchrony, and at-least-once
//! delivery. Plans are plain data: the same plan on the same seed perturbs
//! the run identically at any shard count.
//!
//! Duplication and **per-edge loss** are keyed on `(seed, round, sender,
//! receiver, occurrence)` only — pure functions of the traffic, never of
//! the shard layout — so a perturbed run replays bit-identically across
//! shard and worker counts, exactly like the outbox-level faults. Loss and
//! duplication use domain-separated hashes, so installing both draws
//! independent decisions per message.

use std::collections::BTreeMap;

use graphs::VertexId;
use rand::mix64;

/// What happens to a node's outbox in a given round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally next round.
    Deliver,
    /// Discard every message of the outbox.
    Drop,
    /// Deliver the outbox `by` rounds late (`by ≥ 1`).
    Delay(u64),
}

/// A deterministic schedule of outbox faults, keyed by `(round, node)`.
///
/// # Examples
///
/// ```
/// use engine::{FaultAction, FaultPlan};
/// let plan = FaultPlan::new().drop_outbox(3, 1).delay_outbox(5, 2, 4);
/// assert_eq!(plan.action(1, 3), FaultAction::Drop);
/// assert_eq!(plan.action(2, 5), FaultAction::Delay(4));
/// assert_eq!(plan.action(1, 5), FaultAction::Deliver);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    schedule: BTreeMap<(u64, VertexId), FaultAction>,
    duplication: Option<Duplication>,
    loss: Option<Loss>,
    reorder: Option<u64>,
    /// Crash-stop nodes: vertex → first round whose outbox is suppressed
    /// (the node is silent from that round on, forever).
    crashes: BTreeMap<VertexId, u64>,
}

/// Domain separator mixed into the seed of per-edge *loss* decisions, so a
/// plan installing loss and duplication under the same seed draws
/// independent coins for each.
const LOSS_DOMAIN: u64 = 0x6c6f_7373_2d65_6467; // "loss-edg"

/// Domain separator for adversarial *reorder* coins, independent of loss
/// and duplication under a shared seed.
const REORDER_DOMAIN: u64 = 0x7265_6f72_6465_7221; // "reorder!"

/// Seeded per-edge loss: each delivered message is independently discarded
/// with the given probability, decided by hashing the message's
/// coordinates under `seed`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Loss {
    seed: u64,
    /// `probability × u64::MAX`, so the decision is one integer compare.
    threshold: u64,
}

/// Seeded per-edge duplication: each delivered message is independently
/// re-delivered with the given probability, decided by hashing the message's
/// coordinates under `seed`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Duplication {
    seed: u64,
    /// `probability × u64::MAX`, so the decision is one integer compare.
    threshold: u64,
}

impl FaultPlan {
    /// An empty plan: every outbox delivers normally.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Drops `node`'s entire outbox in `round` (round 0 is
    /// [`init`](crate::NodeProgram::init)).
    #[must_use]
    pub fn drop_outbox(mut self, node: VertexId, round: u64) -> Self {
        self.schedule.insert((round, node), FaultAction::Drop);
        self
    }

    /// Delays `node`'s round-`round` outbox by `by` extra rounds (clamped to
    /// at least 1): receivers see it with their round `round + 1 + by` inbox.
    #[must_use]
    pub fn delay_outbox(mut self, node: VertexId, round: u64, by: u64) -> Self {
        self.schedule
            .insert((round, node), FaultAction::Delay(by.max(1)));
        self
    }

    /// Duplicates each delivered message independently with `probability`,
    /// seeded by `seed`. The decision for a message is a pure function of
    /// `(seed, round, sender, receiver, occurrence)` — replayable at any
    /// shard count. Duplicates ride in the same round as their original
    /// (immediately after it in the receiver's inbox); dropped and delayed
    /// outboxes are not duplicated.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < probability <= 1.0`.
    #[must_use]
    pub fn duplicate_edges(mut self, seed: u64, probability: f64) -> Self {
        assert!(
            probability > 0.0 && probability <= 1.0,
            "duplication probability must be in (0, 1], got {probability}"
        );
        self.duplication = Some(Duplication {
            seed,
            threshold: (probability * u64::MAX as f64) as u64,
        });
        self
    }

    /// Loses each delivered message independently with `probability`,
    /// seeded by `seed` — the per-edge counterpart of a drop fault, and the
    /// symmetric twin of [`duplicate_edges`](FaultPlan::duplicate_edges).
    /// The decision for a message is a pure function of `(seed, round,
    /// sender, receiver, occurrence)` — replayable at any shard or worker
    /// count. Losses apply to a delivered outbox before duplication (a lost
    /// message is never duplicated); dropped and delayed outboxes are
    /// already gone as a whole.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < probability <= 1.0`.
    #[must_use]
    pub fn lose_edges(mut self, seed: u64, probability: f64) -> Self {
        assert!(
            probability > 0.0 && probability <= 1.0,
            "loss probability must be in (0, 1], got {probability}"
        );
        self.loss = Some(Loss {
            seed,
            threshold: (probability * u64::MAX as f64) as u64,
        });
        self
    }

    /// Adversarially permutes each inbox's delivery order with a seeded
    /// rule, applied together with the deterministic sender sort — so
    /// protocols that silently *rely* on arrival order (send order within
    /// one sender's burst: `Multi` repeats, duplicated deliveries, delayed
    /// batches racing fresh traffic) are flushed out. The permutation is a
    /// pure function of `(seed, round, receiver, sender)` over the
    /// canonical sorted order, so a reordered run still replays
    /// bit-identically at any shard or worker count.
    #[must_use]
    pub fn reorder(mut self, seed: u64) -> Self {
        self.reorder = Some(seed);
        self
    }

    /// Crash-stops `vertex` at `round`: its outbox is suppressed from that
    /// round on, forever (round 0 crashes a node before its free `init`
    /// exchange). The node's program still steps locally — a crashed
    /// processor's *state* is irrelevant to the network, only its silence
    /// is observable — and the suppressed messages are counted as dropped.
    /// Calling again with an earlier round moves the crash earlier.
    #[must_use]
    pub fn crash(mut self, vertex: VertexId, round: u64) -> Self {
        let at = self.crashes.entry(vertex).or_insert(round);
        *at = (*at).min(round);
        self
    }

    /// The action for `node`'s outbox in `round`. A crash-stop overrides
    /// any scheduled outbox fault from its round on.
    pub fn action(&self, round: u64, node: VertexId) -> FaultAction {
        if self.crashes.get(&node).is_some_and(|&at| round >= at) {
            return FaultAction::Drop;
        }
        self.schedule
            .get(&(round, node))
            .copied()
            .unwrap_or(FaultAction::Deliver)
    }

    /// The adversarial reorder seed, if installed.
    pub(crate) fn reorder_seed(&self) -> Option<u64> {
        self.reorder
    }

    /// Whether any duplication rule is installed (cheap pre-check so the
    /// staging hot path skips the per-message hash entirely).
    pub(crate) fn duplicates_messages(&self) -> bool {
        self.duplication.is_some()
    }

    /// Whether the `occurrence`-th message from `src` to `dst` in `round`
    /// is duplicated.
    pub(crate) fn duplicates(
        &self,
        round: u64,
        src: VertexId,
        dst: VertexId,
        occurrence: usize,
    ) -> bool {
        let Some(dup) = self.duplication else {
            return false;
        };
        let h = mix64(
            mix64(mix64(mix64(dup.seed, round), src as u64), dst as u64),
            occurrence as u64,
        );
        h <= dup.threshold
    }

    /// Whether any loss rule is installed (cheap pre-check so the staging
    /// hot path skips the per-message hash entirely).
    pub(crate) fn loses_messages(&self) -> bool {
        self.loss.is_some()
    }

    /// Whether the `occurrence`-th message from `src` to `dst` in `round`
    /// is lost.
    pub(crate) fn loses(
        &self,
        round: u64,
        src: VertexId,
        dst: VertexId,
        occurrence: usize,
    ) -> bool {
        let Some(loss) = self.loss else {
            return false;
        };
        let h = mix64(
            mix64(
                mix64(mix64(mix64(loss.seed, LOSS_DOMAIN), round), src as u64),
                dst as u64,
            ),
            occurrence as u64,
        );
        h <= loss.threshold
    }

    /// Whether the plan injects any fault at all.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
            && self.duplication.is_none()
            && self.loss.is_none()
            && self.reorder.is_none()
            && self.crashes.is_empty()
    }

    /// Number of scheduled faults (outbox schedule entries plus crash-stop
    /// nodes; per-edge rules are not scheduled events).
    pub fn len(&self) -> usize {
        self.schedule.len() + self.crashes.len()
    }
}

/// Applies the seeded adversarial reorder to a sender-sorted inbox: each
/// maximal run of messages from one sender is permuted by a Fisher–Yates
/// whose coins are a pure function of `(seed, round, receiver, sender)`.
/// Because the run's pre-permutation order (send order) and membership are
/// shard-invariant, so is the permuted delivery order — reordering
/// composes with the engine's replay contract like every other fault.
pub(crate) fn reorder_inbox<T>(
    inbox: &mut [(VertexId, T)],
    seed: u64,
    round: u64,
    receiver: VertexId,
) {
    let mut i = 0;
    while i < inbox.len() {
        let src = inbox[i].0;
        let mut j = i + 1;
        while j < inbox.len() && inbox[j].0 == src {
            j += 1;
        }
        if j - i > 1 {
            let base = mix64(
                mix64(mix64(mix64(seed, REORDER_DOMAIN), round), receiver as u64),
                src as u64,
            );
            let run = &mut inbox[i..j];
            for k in (1..run.len()).rev() {
                let pick = (mix64(base, k as u64) % (k as u64 + 1)) as usize;
                run.swap(k, pick);
            }
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_transparent() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.action(10, 10), FaultAction::Deliver);
    }

    #[test]
    fn delay_clamped_to_one() {
        let plan = FaultPlan::new().delay_outbox(0, 1, 0);
        assert_eq!(plan.action(1, 0), FaultAction::Delay(1));
    }

    #[test]
    fn later_insert_wins() {
        let plan = FaultPlan::new().drop_outbox(2, 4).delay_outbox(2, 4, 3);
        assert_eq!(plan.action(4, 2), FaultAction::Delay(3));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn duplication_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new().duplicate_edges(7, 0.5);
        let b = FaultPlan::new().duplicate_edges(7, 0.5);
        let c = FaultPlan::new().duplicate_edges(8, 0.5);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 0, "duplication is not a scheduled outbox fault");
        let draw = |p: &FaultPlan| {
            (0..200u64)
                .map(|r| p.duplicates(r, 3, 5, 0))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(&a), draw(&b), "same seed must replay");
        assert_ne!(draw(&a), draw(&c), "different seed must diverge");
        let hits = draw(&a).iter().filter(|&&d| d).count();
        assert!(
            (40..160).contains(&hits),
            "p = 0.5 should hit ~half: {hits}"
        );
    }

    #[test]
    fn probability_one_duplicates_everything() {
        let plan = FaultPlan::new().duplicate_edges(1, 1.0);
        assert!((0..50u64).all(|r| plan.duplicates(r, 0, 1, 0)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_probability_rejected() {
        let _ = FaultPlan::new().duplicate_edges(1, 0.0);
    }

    #[test]
    fn loss_is_deterministic_and_independent_of_duplication() {
        let a = FaultPlan::new().lose_edges(7, 0.5);
        let b = FaultPlan::new().lose_edges(7, 0.5);
        assert!(!a.is_empty());
        let draw = |p: &FaultPlan| (0..200u64).map(|r| p.loses(r, 3, 5, 0)).collect::<Vec<_>>();
        assert_eq!(draw(&a), draw(&b), "same seed must replay");
        let hits = draw(&a).iter().filter(|&&l| l).count();
        assert!(
            (40..160).contains(&hits),
            "p = 0.5 should hit ~half: {hits}"
        );
        // Domain separation: under one seed, loss and duplication coins
        // must not be the same sequence.
        let both = FaultPlan::new().lose_edges(7, 0.5).duplicate_edges(7, 0.5);
        let losses: Vec<bool> = (0..200u64).map(|r| both.loses(r, 3, 5, 0)).collect();
        let dups: Vec<bool> = (0..200u64).map(|r| both.duplicates(r, 3, 5, 0)).collect();
        assert_ne!(
            losses, dups,
            "loss must be domain-separated from duplication"
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_loss_probability_rejected() {
        let _ = FaultPlan::new().lose_edges(1, 0.0);
    }

    #[test]
    fn crash_suppresses_from_its_round_on() {
        let plan = FaultPlan::new().crash(4, 3).delay_outbox(4, 5, 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.action(2, 4), FaultAction::Deliver);
        assert_eq!(plan.action(3, 4), FaultAction::Drop);
        assert_eq!(plan.action(100, 4), FaultAction::Drop, "crash is forever");
        assert_eq!(plan.action(5, 4), FaultAction::Drop, "crash beats delay");
        assert_eq!(plan.action(3, 5), FaultAction::Deliver, "others unaffected");
        // Re-crashing only ever moves the crash earlier.
        let plan = plan.crash(4, 10).crash(4, 1);
        assert_eq!(plan.action(1, 4), FaultAction::Drop);
    }

    #[test]
    fn reorder_permutes_only_same_sender_runs_deterministically() {
        let sorted = vec![(1usize, 'a'), (2, 'b'), (2, 'c'), (2, 'd'), (5, 'e')];
        // Find a seed that actually moves something in sender 2's run.
        let mut moved = None;
        for seed in 0..64u64 {
            let mut inbox = sorted.clone();
            reorder_inbox(&mut inbox, seed, 7, 0);
            assert_eq!(inbox[0], (1, 'a'), "singleton runs never move");
            assert_eq!(inbox[4], (5, 'e'));
            let senders: Vec<usize> = inbox.iter().map(|&(s, _)| s).collect();
            assert_eq!(senders, vec![1, 2, 2, 2, 5], "sender sort preserved");
            if inbox != sorted {
                moved = Some((seed, inbox));
                break;
            }
        }
        let (seed, perturbed) = moved.expect("some seed permutes a 3-run");
        let mut replay = sorted.clone();
        reorder_inbox(&mut replay, seed, 7, 0);
        assert_eq!(replay, perturbed, "same coordinates replay identically");
        let mut other_round = sorted.clone();
        reorder_inbox(&mut other_round, seed, 8, 0);
        let mut other_receiver = sorted.clone();
        reorder_inbox(&mut other_receiver, seed, 7, 9);
        // Coins are drawn per (round, receiver): at least the full triple
        // never collides into the identity for every coordinate at once.
        assert!(
            perturbed != sorted || other_round != sorted || other_receiver != sorted,
            "reorder coins must depend on the coordinates"
        );
    }

    #[test]
    fn reorder_plan_is_nonempty_and_exposes_its_seed() {
        let plan = FaultPlan::new().reorder(11);
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 0, "reorder is a rule, not a scheduled event");
        assert_eq!(plan.reorder_seed(), Some(11));
        assert_eq!(FaultPlan::new().reorder_seed(), None);
    }
}
