//! The persistent worker-pool executor: a **type-erased, session-shareable
//! thread pool** ([`EnginePool`]) driving a **two-phase round protocol** —
//! compute, then routing — with every phase worker-parallel.
//!
//! PR 1's driver spawned fresh scoped threads every round; PR 2 replaced
//! that with a persistent per-session pool but still routed messages on the
//! driver thread; a later revision moved routing onto the workers too. This
//! revision splits the executor in two layers so the *threads* can outlive
//! any single session:
//!
//! * [`PoolCore`] — the type-erased substrate: OS threads, the
//!   `start`/`done` barrier pair, a lifetime-erased job pointer, and
//!   per-worker panic slots. It knows nothing about message types, so one
//!   core can serve an `EngineSession<GatherProgram>` and an
//!   `EngineSession<RulingProgram>` back to back — which is exactly what a
//!   peeling pipeline does, session per level.
//! * [`WorkerPool`] — the typed session layer: staging arenas and route
//!   tallies for one session's message type, translated into plain
//!   `Fn(group)` jobs for the core. All typed state lives here; the core
//!   only ever sees `&dyn Fn(usize)`.
//!
//! Sessions either spawn a private core (the historical behavior) or
//! borrow a shared [`EnginePool`] via
//! [`EngineConfig::with_pool`](crate::EngineConfig::with_pool) — thread
//! spawns then happen once per *pipeline*, not once per session.
//!
//! Each round is two epochs on the same reusable barrier pair:
//!
//! * **Compute epoch** — every worker group walks its dense vertex range,
//!   calling `on_round` and staging outbound traffic in its own arena. The
//!   arena is **bucketed by destination group**: a message for a vertex
//!   owned by group `g` lands in bucket `g`, so the routing epoch can hand
//!   each bucket to exactly one consumer without locks or cloning.
//! * **Routing epoch** — worker `g` rebuilds its group's `next` segment
//!   with a **counting sort** over bucket `g` of *every* arena (in
//!   ascending group order): count per receiver, prefix-sum into the span
//!   table, place each message exactly once into the contiguous segment,
//!   then put each span into delivery order with a second counting pass on
//!   its precomputed sender ranks (`mailbox::sort_span_by_rank` — no
//!   comparison sort anywhere in the epoch). Steady-state rounds
//!   perform no per-message allocation — segments, spans, and the counting
//!   scratch persist across rounds. Between the two epochs the driver does
//!   the cheap global work: tallying fault counters, scheduling
//!   fault-delayed batches, and injecting batches that come due.
//!
//! Determinism is untouched: for any inbox, messages arrive in (source
//! group, staging order) order — exactly the order the old driver-side
//! drain produced — and the final stable rank counting pass reproduces the
//! historical stable sort by original sender id verbatim, making
//! the delivered order a pure function of the traffic. Worker count and
//! shard count remain pure performance knobs.
//!
//! * **Worker lifetime** — `workers - 1` OS threads are spawned when the
//!   core boots (per session by default, once per pipeline with a shared
//!   pool) and live until the last [`EnginePool`] handle drops. The driver
//!   thread itself executes worker group 0 in both epochs, so a
//!   `workers = 1` pool spawns no threads at all and runs everything inline
//!   with zero synchronization.
//! * **Barrier protocol** — each epoch is one `start`/`done` rendezvous.
//!   The driver publishes the epoch's job pointer, crosses `start`, does
//!   its own group's share, and crosses `done`; workers park in between.
//!   Barrier rendezvous establishes the happens-before edges that make the
//!   job publication and arena handoffs safe.
//! * **Panic discipline** — every job invocation runs under
//!   `catch_unwind`; a panic is recorded in the worker's panic slot, the
//!   worker still reaches the `done` barrier, and the driver resumes the
//!   unwind on its own thread. The protocol therefore never deadlocks:
//!   every participant reaches every barrier, and shutdown (which raises
//!   the flag and releases the `start` barrier once more) always joins
//!   cleanly — even while unwinding from a propagated program panic.

use std::any::Any;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use graphs::VertexId;

use crate::context::NodeCtx;
use crate::faults::{FaultAction, FaultPlan};
use crate::mailbox::{
    finalize_inbox, sort_span_by_rank, GroupInboxes, Inboxes, RouteTally, RouteTargets, Routed,
};
use crate::program::{Activation, EngineMessage, NodeProgram, Outbox};
use crate::view::SenderRanks;

/// Global count of worker threads ever spawned by any [`PoolCore`] in this
/// process — the observable that pins "pool sharing actually shares": a
/// peeling pipeline reusing one [`EnginePool`] must hold this flat across
/// levels. Exposed as [`crate::worker_threads_spawned`].
pub(crate) static SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Everything the staging path needs besides the outbox itself: the fault
/// plan, the view's id tables, the group partition, and the CONGEST budget.
/// Built by the driver once per epoch; borrowed by every worker group.
pub(crate) struct StageEnv<'a> {
    /// Outbox fault schedule + duplication rule.
    pub(crate) faults: &'a FaultPlan,
    /// Original id → dense index (`usize::MAX` for masked-out vertices).
    pub(crate) dense: &'a [usize],
    /// Dense index → original id.
    pub(crate) live: &'a [VertexId],
    /// Per-directed-edge sender ranks (see [`SenderRanks`]): staging
    /// attaches each message's counting-sort key in O(1).
    pub(crate) ranks: &'a SenderRanks,
    /// Dense group boundaries, ascending, `len = groups + 1`.
    pub(crate) bounds: &'a [usize],
    /// Per-message width budget (`usize::MAX` = no CONGEST mode).
    pub(crate) congest: usize,
    /// Frontier-sparse gating: when set, a node with an empty inbox is
    /// stepped only if its [`Activation`] hint requests the round. Cleared
    /// by [`EngineConfig::with_frontier(false)`] to force full scans.
    pub(crate) frontier: bool,
}

impl StageEnv<'_> {
    /// The worker group owning dense vertex `dv`.
    fn group_of(&self, dv: usize) -> usize {
        self.bounds.partition_point(|&b| b <= dv) - 1
    }

    fn groups(&self) -> usize {
        self.bounds.len() - 1
    }
}

/// Everything the routing epoch needs beyond the arenas: the
/// fragmentation budget, the round being routed (keys the reorder coins),
/// the adversarial reorder rule, and the dense → original id table.
pub(crate) struct RouteEnv<'a> {
    /// Fragmentation budget in words (`usize::MAX` = splitting off).
    pub(crate) split: usize,
    /// The logical round whose traffic is being routed (0 = init).
    pub(crate) round: u64,
    /// Seeded adversarial same-sender-run reorder, if installed.
    pub(crate) reorder: Option<u64>,
    /// Dense index → original id (receiver keying for reorder coins).
    pub(crate) live: &'a [VertexId],
}

/// One worker group's per-round contribution: a persistent staging arena
/// (bucketed by destination group) for outbound traffic plus the round's
/// observed counters. Reused across rounds — [`reset`](ShardYield::reset)
/// clears without releasing capacity.
///
/// Buckets are `UnsafeCell`s because the routing epoch hands bucket `g` of
/// every arena to worker `g` while other workers drain their own buckets of
/// the same arena: access is disjoint by bucket index, synchronized by the
/// epoch barriers.
pub(crate) struct ShardYield<M> {
    /// Outbound messages staged this round (surviving faults), bucketed by
    /// destination worker group.
    buckets: Vec<UnsafeCell<Vec<Routed<M>>>>,
    /// Scratch: each bucket's length when the current outbox began staging.
    starts: Vec<usize>,
    /// Fault-delayed batches: `(due round, one node's outbox)`.
    pub(crate) delayed_batches: Vec<(u64, Vec<Routed<M>>)>,
    /// Messages emitted (before faults).
    pub(crate) messages: usize,
    /// Messages discarded by drop faults.
    pub(crate) dropped: usize,
    /// Messages rescheduled by delay faults.
    pub(crate) delayed: usize,
    /// Extra deliveries created by per-edge duplication.
    pub(crate) duplicated: usize,
    /// Messages discarded by seeded per-edge loss.
    pub(crate) lost: usize,
    /// Widest message emitted.
    pub(crate) max_width: usize,
    /// Nodes actually stepped (`on_round` called) this round — the
    /// frontier. Equals the range length when gating is off.
    pub(crate) stepped: usize,
    /// Stepped nodes whose halt vote flipped to "halted" this round. An
    /// unstepped node's vote cannot change (its state is untouched), so
    /// these deltas keep the driver's live halt count exact without an
    /// O(range) census.
    pub(crate) newly_halted: usize,
    /// Stepped nodes whose halt vote flipped back to "active" this round.
    pub(crate) newly_unhalted: usize,
    /// Wake registrations of the stepped nodes, `(dense index, due
    /// round)` with `u64::MAX` = never — each node's post-step
    /// [`Activation`] hint resolved against the current round. Drained by
    /// the driver into its per-group wake queues between epochs. Filled
    /// only when `env.frontier` is set.
    pub(crate) new_wakes: Vec<(usize, u64)>,
}

impl<M> ShardYield<M> {
    /// An arena with one bucket per destination worker group.
    pub(crate) fn with_groups(groups: usize) -> Self {
        ShardYield {
            buckets: (0..groups).map(|_| UnsafeCell::new(Vec::new())).collect(),
            starts: vec![0; groups],
            delayed_batches: Vec::new(),
            messages: 0,
            dropped: 0,
            delayed: 0,
            duplicated: 0,
            lost: 0,
            max_width: 0,
            stepped: 0,
            newly_halted: 0,
            newly_unhalted: 0,
            new_wakes: Vec::new(),
        }
    }

    /// Number of destination buckets.
    pub(crate) fn groups(&self) -> usize {
        self.buckets.len()
    }

    /// Exclusive bucket access (tests build staged traffic directly).
    #[cfg(test)]
    pub(crate) fn bucket_mut(&mut self, b: usize) -> &mut Vec<Routed<M>> {
        self.buckets[b].get_mut()
    }

    /// Bucket access through a shared reference, for the routing epoch.
    ///
    /// # Safety
    ///
    /// The caller must be bucket `b`'s sole accessor for the duration of
    /// the returned borrow (the routing epoch assigns bucket `b` of every
    /// arena to worker `b` exclusively).
    #[allow(clippy::mut_from_ref)]
    unsafe fn bucket_shared(&self, b: usize) -> &mut Vec<Routed<M>> {
        unsafe { &mut *self.buckets[b].get() }
    }

    /// Clears the arena for a new round, keeping every allocation.
    fn reset(&mut self) {
        for bucket in &mut self.buckets {
            bucket.get_mut().clear();
        }
        self.delayed_batches.clear();
        self.messages = 0;
        self.dropped = 0;
        self.delayed = 0;
        self.duplicated = 0;
        self.lost = 0;
        self.max_width = 0;
        self.stepped = 0;
        self.newly_halted = 0;
        self.newly_unhalted = 0;
        self.new_wakes.clear();
    }
}

/// Steps the nodes of `programs`/`ctxs` (one group's dense range),
/// reading inboxes from the group's segment view and expanding outboxes
/// into `y`'s bucketed arena, applying faults.
///
/// With `env.frontier` set this is **frontier-indexed**: instead of
/// scanning the whole range, only the vertices of the inbox active list
/// (built for free by last round's routing epoch) plus the driver's `due`
/// wake list are stepped, so quiescent-bulk rounds cost O(frontier)
/// rather than O(range). A node in neither list behaves exactly as if its
/// `on_round` had returned `Silent` without touching state — the
/// [`Activation`](crate::Activation) contract. Both lists are pure
/// functions of shard-invariant state (the routed traffic and the hints),
/// so gated runs replay bit-identically at any shard count; with the flag
/// off, every node of the range is stepped — the historical full scan.
///
/// Either path reports halt-vote *deltas* of the stepped nodes (an
/// unstepped node's vote cannot change, so the driver's running halt
/// count stays exact without an O(range) census); the frontier path also
/// records each stepped node's next wake request in `y.new_wakes`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_range<P: NodeProgram>(
    programs: &mut [P],
    ctxs: &mut [NodeCtx<'_>],
    inboxes: GroupInboxes<'_, P::Message>,
    due: &[usize],
    base: usize,
    round: u64,
    env: &StageEnv<'_>,
    y: &mut ShardYield<P::Message>,
) {
    y.reset();
    debug_assert_eq!(inboxes.len(), programs.len());
    if env.frontier {
        let len = programs.len();
        let mut step = |i: usize, y: &mut ShardYield<P::Message>| {
            let (p, ctx) = (&mut programs[i], &mut ctxs[i]);
            let was_halted = p.halted();
            y.stepped += 1;
            ctx.round = round;
            let outbox = p.on_round(ctx, inboxes.inbox(i));
            stage_outbox(ctx.id, outbox, ctx.neighbors, round, env, y);
            match (was_halted, p.halted()) {
                (false, true) => y.newly_halted += 1,
                (true, false) => y.newly_unhalted += 1,
                _ => {}
            }
            let wake = match p.activation() {
                Activation::EveryRound => round + 1,
                Activation::OnMessage => u64::MAX,
                Activation::WakeAt(r) => r.max(round + 1),
            };
            y.new_wakes.push((base + i, wake));
        };
        for &dv in inboxes.active {
            debug_assert!(dv >= base && dv - base < len);
            step(dv - base, y);
        }
        for &dv in due {
            debug_assert!(dv >= base && dv - base < len);
            // A due node with traffic was already stepped off the active
            // list; the lists are otherwise disjoint (active holds exactly
            // the non-empty inboxes) and internally duplicate-free.
            if inboxes.inbox(dv - base).is_empty() {
                step(dv - base, y);
            }
        }
    } else {
        for (i, (p, ctx)) in programs.iter_mut().zip(ctxs.iter_mut()).enumerate() {
            let was_halted = p.halted();
            y.stepped += 1;
            ctx.round = round;
            let outbox = p.on_round(ctx, inboxes.inbox(i));
            stage_outbox(ctx.id, outbox, ctx.neighbors, round, env, y);
            match (was_halted, p.halted()) {
                (false, true) => y.newly_halted += 1,
                (true, false) => y.newly_unhalted += 1,
                _ => {}
            }
        }
    }
}

/// Expands one node's outbox into the arena, enforces the CONGEST budget,
/// and applies its fault action (drop/delay by per-bucket truncate/split,
/// duplication by per-bucket append).
///
/// # Panics
///
/// Panics if a message is wider than `env.congest` — the strict CONGEST
/// mode's certification failure.
pub(crate) fn stage_outbox<M: EngineMessage>(
    src: VertexId,
    outbox: Outbox<M>,
    neighbors: &[VertexId],
    round: u64,
    env: &StageEnv<'_>,
    y: &mut ShardYield<M>,
) {
    debug_assert_eq!(y.groups(), env.groups());
    if matches!(outbox, Outbox::Silent) {
        // Fast path for quiet nodes (the common late-round case): an empty
        // batch stages nothing and every fault action on it is a no-op, so
        // skip the per-bucket bookkeeping entirely.
        return;
    }
    for b in 0..y.buckets.len() {
        y.starts[b] = y.buckets[b].get_mut().len();
    }
    let width = expand_into(src, outbox, neighbors, env, &mut y.buckets);
    let batch_len: usize = y
        .buckets
        .iter_mut()
        .zip(&y.starts)
        .map(|(bucket, &s)| bucket.get_mut().len() - s)
        .sum();
    y.messages += batch_len;
    y.max_width = y.max_width.max(width);
    assert!(
        width <= env.congest,
        "CONGEST violation: node {src} emitted a {width}-word message in \
         round {round}, budget {} words",
        env.congest
    );
    match env.faults.action(round, src) {
        FaultAction::Deliver => {
            // Loss first, duplication on the survivors: a lost message is
            // never duplicated. Both decisions are pure functions of the
            // traffic coordinates, so the combined perturbation replays at
            // any shard layout.
            if env.faults.loses_messages() {
                lose_batch(src, round, env, y);
            }
            if env.faults.duplicates_messages() {
                duplicate_batch(src, round, env, y);
            }
        }
        FaultAction::Drop => {
            y.dropped += batch_len;
            for (b, bucket) in y.buckets.iter_mut().enumerate() {
                bucket.get_mut().truncate(y.starts[b]);
            }
        }
        FaultAction::Delay(by) => {
            y.delayed += batch_len;
            let mut batch = Vec::with_capacity(batch_len);
            for (b, bucket) in y.buckets.iter_mut().enumerate() {
                batch.append(&mut bucket.get_mut().split_off(y.starts[b]));
            }
            y.delayed_batches.push((round + 1 + by, batch));
        }
    }
}

/// Removes each seeded-lost message of the current outbox's batch from its
/// bucket. Occurrence indices are taken over the batch as staged — per
/// destination, in emission order — so the decision is independent of the
/// bucket partition, exactly like duplication.
fn lose_batch<M: EngineMessage>(
    src: VertexId,
    round: u64,
    env: &StageEnv<'_>,
    y: &mut ShardYield<M>,
) {
    for (b, bucket) in y.buckets.iter_mut().enumerate() {
        let start = y.starts[b];
        let bucket = bucket.get_mut();
        if start == bucket.len() {
            continue;
        }
        // Decide per message against its original occurrence index, then
        // compact the survivors in place.
        let doomed: Vec<bool> = (start..bucket.len())
            .map(|i| {
                let dv = bucket[i].0;
                let occurrence = bucket[start..i].iter().filter(|r| r.0 == dv).count();
                env.faults.loses(round, src, env.live[dv], occurrence)
            })
            .collect();
        let mut kept = start;
        for (offset, lost) in doomed.iter().enumerate() {
            if *lost {
                y.lost += 1;
            } else {
                bucket.swap(kept, start + offset);
                kept += 1;
            }
        }
        bucket.truncate(kept);
    }
}

/// Appends a seeded duplicate of each chosen message right after the
/// current outbox's batch in its bucket. Keyed on `(round, src, original
/// dst, occurrence)`, so the decision — and the delivered order, after the
/// stable sender sort — is independent of the bucket partition.
fn duplicate_batch<M: EngineMessage>(
    src: VertexId,
    round: u64,
    env: &StageEnv<'_>,
    y: &mut ShardYield<M>,
) {
    for (b, bucket) in y.buckets.iter_mut().enumerate() {
        let start = y.starts[b];
        let bucket = bucket.get_mut();
        let mut dups: Vec<Routed<M>> = Vec::new();
        for i in start..bucket.len() {
            let dv = bucket[i].0;
            // Occurrence index among this outbox's messages to the same
            // destination (> 0 only for Multi outboxes repeating a target).
            let occurrence = bucket[start..i].iter().filter(|r| r.0 == dv).count();
            if env.faults.duplicates(round, src, env.live[dv], occurrence) {
                dups.push(bucket[i].clone());
            }
        }
        y.duplicated += dups.len();
        bucket.append(&mut dups);
    }
}

/// Expands an outbox into routed point-to-point messages appended to the
/// destination-group buckets; returns the widest message in the batch (0
/// for an empty batch).
///
/// # Panics
///
/// Panics if a unicast/multi destination is not a (live) neighbor of the
/// sender — programs may only talk over live edges; that is the LOCAL
/// model restricted to the session's [`GraphView`](crate::GraphView).
fn expand_into<M: EngineMessage>(
    src: VertexId,
    outbox: Outbox<M>,
    neighbors: &[VertexId],
    env: &StageEnv<'_>,
    buckets: &mut [UnsafeCell<Vec<Routed<M>>>],
) -> usize {
    let sv = env.dense[src];
    debug_assert_ne!(sv, usize::MAX, "stepped senders are live");
    // `i` is the destination's position in the sender's neighbor list —
    // the coordinate [`SenderRanks`] is keyed on. Broadcasts get it for
    // free from the loop; unicast/multi reuse the membership check's
    // binary-search position, so attaching the rank costs O(1) either way.
    let push = |dst: VertexId, i: usize, m: M, buckets: &mut [UnsafeCell<Vec<Routed<M>>>]| {
        let dv = env.dense[dst];
        debug_assert_ne!(dv, usize::MAX, "neighbors are live by construction");
        let rank = env.ranks.rank(sv, i);
        buckets[env.group_of(dv)].get_mut().push((dv, src, rank, m));
    };
    match outbox {
        Outbox::Silent => 0,
        Outbox::Broadcast(m) => {
            if neighbors.is_empty() {
                return 0;
            }
            let width = m.width();
            for (i, &dst) in neighbors.iter().enumerate() {
                push(dst, i, m.clone(), buckets);
            }
            width
        }
        Outbox::Unicast(dst, m) => {
            let Ok(i) = neighbors.binary_search(&dst) else {
                panic!("node {src} unicast to non-neighbor {dst}")
            };
            let width = m.width();
            push(dst, i, m, buckets);
            width
        }
        Outbox::Multi(msgs) => {
            let mut width = 0;
            for (dst, m) in msgs {
                let Ok(i) = neighbors.binary_search(&dst) else {
                    panic!("node {src} sent to non-neighbor {dst}")
                };
                width = width.max(m.width());
                push(dst, i, m, buckets);
            }
            width
        }
    }
}

/// The routing epoch's per-worker share: rebuild group `group`'s `next`
/// segment with a counting sort over its pending-delayed list and bucket
/// `group` of every arena (pending first, then ascending arena order —
/// the determinism contract), put each span into delivery order with the
/// rank counting pass (`mailbox::sort_span_by_rank` over the rank
/// side-buffer filled during placement), then finalize it — fragmentation
/// / reassembly in split mode and the optional adversarial reorder (see
/// `mailbox::finalize_inbox`). Returns the range's [`RouteTally`] (frames
/// produced, widest delivered message). No step compares two messages:
/// the epoch is O(traffic + frontier).
///
/// The sort is **frontier-sparse**: every pass walks only the vertices
/// that actually receive traffic this round, collected into the buffer's
/// active list as the counting pass runs. Stale spans (non-empty when
/// this buffer was last routed, two flips ago) are reset off the old
/// active list, and the counting scratch is re-zeroed entry by entry, so
/// the whole epoch is O(frontier + messages) — a quiescent round never
/// touches the bulk of the range. The invariants carried between epochs:
/// `t.counts` is all-zeros, and every span outside the buffer's active
/// list is `(0, 0)`.
///
/// # Safety
///
/// The caller must guarantee, for the duration of the call: bucket `group`
/// of every arena is accessed by this caller alone; `t.segs.add(group)`,
/// `t.active.add(group)`, and `t.pending.add(group)` are accessed by this
/// caller alone; the per-vertex arrays behind `t.spans` / `t.counts` /
/// `t.reasm` hold at least `range.end` entries, with the entries in
/// `range` accessed by this caller alone. The epoch barrier protocol
/// provides all of it.
unsafe fn route_range<M: EngineMessage>(
    arenas: &[ArenaSlot<M>],
    group: usize,
    t: RouteTargets<M>,
    range: Range<usize>,
    env: &RouteEnv<'_>,
) -> RouteTally {
    let base = range.start;
    // SAFETY: `range` is this worker's exclusive slice of the per-vertex
    // arrays; segment, active list, pending list, and encode arena `group`
    // are ours alone.
    let counts = unsafe { std::slice::from_raw_parts_mut(t.counts.add(base), range.len()) };
    let spans = unsafe { std::slice::from_raw_parts_mut(t.spans.add(base), range.len()) };
    let active = unsafe { &mut *t.active.add(group) };
    let pending = unsafe { &mut *t.pending.add(group) };
    let seg = unsafe { &mut *t.segs.add(group) };
    let scratch = unsafe { &mut *t.scratch.add(group) };
    let rank_buf = unsafe { &mut *t.rank_bufs.add(group) };
    let vbits = unsafe { &mut *t.vbits.add(group) };
    let rank_scratch = unsafe { &mut *t.rank_scratch.add(group) };

    // Reset exactly the spans this buffer's previous routing left
    // non-empty — its active list. Every other span of the range is
    // already (0, 0), so this is the O(frontier) twin of the old
    // O(range) `spans.fill((0, 0))`.
    for &dv in active.iter() {
        debug_assert!(range.contains(&dv), "active {group} holds only our range");
        spans[dv - base] = (0, 0);
    }
    active.clear();

    // Counting pass: pending-delayed traffic plus every arena's bucket,
    // marking each receiver in the group's two-level bitmap. `counts` is
    // all-zeros on entry (each routing re-zeroes what it touched).
    vbits.ensure(range.len());
    for &(dv, _, _, _) in pending.iter() {
        debug_assert!(range.contains(&dv), "pending {group} holds only our range");
        counts[dv - base] += 1;
        vbits.set(dv - base);
    }
    for arena in arenas {
        // SAFETY: shared view of the arena; bucket `group` is ours alone.
        let bucket = unsafe { (*arena.0.get()).bucket_shared(group) };
        for r in bucket.iter() {
            debug_assert!(range.contains(&r.0), "bucket {group} holds only our range");
            counts[r.0 - base] += 1;
            vbits.set(r.0 - base);
        }
    }
    if !vbits.any() {
        // A quiet group: nothing to place, and the stale spans are already
        // reset — the whole epoch cost O(previous frontier).
        seg.clear();
        return RouteTally::default();
    }
    // The compute epoch walks the list in order; staging order feeds the
    // delivery contract, so the index must ascend like a full scan would.
    // Draining the bitmap enumerates the receivers ascending in
    // O(frontier + range/4096) — the comparison-free twin of the old
    // push-on-first-sighting + `sort_unstable`.
    vbits.drain(|i| active.push(base + i));

    // Prefix-sum the active counts into spans; the counts become
    // placement cursors.
    let mut total = 0usize;
    for &dv in active.iter() {
        let c = &mut counts[dv - base];
        spans[dv - base] = (total, *c);
        *c = total;
        total += spans[dv - base].1;
    }

    // Placement pass, same source order as the counting pass: pending
    // first (so delayed batches precede fresh same-sender traffic after
    // the stable rank pass), then the arenas in ascending order. Each
    // message's sender rank lands in the side-buffer at the same cursor
    // its payload takes, giving the rank pass contiguous keys per span.
    seg.clear();
    seg.reserve(total);
    if rank_buf.len() < total {
        rank_buf.resize(total, 0);
    }
    let out = seg.as_mut_ptr();
    let rank_out = rank_buf.as_mut_ptr();
    {
        let mut place = |(dv, src, rank, m): Routed<M>| {
            let cursor = &mut counts[dv - base];
            // SAFETY: cursor < total ≤ capacity (and ≤ rank_buf.len()), and
            // both passes see the same messages, so every slot is written
            // exactly once.
            unsafe {
                out.add(*cursor).write((src, m));
                rank_out.add(*cursor).write(rank);
            }
            *cursor += 1;
        };
        for r in pending.drain(..) {
            place(r);
        }
        for arena in arenas {
            // SAFETY: as in the counting pass.
            let bucket = unsafe { (*arena.0.get()).bucket_shared(group) };
            for r in bucket.drain(..) {
                place(r);
            }
        }
    }
    // SAFETY: exactly `total` slots were initialized above.
    unsafe { seg.set_len(total) };

    // Rank-sort and finalize only the active spans — there are no other
    // non-empty ones — and restore the all-zeros counting-scratch
    // invariant as we go.
    let mut tally = RouteTally::default();
    for &dv in active.iter() {
        let (start, len) = spans[dv - base];
        counts[dv - base] = 0;
        sort_span_by_rank(
            &mut seg[start..start + len],
            &rank_buf[start..start + len],
            rank_scratch,
        );
        // SAFETY: the range's reassembly buffers are ours alone.
        let buffers = unsafe { &mut *t.reasm.add(dv) };
        tally.absorb(finalize_inbox(
            &mut seg[start..start + len],
            buffers,
            env.live[dv],
            env,
            scratch,
        ));
    }
    tally
}

/// One worker group's staging arena, shared so the routing epoch can hand
/// out disjoint buckets across workers.
pub(crate) struct ArenaSlot<M>(UnsafeCell<ShardYield<M>>);

// SAFETY: arena access follows the epoch discipline — compute: arena `g`
// exclusively by group `g`'s executor; routing: bucket `b` of every arena
// exclusively by group `b`'s executor; between epochs: the driver alone.
// The barriers publish every handoff. `M: Send + Sync` via `EngineMessage`.
unsafe impl<M: EngineMessage> Send for ArenaSlot<M> {}
unsafe impl<M: EngineMessage> Sync for ArenaSlot<M> {}

/// One worker group's routing-epoch output slot, written by group `g`
/// inside the epoch and read by the driver after `done`.
struct TallySlot(UnsafeCell<RouteTally>);

// SAFETY: slot `g` is written only by group `g`'s executor inside the
// start→done window and read only by the driver outside it; the barriers
// publish the handoff.
unsafe impl Send for TallySlot {}
unsafe impl Sync for TallySlot {}

/// A raw pointer that crosses the job closure into worker threads. The
/// aliasing discipline (disjoint per-group ranges under the epoch barriers)
/// lives with the code that derives slices from it.
struct SyncPtr<T>(*mut T);

impl<T> Clone for SyncPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Unwraps the pointer. A method (whole-struct receiver) rather than
    /// field access, so closure capture analysis moves the `Sync` wrapper
    /// instead of reaching through to the bare (non-`Sync`) pointer field.
    fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: the pointer is only dereferenced through the epoch protocol's
// disjoint-range discipline; the pointees are `Send` (programs, contexts).
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

/// The lifetime-erased job pointer a [`PoolCore`] epoch runs: the typed
/// layer's closure, valid strictly for the start→done window.
#[derive(Clone, Copy)]
struct ErasedJob(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (it is invoked concurrently by design) and
// the driver keeps it alive for the whole epoch window.
unsafe impl Send for ErasedJob {}
unsafe impl Sync for ErasedJob {}

/// The type-erased pool substrate: threads, barriers, the current epoch's
/// job, and per-worker panic slots. Knows nothing about message or program
/// types, so one core can serve sessions of different types back to back —
/// the whole point of pool sharing.
struct PoolCore {
    /// Epoch entry: driver + every worker.
    start: Barrier,
    /// Epoch exit: driver + every worker.
    done: Barrier,
    /// Raised by the owner's drop before a final `start` release.
    shutdown: AtomicBool,
    /// Reentry guard: a core drives one epoch at a time. Two sessions may
    /// *own* clones of one pool, but only one may be inside `run` — the
    /// normal sequential-pipeline case; concurrent use is a caller bug
    /// caught loudly.
    busy: AtomicBool,
    /// The epoch's job, published by the driver before `start`.
    job: UnsafeCell<Option<ErasedJob>>,
    /// One panic slot per spawned worker (the driver's group has none).
    panics: Vec<UnsafeCell<Option<Box<dyn Any + Send + 'static>>>>,
}

// SAFETY: `job` is written by the driver while workers are parked and read
// by workers inside the window; `panics[i]` is written only by worker `i`
// inside the window and read by the driver outside it. The barriers
// publish every handoff.
unsafe impl Send for PoolCore {}
unsafe impl Sync for PoolCore {}

impl PoolCore {
    /// Runs one epoch: publishes `job`, releases the workers, runs group 0
    /// on the calling thread, and rejoins. Every invocation is wrapped in
    /// `catch_unwind`; the first captured panic is returned after the
    /// epoch fully closes, so the pool always stays reusable.
    fn run(&self, job: &(dyn Fn(usize) + Sync)) -> Result<(), Box<dyn Any + Send + 'static>> {
        assert!(
            !self.busy.swap(true, Ordering::Acquire),
            "EnginePool is already driving an epoch: a shared pool may be \
             used by one session at a time"
        );
        // SAFETY: workers are parked at `start`; lifetime erasure is sound
        // because the pointer is consumed strictly inside the start→done
        // window, during which this frame keeps `job` alive.
        unsafe {
            let erased: *const (dyn Fn(usize) + Sync) =
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), _>(job);
            *self.job.get() = Some(ErasedJob(erased));
        }
        self.start.wait();
        let home = catch_unwind(AssertUnwindSafe(|| job(0)));
        self.done.wait();
        self.busy.store(false, Ordering::Release);
        let mut payload = home.err();
        for slot in &self.panics {
            // SAFETY: past `done` every worker is parked again.
            if let Some(p) = unsafe { (*slot.get()).take() } {
                payload.get_or_insert(p);
            }
        }
        match payload {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }
}

fn core_worker_loop(core: &PoolCore, index: usize) {
    loop {
        core.start.wait();
        if core.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: inside the start→done window the job pointer is live and
        // the driver published it before releasing `start`.
        let job = unsafe { (*core.job.get()).expect("epoch job published") };
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(index + 1) }));
        if let Err(p) = result {
            // SAFETY: panic slot `index` is this worker's own.
            unsafe { *core.panics[index].get() = Some(p) };
        }
        core.done.wait();
    }
}

/// Owns the core and its threads; dropped when the last [`EnginePool`]
/// clone goes away.
struct PoolOwner {
    core: Arc<PoolCore>,
    handles: Vec<JoinHandle<()>>,
}

impl Drop for PoolOwner {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        // Workers are always parked at `start` between epochs (the panic
        // discipline guarantees every epoch closes), so one release lets
        // them observe the flag and exit.
        self.core.start.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A shareable worker-thread pool: spawn once, drive many
/// [`EngineSession`](crate::EngineSession)s — of *different* program types
/// — without respawning threads per session.
///
/// By default every session boots its own private pool; a pipeline that
/// creates sessions in a loop (peeling levels, phase sweeps) passes one
/// `EnginePool` through [`EngineConfig::with_pool`](crate::EngineConfig::with_pool)
/// instead, making thread spawns a per-pipeline cost. Cloning is cheap
/// (`Arc`); threads shut down when the last clone drops. A pool drives one
/// session's epoch at a time — sharing is for *sequential* reuse, and
/// concurrent use panics loudly.
pub struct EnginePool {
    owner: Arc<PoolOwner>,
}

impl Clone for EnginePool {
    fn clone(&self) -> Self {
        EnginePool {
            owner: Arc::clone(&self.owner),
        }
    }
}

impl std::fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnginePool")
            .field("workers", &self.workers())
            .finish()
    }
}

impl EnginePool {
    /// Spawns a pool with `workers` worker groups total: `workers - 1` OS
    /// threads plus the driving thread itself. `workers = 1` spawns no
    /// threads and runs everything inline.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least the driver itself");
        let threads = workers - 1;
        let core = Arc::new(PoolCore {
            start: Barrier::new(threads + 1),
            done: Barrier::new(threads + 1),
            shutdown: AtomicBool::new(false),
            busy: AtomicBool::new(false),
            job: UnsafeCell::new(None),
            panics: (0..threads).map(|_| UnsafeCell::new(None)).collect(),
        });
        let handles = (0..threads)
            .map(|i| {
                let core = Arc::clone(&core);
                SPAWNED.fetch_add(1, Ordering::Relaxed);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{i}"))
                    .spawn(move || core_worker_loop(&core, i))
                    .expect("spawn engine worker")
            })
            .collect();
        EnginePool {
            owner: Arc::new(PoolOwner { core, handles }),
        }
    }

    /// Number of worker groups (spawned threads + the driver).
    pub fn workers(&self) -> usize {
        self.owner.core.panics.len() + 1
    }

    fn core(&self) -> &PoolCore {
        &self.owner.core
    }
}

/// The typed session layer over an [`EnginePool`]: one session's staging
/// arenas and route tallies, translated into plain `Fn(group)` jobs for the
/// type-erased core. A session with `groups < pool.workers()` leaves the
/// surplus workers idling at the barriers (they run the job as a no-op).
pub(crate) struct WorkerPool<P: NodeProgram + 'static> {
    pool: EnginePool,
    /// One staging arena per worker *group* (index 0 = the driver's own).
    arenas: Vec<ArenaSlot<P::Message>>,
    /// One routing-tally slot per worker group.
    tallies: Vec<TallySlot>,
}

impl<P: NodeProgram + 'static> WorkerPool<P> {
    /// Wraps `pool` for a session partitioned into `groups` worker groups
    /// (`groups <= pool.workers()`), with one arena per group (bucketed
    /// likewise).
    pub(crate) fn new(pool: EnginePool, groups: usize) -> Self {
        assert!(
            groups >= 1 && groups <= pool.workers(),
            "worker groups must fit the pool"
        );
        WorkerPool {
            pool,
            arenas: (0..groups)
                .map(|_| ArenaSlot(UnsafeCell::new(ShardYield::with_groups(groups))))
                .collect(),
            tallies: (0..groups)
                .map(|_| TallySlot(UnsafeCell::new(RouteTally::default())))
                .collect(),
        }
    }

    /// Number of worker groups this session partitioned into (≤ the pool's
    /// worker count).
    pub(crate) fn workers(&self) -> usize {
        self.arenas.len()
    }

    /// Runs one **compute epoch**: group `i` of `ranges` steps its programs
    /// on worker `i` (group 0 on the calling thread), staging traffic into
    /// the group's arena. Returns the first captured program panic, if any
    /// — the caller resumes it after the epoch is fully closed, so the
    /// *pool* stays droppable (workers re-park and join cleanly); the
    /// session layer is responsible for refusing further rounds, since the
    /// programs themselves are now partially stepped.
    ///
    /// `ranges` must be disjoint ascending sub-ranges of the dense arrays,
    /// one per worker group, matching `env.bounds`; `due` is the driver's
    /// per-group scheduled-wake lists for this round (absolute dense
    /// indices, consulted only when `env.frontier` is set).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute(
        &mut self,
        programs: &mut [P],
        ctxs: &mut [NodeCtx<'_>],
        inboxes: &Inboxes<P::Message>,
        due: &[Vec<usize>],
        env: &StageEnv<'_>,
        round: u64,
        ranges: &[Range<usize>],
    ) -> Result<(), Box<dyn Any + Send + 'static>> {
        assert_eq!(ranges.len(), self.arenas.len(), "one range per group");
        assert_eq!(due.len(), self.arenas.len(), "one due list per group");
        // Every group derives its slice from the same root pointers, so no
        // group's reborrow can invalidate another's.
        let prog_root = SyncPtr(programs.as_mut_ptr());
        let ctx_root = SyncPtr(ctxs.as_mut_ptr());
        let arenas = &self.arenas;
        let job = move |g: usize| {
            // Surplus workers of a wider shared pool have no group.
            let Some(range) = ranges.get(g) else { return };
            // SAFETY: `ranges` are disjoint, so group `g`'s program/context
            // slices alias no other group's; arena `g` is group `g`'s own
            // during a compute epoch; the driver keeps every pointee alive
            // for the whole epoch window.
            let (progs, ctxs) = unsafe {
                (
                    std::slice::from_raw_parts_mut(prog_root.get().add(range.start), range.len()),
                    std::slice::from_raw_parts_mut(ctx_root.get().add(range.start), range.len()),
                )
            };
            let arena = unsafe { &mut *arenas[g].0.get() };
            run_range(
                progs,
                ctxs,
                inboxes.group(g, range.clone()),
                &due[g],
                range.start,
                round,
                env,
                arena,
            );
        };
        self.pool.core().run(&job)
    }

    /// Runs one **routing epoch**: worker `g` rebuilds group `g`'s `next`
    /// segment from bucket `g` of every arena plus its pending-delayed
    /// list, and finalizes every span of `ranges[g]` (split / sort /
    /// reorder; group 0 on the calling thread). `targets` must come from
    /// the session's [`Mailboxes::next_targets`]; `ranges` must match the
    /// compute epoch's. Returns the epoch's [`RouteTally`].
    pub(crate) fn route(
        &mut self,
        targets: RouteTargets<P::Message>,
        ranges: &[Range<usize>],
        env: &RouteEnv<'_>,
    ) -> Result<RouteTally, Box<dyn Any + Send + 'static>> {
        assert_eq!(ranges.len(), self.arenas.len(), "one range per group");
        let arenas = &self.arenas;
        let tallies = &self.tallies;
        let job = move |g: usize| {
            let Some(range) = ranges.get(g) else { return };
            // SAFETY: bucket `g` of every arena, segment/pending/scratch
            // slot `g`, and the span/count/reassembly entries of `range`
            // belong exclusively to group `g` during a routing epoch;
            // tally slot `g` likewise.
            let tally = unsafe { route_range(arenas, g, targets, range.clone(), env) };
            unsafe { *tallies[g].0.get() = tally };
        };
        self.pool.core().run(&job)?;
        let mut total = RouteTally::default();
        for slot in &self.tallies {
            // SAFETY: past the `done` barrier every worker is parked again.
            total.absorb(unsafe { *slot.0.get() });
        }
        Ok(total)
    }

    /// The driver's own staging arena (group 0), for driver-side staging
    /// outside any epoch — the round-0 init path stages here and then runs
    /// an ordinary routing epoch. Exclusive access: workers are parked at
    /// the `start` barrier.
    pub(crate) fn home_arena(&mut self) -> &mut ShardYield<P::Message> {
        // SAFETY: workers are parked between epochs; `&mut self` keeps the
        // driver side exclusive.
        unsafe { &mut *self.arenas[0].0.get() }
    }

    /// Visits every group's arena in deterministic group order (driver's
    /// group 0 first) between epochs — the driver tallies counters,
    /// collects fault-delayed batches, and drains wake registrations here
    /// (the group index keys the driver's per-group wake queues).
    /// Exclusive access: workers are parked at the `start` barrier.
    pub(crate) fn collect_yields(&mut self, mut f: impl FnMut(usize, &mut ShardYield<P::Message>)) {
        for (g, arena) in self.arenas.iter().enumerate() {
            // SAFETY: workers are parked; `&mut self` keeps the driver side
            // exclusive.
            f(g, unsafe { &mut *arena.0.get() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, PartialEq, Debug)]
    struct W(usize);
    impl crate::program::WireCodec for W {
        fn encode(&self, out: &mut Vec<u64>) {
            out.resize(out.len() + self.0, 0);
        }
        fn decode(words: &[u64]) -> Option<Self> {
            words.iter().all(|&w| w == 0).then_some(W(words.len()))
        }
    }
    impl EngineMessage for W {
        fn width(&self) -> usize {
            self.0
        }
    }

    /// An identity env over `n` vertices in one group, no faults. The
    /// `by_src` rank table makes every staged rank the sender's dense
    /// index — under identity tables, rank == original sender id, so
    /// expected tuples read directly.
    fn identity_tables(n: usize) -> (Vec<usize>, Vec<VertexId>, Vec<usize>, SenderRanks) {
        (
            (0..n).collect(),
            (0..n).collect(),
            vec![0, n],
            SenderRanks::by_src(n),
        )
    }

    fn env<'a>(
        faults: &'a FaultPlan,
        dense: &'a [usize],
        live: &'a [VertexId],
        bounds: &'a [usize],
        ranks: &'a SenderRanks,
    ) -> StageEnv<'a> {
        StageEnv {
            faults,
            dense,
            live,
            bounds,
            ranks,
            congest: usize::MAX,
            frontier: true,
        }
    }

    #[test]
    fn expand_into_appends_and_reports_width() {
        let neighbors = [1usize, 3, 5];
        let faults = FaultPlan::new();
        let (dense, live, bounds, ranks) = identity_tables(6);
        let e = env(&faults, &dense, &live, &bounds, &ranks);
        let mut y: ShardYield<W> = ShardYield::with_groups(1);
        stage_outbox(0, Outbox::Broadcast(W(2)), &neighbors, 1, &e, &mut y);
        assert_eq!(y.max_width, 2);
        assert_eq!(
            y.bucket_mut(0),
            &vec![(1, 0, 0, W(2)), (3, 0, 0, W(2)), (5, 0, 0, W(2))]
        );
        stage_outbox(0, Outbox::Unicast(3, W(7)), &neighbors, 1, &e, &mut y);
        assert_eq!(y.max_width, 7);
        assert_eq!(y.bucket_mut(0).len(), 4, "appends after existing traffic");
        stage_outbox(0, Outbox::Silent, &neighbors, 1, &e, &mut y);
        stage_outbox(5, Outbox::Broadcast(W(5)), &[], 1, &e, &mut y);
        assert_eq!(y.bucket_mut(0).len(), 4, "isolated broadcast is empty");
        assert_eq!(y.messages, 4);
    }

    #[test]
    fn staging_partitions_by_destination_group() {
        // Two groups split at dense 3: messages to {1, 2} land in bucket 0,
        // messages to {4, 5} in bucket 1.
        let neighbors = [1usize, 2, 4, 5];
        let faults = FaultPlan::new();
        let (dense, live, _, ranks) = identity_tables(6);
        let bounds = vec![0, 3, 6];
        let e = env(&faults, &dense, &live, &bounds, &ranks);
        let mut y: ShardYield<W> = ShardYield::with_groups(2);
        stage_outbox(3, Outbox::Broadcast(W(1)), &neighbors, 1, &e, &mut y);
        assert_eq!(y.bucket_mut(0), &vec![(1, 3, 3, W(1)), (2, 3, 3, W(1))]);
        assert_eq!(y.bucket_mut(1), &vec![(4, 3, 3, W(1)), (5, 3, 3, W(1))]);
        assert_eq!(y.messages, 4);
    }

    #[test]
    fn stage_outbox_applies_faults_in_place() {
        let neighbors = [1usize, 2];
        let faults = FaultPlan::new().drop_outbox(0, 5).delay_outbox(0, 6, 2);
        let (dense, live, bounds, ranks) = identity_tables(3);
        let e = env(&faults, &dense, &live, &bounds, &ranks);
        let mut y: ShardYield<W> = ShardYield::with_groups(1);
        stage_outbox(0, Outbox::Broadcast(W(1)), &neighbors, 4, &e, &mut y);
        assert_eq!((y.messages, y.bucket_mut(0).len()), (2, 2), "delivered");
        stage_outbox(0, Outbox::Broadcast(W(1)), &neighbors, 5, &e, &mut y);
        assert_eq!(y.dropped, 2, "dropped round truncates the arena");
        assert_eq!(y.bucket_mut(0).len(), 2);
        stage_outbox(0, Outbox::Broadcast(W(1)), &neighbors, 6, &e, &mut y);
        assert_eq!(y.delayed, 2);
        assert_eq!(y.bucket_mut(0).len(), 2, "delayed tail split out");
        assert_eq!(y.delayed_batches.len(), 1);
        assert_eq!(y.delayed_batches[0].0, 6 + 1 + 2);
        assert_eq!(y.messages, 6, "all three outboxes were *sent*");
    }

    #[test]
    fn duplication_appends_after_the_batch_and_counts() {
        let neighbors = [1usize, 2];
        let faults = FaultPlan::new().duplicate_edges(3, 1.0);
        let (dense, live, bounds, ranks) = identity_tables(3);
        let e = env(&faults, &dense, &live, &bounds, &ranks);
        let mut y: ShardYield<W> = ShardYield::with_groups(1);
        stage_outbox(0, Outbox::Broadcast(W(1)), &neighbors, 1, &e, &mut y);
        assert_eq!(y.messages, 2, "originals only");
        assert_eq!(y.duplicated, 2, "probability 1.0 duplicates both");
        assert_eq!(
            y.bucket_mut(0),
            &vec![
                (1, 0, 0, W(1)),
                (2, 0, 0, W(1)),
                (1, 0, 0, W(1)),
                (2, 0, 0, W(1))
            ]
        );
    }

    #[test]
    fn loss_removes_in_place_and_counts() {
        let neighbors = [1usize, 2];
        let faults = FaultPlan::new().lose_edges(3, 1.0);
        let (dense, live, bounds, ranks) = identity_tables(3);
        let e = env(&faults, &dense, &live, &bounds, &ranks);
        let mut y: ShardYield<W> = ShardYield::with_groups(1);
        stage_outbox(0, Outbox::Broadcast(W(1)), &neighbors, 1, &e, &mut y);
        assert_eq!(y.messages, 2, "loss does not change the sent count");
        assert_eq!(y.lost, 2, "probability 1.0 loses both");
        assert!(y.bucket_mut(0).is_empty());
    }

    #[test]
    fn partial_loss_keeps_survivors_in_emission_order() {
        // Find a (seed, round) where exactly one of the two messages is
        // lost, and check the survivor stays, in place.
        let neighbors = [1usize, 2, 3];
        let (dense, live, bounds, ranks) = identity_tables(4);
        let mut found = false;
        for seed in 0..64u64 {
            let faults = FaultPlan::new().lose_edges(seed, 0.5);
            let e = env(&faults, &dense, &live, &bounds, &ranks);
            let mut y: ShardYield<W> = ShardYield::with_groups(1);
            stage_outbox(0, Outbox::Broadcast(W(1)), &neighbors, 1, &e, &mut y);
            if y.lost == 1 {
                let kept: Vec<usize> = y.bucket_mut(0).iter().map(|r| r.0).collect();
                assert_eq!(kept.len(), 2);
                assert!(kept.windows(2).all(|w| w[0] < w[1]), "order preserved");
                found = true;
                break;
            }
        }
        assert!(found, "some seed loses exactly one of three messages");
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn congest_budget_rejects_wide_messages() {
        let faults = FaultPlan::new();
        let (dense, live, bounds, ranks) = identity_tables(3);
        let mut e = env(&faults, &dense, &live, &bounds, &ranks);
        e.congest = 4;
        let mut y: ShardYield<W> = ShardYield::with_groups(1);
        stage_outbox(0, Outbox::Broadcast(W(4)), &[1], 1, &e, &mut y);
        assert_eq!(y.messages, 1, "width == budget passes");
        stage_outbox(0, Outbox::Broadcast(W(5)), &[1], 2, &e, &mut y);
    }

    #[test]
    fn arena_reset_keeps_capacity() {
        let faults = FaultPlan::new();
        let (dense, live, bounds, ranks) = identity_tables(5);
        let e = env(&faults, &dense, &live, &bounds, &ranks);
        let mut y: ShardYield<W> = ShardYield::with_groups(1);
        stage_outbox(0, Outbox::Broadcast(W(1)), &[1, 2, 3, 4], 1, &e, &mut y);
        let cap = y.bucket_mut(0).capacity();
        assert!(cap >= 4);
        y.reset();
        assert_eq!(y.bucket_mut(0).len(), 0);
        assert_eq!(
            y.bucket_mut(0).capacity(),
            cap,
            "reset must not release the arena"
        );
    }

    /// A one-group arena preloaded with staged traffic (tests build the
    /// routing epoch's input directly).
    fn mk(msgs: Vec<Routed<W>>) -> ArenaSlot<W> {
        let mut y: ShardYield<W> = ShardYield::with_groups(1);
        y.bucket_mut(0).extend(msgs);
        ArenaSlot(UnsafeCell::new(y))
    }

    #[test]
    fn routing_epoch_counting_sort_matches_contract() {
        use crate::mailbox::Mailboxes;
        // Three vertices in one group; traffic from two arenas plus a
        // delayed batch due this round. Per inbox the pre-sort order is
        // pending first, then arena order × staging order; the stable
        // rank counting pass then fixes the delivered order.
        let mut mail: Mailboxes<W> = Mailboxes::new(3, vec![0, 3]);
        mail.schedule(2, vec![(0, 2, 2, W(9))]);
        mail.inject_due(2);
        let arenas = [
            mk(vec![(0, 1, 1, W(1)), (2, 0, 0, W(2)), (0, 0, 0, W(3))]),
            mk(vec![(1, 2, 2, W(4)), (0, 0, 0, W(5))]),
        ];
        let live = [0usize, 1, 2];
        let env = RouteEnv {
            split: usize::MAX,
            round: 2,
            reorder: None,
            live: &live,
        };
        // SAFETY: single-threaded test — this caller is the sole accessor
        // of every bucket and every mailbox entry.
        let tally = unsafe { route_range(&arenas, 0, mail.next_targets(), 0..3, &env) };
        assert_eq!(tally.fragments, 0);
        mail.flip();
        // Inbox 0 pre-sort: (2, 9) pending, then (1, 1), (0, 3), (0, 5).
        assert_eq!(mail.inbox(0), &[(0, W(3)), (0, W(5)), (1, W(1)), (2, W(9))]);
        assert_eq!(mail.inbox(1), &[(2, W(4))]);
        assert_eq!(mail.inbox(2), &[(0, W(2))]);
        for a in &arenas {
            // SAFETY: as above.
            assert!(
                unsafe { (*a.0.get()).bucket_shared(0) }.is_empty(),
                "routing drains every bucket"
            );
        }
    }

    #[test]
    fn delayed_batch_precedes_fresh_same_sender_under_rank_routing() {
        use crate::mailbox::Mailboxes;
        // The rank band pins the contract: a delay-fault batch from sender
        // 1 due this round must land *ahead of* fresh round traffic from
        // the same sender 1 (equal rank, pending placed first), while a
        // lower-rank fresh sender still sorts ahead of both.
        let mut mail: Mailboxes<W> = Mailboxes::new(2, vec![0, 2]);
        mail.schedule(5, vec![(0, 1, 1, W(7))]);
        mail.inject_due(5);
        let arenas = [mk(vec![(0, 1, 1, W(8)), (0, 0, 0, W(6))])];
        let live = [0usize, 1];
        let env = RouteEnv {
            split: usize::MAX,
            round: 5,
            reorder: None,
            live: &live,
        };
        // SAFETY: single-threaded test — sole accessor of every bucket and
        // mailbox entry.
        let _ = unsafe { route_range(&arenas, 0, mail.next_targets(), 0..2, &env) };
        mail.flip();
        assert_eq!(mail.inbox(0), &[(0, W(6)), (1, W(7)), (1, W(8))]);
    }

    #[test]
    fn group_of_respects_bounds() {
        let faults = FaultPlan::new();
        let (dense, live, _, ranks) = identity_tables(10);
        let bounds = vec![0, 4, 7, 10];
        let e = env(&faults, &dense, &live, &bounds, &ranks);
        let groups: Vec<usize> = (0..10).map(|dv| e.group_of(dv)).collect();
        assert_eq!(groups, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }
}
