//! The persistent worker-pool executor: threads spawned once per session.
//!
//! PR 1's driver spawned fresh scoped threads every round, so the thread
//! spawn + join cost was charged per round and multi-shard runs lost to the
//! single-shard path on every benched size. This module replaces that with a
//! pool owned by the [`EngineSession`](crate::EngineSession):
//!
//! * **Worker lifetime** — `workers - 1` OS threads are spawned when the
//!   session boots and live until it drops. The driver thread itself executes
//!   worker group 0, so a `workers = 1` session spawns no threads at all and
//!   runs every shard inline with zero synchronization.
//! * **Barrier protocol** — each round is one epoch between two reusable
//!   [`std::sync::Barrier`]s. The driver writes every worker's task slot
//!   (raw slice parts of the program/context arrays, the inbox table, the
//!   fault plan, the round number), crosses the `start` barrier, computes its
//!   own group, and crosses the `done` barrier; workers park on `start`,
//!   compute, and park on `done`. Barrier rendezvous establishes the
//!   happens-before edges that make the slot writes and yield reads safe.
//! * **Staging arenas** — every worker owns a [`ShardYield`]: a persistent
//!   outbound buffer plus fault/width/activity counters, reset (not
//!   reallocated) each round. Outboxes expand straight into the arena;
//!   after the `done` barrier the driver drains the arenas into the
//!   double-buffered mailboxes in group order, so steady-state rounds do no
//!   per-node allocation at all.
//! * **Panic discipline** — worker compute runs under `catch_unwind`; a
//!   panicking node program is recorded in the worker's slot, the worker
//!   still reaches the `done` barrier, and the driver resumes the unwind on
//!   its own thread. The protocol therefore never deadlocks: every
//!   participant reaches every barrier, and `Drop` (which raises the
//!   shutdown flag and releases the `start` barrier once more) always joins
//!   cleanly — even while unwinding from a propagated program panic.
//!
//! Determinism is untouched by any of this: worker count and shard count are
//! pure performance knobs. Group ranges ascend in vertex id and arenas are
//! drained in group order, so the mailbox fabric sees the same traffic in
//! the same order as a sequential walk of the vertices.

use std::any::Any;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use graphs::VertexId;

use crate::context::NodeCtx;
use crate::faults::{FaultAction, FaultPlan};
use crate::mailbox::Routed;
use crate::program::{EngineMessage, NodeProgram, Outbox};

/// One worker group's per-round contribution: a persistent staging arena for
/// outbound traffic plus the round's observed counters. Reused across rounds
/// — [`reset`](ShardYield::reset) clears without releasing capacity.
pub(crate) struct ShardYield<M> {
    /// Outbound messages staged this round (surviving faults).
    pub(crate) sent: Vec<Routed<M>>,
    /// Fault-delayed batches: `(due round, one node's outbox)`.
    pub(crate) delayed_batches: Vec<(u64, Vec<Routed<M>>)>,
    /// Messages emitted (before faults).
    pub(crate) messages: usize,
    /// Messages discarded by drop faults.
    pub(crate) dropped: usize,
    /// Messages rescheduled by delay faults.
    pub(crate) delayed: usize,
    /// Widest message emitted.
    pub(crate) max_width: usize,
    /// Nodes whose halt vote was still "active" when the round started.
    pub(crate) active: usize,
}

impl<M> Default for ShardYield<M> {
    fn default() -> Self {
        ShardYield {
            sent: Vec::new(),
            delayed_batches: Vec::new(),
            messages: 0,
            dropped: 0,
            delayed: 0,
            max_width: 0,
            active: 0,
        }
    }
}

impl<M> ShardYield<M> {
    /// Clears the arena for a new round, keeping every allocation.
    fn reset(&mut self) {
        self.sent.clear();
        self.delayed_batches.clear();
        self.messages = 0;
        self.dropped = 0;
        self.delayed = 0;
        self.max_width = 0;
        self.active = 0;
    }
}

/// Steps every node of `programs`/`ctxs` (vertex ids `base..base + len`),
/// expanding outboxes into `y`'s arena and applying `faults`.
pub(crate) fn run_range<P: NodeProgram>(
    programs: &mut [P],
    ctxs: &mut [NodeCtx<'_>],
    inboxes: &[Vec<(VertexId, P::Message)>],
    base: usize,
    round: u64,
    faults: &FaultPlan,
    y: &mut ShardYield<P::Message>,
) {
    y.reset();
    for (i, (p, ctx)) in programs.iter_mut().zip(ctxs.iter_mut()).enumerate() {
        let v = base + i;
        if !p.halted() {
            y.active += 1;
        }
        ctx.round = round;
        let outbox = p.on_round(ctx, &inboxes[v]);
        stage_outbox(v, outbox, ctx.neighbors, round, faults, y);
    }
}

/// Expands one node's outbox into the arena and applies its fault action.
pub(crate) fn stage_outbox<M: EngineMessage>(
    src: VertexId,
    outbox: Outbox<M>,
    neighbors: &[VertexId],
    round: u64,
    faults: &FaultPlan,
    y: &mut ShardYield<M>,
) {
    let start = y.sent.len();
    let width = expand_into(src, outbox, neighbors, &mut y.sent);
    let batch_len = y.sent.len() - start;
    y.messages += batch_len;
    y.max_width = y.max_width.max(width);
    match faults.action(round, src) {
        FaultAction::Deliver => {}
        FaultAction::Drop => {
            y.dropped += batch_len;
            y.sent.truncate(start);
        }
        FaultAction::Delay(by) => {
            y.delayed += batch_len;
            y.delayed_batches
                .push((round + 1 + by, y.sent.split_off(start)));
        }
    }
}

/// Expands an outbox into routed point-to-point messages appended to `out`;
/// returns the widest message in the batch (0 for an empty batch).
///
/// # Panics
///
/// Panics if a unicast/multi destination is not a neighbor of the sender —
/// programs may only talk over edges; that is the LOCAL model.
fn expand_into<M: EngineMessage>(
    src: VertexId,
    outbox: Outbox<M>,
    neighbors: &[VertexId],
    out: &mut Vec<Routed<M>>,
) -> usize {
    match outbox {
        Outbox::Silent => 0,
        Outbox::Broadcast(m) => {
            if neighbors.is_empty() {
                return 0;
            }
            let width = m.width();
            out.extend(neighbors.iter().map(|&dst| (dst, src, m.clone())));
            width
        }
        Outbox::Unicast(dst, m) => {
            assert!(
                neighbors.binary_search(&dst).is_ok(),
                "node {src} unicast to non-neighbor {dst}"
            );
            let width = m.width();
            out.push((dst, src, m));
            width
        }
        Outbox::Multi(msgs) => {
            let mut width = 0;
            for (dst, m) in msgs {
                assert!(
                    neighbors.binary_search(&dst).is_ok(),
                    "node {src} sent to non-neighbor {dst}"
                );
                width = width.max(m.width());
                out.push((dst, src, m));
            }
            width
        }
    }
}

/// One worker's task slot: the raw inputs the driver writes before the
/// `start` barrier and the outputs (arena + panic payload) it reads after
/// the `done` barrier. The barrier rendezvous is the synchronization; the
/// cell is never touched concurrently.
struct WorkerTask<P: NodeProgram> {
    programs: *mut P,
    ctxs: *mut NodeCtx<'static>,
    len: usize,
    inboxes: *const Vec<(VertexId, P::Message)>,
    inboxes_len: usize,
    faults: *const FaultPlan,
    base: usize,
    round: u64,
    yielded: ShardYield<P::Message>,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

impl<P: NodeProgram> Default for WorkerTask<P> {
    fn default() -> Self {
        WorkerTask {
            programs: std::ptr::null_mut(),
            ctxs: std::ptr::null_mut(),
            len: 0,
            inboxes: std::ptr::null(),
            inboxes_len: 0,
            faults: std::ptr::null(),
            base: 0,
            round: 0,
            yielded: ShardYield::default(),
            panic: None,
        }
    }
}

struct Slot<P: NodeProgram> {
    cell: UnsafeCell<WorkerTask<P>>,
}

// SAFETY: slots hold raw pointers into session-owned arrays. Access is
// strictly alternated between the driver (outside the start→done window) and
// exactly one worker (inside it); the two barriers publish every write
// before the other side reads. The pointees (`P`, `NodeCtx`, messages) are
// all `Send`.
unsafe impl<P: NodeProgram> Send for Slot<P> {}
unsafe impl<P: NodeProgram> Sync for Slot<P> {}

struct PoolShared<P: NodeProgram> {
    /// Epoch entry: driver + every worker.
    start: Barrier,
    /// Epoch exit: driver + every worker.
    done: Barrier,
    /// Raised by `Drop` before a final `start` release.
    shutdown: AtomicBool,
    /// One slot per spawned worker (the driver's own group has none).
    slots: Vec<Slot<P>>,
}

/// The session-lifetime executor. `threads` workers park between rounds;
/// the driver executes group 0 itself, so a pool with zero threads is the
/// sequential fast path (its barriers have a single participant and never
/// block).
pub(crate) struct WorkerPool<P: NodeProgram + 'static> {
    shared: Arc<PoolShared<P>>,
    handles: Vec<JoinHandle<()>>,
    /// The driver's own staging arena (worker group 0).
    home: ShardYield<P::Message>,
}

impl<P: NodeProgram + 'static> WorkerPool<P> {
    /// Spawns `threads` parked workers (usually `workers - 1`).
    pub(crate) fn spawn(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            start: Barrier::new(threads + 1),
            done: Barrier::new(threads + 1),
            shutdown: AtomicBool::new(false),
            slots: (0..threads)
                .map(|_| Slot {
                    cell: UnsafeCell::new(WorkerTask::default()),
                })
                .collect(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn engine worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            home: ShardYield::default(),
        }
    }

    /// Number of worker groups (spawned threads + the driver).
    pub(crate) fn workers(&self) -> usize {
        self.handles.len() + 1
    }

    /// Executes one round: group `i` of `ranges` runs on worker `i` (group 0
    /// on the calling thread). Returns the first captured program panic, if
    /// any — the caller resumes it after the epoch is fully closed, so the
    /// *pool* stays droppable (workers re-park and join cleanly); the
    /// session layer is responsible for refusing further rounds, since the
    /// programs themselves are now partially stepped.
    ///
    /// `ranges` must be disjoint ascending sub-ranges of the arrays, one per
    /// worker group.
    pub(crate) fn execute(
        &mut self,
        programs: &mut [P],
        ctxs: &mut [NodeCtx<'_>],
        inboxes: &[Vec<(VertexId, P::Message)>],
        faults: &FaultPlan,
        round: u64,
        ranges: &[Range<usize>],
    ) -> Result<(), Box<dyn Any + Send + 'static>> {
        assert_eq!(ranges.len(), self.handles.len() + 1, "one range per group");
        // Derive every group's slice from the same root pointers so the
        // driver's group-0 reborrow cannot invalidate the workers' parts.
        let prog_root = programs.as_mut_ptr();
        let ctx_root = ctxs.as_mut_ptr().cast::<NodeCtx<'static>>();
        for (w, range) in ranges.iter().enumerate().skip(1) {
            // SAFETY: workers are parked at the `start` barrier, so the
            // driver is the sole accessor of the slot right now.
            let task = unsafe { &mut *self.shared.slots[w - 1].cell.get() };
            task.programs = unsafe { prog_root.add(range.start) };
            task.ctxs = unsafe { ctx_root.add(range.start) };
            task.len = range.len();
            task.inboxes = inboxes.as_ptr();
            task.inboxes_len = inboxes.len();
            task.faults = faults;
            task.base = range.start;
            task.round = round;
        }
        self.shared.start.wait();
        let home_range = ranges[0].clone();
        // SAFETY: group 0 is disjoint from every slot's range; the pointers
        // stay valid for the whole epoch because the driver owns the arrays.
        let (home_programs, home_ctxs) = unsafe {
            (
                std::slice::from_raw_parts_mut(prog_root.add(home_range.start), home_range.len()),
                std::slice::from_raw_parts_mut(ctx_root.add(home_range.start), home_range.len()),
            )
        };
        let home = &mut self.home;
        let home_result = catch_unwind(AssertUnwindSafe(|| {
            run_range(
                home_programs,
                home_ctxs,
                inboxes,
                home_range.start,
                round,
                faults,
                home,
            );
        }));
        self.shared.done.wait();
        let mut payload = home_result.err();
        for slot in &self.shared.slots {
            // SAFETY: past the `done` barrier every worker is parked again.
            let task = unsafe { &mut *slot.cell.get() };
            if let Some(p) = task.panic.take() {
                payload.get_or_insert(p);
            }
        }
        match payload {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }

    /// Visits every group's arena in deterministic group order (driver's
    /// group 0 first), for the post-round merge. Exclusive access: workers
    /// are parked between epochs.
    pub(crate) fn drain_yields(&mut self, mut f: impl FnMut(&mut ShardYield<P::Message>)) {
        f(&mut self.home);
        for slot in &self.shared.slots {
            // SAFETY: workers are parked at the `start` barrier; `&mut self`
            // keeps the driver side exclusive.
            f(unsafe { &mut (*slot.cell.get()).yielded });
        }
    }
}

impl<P: NodeProgram + 'static> Drop for WorkerPool<P> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Workers are always parked at `start` between epochs (the panic
        // discipline guarantees every epoch closes), so one release lets
        // them observe the flag and exit.
        self.shared.start.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop<P: NodeProgram>(shared: &PoolShared<P>, index: usize) {
    loop {
        shared.start.wait();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: between `start` and `done` this worker is the slot's sole
        // accessor, and the driver guarantees the pointers are live and
        // disjoint from every other group for the whole epoch.
        let task = unsafe { &mut *shared.slots[index].cell.get() };
        let result = catch_unwind(AssertUnwindSafe(|| {
            let (programs, ctxs, inboxes, faults) = unsafe {
                (
                    std::slice::from_raw_parts_mut(task.programs, task.len),
                    std::slice::from_raw_parts_mut(task.ctxs, task.len),
                    std::slice::from_raw_parts(task.inboxes, task.inboxes_len),
                    &*task.faults,
                )
            };
            run_range(
                programs,
                ctxs,
                inboxes,
                task.base,
                task.round,
                faults,
                &mut task.yielded,
            );
        }));
        if let Err(p) = result {
            task.panic = Some(p);
        }
        shared.done.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Debug)]
    struct W(usize);
    impl EngineMessage for W {
        fn width(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn expand_into_appends_and_reports_width() {
        let neighbors = [1usize, 3, 5];
        let mut out = Vec::new();
        let w = expand_into(0, Outbox::Broadcast(W(2)), &neighbors, &mut out);
        assert_eq!(w, 2);
        assert_eq!(out, vec![(1, 0, W(2)), (3, 0, W(2)), (5, 0, W(2))]);
        let w = expand_into(0, Outbox::Unicast(3, W(7)), &neighbors, &mut out);
        assert_eq!(w, 7);
        assert_eq!(out.len(), 4, "appends after existing traffic");
        assert_eq!(expand_into(0, Outbox::Silent, &neighbors, &mut out), 0);
        assert_eq!(
            expand_into(9, Outbox::Broadcast(W(5)), &[], &mut out),
            0,
            "isolated vertex broadcast is empty"
        );
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn stage_outbox_applies_faults_in_place() {
        let neighbors = [1usize, 2];
        let faults = FaultPlan::new().drop_outbox(0, 5).delay_outbox(0, 6, 2);
        let mut y: ShardYield<W> = ShardYield::default();
        stage_outbox(0, Outbox::Broadcast(W(1)), &neighbors, 4, &faults, &mut y);
        assert_eq!((y.messages, y.sent.len()), (2, 2), "delivered round");
        stage_outbox(0, Outbox::Broadcast(W(1)), &neighbors, 5, &faults, &mut y);
        assert_eq!(y.dropped, 2, "dropped round truncates the arena");
        assert_eq!(y.sent.len(), 2);
        stage_outbox(0, Outbox::Broadcast(W(1)), &neighbors, 6, &faults, &mut y);
        assert_eq!(y.delayed, 2);
        assert_eq!(y.sent.len(), 2, "delayed tail split out of the arena");
        assert_eq!(y.delayed_batches.len(), 1);
        assert_eq!(y.delayed_batches[0].0, 6 + 1 + 2);
        assert_eq!(y.messages, 6, "all three outboxes were *sent*");
    }

    #[test]
    fn arena_reset_keeps_capacity() {
        let mut y: ShardYield<W> = ShardYield::default();
        stage_outbox(
            0,
            Outbox::Broadcast(W(1)),
            &[1, 2, 3, 4],
            1,
            &FaultPlan::new(),
            &mut y,
        );
        let cap = y.sent.capacity();
        assert!(cap >= 4);
        y.reset();
        assert_eq!(y.sent.len(), 0);
        assert_eq!(y.sent.capacity(), cap, "reset must not release the arena");
    }
}
