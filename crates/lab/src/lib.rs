//! The scenario lab: experiments declared as data.
//!
//! A *suite* file describes a cross-product of graph family × `n` × seed ×
//! algorithm × shard count × worker pool × CONGEST mode × fault plan ×
//! repetitions, plus the invariants its runs must satisfy. The lab expands
//! the suite into a deterministic trial plan ([`plan`]), executes every
//! trial with fixed per-trial seeds ([`runner`]), persists per-trial JSON
//! rows plus a merged summary with percentile statistics ([`report`],
//! [`stats`]), and evaluates the declared invariants over the artifact
//! ([`invariants`]) — so the determinism and bench gates become thin
//! wrappers over declared suites, and chaos experiments (loss-rate curves,
//! crash storms, reorder sweeps, split-width ladders) are one suite file
//! away instead of one hand-written binary away.
//!
//! ```text
//! suite.json ──expand──▶ plan ──run──▶ trials.jsonl ──merge──▶ summary.json
//!                                        │
//!                                        └──evaluate──▶ checks.json (pass/fail)
//! ```

pub mod algorithms;
pub mod invariants;
pub mod json;
pub mod plan;
pub mod report;
pub mod runner;
pub mod schema;
pub mod stats;

pub use invariants::{evaluate, CheckOutcome};
pub use plan::{expand, TrialSpec};
pub use report::{render_summary, write_run};
pub use runner::{run_suite, RunOutcome, TrialRow};
pub use schema::{
    BudgetMetric, Check, CongestSpec, FaultSpec, Params, Scenario, Suite, WorkerSpec,
};
pub use stats::{percentile, summarize, Percentiles};
