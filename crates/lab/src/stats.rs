//! Percentile statistics over trial measurements.
//!
//! Nearest-rank percentiles: `p`-th percentile of a sorted sample of `k`
//! values is the value at rank `⌈p·k⌉` (1-based). No interpolation — every
//! reported number is one the runner actually measured, which keeps tails
//! honest on the small samples a smoke suite produces.

/// The percentile triple every summary row reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample.
/// `p` in `(0, 100]`.
///
/// # Panics
///
/// Panics on an empty sample or an out-of-range `p` — callers gate on
/// emptiness (an empty group has no percentile row at all).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!(p > 0.0 && p <= 100.0, "percentile {p} out of (0, 100]");
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// The p50/p95/p99 triple of an unsorted sample, or `None` if empty.
pub fn summarize(values: &[f64]) -> Option<Percentiles> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(Percentiles {
        p50: percentile(&sorted, 50.0),
        p95: percentile(&sorted, 95.0),
        p99: percentile(&sorted, 99.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_hand_computation() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        // Small samples: ranks collapse to real observations.
        assert_eq!(percentile(&[3.0], 99.0), 3.0);
        assert_eq!(percentile(&[1.0, 9.0], 50.0), 1.0);
        assert_eq!(percentile(&[1.0, 9.0], 95.0), 9.0);
    }

    #[test]
    fn summarize_sorts_and_handles_empty() {
        assert_eq!(summarize(&[]), None);
        let p = summarize(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(p.p50, 5.0);
        assert_eq!(p.p95, 9.0);
        assert_eq!(p.p99, 9.0);
    }
}
