//! Declared invariants, evaluated over a run's rows.
//!
//! The checks are data in the suite file; this module is the only code
//! that knows what they mean. Each check reduces to a [`CheckOutcome`]:
//! pass/fail plus a violation list naming the offending rows — what the
//! `lab` binary prints and what decides its exit code, and what the
//! determinism/bench gates reuse instead of hand-rolled comparison loops.

use std::collections::BTreeMap;

use crate::json::Value;
use crate::runner::{RunOutcome, TrialRow};
use crate::schema::{BudgetMetric, Check, CongestSpec, Suite};

/// The verdict of one declared check.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The check's label (see [`Check::label`]).
    pub check: String,
    /// Whether it held over every row it applies to.
    pub passed: bool,
    /// One line per violation.
    pub violations: Vec<String>,
}

impl CheckOutcome {
    fn new(check: &Check, violations: Vec<String>) -> Self {
        CheckOutcome {
            check: check.label(),
            passed: violations.is_empty(),
            violations,
        }
    }

    /// The outcome as JSON (sorted keys).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("check".into(), Value::str(&self.check)),
            ("passed".into(), Value::Bool(self.passed)),
            (
                "violations".into(),
                Value::Arr(self.violations.iter().map(Value::str).collect()),
            ),
        ])
    }
}

/// Evaluates every declared check. Order follows the suite.
pub fn evaluate(suite: &Suite, run: &RunOutcome) -> Vec<CheckOutcome> {
    suite
        .checks
        .iter()
        .map(|check| match check {
            Check::Determinism => CheckOutcome::new(check, check_determinism(run)),
            Check::SplitReconciliation => CheckOutcome::new(check, check_split(run)),
            Check::ValidOutputs => CheckOutcome::new(check, check_valid(run)),
            Check::Budget { metric, max } => {
                CheckOutcome::new(check, check_budget(run, *metric, *max))
            }
        })
        .collect()
}

fn group_by_config(run: &RunOutcome) -> BTreeMap<String, Vec<&TrialRow>> {
    let mut groups: BTreeMap<String, Vec<&TrialRow>> = BTreeMap::new();
    for row in &run.rows {
        groups.entry(row.spec.config_key()).or_default().push(row);
    }
    groups
}

/// Rows sharing a configuration key — same computation, different
/// shards/workers/rep — must agree bit for bit.
fn check_determinism(run: &RunOutcome) -> Vec<String> {
    let mut violations = Vec::new();
    for (key, rows) in group_by_config(run) {
        let errored = rows.iter().filter(|r| r.error.is_some()).count();
        if errored > 0 {
            // A configuration may die (chaos does that), but it must die
            // in every replay, not depending on the shard count.
            if errored < rows.len() {
                violations.push(format!(
                    "{key}: {errored}/{} replays died — failure depends on a perf knob",
                    rows.len()
                ));
            }
            continue;
        }
        let engine: Vec<&&TrialRow> = rows.iter().filter(|r| r.spec.shards > 0).collect();
        if let Some(first) = engine.first() {
            for row in &engine[1..] {
                let mut diff = |what: &str, a: String, b: String| {
                    if a != b {
                        violations.push(format!(
                            "{key}: trial {} {what} {b} != trial {} {what} {a} \
                             (shards {}/{} workers {}/{})",
                            row.spec.id,
                            first.spec.id,
                            row.spec.shards,
                            first.spec.shards,
                            row.spec.workers.label(),
                            first.spec.workers.label(),
                        ));
                    }
                };
                diff(
                    "output",
                    format!("{:016x}", first.output_hash),
                    format!("{:016x}", row.output_hash),
                );
                diff(
                    "traffic",
                    format!("{:016x}", first.traffic_hash),
                    format!("{:016x}", row.traffic_hash),
                );
                diff(
                    "ledger",
                    first.ledger_rounds.to_string(),
                    row.ledger_rounds.to_string(),
                );
                diff(
                    "physical rounds",
                    first.physical_rounds.to_string(),
                    row.physical_rounds.to_string(),
                );
                diff(
                    "fragments",
                    first.fragments.to_string(),
                    row.fragments.to_string(),
                );
            }
            // The sequential baseline anchors the engine rows: the engine
            // must *replay* the simulation, not merely agree with itself.
            if let Some(seq) = rows.iter().find(|r| r.spec.shards == 0) {
                if seq.output_hash != first.output_hash {
                    violations.push(format!(
                        "{key}: engine output {:016x} departs from the sequential \
                         baseline {:016x}",
                        first.output_hash, seq.output_hash
                    ));
                }
                if seq.ledger_rounds != first.ledger_rounds {
                    violations.push(format!(
                        "{key}: engine ledger {} != sequential ledger {}",
                        first.ledger_rounds, seq.ledger_rounds
                    ));
                }
            }
        }
        // Reps of the sequential baseline must also agree among themselves.
        let seq: Vec<&&TrialRow> = rows.iter().filter(|r| r.spec.shards == 0).collect();
        if let Some(first) = seq.first() {
            for row in &seq[1..] {
                if row.output_hash != first.output_hash {
                    violations.push(format!(
                        "{key}: sequential reps disagree ({:016x} vs {:016x})",
                        row.output_hash, first.output_hash
                    ));
                }
            }
        }
    }
    violations
}

/// Every split row must reconcile with an unlimited twin: identical
/// output, `ledger − surplus == unlimited ledger`, `physical == engine
/// rounds + surplus`.
fn check_split(run: &RunOutcome) -> Vec<String> {
    let groups = group_by_config(run);
    let mut violations = Vec::new();
    let mut seen_pair = false;
    for row in &run.rows {
        if row.spec.congest.split_width().is_none() || row.error.is_some() {
            continue;
        }
        let Some(twin) = groups
            .get(&row.spec.unlimited_key())
            .and_then(|rows| rows.iter().find(|t| t.error.is_none()))
        else {
            violations.push(format!(
                "trial {}: split row has no unlimited twin in the plan (add \
                 \"unlimited\" to the congest axis)",
                row.spec.id
            ));
            continue;
        };
        seen_pair = true;
        if row.output_hash != twin.output_hash {
            violations.push(format!(
                "trial {}: split output {:016x} != unlimited output {:016x} — \
                 fragmentation changed semantics",
                row.spec.id, row.output_hash, twin.output_hash
            ));
        }
        if row.ledger_rounds < row.split_surplus
            || row.ledger_rounds - row.split_surplus != twin.ledger_rounds
        {
            violations.push(format!(
                "trial {}: ledger {} − surplus {} != unlimited ledger {}",
                row.spec.id, row.ledger_rounds, row.split_surplus, twin.ledger_rounds
            ));
        }
        if row.spec.shards > 0 && row.physical_rounds != row.engine_rounds + row.split_surplus {
            violations.push(format!(
                "trial {}: physical {} != rounds {} + surplus {}",
                row.spec.id, row.physical_rounds, row.engine_rounds, row.split_surplus
            ));
        }
    }
    if !seen_pair && violations.is_empty() {
        violations.push(
            "no split/unlimited pair in the plan — the check has nothing to certify \
             (declare a split:w congest alongside unlimited)"
                .into(),
        );
    }
    violations
}

fn check_valid(run: &RunOutcome) -> Vec<String> {
    run.rows
        .iter()
        .filter(|r| !r.valid)
        .map(|r| {
            let why = r
                .error
                .as_deref()
                .or(r.invalid_reason.as_deref())
                .unwrap_or("invalid");
            format!(
                "trial {} ({} {} n={} seed={} shards={} congest={} faults={}): {why}",
                r.spec.id,
                r.spec.scenario,
                r.spec.algorithm,
                r.spec.n,
                r.spec.seed,
                r.spec.shards,
                r.spec.congest.label(),
                r.spec.faults.label()
            )
        })
        .collect()
}

/// Best-of-reps wall/route per configuration×shards×workers.
fn best_walls(run: &RunOutcome) -> BTreeMap<String, (f64, f64)> {
    let mut best: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for row in &run.rows {
        if row.error.is_some() {
            continue;
        }
        let key = format!(
            "{}|{}|{}",
            row.spec.config_key(),
            row.spec.shards,
            row.spec.workers.label()
        );
        let entry = best.entry(key).or_insert((f64::INFINITY, 0.0));
        if row.wall_ms < entry.0 {
            *entry = (row.wall_ms, row.route_ms);
        }
    }
    best
}

/// Ratio budgets, evaluated at the largest `n` of every (scenario,
/// algorithm) — matching `bench_gate`'s "judge at scale" convention.
fn check_budget(run: &RunOutcome, metric: BudgetMetric, max: f64) -> Vec<String> {
    let mut max_n: BTreeMap<(String, String), usize> = BTreeMap::new();
    for row in &run.rows {
        let key = (row.spec.scenario.clone(), row.spec.algorithm.clone());
        let n = max_n.entry(key).or_default();
        *n = (*n).max(row.spec.n);
    }
    let at_scale = |row: &TrialRow| {
        max_n[&(row.spec.scenario.clone(), row.spec.algorithm.clone())] == row.spec.n
    };
    let best = best_walls(run);
    let wall_of = |spec_row: &TrialRow, shards: usize, congest: Option<CongestSpec>| {
        let mut spec = spec_row.spec.clone();
        spec.shards = shards;
        if let Some(c) = congest {
            spec.congest = c;
        }
        if shards == 0 {
            spec.congest = CongestSpec::Unlimited;
        }
        // Workers are part of the best-walls key; scan all worker specs.
        best.iter()
            .filter(|(k, _)| k.starts_with(&format!("{}|{}|", spec.config_key(), spec.shards)))
            .map(|(_, &(wall, _))| wall)
            .min_by(f64::total_cmp)
    };
    let mut violations = Vec::new();
    let mut applied = false;
    for row in &run.rows {
        if row.error.is_some() || !at_scale(row) || row.spec.rep != 0 {
            continue;
        }
        let ratio = match metric {
            BudgetMetric::EngineRatio => {
                // Judged once per configuration, from its shards=1 row.
                if row.spec.shards != 1
                    || row.spec.congest != CongestSpec::Unlimited
                    || !row.spec.faults.is_none()
                {
                    continue;
                }
                let (Some(engine), Some(seq)) = (wall_of(row, 1, None), wall_of(row, 0, None))
                else {
                    continue;
                };
                Some(("engine/1 vs sequential", engine / seq.max(f64::EPSILON)))
            }
            BudgetMetric::ShardRatio => {
                let widest = run
                    .rows
                    .iter()
                    .filter(|r| r.spec.config_key() == row.spec.config_key())
                    .map(|r| r.spec.shards)
                    .max()
                    .unwrap_or(0);
                if row.spec.shards != widest || widest <= 1 {
                    continue;
                }
                let (Some(wide), Some(one)) = (wall_of(row, widest, None), wall_of(row, 1, None))
                else {
                    continue;
                };
                Some(("max-shards vs engine/1", wide / one.max(f64::EPSILON)))
            }
            BudgetMetric::RouteFrac => {
                if row.spec.shards == 0 {
                    continue;
                }
                let key = format!(
                    "{}|{}|{}",
                    row.spec.config_key(),
                    row.spec.shards,
                    row.spec.workers.label()
                );
                let (wall, route) = best[&key];
                Some(("route/wall", route / wall.max(f64::EPSILON)))
            }
            BudgetMetric::SplitRatio => {
                if row.spec.congest.split_width().is_none() {
                    continue;
                }
                let split_wall = wall_of(row, row.spec.shards, None);
                let mut unlimited = row.clone();
                unlimited.spec.congest = CongestSpec::Unlimited;
                let unlimited_wall =
                    wall_of(&unlimited, row.spec.shards, Some(CongestSpec::Unlimited));
                let (Some(split), Some(open)) = (split_wall, unlimited_wall) else {
                    continue;
                };
                Some(("split vs unlimited", split / open.max(f64::EPSILON)))
            }
        };
        if let Some((what, ratio)) = ratio {
            applied = true;
            if ratio > max {
                violations.push(format!(
                    "trial {} ({} {} n={} shards={}): {what} ratio {ratio:.2} \
                     exceeds budget {max}",
                    row.spec.id, row.spec.scenario, row.spec.algorithm, row.spec.n, row.spec.shards
                ));
            }
        }
    }
    if !applied && violations.is_empty() {
        violations.push(format!(
            "budget {} applies to no row in the plan — the check certifies nothing",
            metric.label()
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_suite;
    use crate::schema::Suite;

    fn run(body: &str) -> (Suite, RunOutcome) {
        let suite = Suite::from_json(body).unwrap();
        let run = run_suite(&suite, |_, _| {}).unwrap();
        (suite, run)
    }

    #[test]
    fn clean_suite_passes_all_checks() {
        let (suite, out) = run(r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 36, "algorithm": "gather",
                "shards": [0, 1, 2], "workers": "shards",
                "congest": ["unlimited", "split:2"], "reps": 2
            }], "checks": [
                {"kind": "determinism"},
                {"kind": "split-reconciliation"},
                {"kind": "valid-outputs"},
                {"kind": "budget", "metric": "route-frac", "max": 1.0}
            ]}"#);
        let outcomes = evaluate(&suite, &out);
        for o in &outcomes {
            assert!(o.passed, "{}: {:?}", o.check, o.violations);
        }
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn split_without_twin_is_called_out() {
        let (suite, out) = run(r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 36, "algorithm": "gather",
                "shards": 1, "congest": "split:2"
            }], "checks": [{"kind": "split-reconciliation"}]}"#);
        let outcomes = evaluate(&suite, &out);
        assert!(!outcomes[0].passed);
        assert!(outcomes[0].violations[0].contains("no unlimited twin"));
    }

    #[test]
    fn dying_configuration_fails_valid_outputs_but_not_determinism() {
        let (suite, out) = run(r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 36, "algorithm": "gather",
                "shards": [1, 2], "congest": "reject:1"
            }], "checks": [{"kind": "determinism"}, {"kind": "valid-outputs"}]}"#);
        let outcomes = evaluate(&suite, &out);
        assert!(
            outcomes[0].passed,
            "dies at every shard count: {:?}",
            outcomes[0].violations
        );
        assert!(!outcomes[1].passed);
        assert_eq!(outcomes[1].violations.len(), 2);
    }

    #[test]
    fn inapplicable_budget_is_a_failure_not_a_silent_pass() {
        let (suite, out) = run(r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 36, "algorithm": "gather",
                "shards": 1
            }], "checks": [{"kind": "budget", "metric": "split-ratio", "max": 3.0}]}"#);
        let outcomes = evaluate(&suite, &out);
        assert!(!outcomes[0].passed);
        assert!(outcomes[0].violations[0].contains("applies to no row"));
    }
}
