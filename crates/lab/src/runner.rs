//! Trial execution: the plan, run in order, every outcome recorded.
//!
//! Each trial builds its graph from the family registry, runs the declared
//! algorithm via [`crate::algorithms`], and lands as one [`TrialRow`] —
//! wall and routing time, logical/physical round counts, message and
//! fragment totals, fault casualties, per-round wall percentiles, output
//! and traffic fingerprints, and the validity verdict. A panicking trial
//! (rejected over-width message, violated precondition under chaos) is
//! caught and recorded as an errored row rather than killing the run: in a
//! chaos suite, "this configuration dies" is a measurement.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use graphs::Graph;

use crate::algorithms;
use crate::json::Value;
use crate::plan::{expand, TrialSpec};
use crate::schema::Suite;
use crate::stats::summarize;

/// One executed trial, flattened for the `trials.jsonl` artifact.
#[derive(Clone, Debug)]
pub struct TrialRow {
    /// The spec this row executed (carries id, axes, params).
    pub spec: TrialSpec,
    /// Generated graph order (families normalize the requested `n`).
    pub graph_n: usize,
    /// Generated graph size (edges).
    pub graph_m: usize,
    /// Wall-clock of the run, milliseconds (graph generation excluded).
    pub wall_ms: f64,
    /// Routing-phase wall, milliseconds (engine trials; 0 sequential).
    pub route_ms: f64,
    /// Logical LOCAL rounds from the ledger.
    pub ledger_rounds: u64,
    /// Engine-observed rounds (0 for sequential trials).
    pub engine_rounds: u64,
    /// Physical rounds: logical plus the CONGEST split surplus.
    pub physical_rounds: u64,
    /// The split surplus alone (`SPLIT_PHASE` ledger charge).
    pub split_surplus: u64,
    /// Point-to-point messages emitted.
    pub messages: usize,
    /// CONGEST fragments delivered.
    pub fragments: usize,
    /// Messages discarded by seeded loss.
    pub lost: usize,
    /// Messages discarded by drop faults.
    pub dropped: usize,
    /// Extra deliveries from seeded duplication.
    pub duplicated: usize,
    /// Messages rescheduled by delay faults.
    pub delayed: usize,
    /// Widest message observed, in words.
    pub max_width: usize,
    /// Per-round wall percentiles, milliseconds (0 when no rounds).
    pub round_p50_ms: f64,
    /// 95th-percentile round wall.
    pub round_p95_ms: f64,
    /// 99th-percentile round wall.
    pub round_p99_ms: f64,
    /// FNV-1a fingerprint of the canonical output.
    pub output_hash: u64,
    /// FNV-1a fingerprint of the per-round message counts (0 sequential).
    pub traffic_hash: u64,
    /// Distinct colors used (coloring algorithms).
    pub colors_used: Option<usize>,
    /// Validity verdict (false when errored).
    pub valid: bool,
    /// Why the output was judged invalid (validity failures).
    pub invalid_reason: Option<String>,
    /// The panic message, when the trial died.
    pub error: Option<String>,
}

impl TrialRow {
    /// The row as JSON (sorted keys). Hashes render as fixed-width hex
    /// strings: they are identities, not quantities, and JSON numbers
    /// cannot carry 64 bits exactly.
    pub fn to_json(&self) -> Value {
        let opt_str = |s: &Option<String>| match s {
            Some(s) => Value::str(s),
            None => Value::Null,
        };
        Value::Obj(vec![
            ("algorithm".into(), Value::str(&self.spec.algorithm)),
            (
                "colors_used".into(),
                match self.colors_used {
                    Some(c) => Value::int(c as u64),
                    None => Value::Null,
                },
            ),
            ("congest".into(), Value::str(self.spec.congest.label())),
            ("delayed".into(), Value::int(self.delayed as u64)),
            ("dropped".into(), Value::int(self.dropped as u64)),
            ("duplicated".into(), Value::int(self.duplicated as u64)),
            ("engine_rounds".into(), Value::int(self.engine_rounds)),
            ("error".into(), opt_str(&self.error)),
            ("family".into(), Value::str(&self.spec.family)),
            ("faults".into(), Value::str(self.spec.faults.label())),
            ("fragments".into(), Value::int(self.fragments as u64)),
            ("frontier".into(), Value::Bool(self.spec.frontier)),
            ("graph_m".into(), Value::int(self.graph_m as u64)),
            ("graph_n".into(), Value::int(self.graph_n as u64)),
            ("id".into(), Value::int(self.spec.id as u64)),
            ("invalid_reason".into(), opt_str(&self.invalid_reason)),
            ("ledger_rounds".into(), Value::int(self.ledger_rounds)),
            ("lost".into(), Value::int(self.lost as u64)),
            ("max_width".into(), Value::int(self.max_width as u64)),
            ("messages".into(), Value::int(self.messages as u64)),
            ("n".into(), Value::int(self.spec.n as u64)),
            ("order".into(), Value::str(self.spec.order.label())),
            (
                "output_hash".into(),
                Value::str(format!("{:016x}", self.output_hash)),
            ),
            ("physical_rounds".into(), Value::int(self.physical_rounds)),
            ("rep".into(), Value::int(self.spec.rep as u64)),
            ("round_p50_ms".into(), Value::num(self.round_p50_ms)),
            ("round_p95_ms".into(), Value::num(self.round_p95_ms)),
            ("round_p99_ms".into(), Value::num(self.round_p99_ms)),
            ("route_ms".into(), Value::num(self.route_ms)),
            ("scenario".into(), Value::str(&self.spec.scenario)),
            ("seed".into(), Value::int(self.spec.seed)),
            ("shards".into(), Value::int(self.spec.shards as u64)),
            ("split_surplus".into(), Value::int(self.split_surplus)),
            (
                "traffic_hash".into(),
                Value::str(format!("{:016x}", self.traffic_hash)),
            ),
            ("valid".into(), Value::Bool(self.valid)),
            ("wall_ms".into(), Value::num(self.wall_ms)),
            ("workers".into(), Value::str(self.spec.workers.label())),
        ])
    }
}

/// A whole executed suite: the plan and every row, in plan order.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Suite name.
    pub suite: String,
    /// The expanded plan.
    pub plan: Vec<TrialSpec>,
    /// One row per plan entry, same order.
    pub rows: Vec<TrialRow>,
}

impl RunOutcome {
    /// Rows that died or were judged invalid.
    pub fn failed_rows(&self) -> Vec<&TrialRow> {
        self.rows.iter().filter(|r| !r.valid).collect()
    }
}

/// Expands and executes a suite, calling `progress` after every trial.
///
/// # Errors
///
/// Plan-expansion errors only; trial failures land in the rows.
pub fn run_suite(
    suite: &Suite,
    mut progress: impl FnMut(&TrialRow, usize),
) -> Result<RunOutcome, String> {
    let plan = expand(suite)?;
    let total = plan.len();
    let mut graphs_cache: BTreeMap<(String, usize, u64), Graph> = BTreeMap::new();
    let mut rows = Vec::with_capacity(total);
    for spec in &plan {
        let key = (spec.family.clone(), spec.n, spec.seed);
        let g = graphs_cache.entry(key).or_insert_with(|| {
            graphs::gen::build_family(&spec.family, spec.n, spec.seed)
                .expect("plan admits registered families only")
        });
        let row = run_trial(spec, g);
        progress(&row, total);
        rows.push(row);
    }
    Ok(RunOutcome {
        suite: suite.name.clone(),
        plan,
        rows,
    })
}

/// Executes one trial on a pre-built graph.
pub fn run_trial(spec: &TrialSpec, g: &Graph) -> TrialRow {
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| algorithms::run(spec, g)));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut row = TrialRow {
        spec: spec.clone(),
        graph_n: g.n(),
        graph_m: g.edges().count(),
        wall_ms,
        route_ms: 0.0,
        ledger_rounds: 0,
        engine_rounds: 0,
        physical_rounds: 0,
        split_surplus: 0,
        messages: 0,
        fragments: 0,
        lost: 0,
        dropped: 0,
        duplicated: 0,
        delayed: 0,
        max_width: 0,
        round_p50_ms: 0.0,
        round_p95_ms: 0.0,
        round_p99_ms: 0.0,
        output_hash: 0,
        traffic_hash: 0,
        colors_used: None,
        valid: false,
        invalid_reason: None,
        error: None,
    };
    match outcome {
        Err(panic) => {
            row.error = Some(panic_message(panic.as_ref()));
        }
        Ok(out) => {
            row.output_hash = out.output_hash;
            row.ledger_rounds = out.ledger_rounds;
            row.split_surplus = out.split_surplus;
            // The ledger total already includes the SPLIT_PHASE surplus,
            // so it *is* the physical view; engine metrics refine this
            // below for engine trials.
            row.physical_rounds = out.ledger_rounds;
            row.valid = out.valid;
            row.invalid_reason = out.invalid_reason;
            row.colors_used = out.colors_used;
            if let Some(m) = &out.metrics {
                row.route_ms = m.total_route_wall().as_secs_f64() * 1e3;
                row.engine_rounds = m.total_rounds();
                row.physical_rounds = m.total_physical_rounds();
                row.messages = m.total_messages();
                row.fragments = m.total_fragments();
                row.lost = m.total_lost();
                row.dropped = m.total_dropped();
                row.duplicated = m.total_duplicated();
                row.delayed = m.total_delayed();
                row.max_width = m.per_round().iter().map(|r| r.max_width).max().unwrap_or(0);
                let walls: Vec<f64> = m
                    .per_round()
                    .iter()
                    .map(|r| r.wall.as_secs_f64() * 1e3)
                    .collect();
                if let Some(p) = summarize(&walls) {
                    row.round_p50_ms = p.p50;
                    row.round_p95_ms = p.p95;
                    row.round_p99_ms = p.p99;
                }
                row.traffic_hash = hash_counts(&m.message_counts());
            }
        }
    }
    row
}

/// FNV-1a over the per-round message counts — the traffic fingerprint the
/// determinism check compares across shard/worker configurations.
fn hash_counts(counts: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in counts {
        for byte in (c as u64).to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Suite;

    #[test]
    fn smoke_suite_runs_and_rows_align_with_plan() {
        let suite = Suite::from_json(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 36, "algorithm": "gather",
                "shards": [0, 1, 2], "congest": ["unlimited", "split:2"], "reps": 2
            }]}"#,
        )
        .unwrap();
        let mut seen = 0;
        let run = run_suite(&suite, |_, total| {
            seen += 1;
            assert_eq!(total, 10);
        })
        .unwrap();
        assert_eq!(seen, 10);
        assert_eq!(run.rows.len(), run.plan.len());
        assert!(
            run.rows.iter().all(|r| r.valid),
            "clean gather trials all pass"
        );
        assert!(run.failed_rows().is_empty());
        // Reps replay bit-identically; engine rows match the baseline.
        let h0 = run.rows[0].output_hash;
        assert!(run.rows.iter().all(|r| r.output_hash == h0));
        // Engine rows observed traffic; the sequential baseline none.
        let seq = &run.rows[0];
        assert_eq!(seq.spec.shards, 0);
        assert_eq!(seq.messages, 0);
        assert!(run
            .rows
            .iter()
            .filter(|r| r.spec.shards > 0)
            .all(|r| r.messages > 0));
        // Split rows carry surplus and physical > logical.
        let split = run
            .rows
            .iter()
            .find(|r| r.spec.congest.split_width().is_some())
            .unwrap();
        assert!(split.split_surplus > 0);
        assert_eq!(
            split.physical_rounds,
            split.engine_rounds + split.split_surplus
        );
    }

    #[test]
    fn a_dying_trial_is_recorded_not_fatal() {
        // Reject(1) on a radius-3 gather: hop-2 forwards exceed one word,
        // so the engine aborts — the row must record the panic.
        let suite = Suite::from_json(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 36, "algorithm": "gather",
                "shards": 1, "congest": "reject:1"
            }]}"#,
        )
        .unwrap();
        let run = run_suite(&suite, |_, _| {}).unwrap();
        assert_eq!(run.rows.len(), 1);
        assert!(!run.rows[0].valid);
        assert!(run.rows[0].error.is_some());
    }

    #[test]
    fn rows_render_with_sorted_keys() {
        let suite = Suite::from_json(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "path", "n": 8, "algorithm": "cole-vishkin",
                "shards": 1
            }]}"#,
        )
        .unwrap();
        let run = run_suite(&suite, |_, _| {}).unwrap();
        let rendered = run.rows[0].to_json().render();
        let keys: Vec<&str> = rendered
            .match_indices('"')
            .map(|(i, _)| i)
            .collect::<Vec<_>>()
            .chunks(2)
            .filter_map(|c| rendered.get(c[0] + 1..c[1]))
            .collect();
        // Spot-check ordering of a few fields.
        let pos = |k: &str| keys.iter().position(|&x| x == k);
        assert!(pos("algorithm") < pos("congest"));
        assert!(pos("round_p50_ms") < pos("round_p95_ms"));
        let reparsed = crate::json::parse(&rendered).unwrap();
        assert_eq!(
            reparsed.get("valid").and_then(crate::json::Value::as_bool),
            Some(true)
        );
    }
}
