//! The suite schema: scenarios and invariants declared as data.
//!
//! A *suite* file is one JSON object:
//!
//! ```json
//! {
//!   "name": "smoke",
//!   "description": "what this suite demonstrates",
//!   "scenarios": [
//!     {
//!       "name": "loss-curve",
//!       "family": "random-4-regular",
//!       "n": [300],
//!       "seed": [7, 8],
//!       "algorithm": "randomized",
//!       "shards": [0, 1, 2],
//!       "congest": ["unlimited", "split:4"],
//!       "faults": ["none", {"lose": {"seed": 3, "p": 0.05}}],
//!       "reps": 2,
//!       "params": {"list_slack": 2}
//!     }
//!   ],
//!   "checks": [
//!     {"kind": "determinism"},
//!     {"kind": "split-reconciliation"},
//!     {"kind": "valid-outputs"},
//!     {"kind": "budget", "metric": "route-frac", "max": 0.9}
//!   ]
//! }
//! ```
//!
//! Every scenario field that spans a *matrix axis* (`family`, `n`, `seed`,
//! `algorithm`, `shards`, `workers`, `congest`, `faults`, `order`) accepts
//! either a scalar or an array; the trial plan is the cross-product of all
//! axes times `reps` (see [`crate::plan`]). `shards: 0` declares the
//! sequential baseline row. Checks are *data about the artifact*: the runner records
//! every trial as a JSON row and [`crate::invariants`] evaluates the
//! declared checks over those rows — the gates are wrappers around this.

use engine::{CongestMode, FaultPlan, VertexOrder};
use rand::mix64;

use crate::json::{self, Value};

/// A parsed suite: scenarios plus the invariants declared over their runs.
#[derive(Clone, Debug)]
pub struct Suite {
    /// Suite name (names the run directory).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// The scenario matrix.
    pub scenarios: Vec<Scenario>,
    /// Invariants evaluated over the trial artifact.
    pub checks: Vec<Check>,
}

/// One scenario: a cross-product of axes, executed `reps` times each.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (unique within the suite).
    pub name: String,
    /// Graph-family axis (names from `graphs::gen::registry`).
    pub family: Vec<String>,
    /// Vertex-count axis.
    pub n: Vec<usize>,
    /// Seed axis: seeds both the family generator and the protocol RNG.
    pub seed: Vec<u64>,
    /// Algorithm axis (names from `lab::algorithms`).
    pub algorithm: Vec<String>,
    /// Shard-count axis; `0` is the sequential baseline.
    pub shards: Vec<usize>,
    /// Worker-pool axis (defaults to `[auto]`).
    pub workers: Vec<WorkerSpec>,
    /// CONGEST-mode axis (defaults to `[unlimited]`).
    pub congest: Vec<CongestSpec>,
    /// Fault-plan axis (defaults to `[none]`).
    pub faults: Vec<FaultSpec>,
    /// Vertex-order axis (defaults to `[identity]`). An axis rather than a
    /// flag — unlike `frontier` — because order is the knob the
    /// determinism check should diff automatically: it never enters the
    /// configuration key, so declaring `["identity", "locality"]` makes
    /// every relabeled trial a bit-identity twin of its identity sibling.
    pub order: Vec<OrderSpec>,
    /// Frontier-sparse rounds for every engine trial (`true` by default).
    /// `false` pins the scenario to the historical full-range scan — the
    /// twin scenarios the bench suite uses to keep the frontier index
    /// honest. A single flag rather than an axis: a full-scan twin wants
    /// its own name and budget, not a silent doubling of every scenario.
    pub frontier: bool,
    /// Repetitions per configuration (wall-clock sampling; outputs replay
    /// bit-identically across reps by the determinism contract).
    pub reps: usize,
    /// Algorithm parameters.
    pub params: Params,
}

/// Worker-pool sizing for one trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerSpec {
    /// Hardware-sized pool (`EngineConfig::workers = 0`).
    Auto,
    /// Exactly this many workers.
    Fixed(usize),
    /// One worker group per shard — the determinism gate's forcing mode.
    MatchShards,
}

impl WorkerSpec {
    /// The `EngineConfig::workers` value for a trial at `shards`.
    pub fn resolve(self, shards: usize) -> usize {
        match self {
            WorkerSpec::Auto => 0,
            WorkerSpec::Fixed(w) => w,
            WorkerSpec::MatchShards => shards,
        }
    }

    /// Stable label for rows and grouping.
    pub fn label(self) -> String {
        match self {
            WorkerSpec::Auto => "auto".into(),
            WorkerSpec::Fixed(w) => format!("{w}"),
            WorkerSpec::MatchShards => "shards".into(),
        }
    }
}

/// CONGEST treatment for one trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestSpec {
    /// No bandwidth budget.
    Unlimited,
    /// Abort on any message wider than the budget.
    Reject(usize),
    /// Fragment over-budget messages, charging physical rounds.
    Split(usize),
}

impl CongestSpec {
    /// The engine mode this spec declares.
    pub fn to_mode(self) -> CongestMode {
        match self {
            CongestSpec::Unlimited => CongestMode::Unlimited,
            CongestSpec::Reject(w) => CongestMode::Reject(w),
            CongestSpec::Split(w) => CongestMode::Split(w),
        }
    }

    /// Stable label (`unlimited`, `reject:4`, `split:4`) for rows and
    /// grouping — parses back via [`CongestSpec::parse`].
    pub fn label(self) -> String {
        match self {
            CongestSpec::Unlimited => "unlimited".into(),
            CongestSpec::Reject(w) => format!("reject:{w}"),
            CongestSpec::Split(w) => format!("split:{w}"),
        }
    }

    /// Parses a label.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "unlimited" {
            return Ok(CongestSpec::Unlimited);
        }
        let parse_width = |w: &str, what: &str| {
            w.parse::<usize>()
                .ok()
                .filter(|&w| w >= 1)
                .ok_or_else(|| format!("bad {what} width in congest spec {s:?}"))
        };
        if let Some(w) = s.strip_prefix("reject:") {
            return Ok(CongestSpec::Reject(parse_width(w, "reject")?));
        }
        if let Some(w) = s.strip_prefix("split:") {
            return Ok(CongestSpec::Split(parse_width(w, "split")?));
        }
        Err(format!(
            "unknown congest spec {s:?} (want unlimited | reject:w | split:w)"
        ))
    }

    /// The split width, if this is a split mode.
    pub fn split_width(self) -> Option<usize> {
        match self {
            CongestSpec::Split(w) => Some(w),
            _ => None,
        }
    }
}

/// Vertex-storage order for one trial's engine sessions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderSpec {
    /// Original vertex ids (the historical layout).
    #[default]
    Identity,
    /// Seeded bandwidth-minimizing relabeling of each shard's local
    /// storage; observables stay on original ids, so outputs are
    /// bit-identical to [`OrderSpec::Identity`].
    Locality,
}

impl OrderSpec {
    /// The engine order this spec declares.
    pub fn to_order(self) -> VertexOrder {
        match self {
            OrderSpec::Identity => VertexOrder::Identity,
            OrderSpec::Locality => VertexOrder::Locality,
        }
    }

    /// Stable label (`identity`, `locality`) for rows and grouping —
    /// parses back via [`OrderSpec::parse`]. `bench_trend` matches lab
    /// summary groups to committed bench rows on exactly these strings.
    pub fn label(self) -> &'static str {
        match self {
            OrderSpec::Identity => "identity",
            OrderSpec::Locality => "locality",
        }
    }

    /// Parses a label.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "identity" => Ok(OrderSpec::Identity),
            "locality" => Ok(OrderSpec::Locality),
            other => Err(format!(
                "unknown order spec {other:?} (want identity | locality)"
            )),
        }
    }
}

/// A declarative fault plan: everything [`FaultPlan`] supports, as data,
/// plus the *crash storm* convenience (a seeded batch of crash-stops).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Seeded per-edge loss `(seed, probability)`.
    pub lose: Option<(u64, f64)>,
    /// Seeded per-edge duplication `(seed, probability)`.
    pub duplicate: Option<(u64, f64)>,
    /// Adversarial inbox reorder seed.
    pub reorder: Option<u64>,
    /// Explicit crash-stops `(vertex, round)`.
    pub crashes: Vec<(usize, u64)>,
    /// A seeded crash storm (vertices drawn at plan time from `n`).
    pub crash_storm: Option<CrashStorm>,
    /// Outbox drops `(vertex, round)`.
    pub drops: Vec<(usize, u64)>,
    /// Outbox delays `(vertex, round, by)`.
    pub delays: Vec<(usize, u64, u64)>,
}

/// A seeded batch of crash-stops: `count` distinct vertices, each crashing
/// at a round in `0..=max_round`, both drawn by hashing the seed — the
/// "crash storm" chaos suite, expressible as one declaration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashStorm {
    /// Storm seed.
    pub seed: u64,
    /// Number of distinct crashed vertices.
    pub count: usize,
    /// Latest possible crash round.
    pub max_round: u64,
}

/// Domain separators for the storm's vertex and round draws.
const STORM_VERTEX_DOMAIN: u64 = 0x7374_6f72_6d2d_7631; // "storm-v1"
const STORM_ROUND_DOMAIN: u64 = 0x7374_6f72_6d2d_7231; // "storm-r1"

impl FaultSpec {
    /// Whether this spec injects nothing.
    pub fn is_none(&self) -> bool {
        *self == FaultSpec::default()
    }

    /// Stable label for rows and grouping (`none`, or `+`-joined parts).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if let Some((seed, p)) = self.lose {
            parts.push(format!("lose(s{seed},p{p})"));
        }
        if let Some((seed, p)) = self.duplicate {
            parts.push(format!("dup(s{seed},p{p})"));
        }
        if let Some(seed) = self.reorder {
            parts.push(format!("reorder(s{seed})"));
        }
        for &(v, r) in &self.crashes {
            parts.push(format!("crash({v}@{r})"));
        }
        if let Some(s) = self.crash_storm {
            parts.push(format!("storm(s{},c{},r{})", s.seed, s.count, s.max_round));
        }
        for &(v, r) in &self.drops {
            parts.push(format!("drop({v}@{r})"));
        }
        for &(v, r, by) in &self.delays {
            parts.push(format!("delay({v}@{r}+{by})"));
        }
        if parts.is_empty() {
            "none".into()
        } else {
            parts.join("+")
        }
    }

    /// Materializes the [`FaultPlan`] for a graph of `n` vertices. The
    /// storm's vertices and rounds are pure functions of `(seed, n)`, so a
    /// declared storm perturbs every shard/worker configuration of a trial
    /// identically.
    pub fn plan(&self, n: usize) -> FaultPlan {
        let mut plan = FaultPlan::new();
        if let Some((seed, p)) = self.lose {
            plan = plan.lose_edges(seed, p);
        }
        if let Some((seed, p)) = self.duplicate {
            plan = plan.duplicate_edges(seed, p);
        }
        if let Some(seed) = self.reorder {
            plan = plan.reorder(seed);
        }
        for &(v, r) in &self.crashes {
            plan = plan.crash(v, r);
        }
        if let Some(storm) = self.crash_storm {
            if n > 0 {
                let mut seen = std::collections::BTreeSet::new();
                let mut draw = 0u64;
                while seen.len() < storm.count.min(n) {
                    let v =
                        (mix64(mix64(storm.seed, STORM_VERTEX_DOMAIN), draw) % n as u64) as usize;
                    draw += 1;
                    if seen.insert(v) {
                        let round = mix64(mix64(storm.seed, STORM_ROUND_DOMAIN), v as u64)
                            % (storm.max_round + 1);
                        plan = plan.crash(v, round);
                    }
                }
            }
        }
        for &(v, r) in &self.drops {
            plan = plan.drop_outbox(v, r);
        }
        for &(v, r, by) in &self.delays {
            plan = plan.delay_outbox(v, r, by);
        }
        plan
    }
}

/// Algorithm parameters, with per-algorithm defaults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// Theorem 1.3 target `d` (needs `mad(G) ≤ d` on the declared family).
    pub d: usize,
    /// Gather-ball radius.
    pub radius: usize,
    /// Ruling-forest spacing α.
    pub alpha: usize,
    /// H-partition arboricity bound.
    pub arboricity: usize,
    /// H-partition ε.
    pub epsilon: f64,
    /// Randomized-coloring cycle cap.
    pub max_cycles: u64,
    /// Extra colors beyond `deg+1` in randomized lists (chaos slack).
    pub list_slack: usize,
    /// `Some(m)` masks the run to vertices with `v % m != 0`.
    pub mask_mod: Option<usize>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            d: 6,
            radius: 3,
            alpha: 6,
            arboricity: 2,
            epsilon: 1.0,
            max_cycles: 10_000,
            list_slack: 0,
            mask_mod: None,
        }
    }
}

/// One declared invariant over the trial artifact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Check {
    /// Trials identical up to shards/workers/rep must agree bit for bit
    /// (output and traffic fingerprints, ledger totals), and engine rows
    /// must replay a sequential baseline row when the group has one.
    Determinism,
    /// Every `split:w` trial must reconcile with its unlimited twin:
    /// identical outputs, `ledger − split-surplus == unlimited ledger`,
    /// `physical == logical + surplus`.
    SplitReconciliation,
    /// Every trial must report a valid output and no panic.
    ValidOutputs,
    /// A ratio budget over best-of-reps measurements.
    Budget {
        /// Which ratio.
        metric: BudgetMetric,
        /// Inclusive upper bound.
        max: f64,
    },
}

/// The ratio a [`Check::Budget`] constrains, evaluated per `(scenario,
/// algorithm)` at the largest benched `n` (matching `bench_gate`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetMetric {
    /// `wall(engine/1) / wall(sequential)`.
    EngineRatio,
    /// `wall(engine at max shards) / wall(engine/1)`.
    ShardRatio,
    /// `route / wall` at the largest shard count.
    RouteFrac,
    /// `wall(split) / wall(unlimited twin)`, all split rows.
    SplitRatio,
}

impl BudgetMetric {
    /// Stable label, parses back via [`BudgetMetric::parse`].
    pub fn label(self) -> &'static str {
        match self {
            BudgetMetric::EngineRatio => "engine-ratio",
            BudgetMetric::ShardRatio => "shard-ratio",
            BudgetMetric::RouteFrac => "route-frac",
            BudgetMetric::SplitRatio => "split-ratio",
        }
    }

    /// Parses a label.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "engine-ratio" => Ok(BudgetMetric::EngineRatio),
            "shard-ratio" => Ok(BudgetMetric::ShardRatio),
            "route-frac" => Ok(BudgetMetric::RouteFrac),
            "split-ratio" => Ok(BudgetMetric::SplitRatio),
            other => Err(format!("unknown budget metric {other:?}")),
        }
    }
}

impl Check {
    /// Stable label for reports.
    pub fn label(&self) -> String {
        match self {
            Check::Determinism => "determinism".into(),
            Check::SplitReconciliation => "split-reconciliation".into(),
            Check::ValidOutputs => "valid-outputs".into(),
            Check::Budget { metric, max } => format!("budget:{} ≤ {max}", metric.label()),
        }
    }
}

impl Suite {
    /// Parses a suite document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on any syntax or
    /// schema error.
    pub fn from_json(input: &str) -> Result<Suite, String> {
        let doc = json::parse(input)?;
        let name = req_str(&doc, "name")?;
        let description = opt_str(&doc, "description").unwrap_or_default();
        let scenarios = doc
            .get("scenarios")
            .and_then(Value::as_arr)
            .ok_or("suite needs a \"scenarios\" array")?
            .iter()
            .map(parse_scenario)
            .collect::<Result<Vec<_>, _>>()?;
        if scenarios.is_empty() {
            return Err("suite declares no scenarios".into());
        }
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err("scenario names must be unique".into());
        }
        let checks = match doc.get("checks") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or("\"checks\" must be an array")?
                .iter()
                .map(parse_check)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(Suite {
            name,
            description,
            scenarios,
            checks,
        })
    }

    /// Loads and parses a suite file.
    ///
    /// # Errors
    ///
    /// IO and parse errors, with the path named.
    pub fn load(path: &str) -> Result<Suite, String> {
        let input =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Suite::from_json(&input).map_err(|e| format!("{path}: {e}"))
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    opt_str(v, key).ok_or_else(|| format!("missing string field {key:?}"))
}

fn opt_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_owned)
}

/// An axis: a scalar or an array of scalars, mapped through `f`.
fn axis<T>(
    v: &Value,
    key: &str,
    f: impl Fn(&Value) -> Result<T, String>,
) -> Result<Option<Vec<T>>, String> {
    let Some(raw) = v.get(key) else {
        return Ok(None);
    };
    let items: Vec<&Value> = match raw {
        Value::Arr(items) => items.iter().collect(),
        scalar => vec![scalar],
    };
    if items.is_empty() {
        return Err(format!("axis {key:?} is empty"));
    }
    items
        .into_iter()
        .map(f)
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
        .map_err(|e| format!("axis {key:?}: {e}"))
}

fn parse_scenario(v: &Value) -> Result<Scenario, String> {
    let name = req_str(v, "name")?;
    let err = |e: String| format!("scenario {name:?}: {e}");
    let usize_item = |item: &Value| {
        item.as_usize()
            .ok_or("expected a non-negative integer".into())
    };
    let u64_item = |item: &Value| {
        item.as_u64()
            .ok_or("expected a non-negative integer".into())
    };
    let str_item = |item: &Value| {
        item.as_str()
            .map(str::to_owned)
            .ok_or("expected a string".into())
    };
    let family = axis(v, "family", str_item)?.ok_or_else(|| err("missing \"family\"".into()))?;
    for f in &family {
        if graphs::gen::family(f).is_none() {
            return Err(err(format!(
                "unknown family {f:?} (known: {})",
                graphs::gen::family_names().join(", ")
            )));
        }
    }
    let scenario = Scenario {
        family,
        n: axis(v, "n", usize_item)?.ok_or_else(|| err("missing \"n\"".into()))?,
        seed: axis(v, "seed", u64_item)?.unwrap_or_else(|| vec![0]),
        algorithm: axis(v, "algorithm", str_item)?
            .ok_or_else(|| err("missing \"algorithm\"".into()))?,
        shards: axis(v, "shards", usize_item)?.unwrap_or_else(|| vec![1]),
        workers: axis(v, "workers", |item| match item {
            Value::Str(s) if s == "auto" => Ok(WorkerSpec::Auto),
            Value::Str(s) if s == "shards" => Ok(WorkerSpec::MatchShards),
            other => other
                .as_usize()
                .map(|w| {
                    if w == 0 {
                        WorkerSpec::Auto
                    } else {
                        WorkerSpec::Fixed(w)
                    }
                })
                .ok_or("expected an integer, \"auto\", or \"shards\"".into()),
        })?
        .unwrap_or_else(|| vec![WorkerSpec::Auto]),
        congest: axis(v, "congest", |item| {
            CongestSpec::parse(item.as_str().ok_or("expected a congest string")?)
        })?
        .unwrap_or_else(|| vec![CongestSpec::Unlimited]),
        faults: axis(v, "faults", parse_fault)?.unwrap_or_else(|| vec![FaultSpec::default()]),
        order: axis(v, "order", |item| {
            OrderSpec::parse(item.as_str().ok_or("expected an order string")?)
        })?
        .unwrap_or_else(|| vec![OrderSpec::Identity]),
        frontier: match v.get("frontier") {
            None => true,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| err("\"frontier\" must be a boolean".into()))?,
        },
        reps: match v.get("reps") {
            None => 1,
            Some(r) => r
                .as_usize()
                .filter(|&r| r >= 1)
                .ok_or_else(|| err("\"reps\" must be a positive integer".into()))?,
        },
        params: parse_params(v.get("params"))?,
        name,
    };
    Ok(scenario)
}

fn parse_fault(v: &Value) -> Result<FaultSpec, String> {
    match v {
        Value::Str(s) if s == "none" => Ok(FaultSpec::default()),
        Value::Null => Ok(FaultSpec::default()),
        Value::Obj(_) => {
            let seeded_prob = |key: &str| -> Result<Option<(u64, f64)>, String> {
                let Some(spec) = v.get(key) else {
                    return Ok(None);
                };
                let seed = spec
                    .get("seed")
                    .and_then(Value::as_u64)
                    .ok_or(format!("fault {key:?} needs an integer \"seed\""))?;
                let p = spec
                    .get("p")
                    .and_then(Value::as_f64)
                    .filter(|p| *p > 0.0 && *p <= 1.0)
                    .ok_or(format!("fault {key:?} needs \"p\" in (0, 1]"))?;
                Ok(Some((seed, p)))
            };
            let vertex_round = |key: &str| -> Result<Vec<(usize, u64)>, String> {
                let Some(items) = v.get(key) else {
                    return Ok(Vec::new());
                };
                items
                    .as_arr()
                    .ok_or(format!("fault {key:?} must be an array"))?
                    .iter()
                    .map(|e| {
                        let vx = e.get("v").and_then(Value::as_usize);
                        let round = e.get("round").and_then(Value::as_u64);
                        match (vx, round) {
                            (Some(vx), Some(round)) => Ok((vx, round)),
                            _ => Err(format!("fault {key:?} entries need \"v\" and \"round\"")),
                        }
                    })
                    .collect()
            };
            let spec = FaultSpec {
                lose: seeded_prob("lose")?,
                duplicate: seeded_prob("duplicate")?,
                reorder: v
                    .get("reorder")
                    .map(|r| {
                        r.as_u64()
                            .ok_or("fault \"reorder\" must be an integer seed")
                    })
                    .transpose()?,
                crashes: vertex_round("crash")?,
                crash_storm: v
                    .get("crash_storm")
                    .map(|s| {
                        let seed = s.get("seed").and_then(Value::as_u64);
                        let count = s.get("count").and_then(Value::as_usize);
                        let max_round = s.get("max_round").and_then(Value::as_u64);
                        match (seed, count, max_round) {
                            (Some(seed), Some(count), Some(max_round)) if count > 0 => {
                                Ok(CrashStorm {
                                    seed,
                                    count,
                                    max_round,
                                })
                            }
                            _ => Err("\"crash_storm\" needs seed, count ≥ 1, max_round"),
                        }
                    })
                    .transpose()?,
                drops: vertex_round("drop")?,
                delays: match v.get("delay") {
                    None => Vec::new(),
                    Some(items) => items
                        .as_arr()
                        .ok_or("fault \"delay\" must be an array")?
                        .iter()
                        .map(|e| {
                            let vx = e.get("v").and_then(Value::as_usize);
                            let round = e.get("round").and_then(Value::as_u64);
                            let by = e.get("by").and_then(Value::as_u64).unwrap_or(1);
                            match (vx, round) {
                                (Some(vx), Some(round)) => Ok((vx, round, by)),
                                _ => Err("fault \"delay\" entries need \"v\" and \"round\""),
                            }
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                },
            };
            // Reject unknown keys: a typo'd fault must not silently mean "none".
            for (key, _) in v.as_obj().unwrap() {
                if !matches!(
                    key.as_str(),
                    "lose" | "duplicate" | "reorder" | "crash" | "crash_storm" | "drop" | "delay"
                ) {
                    return Err(format!("unknown fault key {key:?}"));
                }
            }
            Ok(spec)
        }
        _ => Err("a fault is \"none\" or an object".into()),
    }
}

fn parse_params(v: Option<&Value>) -> Result<Params, String> {
    let mut p = Params::default();
    let Some(v) = v else {
        return Ok(p);
    };
    let obj = v.as_obj().ok_or("\"params\" must be an object")?;
    for (key, val) in obj {
        let want_usize = || {
            val.as_usize()
                .ok_or(format!("param {key:?} must be a non-negative integer"))
        };
        match key.as_str() {
            "d" => p.d = want_usize()?,
            "radius" => p.radius = want_usize()?,
            "alpha" => p.alpha = want_usize()?,
            "arboricity" => p.arboricity = want_usize()?,
            "epsilon" => {
                p.epsilon = val
                    .as_f64()
                    .filter(|e| *e > 0.0)
                    .ok_or("param \"epsilon\" must be positive")?;
            }
            "max_cycles" => {
                p.max_cycles = val
                    .as_u64()
                    .ok_or("param \"max_cycles\" must be an integer")?
            }
            "list_slack" => p.list_slack = want_usize()?,
            "mask_mod" => {
                p.mask_mod = Some(
                    val.as_usize()
                        .filter(|&m| m >= 2)
                        .ok_or("param \"mask_mod\" must be an integer ≥ 2")?,
                );
            }
            other => return Err(format!("unknown param {other:?}")),
        }
    }
    Ok(p)
}

fn parse_check(v: &Value) -> Result<Check, String> {
    let kind = req_str(v, "kind")?;
    match kind.as_str() {
        "determinism" => Ok(Check::Determinism),
        "split-reconciliation" => Ok(Check::SplitReconciliation),
        "valid-outputs" => Ok(Check::ValidOutputs),
        "budget" => {
            let metric = BudgetMetric::parse(&req_str(v, "metric")?)?;
            let max = v
                .get("max")
                .and_then(Value::as_f64)
                .filter(|m| *m > 0.0)
                .ok_or("budget check needs a positive \"max\"")?;
            Ok(Check::Budget { metric, max })
        }
        other => Err(format!(
            "unknown check kind {other:?} (want determinism | split-reconciliation | \
             valid-outputs | budget)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "name": "t",
        "scenarios": [
            {"name": "s", "family": "grid", "n": 64, "algorithm": "gather"}
        ]
    }"#;

    #[test]
    fn minimal_suite_fills_defaults() {
        let suite = Suite::from_json(MINIMAL).unwrap();
        assert_eq!(suite.name, "t");
        let s = &suite.scenarios[0];
        assert_eq!(s.family, vec!["grid"]);
        assert_eq!(s.n, vec![64]);
        assert_eq!(s.seed, vec![0]);
        assert_eq!(s.shards, vec![1]);
        assert_eq!(s.workers, vec![WorkerSpec::Auto]);
        assert_eq!(s.congest, vec![CongestSpec::Unlimited]);
        assert_eq!(s.faults, vec![FaultSpec::default()]);
        assert_eq!(s.order, vec![OrderSpec::Identity]);
        assert_eq!(s.reps, 1);
        assert!(suite.checks.is_empty());
    }

    #[test]
    fn axes_accept_scalars_and_arrays() {
        let suite = Suite::from_json(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": ["grid", "random-4-regular"], "n": [64, 100],
                "seed": 7, "algorithm": "randomized", "shards": [0, 1, 8],
                "workers": ["auto", "shards", 4],
                "congest": ["unlimited", "split:4", "reject:2"],
                "faults": ["none", {"lose": {"seed": 3, "p": 0.1}}],
                "order": ["identity", "locality"],
                "reps": 3
            }]}"#,
        )
        .unwrap();
        let s = &suite.scenarios[0];
        assert_eq!(s.family.len(), 2);
        assert_eq!(s.shards, vec![0, 1, 8]);
        assert_eq!(
            s.workers,
            vec![
                WorkerSpec::Auto,
                WorkerSpec::MatchShards,
                WorkerSpec::Fixed(4)
            ]
        );
        assert_eq!(
            s.congest,
            vec![
                CongestSpec::Unlimited,
                CongestSpec::Split(4),
                CongestSpec::Reject(2)
            ]
        );
        assert_eq!(s.faults[1].lose, Some((3, 0.1)));
        assert_eq!(s.order, vec![OrderSpec::Identity, OrderSpec::Locality]);
        assert_eq!(s.reps, 3);
    }

    #[test]
    fn order_specs_round_trip_and_reject_typos() {
        for spec in [OrderSpec::Identity, OrderSpec::Locality] {
            assert_eq!(OrderSpec::parse(spec.label()).unwrap(), spec);
        }
        assert!(OrderSpec::parse("local").is_err());
        let bad = MINIMAL.replace(
            "\"algorithm\": \"gather\"",
            "\"algorithm\": \"gather\", \"order\": \"rcm\"",
        );
        assert!(Suite::from_json(&bad).unwrap_err().contains("order"));
    }

    #[test]
    fn checks_parse_and_label() {
        let suite = Suite::from_json(
            r#"{"name": "t", "scenarios": [
                {"name": "s", "family": "grid", "n": 64, "algorithm": "gather"}
            ], "checks": [
                {"kind": "determinism"},
                {"kind": "split-reconciliation"},
                {"kind": "valid-outputs"},
                {"kind": "budget", "metric": "route-frac", "max": 0.75}
            ]}"#,
        )
        .unwrap();
        assert_eq!(suite.checks.len(), 4);
        assert_eq!(
            suite.checks[3],
            Check::Budget {
                metric: BudgetMetric::RouteFrac,
                max: 0.75
            }
        );
        assert_eq!(suite.checks[3].label(), "budget:route-frac ≤ 0.75");
    }

    #[test]
    fn rejects_unknown_family_fault_and_check() {
        let bad_family = MINIMAL.replace("grid", "no-such");
        assert!(Suite::from_json(&bad_family)
            .unwrap_err()
            .contains("unknown family"));
        let bad_fault = r#"{"name": "t", "scenarios": [{
            "name": "s", "family": "grid", "n": 64, "algorithm": "gather",
            "faults": [{"loose": {"seed": 1, "p": 0.5}}]
        }]}"#;
        assert!(Suite::from_json(bad_fault)
            .unwrap_err()
            .contains("unknown fault key"));
        let bad_check = r#"{"name": "t", "scenarios": [{
            "name": "s", "family": "grid", "n": 64, "algorithm": "gather"
        }], "checks": [{"kind": "vibes"}]}"#;
        assert!(Suite::from_json(bad_check)
            .unwrap_err()
            .contains("unknown check kind"));
    }

    #[test]
    fn duplicate_scenario_names_rejected() {
        let dup = r#"{"name": "t", "scenarios": [
            {"name": "s", "family": "grid", "n": 64, "algorithm": "gather"},
            {"name": "s", "family": "grid", "n": 64, "algorithm": "gather"}
        ]}"#;
        assert!(Suite::from_json(dup).unwrap_err().contains("unique"));
    }

    #[test]
    fn fault_labels_are_stable_and_storms_materialize() {
        let spec = FaultSpec {
            lose: Some((3, 0.05)),
            reorder: Some(11),
            crash_storm: Some(CrashStorm {
                seed: 5,
                count: 4,
                max_round: 8,
            }),
            ..Default::default()
        };
        assert_eq!(spec.label(), "lose(s3,p0.05)+reorder(s11)+storm(s5,c4,r8)");
        let plan = spec.plan(100);
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 4, "storm schedules exactly `count` crashes");
        // Deterministic across materializations.
        assert_eq!(spec.plan(100).len(), 4);
        assert_eq!(FaultSpec::default().label(), "none");
        assert!(FaultSpec::default().plan(100).is_empty());
    }

    #[test]
    fn congest_specs_round_trip() {
        for spec in [
            CongestSpec::Unlimited,
            CongestSpec::Reject(2),
            CongestSpec::Split(8),
        ] {
            assert_eq!(CongestSpec::parse(&spec.label()).unwrap(), spec);
        }
        assert!(CongestSpec::parse("split:0").is_err());
        assert!(CongestSpec::parse("congested").is_err());
    }
}
