//! Deterministic expansion of a suite into a trial plan.
//!
//! The plan is the cross-product of every scenario's axes in declared
//! order — family, n, seed, algorithm, shards, workers, congest, faults,
//! order, rep — with two pruning rules for the sequential baseline
//! (`shards: 0`): it ignores the worker/congest/fault/order axes (those
//! knobs are engine machinery), so it is emitted exactly once per (family,
//! n, seed, algorithm, rep) — at the first worker spec, unlimited width,
//! no faults, identity order.
//! Trial ids are consecutive positions in this expansion, so the same
//! suite always yields the same plan, row for row.

use rand::mix64;

use crate::algorithms;
use crate::json::Value;
use crate::schema::{CongestSpec, FaultSpec, OrderSpec, Params, Suite, WorkerSpec};

/// Domain separator for [`TrialSpec::protocol_seed`].
const PROTOCOL_DOMAIN: u64 = 0x6c61_622d_7072_6f74; // "lab-prot"

/// One fully-resolved trial: everything the runner needs, and nothing it
/// has to invent — replaying a spec is replaying the trial.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialSpec {
    /// Position in the expanded plan (also the row id in `trials.jsonl`).
    pub id: usize,
    /// Owning scenario's name.
    pub scenario: String,
    /// Graph family (a `graphs::gen::registry` name).
    pub family: String,
    /// Requested vertex count (families may normalize it; rows record the
    /// generated `g.n()`).
    pub n: usize,
    /// The declared seed: feeds the family generator directly and the
    /// protocol RNG via [`TrialSpec::protocol_seed`].
    pub seed: u64,
    /// Algorithm (a `lab::algorithms` name).
    pub algorithm: String,
    /// Shard count; `0` is the sequential baseline.
    pub shards: usize,
    /// Worker-pool spec (resolved against `shards` at run time).
    pub workers: WorkerSpec,
    /// CONGEST mode.
    pub congest: CongestSpec,
    /// Declared fault plan.
    pub faults: FaultSpec,
    /// Vertex-storage order for the engine's shard-local layouts. A perf
    /// knob like shards and workers: it never enters
    /// [`TrialSpec::config_key`], because a locality-relabeled trial and
    /// its identity twin must produce bit-identical outputs — the
    /// determinism check diffs them automatically.
    pub order: OrderSpec,
    /// Frontier-sparse rounds (scenario-level flag; `false` forces the
    /// full-range scan). Purely a perf knob, like shards and workers: it
    /// never enters [`TrialSpec::config_key`], because a frontier trial
    /// and its full-scan twin must produce bit-identical outputs.
    pub frontier: bool,
    /// Repetition index, `0..reps`.
    pub rep: usize,
    /// Algorithm parameters.
    pub params: Params,
}

impl TrialSpec {
    /// Whether this is a sequential-baseline trial.
    pub fn is_sequential(&self) -> bool {
        self.shards == 0
    }

    /// The protocol seed: the declared seed pushed through a fixed domain
    /// separator, so "seed 7's graph" and "seed 7's coin flips" are
    /// decorrelated without the suite author managing two numbers.
    pub fn protocol_seed(&self) -> u64 {
        mix64(self.seed, PROTOCOL_DOMAIN)
    }

    /// The *configuration key*: everything that selects what is computed,
    /// excluding the perf-only knobs (shards, workers, rep). Trials
    /// sharing a key must produce bit-identical outputs — the determinism
    /// check groups rows by this.
    pub fn config_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}",
            self.scenario,
            self.family,
            self.n,
            self.seed,
            self.algorithm,
            self.congest.label(),
            self.faults.label()
        )
    }

    /// The key of this trial's unlimited-congest twin: same configuration,
    /// width cap removed. Split-reconciliation pairs rows through this.
    pub fn unlimited_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}",
            self.scenario,
            self.family,
            self.n,
            self.seed,
            self.algorithm,
            CongestSpec::Unlimited.label(),
            self.faults.label()
        )
    }

    /// The plan row as JSON (sorted keys).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("algorithm".into(), Value::str(&self.algorithm)),
            ("congest".into(), Value::str(self.congest.label())),
            ("family".into(), Value::str(&self.family)),
            ("faults".into(), Value::str(self.faults.label())),
            ("frontier".into(), Value::Bool(self.frontier)),
            ("id".into(), Value::int(self.id as u64)),
            ("n".into(), Value::int(self.n as u64)),
            ("order".into(), Value::str(self.order.label())),
            ("rep".into(), Value::int(self.rep as u64)),
            ("scenario".into(), Value::str(&self.scenario)),
            ("seed".into(), Value::int(self.seed)),
            ("shards".into(), Value::int(self.shards as u64)),
            ("workers".into(), Value::str(self.workers.label())),
        ])
    }
}

/// Expands a suite into its deterministic trial plan.
///
/// # Errors
///
/// Rejects unknown algorithm names and scenarios whose pruning rules leave
/// nothing to run.
pub fn expand(suite: &Suite) -> Result<Vec<TrialSpec>, String> {
    let mut plan = Vec::new();
    for sc in &suite.scenarios {
        for alg in &sc.algorithm {
            if !algorithms::is_known(alg) {
                return Err(format!(
                    "scenario {:?}: unknown algorithm {alg:?} (known: {})",
                    sc.name,
                    algorithms::names().join(", ")
                ));
            }
        }
        let before = plan.len();
        for family in &sc.family {
            for &n in &sc.n {
                for &seed in &sc.seed {
                    for alg in &sc.algorithm {
                        for &shards in &sc.shards {
                            for (wi, &workers) in sc.workers.iter().enumerate() {
                                for &congest in &sc.congest {
                                    for faults in &sc.faults {
                                        for &order in &sc.order {
                                            // The sequential baseline has
                                            // no workers, no wire, no
                                            // fault surface, no shard
                                            // layout: emit it once, at the
                                            // axes' first/clean values.
                                            if shards == 0
                                                && (wi != 0
                                                    || congest != CongestSpec::Unlimited
                                                    || !faults.is_none()
                                                    || order != OrderSpec::Identity)
                                            {
                                                continue;
                                            }
                                            for rep in 0..sc.reps {
                                                plan.push(TrialSpec {
                                                    id: plan.len(),
                                                    scenario: sc.name.clone(),
                                                    family: family.clone(),
                                                    n,
                                                    seed,
                                                    algorithm: alg.clone(),
                                                    shards,
                                                    workers,
                                                    congest,
                                                    faults: faults.clone(),
                                                    order,
                                                    frontier: sc.frontier,
                                                    rep,
                                                    params: sc.params,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if plan.len() == before {
            return Err(format!("scenario {:?} expands to no trials", sc.name));
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite(body: &str) -> Suite {
        Suite::from_json(body).unwrap()
    }

    #[test]
    fn expansion_order_is_declared_axis_order() {
        let s = suite(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": [16, 25], "seed": [1, 2],
                "algorithm": "gather", "shards": [1, 2], "reps": 2
            }]}"#,
        );
        let plan = expand(&s).unwrap();
        assert_eq!(plan.len(), 2 * 2 * 2 * 2);
        assert_eq!(plan[0].n, 16);
        assert_eq!(plan[0].seed, 1);
        assert_eq!(plan[0].shards, 1);
        assert_eq!(plan[0].rep, 0);
        assert_eq!(plan[1].rep, 1, "rep is the innermost axis");
        assert_eq!(plan[2].shards, 2, "shards vary before seeds");
        assert!(plan.iter().enumerate().all(|(i, t)| t.id == i));
        // Same suite, same plan.
        assert_eq!(expand(&s).unwrap(), plan);
    }

    #[test]
    fn sequential_baseline_is_pruned_to_clean_axes() {
        let s = suite(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 16, "algorithm": "gather",
                "shards": [0, 1], "workers": ["auto", "shards"],
                "congest": ["unlimited", "split:2"],
                "faults": ["none", {"reorder": 3}]
            }]}"#,
        );
        let plan = expand(&s).unwrap();
        let seq: Vec<_> = plan.iter().filter(|t| t.is_sequential()).collect();
        assert_eq!(seq.len(), 1, "one baseline per configuration");
        assert_eq!(seq[0].congest, CongestSpec::Unlimited);
        assert!(seq[0].faults.is_none());
        let engine = plan.iter().filter(|t| !t.is_sequential()).count();
        assert_eq!(engine, 2 * 2 * 2, "engine rows keep the full product");
    }

    #[test]
    fn unknown_algorithm_is_rejected() {
        let s = suite(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 16, "algorithm": "quantum"
            }]}"#,
        );
        assert!(expand(&s).unwrap_err().contains("unknown algorithm"));
    }

    #[test]
    fn config_keys_group_across_perf_knobs_only() {
        let s = suite(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 16, "algorithm": "gather",
                "shards": [0, 1, 2], "workers": ["auto", "shards"], "reps": 2
            }]}"#,
        );
        let plan = expand(&s).unwrap();
        let keys: std::collections::BTreeSet<String> =
            plan.iter().map(TrialSpec::config_key).collect();
        assert_eq!(keys.len(), 1, "shards/workers/rep never split a key");
        let split = suite(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 16, "algorithm": "gather",
                "shards": 1, "congest": ["unlimited", "split:2"]
            }]}"#,
        );
        let plan = expand(&split).unwrap();
        assert_eq!(plan.len(), 2);
        assert_ne!(plan[0].config_key(), plan[1].config_key());
        assert_eq!(plan[1].unlimited_key(), plan[0].config_key());
    }

    #[test]
    fn order_is_an_axis_but_never_a_configuration() {
        let s = suite(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 16, "algorithm": "gather",
                "shards": [0, 2], "order": ["identity", "locality"]
            }]}"#,
        );
        let plan = expand(&s).unwrap();
        // One seq baseline (identity only) + two engine trials.
        assert_eq!(plan.len(), 3);
        let seq: Vec<_> = plan.iter().filter(|t| t.is_sequential()).collect();
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].order, OrderSpec::Identity);
        let engine: Vec<_> = plan.iter().filter(|t| !t.is_sequential()).collect();
        assert_eq!(engine[0].order, OrderSpec::Identity);
        assert_eq!(engine[1].order, OrderSpec::Locality);
        // Order never splits a configuration key: the determinism check
        // must diff the relabeled trial against its identity twin.
        let keys: std::collections::BTreeSet<String> =
            plan.iter().map(TrialSpec::config_key).collect();
        assert_eq!(keys.len(), 1);
        // But the plan rows record it.
        let rendered = engine[1].to_json().render();
        assert!(rendered.contains("\"order\":\"locality\""));
    }

    #[test]
    fn protocol_seed_departs_from_graph_seed() {
        let s = suite(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 16, "seed": 7,
                "algorithm": "gather"
            }]}"#,
        );
        let t = &expand(&s).unwrap()[0];
        assert_ne!(t.protocol_seed(), t.seed);
        assert_eq!(t.protocol_seed(), expand(&s).unwrap()[0].protocol_seed());
    }
}
