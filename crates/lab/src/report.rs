//! The run artifact: per-trial rows, merged percentile summary, plan and
//! check records.
//!
//! A run directory holds four files:
//!
//! * `plan.json` — the expanded trial plan (replay map);
//! * `trials.jsonl` — one JSON row per executed trial, plan order;
//! * `summary.json` — the merged summary: per-configuration groups with
//!   best-of and p50/p95/p99 wall statistics, route fractions, round-wall
//!   percentiles, and per-scenario tails over physical rounds and
//!   fragments — distribution shape, not just best-of means;
//! * `checks.json` — the declared invariants' verdicts.

use std::path::Path;

use crate::invariants::CheckOutcome;
use crate::json::Value;
use crate::runner::{RunOutcome, TrialRow};
use crate::stats::summarize;

/// Groups a run's rows by configuration × shards × workers × order (reps
/// merge) and renders the merged summary document. Order is outside the
/// configuration key — a locality trial replays its identity twin bit for
/// bit — but the twins' *wall clocks* are exactly what the summary exists
/// to compare, so the grouping keeps them apart.
pub fn render_summary(run: &RunOutcome) -> Value {
    let mut groups: Vec<(String, Vec<&TrialRow>)> = Vec::new();
    for row in &run.rows {
        let key = format!(
            "{}|{}|{}|{}",
            row.spec.config_key(),
            row.spec.shards,
            row.spec.workers.label(),
            row.spec.order.label()
        );
        match groups.last_mut() {
            Some((k, rows)) if *k == key => rows.push(row),
            _ => groups.push((key, vec![row])),
        }
    }
    let group_rows: Vec<Value> = groups.iter().map(|(_, rows)| group_json(rows)).collect();
    let mut scenario_names: Vec<&str> = run.rows.iter().map(|r| r.spec.scenario.as_str()).collect();
    scenario_names.dedup();
    let mut seen = std::collections::BTreeSet::new();
    let scenario_rows: Vec<Value> = scenario_names
        .into_iter()
        .filter(|name| seen.insert(*name))
        .map(|name| scenario_json(run, name))
        .collect();
    Value::Obj(vec![
        ("failed".into(), Value::int(run.failed_rows().len() as u64)),
        ("groups".into(), Value::Arr(group_rows)),
        ("scenarios".into(), Value::Arr(scenario_rows)),
        ("suite".into(), Value::str(&run.suite)),
        ("trials".into(), Value::int(run.rows.len() as u64)),
    ])
}

/// One summary group: a configuration's reps merged into best-of *and*
/// percentile wall statistics.
fn group_json(rows: &[&TrialRow]) -> Value {
    let first = rows[0];
    let walls: Vec<f64> = rows.iter().map(|r| r.wall_ms).collect();
    let wall_p = summarize(&walls).expect("groups are non-empty");
    let best = walls.iter().copied().fold(f64::INFINITY, f64::min);
    let route_fracs: Vec<f64> = rows
        .iter()
        .map(|r| r.route_ms / r.wall_ms.max(f64::EPSILON))
        .collect();
    let round_p50: Vec<f64> = rows.iter().map(|r| r.round_p50_ms).collect();
    let round_p95: Vec<f64> = rows.iter().map(|r| r.round_p95_ms).collect();
    let round_p99: Vec<f64> = rows.iter().map(|r| r.round_p99_ms).collect();
    let median = |v: &[f64]| summarize(v).map_or(0.0, |p| p.p50);
    Value::Obj(vec![
        ("algorithm".into(), Value::str(&first.spec.algorithm)),
        ("congest".into(), Value::str(first.spec.congest.label())),
        ("family".into(), Value::str(&first.spec.family)),
        ("faults".into(), Value::str(first.spec.faults.label())),
        ("fragments".into(), Value::int(first.fragments as u64)),
        ("frontier".into(), Value::Bool(first.spec.frontier)),
        ("ledger_rounds".into(), Value::int(first.ledger_rounds)),
        ("messages".into(), Value::int(first.messages as u64)),
        ("n".into(), Value::int(first.spec.n as u64)),
        ("order".into(), Value::str(first.spec.order.label())),
        ("physical_rounds".into(), Value::int(first.physical_rounds)),
        ("reps".into(), Value::int(rows.len() as u64)),
        ("round_p50_ms".into(), Value::num(median(&round_p50))),
        ("round_p95_ms".into(), Value::num(median(&round_p95))),
        ("round_p99_ms".into(), Value::num(median(&round_p99))),
        ("route_frac_p50".into(), Value::num(median(&route_fracs))),
        ("scenario".into(), Value::str(&first.spec.scenario)),
        ("seed".into(), Value::int(first.spec.seed)),
        ("shards".into(), Value::int(first.spec.shards as u64)),
        ("split_surplus".into(), Value::int(first.split_surplus)),
        ("valid".into(), Value::Bool(rows.iter().all(|r| r.valid))),
        ("wall_ms_best".into(), Value::num(best)),
        ("wall_ms_p50".into(), Value::num(wall_p.p50)),
        ("wall_ms_p95".into(), Value::num(wall_p.p95)),
        ("wall_ms_p99".into(), Value::num(wall_p.p99)),
        ("workers".into(), Value::str(first.spec.workers.label())),
    ])
}

/// Per-scenario tails: wall, physical-round, and fragment percentiles over
/// *all* the scenario's trials — the distribution view across the whole
/// declared matrix, where a pathological configuration shows up as a fat
/// p99 even when every best-of mean looks healthy.
fn scenario_json(run: &RunOutcome, name: &str) -> Value {
    let rows: Vec<&TrialRow> = run
        .rows
        .iter()
        .filter(|r| r.spec.scenario == name)
        .collect();
    let triple = |vals: Vec<f64>, label: &str, out: &mut Vec<(String, Value)>| {
        let p = summarize(&vals).expect("scenario has rows");
        out.push((format!("{label}_p50"), Value::num(p.p50)));
        out.push((format!("{label}_p95"), Value::num(p.p95)));
        out.push((format!("{label}_p99"), Value::num(p.p99)));
    };
    let mut fields: Vec<(String, Value)> = vec![
        (
            "failed".into(),
            Value::int(rows.iter().filter(|r| !r.valid).count() as u64),
        ),
        (
            "max_width".into(),
            Value::int(rows.iter().map(|r| r.max_width).max().unwrap_or(0) as u64),
        ),
    ];
    triple(
        rows.iter().map(|r| r.fragments as f64).collect(),
        "fragments",
        &mut fields,
    );
    triple(
        rows.iter().map(|r| r.physical_rounds as f64).collect(),
        "physical_rounds",
        &mut fields,
    );
    triple(
        rows.iter()
            .map(|r| r.route_ms / r.wall_ms.max(f64::EPSILON))
            .collect(),
        "route_frac",
        &mut fields,
    );
    fields.push(("scenario".into(), Value::str(name)));
    fields.push(("trials".into(), Value::int(rows.len() as u64)));
    triple(
        rows.iter().map(|r| r.wall_ms).collect(),
        "wall_ms",
        &mut fields,
    );
    fields.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Obj(fields)
}

/// Writes the full run artifact into `dir` (created if missing).
///
/// # Errors
///
/// IO errors, with the offending path named.
pub fn write_run(dir: &Path, run: &RunOutcome, checks: &[CheckOutcome]) -> Result<(), String> {
    let write = |name: &str, content: String| {
        let path = dir.join(name);
        std::fs::write(&path, content).map_err(|e| format!("write {}: {e}", path.display()))
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let plan = Value::Arr(run.plan.iter().map(|t| t.to_json()).collect());
    write("plan.json", plan.render_pretty() + "\n")?;
    let mut trials = String::new();
    for row in &run.rows {
        trials.push_str(&row.to_json().render());
        trials.push('\n');
    }
    write("trials.jsonl", trials)?;
    write("summary.json", render_summary(run).render_pretty() + "\n")?;
    let checks_doc = Value::Arr(checks.iter().map(CheckOutcome::to_json).collect());
    write("checks.json", checks_doc.render_pretty() + "\n")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::evaluate;
    use crate::runner::run_suite;
    use crate::schema::Suite;

    #[test]
    fn summary_merges_reps_and_reports_percentiles() {
        let suite = Suite::from_json(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 36, "algorithm": "gather",
                "shards": [0, 2], "reps": 3
            }]}"#,
        )
        .unwrap();
        let run = run_suite(&suite, |_, _| {}).unwrap();
        let summary = render_summary(&run);
        assert_eq!(summary.get("trials").and_then(Value::as_usize), Some(6));
        assert_eq!(summary.get("failed").and_then(Value::as_usize), Some(0));
        let groups = summary.get("groups").and_then(Value::as_arr).unwrap();
        assert_eq!(groups.len(), 2, "two configurations, reps merged");
        for g in groups {
            assert_eq!(g.get("reps").and_then(Value::as_usize), Some(3));
            let best = g.get("wall_ms_best").and_then(Value::as_f64).unwrap();
            let p50 = g.get("wall_ms_p50").and_then(Value::as_f64).unwrap();
            let p99 = g.get("wall_ms_p99").and_then(Value::as_f64).unwrap();
            assert!(best <= p50 && p50 <= p99);
        }
        let scenarios = summary.get("scenarios").and_then(Value::as_arr).unwrap();
        assert_eq!(scenarios.len(), 1);
        for key in [
            "wall_ms_p50",
            "wall_ms_p95",
            "wall_ms_p99",
            "physical_rounds_p99",
            "fragments_p99",
            "route_frac_p50",
        ] {
            assert!(
                scenarios[0].get(key).and_then(Value::as_f64).is_some(),
                "summary is missing {key}"
            );
        }
    }

    #[test]
    fn locality_twins_group_apart_and_carry_the_order_label() {
        let suite = Suite::from_json(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "grid", "n": 36, "algorithm": "gather",
                "shards": 2, "order": ["identity", "locality"]
            }], "checks": [{"kind": "determinism"}]}"#,
        )
        .unwrap();
        let run = run_suite(&suite, |_, _| {}).unwrap();
        let summary = render_summary(&run);
        let groups = summary.get("groups").and_then(Value::as_arr).unwrap();
        assert_eq!(groups.len(), 2, "order splits wall-clock groups");
        let orders: Vec<&str> = groups
            .iter()
            .map(|g| g.get("order").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(orders, ["identity", "locality"]);
        // And the determinism check sees them as one configuration.
        let checks = evaluate(&suite, &run);
        assert!(checks.iter().all(|c| c.passed), "twins replay bit for bit");
    }

    #[test]
    fn write_run_emits_all_four_files() {
        let suite = Suite::from_json(
            r#"{"name": "t", "scenarios": [{
                "name": "s", "family": "path", "n": 8, "algorithm": "cole-vishkin",
                "shards": 1
            }], "checks": [{"kind": "valid-outputs"}]}"#,
        )
        .unwrap();
        let run = run_suite(&suite, |_, _| {}).unwrap();
        let checks = evaluate(&suite, &run);
        let dir = std::env::temp_dir().join(format!("lab-report-test-{}", std::process::id()));
        write_run(&dir, &run, &checks).unwrap();
        for name in ["plan.json", "trials.jsonl", "summary.json", "checks.json"] {
            let content = std::fs::read_to_string(dir.join(name)).unwrap();
            assert!(!content.is_empty(), "{name} is empty");
            if name.ends_with(".json") {
                crate::json::parse(&content).unwrap();
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
