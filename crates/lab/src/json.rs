//! A small, dependency-free JSON value type with a full recursive-descent
//! parser and a stable writer.
//!
//! The build environment is offline (no serde), and the bench crate's
//! hand-rolled line parser only reads the one shape it writes. Suite files
//! are authored by hand, so the lab needs a *real* parser: arbitrary
//! nesting, both pretty and compact whitespace, escapes, scientific
//! floats. Objects preserve insertion order (`Vec` of pairs), so rendering
//! is deterministic and diffs stay readable.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2⁵³ are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_usize().map(|x| x as u64)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as pretty JSON with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(x) => out.push_str(&render_number(*x)),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) if items.is_empty() => out.push_str("[]"),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(members) if members.is_empty() => out.push_str("{}"),
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Renders a number the way the artifact wants it: exact integers without a
/// decimal point, everything else via `{:?}` (shortest round-trip float).
fn render_number(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
        format!("{}", x as i64)
    } else {
        format!("{x:?}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing content after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, what: &str) -> String {
        format!("json error at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.fail("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            // Surrogates are not worth supporting in suite
                            // files; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.fail("bad number"))
    }
}

/// Convenience constructors for building artifact values.
impl Value {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// An integer value.
    pub fn int(x: impl TryInto<i64>) -> Value {
        Value::Num(x.try_into().map(|v| v as f64).unwrap_or(f64::NAN))
    }

    /// A float value.
    pub fn num(x: f64) -> Value {
        Value::Num(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e1").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("\"a\\nb\\u0041\"").unwrap(), Value::str("a\nbA"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}, "x"], "c": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].get("b"),
            Some(&Value::Null)
        );
        assert_eq!(v.get("c").unwrap(), &Value::Obj(vec![]));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        assert!(parse("[1,]").unwrap_err().contains("byte 3"));
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1] trailing").unwrap_err().contains("trailing"));
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn render_round_trips() {
        let v = parse(r#"{"name":"s \"q\"","xs":[1,2.5,true,null],"o":{"k":-3}}"#).unwrap();
        let compact = v.render();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("  \"xs\": ["));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Value::Num(3.0).render(), "3");
        assert_eq!(Value::Num(0.25).render(), "0.25");
        assert_eq!(Value::int(42u64).render(), "42");
    }

    #[test]
    fn usize_conversions_are_exact() {
        assert_eq!(parse("7").unwrap().as_usize(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }
}
