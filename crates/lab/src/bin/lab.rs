//! The scenario lab CLI.
//!
//! ```sh
//! cargo run --release --bin lab -- run suites/smoke.json            # run + checks
//! cargo run --release --bin lab -- run suites/smoke.json --out=DIR  # choose artifact dir
//! cargo run --release --bin lab -- plan suites/smoke.json           # print the trial plan
//! cargo run --release --bin lab -- list                             # families + algorithms
//! ```
//!
//! `run` expands the suite, executes every trial, writes the artifact
//! (`plan.json`, `trials.jsonl`, `summary.json`, `checks.json`) into the
//! output directory (default `lab-runs/<suite-name>`), prints the check
//! verdicts, and exits non-zero when a declared invariant fails — which is
//! exactly how CI consumes it.

use std::process::ExitCode;

use lab::json::Value;
use lab::{algorithms, evaluate, expand, render_summary, run_suite, write_run, Suite};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("list") => cmd_list(),
        _ => {
            eprintln!("usage: lab run <suite.json> [--out=DIR] | lab plan <suite.json> | lab list");
            ExitCode::from(2)
        }
    }
}

fn load(path: Option<&String>) -> Result<Suite, String> {
    let path = path.ok_or("missing suite path")?;
    Suite::load(path)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut out_dir = None;
    let mut path = None;
    for arg in args {
        if let Some(dir) = arg.strip_prefix("--out=") {
            out_dir = Some(dir.to_string());
        } else {
            path = Some(arg.clone());
        }
    }
    let suite = match load(path.as_ref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lab: {e}");
            return ExitCode::from(2);
        }
    };
    if !suite.description.is_empty() {
        println!("suite {}: {}", suite.name, suite.description);
    }
    let mut done = 0usize;
    let run = match run_suite(&suite, |row, total| {
        done += 1;
        let verdict = match (&row.error, row.valid) {
            (Some(e), _) => format!("DIED: {e}"),
            (None, false) => format!(
                "INVALID: {}",
                row.invalid_reason.as_deref().unwrap_or("unspecified")
            ),
            (None, true) => format!("ok {:8.2} ms", row.wall_ms),
        };
        println!(
            "[{done:>4}/{total}] {} {} n={} seed={} shards={} workers={} {} {} {} rep{}: {verdict}",
            row.spec.scenario,
            row.spec.algorithm,
            row.spec.n,
            row.spec.seed,
            row.spec.shards,
            row.spec.workers.label(),
            row.spec.congest.label(),
            row.spec.faults.label(),
            row.spec.order.label(),
            row.spec.rep,
        );
    }) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("lab: {e}");
            return ExitCode::from(2);
        }
    };
    let checks = evaluate(&suite, &run);
    let dir =
        std::path::PathBuf::from(out_dir.unwrap_or_else(|| format!("lab-runs/{}", suite.name)));
    if let Err(e) = write_run(&dir, &run, &checks) {
        eprintln!("lab: {e}");
        return ExitCode::from(2);
    }
    let summary = render_summary(&run);
    println!(
        "\n{} trials, {} failed; artifact in {}",
        run.rows.len(),
        run.failed_rows().len(),
        dir.display()
    );
    print_scenario_tails(&summary);
    let mut all_passed = true;
    for check in &checks {
        if check.passed {
            println!("check {:<40} PASS", check.check);
        } else {
            all_passed = false;
            println!(
                "check {:<40} FAIL ({} violations)",
                check.check,
                check.violations.len()
            );
            for v in &check.violations {
                println!("  - {v}");
            }
        }
    }
    if suite.checks.is_empty() {
        println!("no checks declared — the artifact is the only product");
    }
    if all_passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_scenario_tails(summary: &Value) {
    let Some(scenarios) = summary.get("scenarios").and_then(Value::as_arr) else {
        return;
    };
    println!(
        "{:<24} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "scenario", "trials", "wall p50", "wall p95", "wall p99", "phys p99", "frag p99"
    );
    for s in scenarios {
        let f = |key: &str| s.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        println!(
            "{:<24} {:>7} {:>9.2} {:>9.2} {:>9.2} {:>9.0} {:>9.0}",
            s.get("scenario").and_then(Value::as_str).unwrap_or("?"),
            s.get("trials").and_then(Value::as_usize).unwrap_or(0),
            f("wall_ms_p50"),
            f("wall_ms_p95"),
            f("wall_ms_p99"),
            f("physical_rounds_p99"),
            f("fragments_p99"),
        );
    }
}

fn cmd_plan(args: &[String]) -> ExitCode {
    let suite = match load(args.first()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lab: {e}");
            return ExitCode::from(2);
        }
    };
    match expand(&suite) {
        Ok(plan) => {
            for trial in &plan {
                println!("{}", trial.to_json().render());
            }
            eprintln!("{} trials", plan.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lab: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_list() -> ExitCode {
    println!("graph families:");
    for name in graphs::gen::family_names() {
        let spec = graphs::gen::family(name).expect("listed families exist");
        println!("  {:<20} {}", spec.name, spec.description);
    }
    println!("algorithms:");
    for name in algorithms::names() {
        println!("  {name}");
    }
    ExitCode::SUCCESS
}
