//! The algorithm registry: every protocol a trial can run, with its
//! sequential and engine backends, output fingerprinting, and validity
//! judgment.
//!
//! Each backend reduces its output to a [`TrialOutput`]: a 64-bit FNV-1a
//! fingerprint of the canonical output (what the determinism and
//! split-reconciliation checks compare), the ledger accounting, the
//! engine's observed [`EngineMetrics`] (engine trials only), and a
//! *validity verdict* — proper coloring, on-list colors, coherent forest —
//! computed unconditionally, because under injected faults "it ran" and
//! "it is right" genuinely diverge and the chaos suites exist to see
//! where.

use distributed_coloring::{list_color_sparse, ListAssignment, Outcome, SparseColoringConfig};
use engine::{
    engine_cole_vishkin_3color, engine_gather_balls, engine_h_partition,
    engine_randomized_list_coloring, engine_ruling_forest, EngineConfig, EngineMetrics,
    SPLIT_PHASE,
};
use graphs::{bfs_parents, Graph, VertexSet};
use local_model::{
    cole_vishkin_3color, gather_balls, h_partition, randomized_list_coloring, ruling_forest,
    RootedForest, RoundLedger,
};

use crate::plan::TrialSpec;

/// Known algorithm names, sorted.
const NAMES: [&str; 6] = [
    "cole-vishkin",
    "gather",
    "h-partition",
    "randomized",
    "ruling",
    "theorem13",
];

/// All algorithm names, sorted.
pub fn names() -> Vec<&'static str> {
    NAMES.to_vec()
}

/// Whether `name` is a registered algorithm.
pub fn is_known(name: &str) -> bool {
    NAMES.contains(&name)
}

/// The reduced result of one trial's computation.
#[derive(Clone, Debug)]
pub struct TrialOutput {
    /// FNV-1a fingerprint of the canonical output (colors, layers, balls,
    /// forest, …) — the unit of bit-identity comparisons.
    pub output_hash: u64,
    /// `ledger.total()` after the run: logical LOCAL rounds.
    pub ledger_rounds: u64,
    /// `ledger.phase_total(SPLIT_PHASE)`: the CONGEST fragmentation
    /// surplus (0 outside split mode).
    pub split_surplus: u64,
    /// Whether the output passes the algorithm's validity judgment.
    pub valid: bool,
    /// Why it does not, when `valid` is false.
    pub invalid_reason: Option<String>,
    /// Distinct colors used (coloring algorithms only).
    pub colors_used: Option<usize>,
    /// The engine's observed metrics (`None` for sequential trials).
    pub metrics: Option<EngineMetrics>,
}

/// Runs one trial's computation on an already-generated graph.
///
/// # Panics
///
/// Propagates algorithm panics (rejected over-width messages, exhausted
/// preconditions under faults) — the runner catches them and records the
/// trial as errored.
pub fn run(spec: &TrialSpec, g: &Graph) -> TrialOutput {
    match spec.algorithm.as_str() {
        "randomized" => run_randomized(spec, g),
        "h-partition" => run_h_partition(spec, g),
        "cole-vishkin" => run_cole_vishkin(spec, g),
        "gather" => run_gather(spec, g),
        "ruling" => run_ruling(spec, g),
        "theorem13" => run_theorem13(spec, g),
        other => panic!("unknown algorithm {other:?} (plan expansion admits known names only)"),
    }
}

/// 64-bit FNV-1a over a stream of words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn words<I: IntoIterator<Item = u64>>(mut self, it: I) -> Self {
        for w in it {
            self.word(w);
        }
        self
    }

    fn done(self) -> u64 {
        self.0
    }
}

fn hash_usizes(items: &[usize]) -> u64 {
    Fnv::new().words(items.iter().map(|&x| x as u64)).done()
}

/// The mask a trial declares (`params.mask_mod`), if any.
fn mask_of(spec: &TrialSpec, n: usize) -> Option<VertexSet> {
    spec.params
        .mask_mod
        .map(|m| VertexSet::from_iter_with_universe(n, (0..n).filter(|v| v % m != 0)))
}

/// The engine config a non-sequential trial declares.
fn engine_config(spec: &TrialSpec, n: usize) -> EngineConfig {
    EngineConfig::default()
        .with_shards(spec.shards)
        .with_workers(spec.workers.resolve(spec.shards))
        .with_congest(spec.congest.to_mode())
        .with_frontier(spec.frontier)
        .with_order(spec.order.to_order())
        .with_faults(spec.faults.plan(n))
}

fn in_mask(mask: Option<&VertexSet>, v: usize) -> bool {
    mask.is_none_or(|m| m.contains(v))
}

/// Proper on the masked subgraph: no monochromatic edge with both
/// endpoints in the mask.
fn masked_proper(g: &Graph, mask: Option<&VertexSet>, colors: &[usize]) -> bool {
    g.edges()
        .filter(|&(u, v)| in_mask(mask, u) && in_mask(mask, v))
        .all(|(u, v)| colors[u] != colors[v])
}

fn distinct_colors(g: &Graph, mask: Option<&VertexSet>, colors: &[usize]) -> usize {
    let mut seen: Vec<usize> = g
        .vertices()
        .filter(|&v| in_mask(mask, v))
        .map(|v| colors[v])
        .collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

fn run_randomized(spec: &TrialSpec, g: &Graph) -> TrialOutput {
    let mask = mask_of(spec, g.n());
    let mask_ref = mask.as_ref();
    // (deg+1)-lists measured inside the mask, plus the declared slack —
    // the chaos knob: a lost Committed can otherwise let two neighbors
    // land on the same color, and slack shrinks that window.
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| {
            let deg = g
                .neighbors(v)
                .iter()
                .filter(|&&w| in_mask(mask_ref, w))
                .count();
            (0..deg + 1 + spec.params.list_slack).collect()
        })
        .collect();
    let mut ledger = RoundLedger::new();
    let seed = spec.protocol_seed();
    let (colors, complete, metrics) = if spec.is_sequential() {
        let out = randomized_list_coloring(
            g,
            mask_ref,
            &lists,
            seed,
            spec.params.max_cycles,
            &mut ledger,
        );
        (out.colors, out.complete, None)
    } else {
        let (out, metrics) = engine_randomized_list_coloring(
            g,
            mask_ref,
            &lists,
            seed,
            spec.params.max_cycles,
            engine_config(spec, g.n()),
            &mut ledger,
        );
        (out.colors, out.complete, Some(metrics))
    };
    let on_list = g
        .vertices()
        .filter(|&v| in_mask(mask_ref, v))
        .all(|v| lists[v].contains(&colors[v]));
    let proper = masked_proper(g, mask_ref, &colors);
    let invalid_reason = match (complete, proper, on_list) {
        (false, _, _) => Some("incomplete: not every vertex committed".into()),
        (_, false, _) => Some("improper: a monochromatic edge survived".into()),
        (_, _, false) => Some("off-list color".into()),
        _ => None,
    };
    TrialOutput {
        output_hash: hash_usizes(&colors),
        ledger_rounds: ledger.total(),
        split_surplus: ledger.phase_total(SPLIT_PHASE),
        valid: invalid_reason.is_none(),
        colors_used: Some(distinct_colors(g, mask_ref, &colors)),
        invalid_reason,
        metrics,
    }
}

fn run_h_partition(spec: &TrialSpec, g: &Graph) -> TrialOutput {
    let mask = mask_of(spec, g.n());
    let mask_ref = mask.as_ref();
    let mut ledger = RoundLedger::new();
    let (hp, metrics) = if spec.is_sequential() {
        (
            h_partition(
                g,
                mask_ref,
                spec.params.arboricity,
                spec.params.epsilon,
                &mut ledger,
            ),
            None,
        )
    } else {
        let (hp, metrics) = engine_h_partition(
            g,
            mask_ref,
            spec.params.arboricity,
            spec.params.epsilon,
            engine_config(spec, g.n()),
            &mut ledger,
        );
        (hp, Some(metrics))
    };
    let layered = g
        .vertices()
        .filter(|&v| in_mask(mask_ref, v))
        .all(|v| hp.layer[v] < hp.layers);
    TrialOutput {
        output_hash: hash_usizes(&hp.layer),
        ledger_rounds: ledger.total(),
        split_surplus: ledger.phase_total(SPLIT_PHASE),
        valid: layered,
        invalid_reason: (!layered).then(|| "a masked vertex is missing its layer".into()),
        colors_used: None,
        metrics,
    }
}

fn run_cole_vishkin(spec: &TrialSpec, g: &Graph) -> TrialOutput {
    // The forest is BFS from vertex 0 over the whole graph; `mask_mod`
    // does not apply (the forest *is* the instance).
    let forest = RootedForest::new(bfs_parents(g, 0, None));
    let mut ledger = RoundLedger::new();
    let (colors, metrics) = if spec.is_sequential() {
        (cole_vishkin_3color(&forest, &mut ledger), None)
    } else {
        let (colors, metrics) =
            engine_cole_vishkin_3color(&forest, engine_config(spec, g.n()), &mut ledger);
        (colors, Some(metrics))
    };
    let ok = forest.n() == colors.len()
        && (0..forest.n()).filter(|&v| forest.contains(v)).all(|v| {
            let p = forest.parent(v);
            colors[v] < 3 && (p == v || colors[p] != colors[v])
        });
    let members: Vec<usize> = (0..forest.n()).filter(|&v| forest.contains(v)).collect();
    TrialOutput {
        output_hash: hash_usizes(&colors),
        ledger_rounds: ledger.total(),
        split_surplus: ledger.phase_total(SPLIT_PHASE),
        valid: ok,
        invalid_reason: (!ok).then(|| "not a proper 3-coloring of the forest".into()),
        colors_used: Some(distinct_colors(
            g,
            Some(&VertexSet::from_iter_with_universe(forest.n(), members)),
            &colors,
        )),
        metrics,
    }
}

fn run_gather(spec: &TrialSpec, g: &Graph) -> TrialOutput {
    let mask = mask_of(spec, g.n());
    let mask_ref = mask.as_ref();
    let centers: Vec<usize> = g.vertices().filter(|&v| in_mask(mask_ref, v)).collect();
    let mut ledger = RoundLedger::new();
    let (balls, metrics) = if spec.is_sequential() {
        (
            gather_balls(g, mask_ref, &centers, spec.params.radius, &mut ledger),
            None,
        )
    } else {
        let (balls, metrics) = engine_gather_balls(
            g,
            mask_ref,
            &centers,
            spec.params.radius,
            engine_config(spec, g.n()),
            &mut ledger,
        );
        (balls, Some(metrics))
    };
    let ok = balls.len() == centers.len() && balls.iter().zip(&centers).all(|(b, c)| b.contains(c));
    let hash = Fnv::new()
        .words(balls.iter().flat_map(|b| {
            // Length-prefix each ball so [a,b][c] and [a][b,c] differ.
            std::iter::once(b.len() as u64).chain(b.iter().map(|&v| v as u64))
        }))
        .done();
    TrialOutput {
        output_hash: hash,
        ledger_rounds: ledger.total(),
        split_surplus: ledger.phase_total(SPLIT_PHASE),
        valid: ok,
        invalid_reason: (!ok).then(|| "a center is missing from its own ball".into()),
        colors_used: None,
        metrics,
    }
}

fn run_ruling(spec: &TrialSpec, g: &Graph) -> TrialOutput {
    let mask = mask_of(spec, g.n());
    let mask_ref = mask.as_ref();
    let subset: Vec<usize> = g
        .vertices()
        .filter(|&v| in_mask(mask_ref, v))
        .step_by(2)
        .collect();
    let mut ledger = RoundLedger::new();
    let (rf, metrics) = if spec.is_sequential() {
        (
            ruling_forest(g, mask_ref, &subset, spec.params.alpha, &mut ledger),
            None,
        )
    } else {
        let (rf, metrics) = engine_ruling_forest(
            g,
            mask_ref,
            &subset,
            spec.params.alpha,
            engine_config(spec, g.n()),
            &mut ledger,
        );
        (rf, Some(metrics))
    };
    // Structural coherence: roots are their own parents at depth 0, every
    // subset vertex belongs to a tree, and every member's recorded root is
    // an actual root.
    let coherent = rf
        .roots
        .iter()
        .all(|&r| rf.parent[r] == r && rf.depth[r] == 0)
        && subset.iter().all(|&v| rf.root_of[v] != usize::MAX)
        && rf
            .root_of
            .iter()
            .filter(|&&r| r != usize::MAX)
            .all(|&r| rf.roots.binary_search(&r).is_ok());
    let hash = Fnv::new()
        .words(rf.roots.iter().map(|&r| r as u64))
        .words(rf.parent.iter().map(|&p| p as u64))
        .words(rf.depth.iter().map(|&d| d as u64))
        .done();
    TrialOutput {
        output_hash: hash,
        ledger_rounds: ledger.total(),
        split_surplus: ledger.phase_total(SPLIT_PHASE),
        valid: coherent,
        invalid_reason: (!coherent).then(|| "incoherent ruling forest".into()),
        colors_used: None,
        metrics,
    }
}

fn run_theorem13(spec: &TrialSpec, g: &Graph) -> TrialOutput {
    // The pipeline manages its own residual masks; `mask_mod` does not
    // apply. Sequential trials run the simulation; engine trials put every
    // phase on masked sessions, with the declared congest mode and fault
    // plan threaded into each internal session.
    let d = spec.params.d;
    let lists = ListAssignment::uniform(g.n(), d);
    let config = SparseColoringConfig {
        engine_shards: (!spec.is_sequential()).then_some(spec.shards),
        engine_congest: spec.congest.to_mode(),
        engine_faults: spec.faults.plan(g.n()),
        engine_frontier: spec.frontier,
        engine_order: spec.order.to_order(),
        ..Default::default()
    };
    match list_color_sparse(g, &lists, d, config) {
        Ok(Outcome::Colored(col)) => {
            let proper = graphs::is_proper(g, &col.colors);
            let on_list = g.vertices().all(|v| lists.list(v).contains(&col.colors[v]));
            let invalid_reason = match (proper, on_list) {
                (false, _) => Some("improper coloring".into()),
                (_, false) => Some("off-list color".into()),
                _ => None,
            };
            TrialOutput {
                output_hash: hash_usizes(&col.colors),
                ledger_rounds: col.ledger.total(),
                split_surplus: col.ledger.phase_total(SPLIT_PHASE),
                valid: invalid_reason.is_none(),
                colors_used: Some(distinct_colors(g, None, &col.colors)),
                invalid_reason,
                metrics: (!spec.is_sequential()).then(|| col.engine_metrics.clone()),
            }
        }
        Ok(Outcome::CliqueFound { vertices, ledger }) => {
            let is_clique = vertices.len() == d + 1
                && vertices.iter().enumerate().all(|(i, &u)| {
                    vertices[i + 1..]
                        .iter()
                        .all(|&v| g.neighbors(u).contains(&v))
                });
            TrialOutput {
                output_hash: Fnv::new()
                    .words(std::iter::once(u64::MAX))
                    .words(vertices.iter().map(|&v| v as u64))
                    .done(),
                ledger_rounds: ledger.total(),
                split_surplus: ledger.phase_total(SPLIT_PHASE),
                valid: is_clique,
                invalid_reason: (!is_clique).then(|| "claimed clique is not a (d+1)-clique".into()),
                colors_used: None,
                metrics: None,
            }
        }
        Err(e) => TrialOutput {
            output_hash: 0,
            ledger_rounds: 0,
            split_surplus: 0,
            valid: false,
            invalid_reason: Some(format!("pipeline error: {e}")),
            colors_used: None,
            metrics: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CongestSpec, FaultSpec, OrderSpec, Params, WorkerSpec};

    fn spec(algorithm: &str, shards: usize) -> TrialSpec {
        TrialSpec {
            id: 0,
            scenario: "t".into(),
            family: "grid".into(),
            n: 36,
            seed: 7,
            algorithm: algorithm.into(),
            shards,
            workers: WorkerSpec::MatchShards,
            congest: CongestSpec::Unlimited,
            faults: FaultSpec::default(),
            order: OrderSpec::Identity,
            frontier: true,
            rep: 0,
            params: Params::default(),
        }
    }

    #[test]
    fn names_are_sorted_and_known() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert!(is_known("randomized"));
        assert!(!is_known("quantum"));
    }

    #[test]
    fn every_algorithm_replays_sequentially_and_on_the_engine() {
        for alg in names() {
            let g = match alg {
                "randomized" => graphs::gen::random_regular(40, 4, 7),
                "theorem13" => graphs::gen::apollonian(40, 7),
                "h-partition" => graphs::gen::forest_union(40, 2, 7),
                _ => graphs::gen::grid(6, 6),
            };
            let seq = run(&spec(alg, 0), &g);
            assert!(
                seq.valid,
                "{alg}: sequential run invalid: {:?}",
                seq.invalid_reason
            );
            assert!(seq.metrics.is_none());
            let one = run(&spec(alg, 1), &g);
            let two = run(&spec(alg, 2), &g);
            assert!(
                one.valid,
                "{alg}: engine run invalid: {:?}",
                one.invalid_reason
            );
            assert_eq!(
                one.output_hash, seq.output_hash,
                "{alg}: engine must replay"
            );
            assert_eq!(one.output_hash, two.output_hash, "{alg}: shard-invariant");
            assert_eq!(
                one.ledger_rounds, seq.ledger_rounds,
                "{alg}: ledger-identical"
            );
            assert!(one.metrics.is_some());
        }
    }

    #[test]
    fn locality_order_replays_identity_everywhere() {
        for alg in names() {
            let g = match alg {
                "randomized" => graphs::gen::random_regular(40, 4, 7),
                "theorem13" => graphs::gen::apollonian(40, 7),
                "h-partition" => graphs::gen::forest_union(40, 2, 7),
                _ => graphs::gen::grid(6, 6),
            };
            let identity = run(&spec(alg, 2), &g);
            let mut local_spec = spec(alg, 2);
            local_spec.order = OrderSpec::Locality;
            let local = run(&local_spec, &g);
            assert!(local.valid, "{alg} locality: {:?}", local.invalid_reason);
            assert_eq!(
                local.output_hash, identity.output_hash,
                "{alg}: the relabeled layout must replay bit for bit"
            );
            assert_eq!(local.ledger_rounds, identity.ledger_rounds, "{alg}");
        }
    }

    #[test]
    fn split_mode_reconciles_on_gather() {
        let g = graphs::gen::grid(6, 6);
        let unlimited = run(&spec("gather", 1), &g);
        let mut split_spec = spec("gather", 1);
        split_spec.congest = CongestSpec::Split(2);
        let split = run(&split_spec, &g);
        assert_eq!(split.output_hash, unlimited.output_hash);
        assert!(split.split_surplus > 0, "radius-3 floods exceed 2 words");
        assert_eq!(
            split.ledger_rounds - split.split_surplus,
            unlimited.ledger_rounds
        );
    }

    #[test]
    fn masked_trials_run_and_validate() {
        let g = graphs::gen::grid(6, 6);
        for alg in ["randomized", "h-partition", "gather", "ruling"] {
            let mut s = spec(alg, 2);
            s.params.mask_mod = Some(5);
            let out = run(&s, &g);
            assert!(out.valid, "{alg} masked: {:?}", out.invalid_reason);
            let mut seq = s.clone();
            seq.shards = 0;
            assert_eq!(
                run(&seq, &g).output_hash,
                out.output_hash,
                "{alg} masked replay"
            );
        }
    }

    #[test]
    fn faulted_randomized_is_judged_not_trusted() {
        // Heavy loss on a dense-ish instance: the run must *terminate* and
        // the verdict must come from the propriety check, whatever it is.
        let g = graphs::gen::random_regular(30, 4, 3);
        let mut s = spec("randomized", 1);
        s.faults = FaultSpec {
            lose: Some((1, 0.5)),
            ..Default::default()
        };
        let out = run(&s, &g);
        assert_eq!(out.valid, out.invalid_reason.is_none());
    }
}
