//! # detrand — deterministic randomness, API-compatible with the `rand` subset we use
//!
//! The build environment for this repository is fully offline, so the
//! crates.io `rand` crate cannot be fetched. This crate implements, from
//! scratch, exactly the surface the workspace consumes — consumers declare
//! `rand = { package = "detrand", ... }` so call sites keep the familiar
//! `use rand::...` spelling:
//!
//! * [`rngs::StdRng`] — xoshiro256++ (Blackman–Vigna), seeded through
//!   SplitMix64 exactly as the reference implementation recommends.
//! * [`SeedableRng::seed_from_u64`] / [`RngCore::next_u64`].
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` of `usize`/`u64`
//!   (unbiased via rejection sampling), [`Rng::gen_bool`].
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates) and
//!   [`seq::SliceRandom::choose`].
//! * [`mix64`] — a SplitMix64 finalizer for deriving independent per-node
//!   streams from `(seed, node id)`, the contract the message-passing engine
//!   relies on for shard-count-independent replay.
//!
//! Everything here is deterministic across platforms and shard counts: same
//! seed, same draw sequence, bit-identical results.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 finalizer: mixes two words into one well-distributed word.
///
/// Used to derive independent per-node RNG streams from a global seed:
/// `StdRng::seed_from_u64(mix64(seed, node as u64))`. Consecutive inputs
/// yield decorrelated outputs (this is the exact generator SplitMix64 uses
/// to expand consecutive counter values into seeds).
#[must_use]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Minimal core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, bound)` without modulo bias (rejection sampling).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject the final partial block so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, i64);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`. Panics on empty ranges.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        // Compare against p scaled to 2^64; exact for p = 0 and p = 1.
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named like the `rand` module so `use rand::rngs::StdRng` resolves.
pub mod rngs {
    use super::{mix64, RngCore, SeedableRng};

    /// xoshiro256++: 256 bits of state, excellent statistical quality, and
    /// trivially portable — the workspace standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with SplitMix64 (per the xoshiro authors); a
            // counter seed therefore never yields a degenerate all-zero state.
            let s = [
                mix64(state, 1),
                mix64(state, 2),
                mix64(state, 3),
                mix64(state, 4),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut n = [s0, s1, s2, s3];
            n[2] ^= n[0];
            n[3] ^= n[1];
            n[1] ^= n[2];
            n[0] ^= n[3];
            n[2] ^= t;
            n[3] = n[3].rotate_left(45);
            self.s = n;
            result
        }
    }
}

/// Named like the `rand` module so `use rand::seq::SliceRandom` resolves.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations (the `shuffle`/`choose` subset).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{mix64, Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0usize..1_000_000),
                b.gen_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&y));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        rng.gen_range(3usize..3);
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50! makes identity vanishingly unlikely"
        );
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }

    #[test]
    fn mix64_separates_streams() {
        // Streams for consecutive nodes must differ immediately.
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(mix64(42, 0));
            (0..4).map(|_| r.gen_range(0u64..1 << 60)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(mix64(42, 1));
            (0..4).map(|_| r.gen_range(0u64..1 << 60)).collect()
        };
        assert_ne!(a, b);
    }
}
