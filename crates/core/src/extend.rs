//! Lemma 3.2 — extending a partial list-coloring to the happy set `A`.
//!
//! Given the residual graph of one peeling level with everything but `A`
//! colored:
//!
//! 1. build an `(α, α·log n)`-ruling forest in `G[R]` with respect to `A`
//!    (`α = 2·radius + 2`, so root balls are disjoint with no edges between
//!    them — slightly safer than the paper's `2c·log n`, see DESIGN.md);
//! 2. uncolor every tree vertex `T` (this may uncolor sad vertices — the
//!    paper's "recoloring process might modify the colors of some vertices
//!    of G∖A");
//! 3. compute a `(d+1)`-coloring of `G[T]` (max degree ≤ d since `T ⊆ R`);
//! 4. color `T` leaves-to-roots, one (depth, class) stable set per round —
//!    every vertex still has its parent uncolored, so a list color is free
//!    (Observation 5.1);
//! 5. uncolor each root's radius-`r` rich ball entirely and finish it with
//!    the constructive Theorem 1.1 ([`crate::ert`]) — the root is happy, so
//!    its ball has a surplus vertex or is not a Gallai tree.

use crate::ert::{color_component, ErtError};
use crate::happy::Classification;
use crate::lists::ListAssignment;
use crate::state::ColoringState;
use engine::{layered_slots, CongestMode, EngineMetrics, EnginePool, FaultPlan, VertexOrder};
use graphs::{ball, Graph, VertexId, VertexSet};
use local_model::{degree_plus_one_coloring, ruling_forest, RoundLedger};
use std::fmt;

/// Engine-substrate selection for one composite phase: the shard count,
/// the CONGEST bandwidth mode every internal session runs under, and the
/// accumulator that absorbs each session's observed [`EngineMetrics`] —
/// how composite pipelines (Theorem 1.3's peel/extend loop) finally report
/// real traffic instead of `messages = 0`.
pub struct EngineMode<'m> {
    /// Logical shard count for every internal engine session.
    pub shards: usize,
    /// CONGEST treatment ([`CongestMode::Unlimited`] /
    /// [`CongestMode::Reject`] / [`CongestMode::Split`]) applied to every
    /// internal session.
    pub congest: CongestMode,
    /// Fault plan injected into every internal session (empty for a clean
    /// run) — faults key on logical messages, so they perturb each session
    /// identically at any shard count.
    pub faults: FaultPlan,
    /// Frontier-sparse rounds for every internal session (`true` for the
    /// production default). `false` forces the historical full-range scan —
    /// the equivalence baseline and the `--no-frontier` twin rows the bench
    /// gate compares against. Purely a performance knob: outputs, ledger
    /// charges, and statistics are bit-identical either way.
    pub frontier: bool,
    /// Vertex-storage order for every internal session
    /// ([`VertexOrder::Identity`] by default). [`VertexOrder::Locality`]
    /// relabels each session's shard-local layout along the seeded
    /// bandwidth-minimizing order; observables stay on original ids, so
    /// outputs and ledger charges are bit-identical either way. Purely a
    /// performance knob, like `pool` and `frontier`.
    pub order: VertexOrder,
    /// Shared worker pool threaded through every internal session: `Some`
    /// amortizes thread spawns to one per composite phase (a peeling run's
    /// levels all reuse these threads); `None` lets each session spawn its
    /// own. Purely a performance knob.
    pub pool: Option<EnginePool>,
    /// Accumulator absorbing each internal session's metrics.
    pub metrics: &'m mut EngineMetrics,
}

impl EngineMode<'_> {
    /// The engine config every internal session of this phase starts from.
    pub fn config(&self) -> engine::EngineConfig {
        let config = engine::EngineConfig::default()
            .with_shards(self.shards)
            .with_congest(self.congest)
            .with_frontier(self.frontier)
            .with_order(self.order)
            .with_faults(self.faults.clone());
        match &self.pool {
            Some(pool) => config.with_pool(pool),
            None => config,
        }
    }
}

/// Failure of the Lemma 3.2 extension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExtendError {
    /// The root-ball recoloring hit a Theorem 1.1 obstruction — the root was
    /// not actually happy, indicating an upstream classification bug or a
    /// violated precondition.
    RootBall {
        /// The offending root.
        root: VertexId,
        /// The underlying Theorem 1.1 error.
        source: ErtError,
    },
}

impl fmt::Display for ExtendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtendError::RootBall { root, source } => {
                write!(f, "root-ball extension failed at root {root}: {source}")
            }
        }
    }
}

impl std::error::Error for ExtendError {}

/// Marker for "uncolored" entries in the global color vector.
pub const UNCOLORED: usize = usize::MAX;

/// Reduced list of `v`: original list minus the colors of its colored
/// neighbors within `alive`.
fn reduced_list(
    g: &Graph,
    alive: &VertexSet,
    lists: &ListAssignment,
    coloring: &[usize],
    v: VertexId,
) -> Vec<usize> {
    let mut l = lists.list(v).to_vec();
    for &w in g.neighbors(v) {
        if alive.contains(w) && coloring[w] != UNCOLORED {
            if let Ok(pos) = l.binary_search(&coloring[w]) {
                l.remove(pos);
            }
        }
    }
    l
}

/// Extends `coloring` (proper on `alive ∖ A`, `UNCOLORED` on `A`) to all of
/// `alive`, possibly recoloring some sad vertices. See module docs.
///
/// `engine` selects the substrate for this level's communication phases:
/// `None` runs the sequential simulations; `Some(mode)` runs the
/// ruling-forest construction (step 1, [`engine::engine_ruling_forest`]),
/// the `(d+1)`-coloring (step 3,
/// [`engine::engine_degree_plus_one_coloring`]), and the layered greedy
/// (step 4, [`engine::engine_layered_greedy`]) on masked
/// [`engine::EngineSession`]s over the level's scopes — identical outputs
/// and ledger charges, executed as message passing under the mode's shard
/// count and [`CongestMode`], with every session's observed metrics
/// absorbed into `mode.metrics`. Step 5's root-ball recoloring is
/// node-local (each ball sits inside one root's radius-`r` neighborhood)
/// and stays a host computation on both substrates.
///
/// # Errors
///
/// [`ExtendError::RootBall`] if a root ball violates the Theorem 1.1
/// hypothesis (never happens when `classification` is honest).
///
/// # Panics
///
/// Panics (in debug) if invariants break: a tree vertex without a free
/// color, overlapping root balls, or a residual uncolored vertex at the end.
pub fn extend_to_happy_set(
    g: &Graph,
    alive: &VertexSet,
    lists: &ListAssignment,
    classification: &Classification,
    coloring: &mut [usize],
    ledger: &mut RoundLedger,
    mut engine: Option<EngineMode<'_>>,
) -> Result<(), ExtendError> {
    let n = g.n();
    let happy: Vec<VertexId> = classification.happy.iter().collect();
    if happy.is_empty() {
        return Ok(());
    }
    let radius = classification.radius;
    let alpha = 2 * radius + 2;

    // 1. Ruling forest in G[R] with respect to A — sequential simulation or
    // a masked engine session running the same per-round steps.
    let rf = match engine.as_mut() {
        None => ruling_forest(g, Some(&classification.rich), &happy, alpha, ledger),
        Some(mode) => {
            let (rf, metrics) = engine::engine_ruling_forest(
                g,
                Some(&classification.rich),
                &happy,
                alpha,
                mode.config(),
                ledger,
            );
            mode.metrics.absorb(metrics);
            rf
        }
    };

    // 2. Uncolor T.
    let members = rf.members();
    let scope = VertexSet::from_iter_with_universe(n, members.iter().copied());
    for &v in &members {
        coloring[v] = UNCOLORED;
    }

    // 3. (d+1)-coloring of G[T] (T ⊆ R keeps degrees ≤ d) — sequential
    // simulation or a masked engine session over the tree scope; the two
    // substrates are bit-identical in colors and ledger charges.
    let classes = match engine.as_mut() {
        None => degree_plus_one_coloring(g, Some(&scope), ledger),
        Some(mode) => {
            let (classes, metrics) =
                engine::engine_degree_plus_one_coloring(g, Some(&scope), mode.config(), ledger);
            mode.metrics.absorb(metrics);
            classes
        }
    };
    let class_count = members.iter().map(|&v| classes[v] + 1).max().unwrap_or(1);

    // 4. Layered greedy, leaves to roots, roots skipped — one (depth,
    // class) slot per round, on the selected substrate. Both paths walk
    // the shared [`layered_slots`] schedule.
    let reduced: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            if scope.contains(v) {
                reduced_list(g, alive, lists, coloring, v)
            } else {
                Vec::new()
            }
        })
        .collect();
    let max_depth = rf.max_depth();
    let tree_colors = match engine.as_mut() {
        None => {
            let mut st = ColoringState::new(g, scope.clone(), reduced);
            for (depth, class) in layered_slots(max_depth, class_count) {
                for &v in &members {
                    if rf.depth[v] == depth && classes[v] == class {
                        let c = *st
                            .live_list(v)
                            .first()
                            .expect("Observation 5.1: parent uncolored ⇒ free color");
                        st.assign(v, c);
                    }
                }
            }
            ledger.charge(
                "layered-coloring",
                (max_depth as u64) * (class_count as u64),
            );
            st.into_colors()
        }
        Some(mode) => {
            let (colors, metrics) = engine::engine_layered_greedy(
                g,
                &scope,
                &reduced,
                &rf.depth,
                &classes,
                class_count,
                mode.config(),
                ledger,
            );
            mode.metrics.absorb(metrics);
            colors
        }
    };
    for &v in &members {
        if rf.depth[v] >= 1 {
            debug_assert_ne!(tree_colors[v], UNCOLORED);
            coloring[v] = tree_colors[v];
        }
    }

    // 5. Root balls: uncolor completely, then Theorem 1.1 per ball.
    let balls: Vec<Vec<VertexId>> = rf
        .roots
        .iter()
        .map(|&r| ball(g, r, radius, Some(&classification.rich)))
        .collect();
    let mut union = VertexSet::new(n);
    for b in &balls {
        for &v in b {
            let fresh = union.insert(v);
            debug_assert!(fresh, "root balls must be disjoint (spacing α)");
            coloring[v] = UNCOLORED;
        }
    }
    #[cfg(debug_assertions)]
    for v in union.iter() {
        for &w in g.neighbors(v) {
            debug_assert!(
                !union.contains(w) || same_ball(&balls, v, w),
                "no edges may cross distinct root balls"
            );
        }
    }
    let mut ball_state = ColoringState::new(
        g,
        union,
        (0..n)
            .map(|v| {
                if coloring[v] == UNCOLORED && alive.contains(v) {
                    reduced_list(g, alive, lists, coloring, v)
                } else {
                    Vec::new()
                }
            })
            .collect(),
    );
    for &root in &rf.roots {
        color_component(&mut ball_state, root)
            .map_err(|source| ExtendError::RootBall { root, source })?;
    }
    ledger.charge("root-ball-recolor", 2 * radius as u64);
    let ball_colors = ball_state.into_colors();
    for b in &balls {
        for &v in b {
            debug_assert_ne!(ball_colors[v], UNCOLORED);
            coloring[v] = ball_colors[v];
        }
    }
    debug_assert!(
        alive.iter().all(|v| coloring[v] != UNCOLORED),
        "extension must color every alive vertex"
    );
    Ok(())
}

#[cfg(debug_assertions)]
fn same_ball(balls: &[Vec<VertexId>], v: VertexId, w: VertexId) -> bool {
    balls
        .iter()
        .any(|b| b.binary_search(&v).is_ok() && b.binary_search(&w).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::happy::classify;
    use graphs::gen;

    /// End-to-end single-level check: color alive ∖ A greedily by brute
    /// force, then extend to A and verify the result.
    fn run_single_level(g: &Graph, d: usize, radius: usize, lists: &ListAssignment) {
        let alive = VertexSet::full(g.n());
        let mut ledger = RoundLedger::new();
        let cls = classify(g, &alive, d, radius, &mut ledger);
        assert!(!cls.happy.is_empty(), "workload must have happy vertices");
        // Color the complement of A with the exact solver (tests only).
        let rest: Vec<VertexId> = (0..g.n()).filter(|&v| !cls.happy.contains(v)).collect();
        let sub = graphs::InducedSubgraph::new(g, rest.iter().copied());
        let sub_lists: Vec<Vec<usize>> = sub
            .parent_vertices()
            .iter()
            .map(|&p| lists.list(p).to_vec())
            .collect();
        let sub_col =
            graphs::list_coloring(sub.graph(), &sub_lists).expect("complement colorable in tests");
        let mut coloring = vec![UNCOLORED; g.n()];
        for (local, &p) in sub.parent_vertices().iter().enumerate() {
            coloring[p] = sub_col[local];
        }
        for engine_shards in [None, Some(2)] {
            let mut coloring = coloring.clone();
            let mut ledger = RoundLedger::new();
            let mut metrics = EngineMetrics::default();
            let engine = engine_shards.map(|shards| EngineMode {
                shards,
                congest: CongestMode::Unlimited,
                faults: FaultPlan::default(),
                frontier: true,
                order: VertexOrder::Identity,
                pool: None,
                metrics: &mut metrics,
            });
            extend_to_happy_set(g, &alive, lists, &cls, &mut coloring, &mut ledger, engine)
                .expect("extension succeeds");
            assert!(graphs::is_proper(g, &coloring));
            for v in g.vertices() {
                assert!(
                    lists.list(v).contains(&coloring[v]),
                    "vertex {v} got off-list color {}",
                    coloring[v]
                );
            }
            if engine_shards.is_some() {
                assert!(
                    metrics.total_messages() > 0,
                    "engine-mode extension must surface its sessions' traffic"
                );
            }
        }
    }

    #[test]
    fn extends_on_grid() {
        let g = gen::grid(7, 7);
        run_single_level(&g, 4, 3, &ListAssignment::uniform(g.n(), 4));
    }

    #[test]
    fn extends_on_tree_with_d3() {
        let g = gen::random_tree(60, 5);
        run_single_level(&g, 3, 2, &ListAssignment::uniform(g.n(), 3));
    }

    #[test]
    fn extends_with_adversarial_lists() {
        let g = gen::grid(6, 6);
        let lists = ListAssignment::random(g.n(), 4, 8, 11);
        run_single_level(&g, 4, 3, &lists);
    }

    #[test]
    fn extends_on_triangular_lattice() {
        let g = gen::triangular(5, 5);
        run_single_level(&g, 6, 3, &ListAssignment::uniform(g.n(), 6));
    }

    #[test]
    fn extends_when_everyone_is_happy_and_uncolored_base_is_empty() {
        // A path with d = 3: everyone happy; nothing precolored at all.
        let g = gen::path(30);
        let alive = VertexSet::full(30);
        let lists = ListAssignment::uniform(30, 3);
        let mut ledger = RoundLedger::new();
        let cls = classify(&g, &alive, 3, 2, &mut ledger);
        assert_eq!(cls.happy.len(), 30);
        let mut coloring = vec![UNCOLORED; 30];
        extend_to_happy_set(&g, &alive, &lists, &cls, &mut coloring, &mut ledger, None).unwrap();
        assert!(graphs::is_proper(&g, &coloring));
    }

    #[test]
    fn noop_when_no_happy_vertices() {
        let g = gen::complete(4);
        let alive = VertexSet::full(4);
        let lists = ListAssignment::uniform(4, 3);
        let mut ledger = RoundLedger::new();
        let cls = classify(&g, &alive, 3, 5, &mut ledger);
        assert!(cls.happy.is_empty());
        let mut coloring = vec![UNCOLORED; 4];
        extend_to_happy_set(&g, &alive, &lists, &cls, &mut coloring, &mut ledger, None).unwrap();
        assert!(coloring.iter().all(|&c| c == UNCOLORED));
    }
}
