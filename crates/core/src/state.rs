//! Mutable coloring state shared by the constructive Theorem 1.1 solver and
//! the Lemma 3.2 extension procedure.
//!
//! The central invariant (the paper's Observation 5.1 in executable form):
//! every uncolored vertex's *live list* equals its original list minus the
//! colors of its already-colored neighbors, so
//! `|live(v)| ≥ |L(v)| − (deg(v) − alive_deg(v))`. Any color in the live
//! list is safe to assign, and surplus (`|live(v)| > alive_deg(v)`) can only
//! grow as neighbors get colored with repeated or out-of-list colors.

use graphs::{Graph, VertexId, VertexSet};
use std::collections::VecDeque;

/// Mutable partial-coloring state over (a masked part of) a graph.
#[derive(Clone, Debug)]
pub struct ColoringState<'g> {
    g: &'g Graph,
    /// Uncolored vertices under management.
    alive: VertexSet,
    /// Live lists for alive vertices (sorted).
    live: Vec<Vec<usize>>,
    /// Assigned colors (`usize::MAX` = none).
    color: Vec<usize>,
}

impl<'g> ColoringState<'g> {
    /// Creates a state managing the vertices of `scope`, with `lists` as the
    /// *already-reduced* lists (the caller subtracts colors of precolored
    /// neighbors outside `scope`).
    ///
    /// # Panics
    ///
    /// Panics if `lists.len() != g.n()`.
    pub fn new(g: &'g Graph, scope: VertexSet, lists: Vec<Vec<usize>>) -> Self {
        assert_eq!(lists.len(), g.n());
        let mut live = lists;
        for l in &mut live {
            l.sort_unstable();
            l.dedup();
        }
        ColoringState {
            g,
            alive: scope,
            live,
            color: vec![usize::MAX; g.n()],
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.g
    }

    /// Uncolored managed vertices.
    pub fn alive(&self) -> &VertexSet {
        &self.alive
    }

    /// The live list of an alive vertex.
    pub fn live_list(&self, v: VertexId) -> &[usize] {
        &self.live[v]
    }

    /// Degree of `v` within the alive set.
    pub fn alive_degree(&self, v: VertexId) -> usize {
        self.g
            .neighbors(v)
            .iter()
            .filter(|&&w| self.alive.contains(w))
            .count()
    }

    /// Whether `v` has strictly more live colors than alive neighbors.
    pub fn has_surplus(&self, v: VertexId) -> bool {
        self.live[v].len() > self.alive_degree(v)
    }

    /// Assigned color of `v` (`None` if uncolored).
    pub fn color(&self, v: VertexId) -> Option<usize> {
        (self.color[v] != usize::MAX).then_some(self.color[v])
    }

    /// Extracts the color vector (`usize::MAX` marks uncolored).
    pub fn into_colors(self) -> Vec<usize> {
        self.color
    }

    /// Colors `v` with `c`, removing `v` from the alive set and `c` from
    /// the live lists of its alive neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not alive or `c` is not in its live list.
    pub fn assign(&mut self, v: VertexId, c: usize) {
        assert!(self.alive.contains(v), "vertex {v} is not alive");
        assert!(
            self.live[v].binary_search(&c).is_ok(),
            "color {c} not in live list of {v}"
        );
        self.color[v] = c;
        self.alive.remove(v);
        for &w in self.g.neighbors(v) {
            if self.alive.contains(w) {
                if let Ok(pos) = self.live[w].binary_search(&c) {
                    self.live[w].remove(pos);
                }
            }
        }
    }

    /// Colors every alive vertex of `start`'s alive component by the
    /// reverse-BFS greedy (children before parents): each vertex keeps an
    /// uncolored neighbor until its own turn, so its live list is nonempty
    /// provided `start` had a surplus (or some neighbor outside the
    /// component was colored meanwhile).
    ///
    /// # Panics
    ///
    /// Panics if a live list runs empty — i.e. the surplus precondition was
    /// violated by the caller.
    pub fn greedy_from_surplus(&mut self, start: VertexId) {
        debug_assert!(
            self.has_surplus(start),
            "greedy_from_surplus requires a surplus at {start}"
        );
        // BFS order within the alive component.
        let order = self.bfs_order(start);
        for &v in order.iter().rev() {
            let c = *self.live[v]
                .first()
                .expect("surplus invariant guarantees a free color");
            self.assign(v, c);
        }
    }

    /// BFS order of `start`'s alive component (start first).
    pub fn bfs_order(&self, start: VertexId) -> Vec<VertexId> {
        assert!(self.alive.contains(start));
        let mut seen = VertexSet::new(self.g.n());
        let mut order = Vec::new();
        let mut q = VecDeque::new();
        seen.insert(start);
        q.push_back(start);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for &w in self.g.neighbors(u) {
                if self.alive.contains(w) && seen.insert(w) {
                    q.push_back(w);
                }
            }
        }
        order
    }

    /// The alive component containing `start`, as a set.
    pub fn alive_component(&self, start: VertexId) -> VertexSet {
        VertexSet::from_iter_with_universe(self.g.n(), self.bfs_order(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    fn full_state(g: &Graph, k: usize) -> ColoringState<'_> {
        ColoringState::new(g, VertexSet::full(g.n()), vec![(0..k).collect(); g.n()])
    }

    #[test]
    fn assign_updates_neighbors() {
        let g = gen::path(3);
        let mut st = full_state(&g, 2);
        st.assign(1, 0);
        assert_eq!(st.live_list(0), &[1]);
        assert_eq!(st.live_list(2), &[1]);
        assert_eq!(st.color(1), Some(0));
        assert!(!st.alive().contains(1));
    }

    #[test]
    #[should_panic(expected = "not in live list")]
    fn assign_rejects_missing_color() {
        let g = gen::path(2);
        let mut st = full_state(&g, 1);
        st.assign(0, 0);
        st.assign(1, 0); // live list of 1 is now empty of 0
    }

    #[test]
    fn surplus_detection() {
        let g = gen::cycle(4);
        let st = full_state(&g, 3);
        assert!(st.has_surplus(0)); // 3 colors > 2 alive neighbors
        let st2 = full_state(&g, 2);
        assert!(!st2.has_surplus(0));
    }

    #[test]
    fn greedy_from_surplus_colors_component() {
        // Star: center has surplus with deg+1 lists at leaves… use tight
        // lists with one surplus vertex: path with |L| = deg at ends except
        // start.
        let g = gen::path(5);
        let lists = vec![
            vec![10],     // deg 1
            vec![10, 20], // deg 2
            vec![10, 20], // deg 2
            vec![10, 20], // deg 2
            vec![10, 20], // deg 1: surplus!
        ];
        let mut st = ColoringState::new(&g, VertexSet::full(5), lists);
        assert!(st.has_surplus(4));
        st.greedy_from_surplus(4);
        let colors = st.into_colors();
        for (u, v) in g.edges() {
            assert_ne!(colors[u], colors[v]);
        }
        assert_eq!(colors[0], 10);
    }

    #[test]
    fn greedy_respects_precolored_outside_scope() {
        // Scope = {1,2,3} of a path 0-1-2-3; vertex 0 precolored "10" so
        // vertex 1's reduced list drops 10.
        let g = gen::path(4);
        let scope = VertexSet::from_iter_with_universe(4, [1, 2, 3]);
        let lists = vec![
            vec![],   // not in scope
            vec![20], // 10 was removed by the caller
            vec![10, 20],
            vec![10, 20], // surplus (deg 1 in scope)
        ];
        let mut st = ColoringState::new(&g, scope, lists);
        st.greedy_from_surplus(3);
        let colors = st.into_colors();
        assert_eq!(colors[1], 20);
        assert_ne!(colors[1], colors[2]);
        assert_ne!(colors[2], colors[3]);
    }

    #[test]
    fn bfs_order_covers_component() {
        let g = gen::cycle(6);
        let st = full_state(&g, 3);
        let order = st.bfs_order(0);
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], 0);
    }
}
