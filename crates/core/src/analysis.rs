//! Quantitative tooling for Lemma 3.1 and Proposition 4.4.
//!
//! Lemma 3.1 bounds the happy fraction: `|A| ≥ n/(3d)³` in general and
//! `|A| ≥ n/(12d+1)` when there are no poor vertices. Proposition 4.4's
//! engine is the auxiliary graph `H` built from `G[S]` (the sad subgraph):
//! clique local blocks get a hub vertex `v_C` and lose their edges, then
//! the demoted degree-2 vertices are suppressed; the paper shows `H` has
//! girth ≥ 5 (for the paper's ball radius) and concludes `G[S]` holds at
//! least `|S|/12` vertices of degree ≤ d−1. These constructions let the
//! experiments measure both sides of each inequality.

use crate::happy::Classification;
use graphs::{block_decomposition, Graph, GraphBuilder, VertexSet};

/// The Lemma 3.1 worst-case bound on the happy fraction.
pub fn happy_fraction_bound(d: usize, has_poor: bool) -> f64 {
    if has_poor {
        1.0 / ((3 * d).pow(3) as f64)
    } else {
        1.0 / ((12 * d + 1) as f64)
    }
}

/// One row of a Lemma 3.1 measurement.
#[derive(Clone, Debug)]
pub struct Lemma31Report {
    /// Residual vertex count.
    pub n: usize,
    /// Rich / poor / happy / sad counts.
    pub rich: usize,
    /// Poor count.
    pub poor: usize,
    /// Happy count (`|A|`).
    pub happy: usize,
    /// Sad count (`|S|`).
    pub sad: usize,
    /// Measured happy fraction `|A|/n`.
    pub measured: f64,
    /// The applicable worst-case bound.
    pub bound: f64,
}

impl Lemma31Report {
    /// Builds the report from a classification.
    pub fn from_classification(c: &Classification, d: usize, alive_count: usize) -> Self {
        let has_poor = !c.poor.is_empty();
        Lemma31Report {
            n: alive_count,
            rich: c.rich.len(),
            poor: c.poor.len(),
            happy: c.happy.len(),
            sad: c.sad.len(),
            measured: c.happy_fraction(alive_count),
            bound: happy_fraction_bound(d, has_poor),
        }
    }

    /// Whether the measured fraction meets the bound.
    pub fn holds(&self) -> bool {
        self.n == 0 || self.measured >= self.bound
    }
}

/// The Proposition 4.4 auxiliary graph `H`, with provenance.
#[derive(Clone, Debug)]
pub struct AuxiliaryGraph {
    /// The constructed graph `H`.
    pub graph: Graph,
    /// Number of hub vertices `v_C` added for clique blocks.
    pub hubs: usize,
    /// Number of suppressed (demoted degree-2) vertices.
    pub suppressed: usize,
    /// `|S|` of the sad set the construction started from.
    pub sad_count: usize,
}

/// Builds Proposition 4.4's auxiliary graph `H` from `G[S]`.
///
/// Local blocks are taken as the blocks of `G[S]` (the full-component
/// reading of the paper's radius-`c·log n` balls — see DESIGN.md). Step 1
/// replaces each clique block on ≥ 3 vertices by a hub; step 2 suppresses
/// every vertex that had degree ≥ 3 in `G[S]` but degree 2 after step 1
/// (replacing induced paths by edges).
pub fn auxiliary_graph(g: &Graph, sad: &VertexSet) -> AuxiliaryGraph {
    let n = g.n();
    let decomposition = block_decomposition(g, Some(sad));
    // Adjacency sets of the working multigraph-free construction; vertices
    // are original ids 0..n plus hubs n, n+1, ….
    let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    for v in sad.iter() {
        for &w in g.neighbors(v) {
            if sad.contains(w) {
                adj[v].insert(w);
                adj[w].insert(v);
            }
        }
    }
    let mut hubs = 0usize;
    for block in &decomposition.blocks {
        if block.len() >= 3 && graphs::is_clique(g, block) {
            let hub = adj.len();
            adj.push(Default::default());
            hubs += 1;
            for (i, &u) in block.iter().enumerate() {
                adj[hub].insert(u);
                adj[u].insert(hub);
                for &w in &block[i + 1..] {
                    adj[u].remove(&w);
                    adj[w].remove(&u);
                }
            }
        }
    }
    // Step 2: suppress vertices of original sad-degree ≥ 3 that now have
    // degree exactly 2.
    let original_degree = |v: usize| -> usize {
        if v < n {
            g.neighbors(v).iter().filter(|&&w| sad.contains(w)).count()
        } else {
            usize::MAX // hubs are never suppressed
        }
    };
    let mut suppressed = 0usize;
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if !sad.contains(v) || adj[v].is_empty() {
                continue;
            }
            if adj[v].len() == 2 && original_degree(v) >= 3 {
                let mut it = adj[v].iter();
                let a = *it.next().expect("degree 2");
                let b = *it.next().expect("degree 2");
                adj[v].clear();
                adj[a].remove(&v);
                adj[b].remove(&v);
                if a != b {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
                suppressed += 1;
                changed = true;
            }
        }
    }
    // Materialize (dropping isolated suppressed slots is fine: H's vertex
    // count only matters up to the (d/2)|S| bound, which we report as-is).
    let mut b = GraphBuilder::new(adj.len());
    for (v, nbrs) in adj.iter().enumerate() {
        for &w in nbrs {
            if w > v {
                b.add_edge(v, w);
            }
        }
    }
    AuxiliaryGraph {
        graph: b.build(),
        hubs,
        suppressed,
        sad_count: sad.len(),
    }
}

/// Counts the sad vertices of residual degree ≤ `d − 1` — the quantity
/// Proposition 4.4 bounds below by `|S|/12`.
pub fn low_degree_sad_count(g: &Graph, alive: &VertexSet, sad: &VertexSet, d: usize) -> usize {
    sad.iter()
        .filter(|&v| {
            g.neighbors(v)
                .iter()
                .filter(|&&w| alive.contains(w))
                .count()
                <= d.saturating_sub(1)
        })
        .count()
}

/// Counts sad vertices whose degree *within `G[S]`* is ≤ `d − 1` (the
/// literal statement of Proposition 4.4).
pub fn low_degree_in_sad_subgraph(g: &Graph, sad: &VertexSet, d: usize) -> usize {
    sad.iter()
        .filter(|&v| {
            g.neighbors(v).iter().filter(|&&w| sad.contains(w)).count() <= d.saturating_sub(1)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::happy::classify;
    use graphs::gen;
    use local_model::RoundLedger;

    #[test]
    fn bounds_formulae() {
        assert!((happy_fraction_bound(3, true) - 1.0 / 729.0).abs() < 1e-12);
        assert!((happy_fraction_bound(3, false) - 1.0 / 37.0).abs() < 1e-12);
        assert!(happy_fraction_bound(4, true) < happy_fraction_bound(3, true));
    }

    #[test]
    fn lemma31_on_sparse_workloads() {
        for (g, d) in [
            (gen::forest_union(120, 2, 5), 4usize),
            (gen::grid(10, 10), 4),
            (gen::triangular(8, 8), 6),
            (gen::random_regular(60, 3, 7), 3),
        ] {
            let alive = VertexSet::full(g.n());
            let mut ledger = RoundLedger::new();
            let c = classify(&g, &alive, d, g.n(), &mut ledger);
            let report = Lemma31Report::from_classification(&c, d, g.n());
            assert!(
                report.holds(),
                "Lemma 3.1 bound violated: measured {} < bound {}",
                report.measured,
                report.bound
            );
            assert_eq!(report.happy + report.sad, report.rich);
        }
    }

    #[test]
    fn auxiliary_graph_of_clique_chain() {
        // A chain of K4s glued at cut vertices: every vertex sad for d = 3?
        // K4-chain vertices have degree 3 except cut vertices (degree 6).
        // Use a single K4: all sad (3-regular Gallai tree).
        let g = gen::complete(4);
        let sad = VertexSet::full(4);
        let aux = auxiliary_graph(&g, &sad);
        // One clique block → one hub, K4 edges removed: H is the star K_{1,4}.
        assert_eq!(aux.hubs, 1);
        assert_eq!(aux.graph.m(), 4);
        assert_eq!(aux.suppressed, 0);
        assert_eq!(graphs::girth(&aux.graph, None), None);
    }

    #[test]
    fn auxiliary_graph_suppression() {
        // Two K4s sharing a path… construct: K4 on {0,1,2,3}, K4 on
        // {4,5,6,7}, edges 3-8, 8-4 with middle vertex 8 of degree 2:
        // after hub replacement, 3 and 4 drop to degree 2 (orig ≥ 3) and are
        // suppressed; 8 has original degree 2 and stays.
        let mut edges = vec![];
        for c in [[0, 1, 2, 3], [4, 5, 6, 7]] {
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((c[i], c[j]));
                }
            }
        }
        edges.push((3, 8));
        edges.push((8, 4));
        let g = Graph::from_edges(9, edges);
        let sad = VertexSet::full(9);
        let aux = auxiliary_graph(&g, &sad);
        assert_eq!(aux.hubs, 2);
        assert_eq!(aux.suppressed, 2); // vertices 3 and 4
                                       // H: hubs h0, h1 connected through (suppression) to 8:
                                       // h0 - 8 - h1 plus stars to non-cut clique vertices.
        let girth = graphs::girth(&aux.graph, None);
        assert!(girth.is_none_or(|x| x >= 5), "Prop 4.4: girth ≥ 5");
    }

    #[test]
    fn aux_graph_girth_bound_on_sad_heavy_instances() {
        // d-regular random graphs with d = 3: sad vertices are those in
        // Gallai-ball components; build H over the sad set and check the
        // paper's girth claim (≥ 5) — with full-component local blocks the
        // claim holds for the clique-hub construction.
        for seed in 0..5u64 {
            let g = gen::random_regular(40, 3, seed);
            let alive = VertexSet::full(g.n());
            let mut ledger = RoundLedger::new();
            let c = classify(&g, &alive, 3, g.n(), &mut ledger);
            if c.sad.is_empty() {
                continue;
            }
            let aux = auxiliary_graph(&g, &c.sad);
            let girth = graphs::girth(&aux.graph, None);
            // Triangles cannot survive: any triangle in G[S] is a clique
            // block → replaced by a hub star. C4s would need non-Gallai
            // balls (happy) — sad sets avoid them.
            assert!(girth.is_none_or(|x| x >= 5), "seed {seed}: girth {girth:?}");
        }
    }

    #[test]
    fn proposition44_low_degree_bound() {
        // For sad sets arising in real classifications, G[S] must contain
        // ≥ |S|/12 vertices of degree ≤ d−1 (in G[S] the paper actually
        // counts degree in G; we check the stronger in-S variant loosely).
        let g = gen::random_regular(60, 3, 11);
        let alive = VertexSet::full(g.n());
        let mut ledger = RoundLedger::new();
        let c = classify(&g, &alive, 3, g.n(), &mut ledger);
        if !c.sad.is_empty() {
            let low = low_degree_in_sad_subgraph(&g, &c.sad, 3);
            assert!(
                low * 12 >= c.sad.len(),
                "Prop 4.4: {low} low-degree among {} sad",
                c.sad.len()
            );
        }
    }

    #[test]
    fn low_degree_counters_consistent() {
        let g = gen::grid(5, 5);
        let alive = VertexSet::full(25);
        let sad = VertexSet::from_iter_with_universe(25, 0..25);
        // In the full grid, corner vertices have degree 2 ≤ d−1 = 3.
        assert_eq!(low_degree_sad_count(&g, &alive, &sad, 4), 25 - 9);
        assert_eq!(low_degree_in_sad_subgraph(&g, &sad, 4), 25 - 9);
    }
}
