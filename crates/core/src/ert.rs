//! Constructive Theorem 1.1 (Borodin \[7\]; Erdős–Rubin–Taylor \[10\]):
//! a connected graph that is **not a Gallai tree** is degree-choosable.
//!
//! The paper uses this theorem as a black box to finish each ruling-forest
//! root ball in Lemma 3.2; we need an executable, polynomial-time proof.
//! The implementation follows a self-contained induction (see DESIGN.md):
//!
//! 1. **Surplus:** if some vertex has more live colors than alive
//!    neighbors, reverse-BFS greedy colors the whole component.
//! 2. **2-connected, all tight:**
//!    a. an edge `uv` with `L(u) ≠ L(v)` lets us color `u` with a color
//!    missing from `L(v)`; 2-connectivity keeps the rest connected and
//!    `v` gains a surplus;
//!    b. otherwise all lists are equal, the component is `k`-regular:
//!    `k = 2` is an even cycle (2-color it); `k ≥ 3` uses the
//!    Brooks–Lovász triple — a vertex `z` with non-adjacent neighbors
//!    `x, y` whose removal keeps the component connected — coloring
//!    `x, y` alike gives `z` a surplus.
//! 3. **Cut vertex, all tight:** some block `B*` is non-Gallai. Peel a leaf
//!    block `D ≠ B*` with cut vertex `x`: color `D − x` first (its
//!    `x`-neighbors have a surplus *inside* `D − x` because `x` stays
//!    alive), then recurse on the remainder, which still contains `B*`.

use crate::state::ColoringState;
use graphs::{block_decomposition, classify_block, BlockKind, VertexId, VertexSet};
use std::fmt;

/// Failure of the constructive Theorem 1.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ErtError {
    /// The component is a Gallai tree with all-tight lists — exactly the
    /// obstruction excluded by the theorem's hypothesis.
    GallaiObstruction {
        /// A vertex of the offending component.
        witness: VertexId,
    },
    /// Internal invariant breach: the Brooks–Lovász triple search failed on
    /// a 2-connected regular non-clique component. This indicates a bug, not
    /// a bad input, and is surfaced rather than panicking.
    TripleSearchFailed {
        /// A vertex of the offending component.
        witness: VertexId,
    },
}

impl fmt::Display for ErtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErtError::GallaiObstruction { witness } => write!(
                f,
                "component of vertex {witness} is a Gallai tree with tight lists"
            ),
            ErtError::TripleSearchFailed { witness } => write!(
                f,
                "Brooks–Lovász triple not found in component of vertex {witness}"
            ),
        }
    }
}

impl std::error::Error for ErtError {}

/// Colors the entire alive component of `anchor` in `state`.
///
/// Precondition (the hypothesis of Theorem 1.1): for every alive vertex of
/// the component, `|live(v)| ≥ alive_degree(v)`; and either some vertex has
/// a strict surplus or the component is not a Gallai tree.
///
/// # Errors
///
/// [`ErtError::GallaiObstruction`] when the precondition fails (the
/// component is a tight Gallai tree).
pub fn color_component(state: &mut ColoringState<'_>, anchor: VertexId) -> Result<(), ErtError> {
    let mut anchor = anchor;
    loop {
        debug_assert!(state.alive().contains(anchor));
        let comp = state.alive_component(anchor);

        // Case 1: a surplus vertex finishes the whole component.
        if let Some(v) = comp.iter().find(|&v| state.has_surplus(v)) {
            state.greedy_from_surplus(v);
            return Ok(());
        }

        // All lists tight. Find the structure.
        let g = state.graph();
        let decomposition = block_decomposition(g, Some(&comp));

        if decomposition.blocks.len() == 1 {
            // 2-connected: handled exactly — including the Gallai boundary
            // (a clique or odd cycle with *identical* tight lists is
            // genuinely uncolorable; with differing lists case 2a colors it
            // even though the theorem's hypothesis technically fails).
            return color_two_connected(state, &comp, anchor);
        }

        let non_gallai: Vec<usize> = decomposition
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| classify_block(g, b) == BlockKind::Other)
            .map(|(i, _)| i)
            .collect();
        let Some(&bad_block) = non_gallai.first() else {
            return Err(ErtError::GallaiObstruction { witness: anchor });
        };

        // Case 3: peel a leaf block other than the non-Gallai one.
        let leaf = decomposition
            .leaf_blocks()
            .into_iter()
            .find(|&i| i != bad_block)
            .expect("a block-cut tree with ≥ 2 blocks has ≥ 2 leaves");
        let cut = *decomposition
            .cut_vertices_in(leaf)
            .first()
            .expect("a leaf block in a connected multi-block component has a cut vertex");
        let region: Vec<VertexId> = decomposition.blocks[leaf]
            .iter()
            .copied()
            .filter(|&v| v != cut)
            .collect();
        debug_assert!(!region.is_empty(), "blocks have ≥ 2 vertices");
        // Start from a region vertex adjacent to the cut vertex: the cut
        // vertex stays alive, so the start always keeps a free color.
        let start = *region
            .iter()
            .find(|&&v| g.has_edge(v, cut))
            .expect("every block vertex set touches its cut vertex");
        let region_set = VertexSet::from_iter_with_universe(g.n(), region.iter().copied());
        greedy_scoped(state, &region_set, start);
        anchor = cut;
    }
}

/// Reverse-BFS greedy restricted to `region ∩ alive`, starting the BFS at
/// `start`. Sound whenever every region vertex keeps at least one alive
/// neighbor until its turn — guaranteed here because the BFS parent is
/// colored later and `start` itself retains an alive neighbor outside the
/// region (the cut vertex).
fn greedy_scoped(state: &mut ColoringState<'_>, region: &VertexSet, start: VertexId) {
    let g = state.graph();
    let mut order = Vec::new();
    let mut seen = VertexSet::new(g.n());
    let mut q = std::collections::VecDeque::new();
    seen.insert(start);
    q.push_back(start);
    while let Some(u) = q.pop_front() {
        order.push(u);
        for &w in g.neighbors(u) {
            if region.contains(w) && state.alive().contains(w) && seen.insert(w) {
                q.push_back(w);
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        region.iter().filter(|&v| state.alive().contains(v)).count(),
        "region must be connected within the alive set"
    );
    for &v in order.iter().rev() {
        let c = *state
            .live_list(v)
            .first()
            .expect("scoped greedy invariant: live list nonempty");
        state.assign(v, c);
    }
}

/// Case 2: `comp` is 2-connected with all-tight lists. Colors it unless it
/// is a clique or odd cycle with identical lists (the exact infeasible
/// boundary).
fn color_two_connected(
    state: &mut ColoringState<'_>,
    comp: &VertexSet,
    anchor: VertexId,
) -> Result<(), ErtError> {
    let g = state.graph();

    // 2a: an edge with differing lists.
    for u in comp.iter() {
        for &v in g.neighbors(u) {
            if !comp.contains(v) {
                continue;
            }
            let lu = state.live_list(u);
            let lv = state.live_list(v);
            if lu != lv {
                // Some color distinguishes them; orient so that `u` owns it.
                let (owner, other) = if lu.iter().any(|c| lv.binary_search(c).is_err()) {
                    (u, v)
                } else {
                    (v, u)
                };
                let c = *state
                    .live_list(owner)
                    .iter()
                    .find(|c| state.live_list(other).binary_search(c).is_err())
                    .expect("lists differ");
                state.assign(owner, c);
                // `other` kept its full list but lost a neighbor: surplus.
                debug_assert!(state.has_surplus(other));
                state.greedy_from_surplus(other);
                return Ok(());
            }
        }
    }

    // 2b: identical lists everywhere; comp is k-regular with k = |list|.
    // Cliques and odd cycles are now genuinely infeasible (identical tight
    // lists): report the obstruction.
    let k = state.live_list(anchor).len();
    let comp_members: Vec<VertexId> = comp.iter().collect();
    if classify_block(g, &comp_members) != BlockKind::Other {
        return Err(ErtError::GallaiObstruction { witness: anchor });
    }
    if k == 2 {
        // Even cycle: 2-color by bipartition.
        let side = graphs::bipartition(g, Some(comp))
            .expect("a 2-regular non-odd-cycle block is an even cycle");
        let palette: Vec<usize> = state.live_list(anchor).to_vec();
        // Color one side then the other; assign() keeps lists consistent.
        let members: Vec<VertexId> = comp.iter().collect();
        for &v in members.iter().filter(|&&v| side[v] == 0) {
            state.assign(v, palette[0]);
        }
        for &v in members.iter().filter(|&&v| side[v] == 1) {
            state.assign(v, palette[1]);
        }
        return Ok(());
    }

    // Brooks–Lovász triple: z with non-adjacent neighbors x, y such that
    // comp − {x, y} is connected. Exists in every 2-connected k-regular
    // (k ≥ 3) non-complete graph.
    for z in comp.iter() {
        let nbrs: Vec<VertexId> = g
            .neighbors(z)
            .iter()
            .copied()
            .filter(|&w| comp.contains(w))
            .collect();
        for (i, &x) in nbrs.iter().enumerate() {
            for &y in &nbrs[i + 1..] {
                if g.has_edge(x, y) {
                    continue;
                }
                let mut rest = comp.clone();
                rest.remove(x);
                rest.remove(y);
                if !graphs::is_connected(g, Some(&rest)) {
                    continue;
                }
                let c = state.live_list(x)[0];
                state.assign(x, c);
                debug_assert!(state.live_list(y).binary_search(&c).is_ok());
                state.assign(y, c);
                debug_assert!(state.has_surplus(z));
                state.greedy_from_surplus(z);
                return Ok(());
            }
        }
    }
    Err(ErtError::TripleSearchFailed { witness: anchor })
}

/// Standalone entry point: list-colors a connected graph `g` with `lists`,
/// under the Theorem 1.1 hypothesis (`|L(v)| ≥ deg(v)` everywhere, and a
/// surplus vertex exists or `g` is not a Gallai tree).
///
/// # Errors
///
/// [`ErtError`] when the hypothesis fails.
///
/// # Panics
///
/// Panics if `lists.len() != g.n()` or some `|L(v)| < deg(v)`.
///
/// # Examples
///
/// ```
/// use distributed_coloring::ert::degree_choosable_coloring;
/// use graphs::gen;
/// // C4 with tight identical 2-lists: not a Gallai tree, so colorable.
/// let g = gen::cycle(4);
/// let lists = vec![vec![7, 9]; 4];
/// let col = degree_choosable_coloring(&g, &lists).unwrap();
/// for (u, v) in g.edges() {
///     assert_ne!(col[u], col[v]);
/// }
/// ```
pub fn degree_choosable_coloring(
    g: &graphs::Graph,
    lists: &[Vec<usize>],
) -> Result<Vec<usize>, ErtError> {
    assert_eq!(lists.len(), g.n());
    for v in g.vertices() {
        assert!(
            lists[v].len() >= g.degree(v),
            "vertex {v}: list smaller than degree"
        );
    }
    let mut state = ColoringState::new(g, VertexSet::full(g.n()), lists.to_vec());
    let mut remaining: Vec<VertexId> = g.vertices().collect();
    while let Some(&v) = remaining.iter().find(|&&v| state.alive().contains(v)) {
        color_component(&mut state, v)?;
        remaining.retain(|&u| state.alive().contains(u));
    }
    Ok(state.into_colors())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    fn check(g: &graphs::Graph, lists: &[Vec<usize>]) {
        let col = degree_choosable_coloring(g, lists).expect("colorable");
        assert!(graphs::is_proper_list_coloring(g, &col, lists));
    }

    #[test]
    fn even_cycles_with_two_lists() {
        for n in [4usize, 6, 8, 10] {
            let g = gen::cycle(n);
            // Identical lists.
            check(&g, &vec![vec![1, 2]; n]);
            // Rotating distinct lists.
            let lists: Vec<Vec<usize>> = (0..n).map(|i| vec![i % 3, (i + 1) % 3]).collect();
            check(&g, &lists);
        }
    }

    #[test]
    fn odd_cycle_tight_identical_is_obstruction() {
        let g = gen::cycle(5);
        let err = degree_choosable_coloring(&g, &vec![vec![0, 1]; 5]).unwrap_err();
        assert!(matches!(err, ErtError::GallaiObstruction { .. }));
    }

    #[test]
    fn odd_cycle_with_one_different_list_colors() {
        let g = gen::cycle(5);
        let mut lists = vec![vec![0, 1]; 5];
        lists[3] = vec![1, 2];
        check(&g, &lists);
    }

    #[test]
    fn clique_tight_identical_is_obstruction() {
        let g = gen::complete(4);
        let err = degree_choosable_coloring(&g, &vec![vec![0, 1, 2]; 4]).unwrap_err();
        assert!(matches!(err, ErtError::GallaiObstruction { .. }));
    }

    #[test]
    fn clique_with_surplus_colors() {
        let g = gen::complete(4);
        check(&g, &vec![vec![0, 1, 2, 3]; 4]);
    }

    #[test]
    fn petersen_brooks_case() {
        // 3-regular, 2-connected, not K4, identical tight 3-lists: the
        // Brooks–Lovász path must fire.
        let g = gen::petersen();
        check(&g, &vec![vec![5, 6, 7]; 10]);
    }

    #[test]
    fn k4_minus_edge_tight() {
        // 2-connected, not clique/odd cycle; degrees 2,3,3,2.
        let g = graphs::Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let lists = vec![vec![0, 1], vec![0, 1, 2], vec![0, 1, 2], vec![0, 1]];
        check(&g, &lists);
    }

    #[test]
    fn theta_graph_tight() {
        // Two degree-3 hubs joined by three paths; tight lists everywhere.
        let g =
            graphs::Graph::from_edges(6, [(0, 1), (1, 5), (0, 2), (2, 5), (0, 3), (3, 4), (4, 5)]);
        let lists = vec![
            vec![0, 1, 2],
            vec![0, 1],
            vec![0, 1],
            vec![0, 1],
            vec![0, 1],
            vec![0, 1, 2],
        ];
        check(&g, &lists);
    }

    #[test]
    fn broken_gallai_trees_color_with_degree_lists() {
        for seed in 0..15 {
            let t = gen::random_gallai_tree(&gen::GallaiTreeConfig::default(), seed);
            let Some(g) = gen::break_gallai_tree(&t, seed) else {
                continue;
            };
            let lists: Vec<Vec<usize>> = g.vertices().map(|v| (0..g.degree(v)).collect()).collect();
            check(&g, &lists);
        }
    }

    #[test]
    fn gallai_tree_with_surplus_everywhere_colors() {
        for seed in 0..10 {
            let g = gen::random_gallai_tree(&gen::GallaiTreeConfig::default(), seed);
            let lists: Vec<Vec<usize>> =
                g.vertices().map(|v| (0..=g.degree(v)).collect()).collect();
            check(&g, &lists);
        }
    }

    #[test]
    fn gallai_tree_single_surplus_vertex_colors() {
        // Tight everywhere except one vertex with +1: case 1 must propagate
        // through the whole tree.
        for seed in 0..10 {
            let g = gen::random_gallai_tree(&gen::GallaiTreeConfig::default(), seed);
            let mut lists: Vec<Vec<usize>> =
                g.vertices().map(|v| (0..g.degree(v)).collect()).collect();
            lists[0] = (0..=g.degree(0)).collect();
            check(&g, &lists);
        }
    }

    #[test]
    fn grid_tight_lists() {
        // Grids are 2-connected-ish with non-Gallai blocks; give each vertex
        // exactly degree many colors from a shared palette.
        let g = gen::grid(5, 5);
        let lists: Vec<Vec<usize>> = g.vertices().map(|v| (0..g.degree(v)).collect()).collect();
        check(&g, &lists);
    }

    #[test]
    fn disconnected_input_each_component_handled() {
        let a = gen::cycle(4);
        let b = gen::cycle(6);
        let g = a.disjoint_union(&b);
        check(&g, &vec![vec![3, 4]; 10]);
    }

    #[test]
    fn random_regular_identical_tight() {
        for (d, seed) in [(3usize, 1u64), (4, 2), (5, 3)] {
            let g = gen::random_regular(20, d, seed);
            if !graphs::is_connected(&g, None) {
                continue;
            }
            check(&g, &vec![(0..d).collect(); 20]);
        }
    }

    #[test]
    fn bowtie_with_chord_multi_block() {
        // Two triangles sharing a vertex (Gallai) plus a pendant C4 glued at
        // vertex 4 (non-Gallai block): leaf-block peeling must fire.
        let g = graphs::Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 2),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        );
        let lists: Vec<Vec<usize>> = g.vertices().map(|v| (0..g.degree(v)).collect()).collect();
        check(&g, &lists);
    }

    #[test]
    #[should_panic(expected = "list smaller than degree")]
    fn undersized_list_panics() {
        let g = gen::cycle(4);
        let lists = vec![vec![0], vec![0, 1], vec![0, 1], vec![0, 1]];
        let _ = degree_choosable_coloring(&g, &lists);
    }

    #[test]
    fn cross_validated_against_exact_solver() {
        // On every instance where the exact solver finds a coloring from
        // degree-sized lists, ours must too (when not a Gallai obstruction).
        for seed in 0..10u64 {
            let g = gen::gnm(12, 18, seed);
            if !graphs::is_connected(&g, None) {
                continue;
            }
            let lists: Vec<Vec<usize>> = g
                .vertices()
                .map(|v| (0..g.degree(v).max(1)).collect())
                .collect();
            if g.vertices().any(|v| lists[v].len() < g.degree(v)) {
                continue;
            }
            let ours = degree_choosable_coloring(&g, &lists);
            match ours {
                Ok(col) => assert!(graphs::is_proper_list_coloring(&g, &col, &lists)),
                Err(ErtError::GallaiObstruction { .. }) => {
                    // The obstruction fires only on tight Gallai trees (the
                    // exact hypothesis boundary of Theorem 1.1); such graphs
                    // may or may not be colorable, but they must be Gallai.
                    assert!(graphs::is_gallai_tree(&g, None));
                    assert!(g.vertices().all(|v| lists[v].len() == g.degree(v)));
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
}
