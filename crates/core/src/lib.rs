//! # distributed-coloring — PODC'18 "fewer colors" in executable form
//!
//! Reproduction of Aboulker–Bonamy–Bousquet–Esperet, *Distributed coloring
//! in sparse graphs with fewer colors* (PODC 2018): a deterministic
//! LOCAL-model algorithm that `d`-list-colors any graph with
//! `mad(G) ≤ d` (or finds a `(d+1)`-clique) in `O(d⁴ log³ n)` rounds.
//!
//! * [`list_color_sparse`] — Theorem 1.3, the main result.
//! * [`ert`] — constructive Theorem 1.1 (Borodin / Erdős–Rubin–Taylor):
//!   non-Gallai-trees are degree-choosable.
//! * [`happy`] — the rich/poor/happy/sad classification of §3.
//! * [`extend`] — the Lemma 3.2 coloring-extension procedure.
//!
//! # Examples
//!
//! Six-list-color a planar graph (Corollary 2.3):
//!
//! ```
//! use distributed_coloring::{list_color_sparse, ListAssignment, SparseColoringConfig};
//! use graphs::gen;
//!
//! let g = gen::triangular(8, 8); // planar: mad < 6
//! let lists = ListAssignment::random(g.n(), 6, 12, 42); // arbitrary 6-lists
//! let outcome = list_color_sparse(&g, &lists, 6, SparseColoringConfig::default())?;
//! let coloring = outcome.coloring().expect("planar graphs contain no K7");
//! assert!(graphs::is_proper(&g, &coloring.colors));
//! # Ok::<(), distributed_coloring::ColoringError>(())
//! ```

pub mod ert;
pub mod extend;
pub mod happy;
pub mod lists;
pub mod state;
pub mod theorem13;

pub use ert::{degree_choosable_coloring, ErtError};
pub use extend::{extend_to_happy_set, EngineMode, ExtendError, UNCOLORED};
pub use happy::{classify, paper_radius, Classification};
pub use lists::ListAssignment;
pub use state::ColoringState;
pub use theorem13::{
    list_color_sparse, ColoringError, Outcome, PeelStats, RadiusPolicy, SparseColoring,
    SparseColoringConfig,
};

pub mod analysis;
pub mod brooks;
pub mod corollaries;

pub use analysis::{auxiliary_graph, happy_fraction_bound, AuxiliaryGraph, Lemma31Report};
pub use brooks::{brooks_list_coloring, nice_list_coloring, BrooksError};
pub use corollaries::{
    color_by_arboricity, color_genus, color_planar, color_planar_girth6,
    color_planar_triangle_free, heawood_mad_bound, heawood_number, CorollaryError,
};
