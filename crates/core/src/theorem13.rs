//! Theorem 1.3 — the paper's main result.
//!
//! Given `d ≥ max(3, mad(G))` and a `d`-list-assignment, either find a
//! `(d+1)`-clique or a `d`-list-coloring in `O(d⁴ log³ n)` rounds
//! (`O(d² log³ n)` when `Δ(G) ≤ d`):
//!
//! * **Peel:** repeatedly classify the residual graph and remove the happy
//!   set `A` (Lemma 3.1: `|A| ≥ n'/(3d)³`, so `O(d³ log n)` levels — or
//!   `≥ n'/(12d+1)` and `O(d log n)` levels without poor vertices).
//! * **Extend:** starting from the empty graph, re-insert the levels in
//!   reverse, extending the coloring with Lemma 3.2 each time.
//!
//! When a level has no happy vertex, the algorithm looks for the
//! `(d+1)`-clique the paper promises (§3: a `d`-regular Gallai-tree
//! obstruction is a `K_{d+1}` — footnote 2); if none exists the
//! precondition `d ≥ mad(G)` must have been violated and a diagnostic
//! error is returned.

use crate::extend::{extend_to_happy_set, EngineMode, ExtendError, UNCOLORED};
use crate::happy::{classify, classify_engine, paper_radius, Classification};
use crate::lists::ListAssignment;
use engine::{CongestMode, EngineMetrics, FaultPlan, VertexOrder};
use graphs::{Graph, VertexId, VertexSet};
use local_model::{detect_clique, RoundLedger};
use std::fmt;

/// Runs one classification of `g[alive]` on the substrate `engine` selects:
/// the sequential simulation, or a masked engine session (the rich/poor
/// exchange plus the rich-ball flood as real message rounds), absorbing the
/// session's metrics into the mode's accumulator.
fn classify_on(
    g: &Graph,
    alive: &VertexSet,
    d: usize,
    radius: usize,
    engine: Option<&mut EngineMode<'_>>,
    ledger: &mut RoundLedger,
) -> Classification {
    match engine {
        None => classify(g, alive, d, radius, ledger),
        Some(mode) => {
            let (classification, metrics) =
                classify_engine(g, alive, d, radius, mode.config(), ledger);
            mode.metrics.absorb(metrics);
            classification
        }
    }
}

/// Runs the §3 two-round clique detection on the selected substrate.
fn detect_clique_on(
    g: &Graph,
    alive: &VertexSet,
    d: usize,
    engine: Option<&mut EngineMode<'_>>,
    ledger: &mut RoundLedger,
) -> Option<Vec<VertexId>> {
    match engine {
        None => detect_clique(g, Some(alive), d, ledger),
        Some(mode) => {
            let (found, metrics) =
                engine::engine_detect_clique(g, Some(alive), d, mode.config(), ledger);
            mode.metrics.absorb(metrics);
            found
        }
    }
}

/// Ball-radius policy for the happy-vertex classification.
///
/// All policies yield correct colorings (happiness at any radius certifies
/// extendability); only the Lemma 3.1 density guarantee is tied to
/// [`RadiusPolicy::Paper`]. See DESIGN.md (substitutions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RadiusPolicy {
    /// The paper's `⌈c·log₂ n⌉` with `c = 12/log₂(6/5)` (≈ 45.6·log₂ n).
    Paper,
    /// A fixed radius.
    Fixed(usize),
    /// Start at `initial` and double whenever no happy vertex is found.
    Adaptive {
        /// Starting radius (≥ 1).
        initial: usize,
    },
}

impl Default for RadiusPolicy {
    fn default() -> Self {
        RadiusPolicy::Adaptive { initial: 2 }
    }
}

/// Configuration for [`list_color_sparse`].
#[derive(Clone, Debug)]
pub struct SparseColoringConfig {
    /// Ball-radius policy (default: adaptive from 2).
    pub radius: RadiusPolicy,
    /// Verify `mad(G) ≤ d` exactly (flow-based) before running. Off by
    /// default: the check costs `O(log n)` max-flows.
    pub verify_mad: bool,
    /// `Some(shards)` runs **every** phase of the theorem on masked
    /// [`engine::EngineSession`]s instead of the sequential simulations:
    /// classification (rich/poor exchange + radius-`r` rich-ball flood),
    /// the §3 two-round clique detection, and — per extension level — the
    /// ruling-forest construction, the `(d+1)`-coloring, and Lemma 3.2's
    /// layered greedy (see [`crate::extend_to_happy_set`]). Bit-identical
    /// colors, statistics, and ledger charges, executed as sharded message
    /// passing. `None` (default) stays sequential.
    pub engine_shards: Option<usize>,
    /// CONGEST bandwidth treatment for every engine session of an
    /// engine-mode run ([`CongestMode::Unlimited`] by default). Under
    /// [`CongestMode::Split`] the pipeline's outputs and statistics stay
    /// bit-identical to unlimited-width runs; only the round accounting
    /// grows — the fragmentation surplus lands under the
    /// [`engine::SPLIT_PHASE`] ledger phase and in
    /// [`SparseColoring::engine_metrics`]. Ignored in sequential mode.
    pub engine_congest: CongestMode,
    /// Fault plan injected into **every** engine session of an engine-mode
    /// run — how the chaos suites perturb the full pipeline (seeded edge
    /// loss, crash storms, adversarial reorder). Faults key on logical
    /// messages, so a faulted run still replays bit-identically across
    /// shard counts; what it computes may of course differ from the
    /// fault-free run. Empty by default; ignored in sequential mode.
    pub engine_faults: FaultPlan,
    /// Frontier-sparse rounds for every engine session of an engine-mode
    /// run (`true` by default). `false` forces the historical full-range
    /// scan — the baseline the bench gate's `--no-frontier` twin rows
    /// measure. Outputs, ledger charges, and statistics are bit-identical
    /// either way; ignored in sequential mode.
    pub engine_frontier: bool,
    /// Vertex-storage order for every engine session of an engine-mode run
    /// ([`VertexOrder::Identity`] by default). [`VertexOrder::Locality`]
    /// relabels each session's shard-local layout along the seeded
    /// bandwidth-minimizing order; outputs, ledger charges, and statistics
    /// are bit-identical either way. Ignored in sequential mode.
    pub engine_order: VertexOrder,
}

impl Default for SparseColoringConfig {
    fn default() -> Self {
        SparseColoringConfig {
            radius: RadiusPolicy::default(),
            verify_mad: false,
            engine_shards: None,
            engine_congest: CongestMode::default(),
            engine_faults: FaultPlan::default(),
            engine_frontier: true,
            engine_order: VertexOrder::Identity,
        }
    }
}

/// Per-level peeling statistics.
#[derive(Clone, Debug, Default)]
pub struct PeelStats {
    /// Residual size at the start of each level.
    pub alive_sizes: Vec<usize>,
    /// Happy-set size of each level.
    pub happy_sizes: Vec<usize>,
    /// Radius used at each level.
    pub radii: Vec<usize>,
    /// Poor-vertex count of each level.
    pub poor_sizes: Vec<usize>,
}

impl PeelStats {
    /// Number of peeling levels.
    pub fn levels(&self) -> usize {
        self.alive_sizes.len()
    }

    /// Happy fraction per level.
    pub fn happy_fractions(&self) -> Vec<f64> {
        self.alive_sizes
            .iter()
            .zip(&self.happy_sizes)
            .map(|(&a, &h)| if a == 0 { 0.0 } else { h as f64 / a as f64 })
            .collect()
    }
}

/// A successful run of Theorem 1.3.
#[derive(Clone, Debug)]
pub struct SparseColoring {
    /// `colors[v]`: the chosen color of each vertex (from its list).
    pub colors: Vec<usize>,
    /// LOCAL round accounting across all phases.
    pub ledger: RoundLedger,
    /// Peeling statistics (for the Lemma 3.1 experiments).
    pub stats: PeelStats,
    /// Observed engine metrics, summed across every internal session of an
    /// engine-mode run — classification gathers, clique detections, ruling
    /// forests, per-level colorings, layered greedies. Empty (default) for
    /// sequential runs, which route no messages.
    pub engine_metrics: EngineMetrics,
}

/// Result of Theorem 1.3: a coloring, or the promised clique.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// A proper `d`-list-coloring was found.
    Colored(Box<SparseColoring>),
    /// A `(d+1)`-clique was found (sorted vertices) — the paper's
    /// alternative outcome.
    CliqueFound {
        /// The clique's vertices.
        vertices: Vec<VertexId>,
        /// Rounds spent before detection.
        ledger: RoundLedger,
    },
}

impl Outcome {
    /// The coloring, if this outcome is [`Outcome::Colored`].
    pub fn coloring(&self) -> Option<&SparseColoring> {
        match self {
            Outcome::Colored(c) => Some(c),
            Outcome::CliqueFound { .. } => None,
        }
    }
}

/// Failure modes of [`list_color_sparse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColoringError {
    /// Theorem 1.3 requires `d ≥ 3` (Linial's path lower bound makes `d = 2`
    /// impossible in `o(n)` rounds).
    DegreeBoundTooSmall {
        /// The rejected `d`.
        d: usize,
    },
    /// Some vertex's list has fewer than `d` colors.
    ListTooSmall {
        /// The offending vertex.
        vertex: VertexId,
        /// Its list size.
        size: usize,
    },
    /// `mad(G) > d` (only reported when `verify_mad` is on).
    MadExceedsBound {
        /// Exact `mad` numerator/denominator.
        mad: (usize, usize),
    },
    /// A peeling level found no happy vertex and no `(d+1)`-clique even at
    /// full-component radius: `d < mad(G)` (detected at runtime).
    NoHappyVertices {
        /// Residual vertex count when stuck.
        alive: usize,
    },
    /// Internal extension failure (never expected; indicates a bug).
    Extend(ExtendError),
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::DegreeBoundTooSmall { d } => {
                write!(f, "theorem 1.3 requires d ≥ 3, got {d}")
            }
            ColoringError::ListTooSmall { vertex, size } => {
                write!(f, "vertex {vertex} has a list of {size} colors, below d")
            }
            ColoringError::MadExceedsBound { mad } => {
                write!(f, "mad(G) = {}/{} exceeds d", mad.0, mad.1)
            }
            ColoringError::NoHappyVertices { alive } => write!(
                f,
                "no happy vertex among {alive} residual vertices: d < mad(G)"
            ),
            ColoringError::Extend(e) => write!(f, "extension failed: {e}"),
        }
    }
}

impl std::error::Error for ColoringError {}

impl From<ExtendError> for ColoringError {
    fn from(e: ExtendError) -> Self {
        ColoringError::Extend(e)
    }
}

/// One recorded peeling level.
struct Level {
    alive: VertexSet,
    classification: Classification,
}

/// Theorem 1.3: `d`-list-color `g`, or find a `(d+1)`-clique.
///
/// # Errors
///
/// See [`ColoringError`]. With `d ≥ max(3, mad(G))` and honest lists the
/// only non-`Ok(Colored)` outcome is `Ok(CliqueFound)`.
///
/// # Examples
///
/// ```
/// use distributed_coloring::{list_color_sparse, ListAssignment, SparseColoringConfig};
/// use graphs::gen;
/// // A planar triangulation has mad < 6: 6-list-coloring.
/// let g = gen::apollonian(40, 3);
/// let lists = ListAssignment::uniform(g.n(), 6);
/// let outcome = list_color_sparse(&g, &lists, 6, SparseColoringConfig::default()).unwrap();
/// let coloring = outcome.coloring().expect("no K7 in a planar graph");
/// assert!(graphs::is_proper(&g, &coloring.colors));
/// ```
pub fn list_color_sparse(
    g: &Graph,
    lists: &ListAssignment,
    d: usize,
    config: SparseColoringConfig,
) -> Result<Outcome, ColoringError> {
    if d < 3 {
        return Err(ColoringError::DegreeBoundTooSmall { d });
    }
    assert_eq!(lists.n(), g.n(), "one list per vertex");
    for v in g.vertices() {
        if lists.list(v).len() < d {
            return Err(ColoringError::ListTooSmall {
                vertex: v,
                size: lists.list(v).len(),
            });
        }
    }
    if config.verify_mad && !graphs::mad_at_most(g, d as f64) {
        return Err(ColoringError::MadExceedsBound {
            mad: graphs::mad(g),
        });
    }

    let n = g.n();
    let mut ledger = RoundLedger::new();
    let mut stats = PeelStats::default();
    let mut alive = VertexSet::full(n);
    let mut levels: Vec<Level> = Vec::new();
    let mut engine_metrics = EngineMetrics::default();
    // One worker pool for the whole pipeline: every internal engine session
    // across every peeling level and extension borrows these threads, so
    // thread spawns are a constant per run instead of linear in the level
    // count. Sized for the largest session — level scopes only shrink.
    let engine_pool = config
        .engine_shards
        .map(|shards| engine::EnginePool::new(default_pool_workers(shards, n)));
    // One `EngineMode` per engine-phase call, all draining into the same
    // accumulator so the end-to-end run reports its real traffic.
    macro_rules! engine_mode {
        () => {
            config.engine_shards.map(|shards| EngineMode {
                shards,
                congest: config.engine_congest,
                faults: config.engine_faults.clone(),
                frontier: config.engine_frontier,
                order: config.engine_order,
                pool: engine_pool.clone(),
                metrics: &mut engine_metrics,
            })
        };
    }

    // Peeling phase.
    while !alive.is_empty() {
        let mut radius = initial_radius(config.radius, n);
        let classification = loop {
            let c = classify_on(g, &alive, d, radius, engine_mode!().as_mut(), &mut ledger);
            if !c.happy.is_empty() {
                break c;
            }
            // Stuck: the paper's promise — find the (d+1)-clique.
            if let Some(clique) =
                detect_clique_on(g, &alive, d, engine_mode!().as_mut(), &mut ledger)
            {
                return Ok(Outcome::CliqueFound {
                    vertices: clique,
                    ledger,
                });
            }
            match config.radius {
                RadiusPolicy::Adaptive { .. } if radius < n => radius = (2 * radius).min(n),
                _ => {
                    return Err(ColoringError::NoHappyVertices { alive: alive.len() });
                }
            }
        };
        stats.alive_sizes.push(alive.len());
        stats.happy_sizes.push(classification.happy.len());
        stats.poor_sizes.push(classification.poor.len());
        stats.radii.push(classification.radius);
        alive.difference_with(&classification.happy);
        levels.push(Level {
            alive: {
                // The level stores the residual set *before* removing A.
                let mut a = alive.clone();
                a.union_with(&classification.happy);
                a
            },
            classification,
        });
    }

    // Extension phase, last level first.
    let mut colors = vec![UNCOLORED; n];
    for level in levels.iter().rev() {
        extend_to_happy_set(
            g,
            &level.alive,
            lists,
            &level.classification,
            &mut colors,
            &mut ledger,
            engine_mode!(),
        )?;
    }
    debug_assert!(graphs::is_proper(g, &colors));
    Ok(Outcome::Colored(Box::new(SparseColoring {
        colors,
        ledger,
        stats,
        engine_metrics,
    })))
}

/// Worker count for the pipeline-shared [`engine::EnginePool`]: mirror the
/// engine's own default (one per CPU, never more than the shard request or
/// the vertex count — sessions clamp further for small masked scopes).
fn default_pool_workers(shards: usize, n: usize) -> usize {
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let shard_cap = if shards == 0 { cpus } else { shards };
    cpus.min(shard_cap).clamp(1, n.max(1))
}

fn initial_radius(policy: RadiusPolicy, n: usize) -> usize {
    match policy {
        RadiusPolicy::Paper => paper_radius(n),
        RadiusPolicy::Fixed(r) => r.max(1),
        RadiusPolicy::Adaptive { initial } => initial.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    fn assert_valid(g: &Graph, lists: &ListAssignment, d: usize) -> SparseColoring {
        let outcome =
            list_color_sparse(g, lists, d, SparseColoringConfig::default()).expect("runs");
        let col = outcome.coloring().expect("colorable workload").clone();
        assert!(graphs::is_proper(g, &col.colors), "improper coloring");
        for v in g.vertices() {
            assert!(
                lists.list(v).contains(&col.colors[v]),
                "vertex {v} off-list"
            );
        }
        col
    }

    #[test]
    fn colors_tree_with_3_lists() {
        let g = gen::random_tree(120, 7);
        assert_valid(&g, &ListAssignment::uniform(120, 3), 3);
    }

    #[test]
    fn colors_grid_with_4_lists() {
        let g = gen::grid(10, 10);
        assert_valid(&g, &ListAssignment::uniform(100, 4), 4);
    }

    #[test]
    fn colors_triangulation_with_6_lists() {
        let g = gen::apollonian(80, 5);
        assert_valid(&g, &ListAssignment::uniform(80, 6), 6);
    }

    #[test]
    fn colors_with_adversarial_lists() {
        let g = gen::triangular(7, 7);
        let lists = ListAssignment::random(g.n(), 6, 13, 3);
        assert_valid(&g, &lists, 6);
    }

    #[test]
    fn colors_forest_union_with_2a_lists() {
        for a in [2usize, 3] {
            let g = gen::forest_union(100, a, 21 + a as u64);
            assert_valid(&g, &ListAssignment::uniform(100, 2 * a), 2 * a);
        }
    }

    #[test]
    fn finds_clique_when_k_d_plus_1_blocks() {
        // K5 alone with d = 4: mad = 4 = d but the clique prevents coloring…
        // Theorem says: either color or find K5. With 4-lists identical the
        // only outcome is the clique.
        let g = gen::complete(5);
        let lists = ListAssignment::uniform(5, 4);
        match list_color_sparse(&g, &lists, 4, SparseColoringConfig::default()).unwrap() {
            Outcome::CliqueFound { vertices, .. } => assert_eq!(vertices, vec![0, 1, 2, 3, 4]),
            Outcome::Colored(_) => panic!("K5 is not 4-colorable"),
        }
    }

    #[test]
    fn rejects_small_d() {
        let g = gen::path(5);
        let lists = ListAssignment::uniform(5, 2);
        assert_eq!(
            list_color_sparse(&g, &lists, 2, SparseColoringConfig::default()).unwrap_err(),
            ColoringError::DegreeBoundTooSmall { d: 2 }
        );
    }

    #[test]
    fn rejects_short_lists() {
        let g = gen::path(5);
        let lists = ListAssignment::new(vec![
            vec![0, 1, 2],
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2],
        ]);
        assert!(matches!(
            list_color_sparse(&g, &lists, 3, SparseColoringConfig::default()),
            Err(ColoringError::ListTooSmall { vertex: 1, size: 2 })
        ));
    }

    #[test]
    fn verify_mad_catches_dense_inputs() {
        let g = gen::complete(8); // mad = 7
        let lists = ListAssignment::uniform(8, 3);
        let config = SparseColoringConfig {
            verify_mad: true,
            ..Default::default()
        };
        assert!(matches!(
            list_color_sparse(&g, &lists, 3, config),
            Err(ColoringError::MadExceedsBound { .. })
        ));
    }

    #[test]
    fn dense_input_without_verification_reports_no_happy_or_clique() {
        // K6 with d = 3: stuck; K4 ⊆ K6 exists, so the clique outcome fires.
        let g = gen::complete(6);
        let lists = ListAssignment::uniform(6, 3);
        match list_color_sparse(&g, &lists, 3, SparseColoringConfig::default()).unwrap() {
            Outcome::CliqueFound { vertices, .. } => assert_eq!(vertices.len(), 4),
            Outcome::Colored(_) => panic!("K6 cannot be 3-colored"),
        }
    }

    #[test]
    fn paper_radius_policy_works_on_small_input() {
        let g = gen::grid(5, 5);
        let lists = ListAssignment::uniform(25, 4);
        let config = SparseColoringConfig {
            radius: RadiusPolicy::Paper,
            ..Default::default()
        };
        let outcome = list_color_sparse(&g, &lists, 4, config).unwrap();
        assert!(graphs::is_proper(&g, &outcome.coloring().unwrap().colors));
    }

    #[test]
    fn fixed_radius_policy() {
        let g = gen::grid(6, 6);
        let lists = ListAssignment::uniform(36, 4);
        let config = SparseColoringConfig {
            radius: RadiusPolicy::Fixed(4),
            ..Default::default()
        };
        let outcome = list_color_sparse(&g, &lists, 4, config).unwrap();
        assert!(graphs::is_proper(&g, &outcome.coloring().unwrap().colors));
    }

    #[test]
    fn stats_track_levels() {
        let g = gen::apollonian(60, 9);
        let col = assert_valid(&g, &ListAssignment::uniform(60, 6), 6);
        assert!(col.stats.levels() >= 1);
        assert_eq!(col.stats.alive_sizes[0], 60);
        let total_happy: usize = col.stats.happy_sizes.iter().sum();
        assert_eq!(total_happy, 60, "levels must partition the vertex set");
        assert!(col.ledger.total() > 0);
    }

    /// The tentpole equivalence: running every level's coloring phase on
    /// masked engine sessions must reproduce the sequential path exactly —
    /// colors, peel statistics, and total ledger charges — on planar and
    /// lattice instances, at several shard counts.
    #[test]
    fn engine_mode_matches_sequential_on_planar_and_lattice_instances() {
        let instances: Vec<(Graph, usize)> = vec![
            (gen::apollonian(70, 4), 6), // planar triangulation, mad < 6
            (gen::grid(9, 9), 4),        // square lattice
            (gen::triangular(6, 6), 6),  // triangular lattice
        ];
        for (g, d) in &instances {
            let lists = ListAssignment::uniform(g.n(), *d);
            let seq = list_color_sparse(g, &lists, *d, SparseColoringConfig::default())
                .expect("sequential path runs");
            let seq = seq.coloring().expect("colorable instance");
            for shards in [1usize, 2, 8] {
                let config = SparseColoringConfig {
                    engine_shards: Some(shards),
                    ..Default::default()
                };
                let eng = list_color_sparse(g, &lists, *d, config).expect("engine path runs");
                let eng = eng.coloring().expect("colorable instance");
                assert_eq!(eng.colors, seq.colors, "n={} shards={shards}", g.n());
                assert_eq!(
                    eng.ledger.total(),
                    seq.ledger.total(),
                    "n={} shards={shards}: ledger totals diverged",
                    g.n()
                );
                for phase in [
                    "rich-poor",
                    "ball-gather",
                    "ruling-set",
                    "ruling-forest-claim",
                    "ruling-forest-prune",
                    "class-sweep",
                    "layered-coloring",
                    "root-ball-recolor",
                ] {
                    assert_eq!(
                        eng.ledger.phase_total(phase),
                        seq.ledger.phase_total(phase),
                        "n={} shards={shards}: phase {phase} diverged",
                        g.n()
                    );
                }
                assert_eq!(eng.stats.alive_sizes, seq.stats.alive_sizes);
                assert_eq!(eng.stats.happy_sizes, seq.stats.happy_sizes);
                assert_eq!(eng.stats.poor_sizes, seq.stats.poor_sizes);
                assert_eq!(eng.stats.radii, seq.stats.radii);
            }
        }
    }

    #[test]
    fn engine_mode_aggregates_session_metrics() {
        // The composite pipeline must surface its internal sessions'
        // traffic: engine-mode runs report real message counts (the
        // ROADMAP's `messages = 0` rows are retired), sequential runs
        // stay empty, and the aggregate is shard-invariant.
        let g = gen::apollonian(60, 9);
        let lists = ListAssignment::uniform(g.n(), 6);
        let seq = list_color_sparse(&g, &lists, 6, SparseColoringConfig::default()).unwrap();
        let seq = seq.coloring().unwrap().clone();
        assert_eq!(seq.engine_metrics.total_messages(), 0);
        assert_eq!(seq.engine_metrics.total_rounds(), 0);
        let mut baseline = None;
        for shards in [1usize, 2] {
            let config = SparseColoringConfig {
                engine_shards: Some(shards),
                ..Default::default()
            };
            let eng = list_color_sparse(&g, &lists, 6, config).unwrap();
            let eng = eng.coloring().unwrap().clone();
            let m = &eng.engine_metrics;
            assert!(m.total_messages() > 0, "shards={shards}");
            // Every engine-executed round is visible in the aggregate, and
            // rounds the engine observed are exactly the rounds the ledger
            // charged to message-passing phases.
            assert!(m.total_rounds() > 0, "shards={shards}");
            assert!(m.max_width() >= 1);
            let fingerprint = (m.total_messages(), m.total_rounds(), m.message_counts());
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(base) => assert_eq!(&fingerprint, base, "shard-invariant aggregate"),
            }
        }
    }

    #[test]
    fn split_mode_pipeline_is_bit_identical_to_unlimited() {
        // The acceptance contract: under CongestMode::Split the full
        // pipeline's colors and peel statistics match the unlimited-width
        // engine run exactly; only the round/fragment accounting may grow,
        // and the surplus is isolated under the SPLIT_PHASE ledger entry.
        let g = gen::apollonian(60, 9);
        let lists = ListAssignment::uniform(g.n(), 6);
        let unlimited = {
            let config = SparseColoringConfig {
                engine_shards: Some(2),
                ..Default::default()
            };
            list_color_sparse(&g, &lists, 6, config)
                .unwrap()
                .coloring()
                .unwrap()
                .clone()
        };
        let mut accounting = None;
        for shards in [1usize, 2, 8] {
            let config = SparseColoringConfig {
                engine_shards: Some(shards),
                engine_congest: CongestMode::Split(4),
                ..Default::default()
            };
            let split = list_color_sparse(&g, &lists, 6, config).unwrap();
            let split = split.coloring().unwrap().clone();
            assert_eq!(split.colors, unlimited.colors, "shards={shards}");
            assert_eq!(split.stats.alive_sizes, unlimited.stats.alive_sizes);
            assert_eq!(split.stats.happy_sizes, unlimited.stats.happy_sizes);
            assert_eq!(split.stats.poor_sizes, unlimited.stats.poor_sizes);
            assert_eq!(split.stats.radii, unlimited.stats.radii);
            let surplus = split.ledger.phase_total(engine::SPLIT_PHASE);
            assert!(surplus > 0, "wide gathers must fragment at width 4");
            assert_eq!(
                split.ledger.total() - surplus,
                unlimited.ledger.total(),
                "shards={shards}: split ledgers reconcile against unlimited"
            );
            assert!(split.engine_metrics.total_fragments() > 0);
            assert_eq!(
                split.engine_metrics.total_physical_rounds(),
                split.engine_metrics.total_rounds() + surplus,
                "observed physical surplus equals the charged surplus"
            );
            let fingerprint = (
                surplus,
                split.engine_metrics.total_fragments(),
                split.engine_metrics.total_physical_rounds(),
            );
            match &accounting {
                None => accounting = Some(fingerprint),
                Some(base) => assert_eq!(
                    &fingerprint, base,
                    "shards={shards}: split accounting must be shard-invariant"
                ),
            }
        }
    }

    #[test]
    fn engine_mode_handles_adversarial_lists() {
        let g = gen::triangular(7, 7);
        let lists = ListAssignment::random(g.n(), 6, 13, 3);
        let config = SparseColoringConfig {
            engine_shards: Some(2),
            ..Default::default()
        };
        let outcome = list_color_sparse(&g, &lists, 6, config).unwrap();
        let col = outcome.coloring().expect("colorable workload");
        assert!(graphs::is_proper(&g, &col.colors));
        for v in g.vertices() {
            assert!(
                lists.list(v).contains(&col.colors[v]),
                "vertex {v} off-list"
            );
        }
    }

    #[test]
    fn engine_mode_finds_the_same_clique() {
        // The stuck path — §3's two-round clique detection — must execute
        // on the engine too, and agree with the sequential scan.
        let g = gen::complete(5).disjoint_union(&gen::grid(4, 4));
        let lists = ListAssignment::uniform(g.n(), 4);
        let seq = match list_color_sparse(&g, &lists, 4, SparseColoringConfig::default()).unwrap() {
            Outcome::CliqueFound { vertices, ledger } => (vertices, ledger.total()),
            Outcome::Colored(_) => panic!("K5 cannot be 4-colored"),
        };
        for shards in [1usize, 2, 8] {
            let config = SparseColoringConfig {
                engine_shards: Some(shards),
                ..Default::default()
            };
            match list_color_sparse(&g, &lists, 4, config).unwrap() {
                Outcome::CliqueFound { vertices, ledger } => {
                    assert_eq!(vertices, seq.0, "shards={shards}");
                    assert_eq!(ledger.total(), seq.1, "shards={shards}");
                }
                Outcome::Colored(_) => panic!("K5 cannot be 4-colored"),
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        let lists = ListAssignment::uniform(0, 3);
        let outcome = list_color_sparse(&g, &lists, 3, SparseColoringConfig::default()).unwrap();
        assert!(outcome.coloring().unwrap().colors.is_empty());
    }

    #[test]
    fn disconnected_components() {
        let g = gen::cycle(5).disjoint_union(&gen::grid(4, 4));
        let lists = ListAssignment::uniform(g.n(), 4);
        assert_valid(&g, &lists, 4);
    }

    #[test]
    fn d_larger_than_needed_also_works() {
        let g = gen::cycle(7);
        assert_valid(&g, &ListAssignment::uniform(7, 5), 5);
    }
}
