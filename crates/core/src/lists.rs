//! List assignments (paper §1.2).
//!
//! A `k`-list-assignment gives every vertex its own list of at least `k`
//! allowed colors; a coloring is an `L`-list-coloring if every vertex picks
//! from its list. Colors are arbitrary `usize` labels — the paper stresses
//! the lists need *not* be `1..k`, and several algorithms here (the
//! even-cycle and identical-list cases of Theorem 1.1) genuinely depend on
//! comparing lists as sets.

use graphs::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A list assignment: one sorted, deduplicated color list per vertex.
///
/// # Examples
///
/// ```
/// use distributed_coloring::ListAssignment;
/// let lists = ListAssignment::uniform(4, 3);
/// assert_eq!(lists.n(), 4);
/// assert_eq!(lists.list(2), &[0, 1, 2]);
/// assert!(lists.is_k_assignment(3));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ListAssignment {
    lists: Vec<Vec<usize>>,
}

impl ListAssignment {
    /// Wraps raw lists (sorted and deduplicated on entry).
    pub fn new(lists: Vec<Vec<usize>>) -> Self {
        let lists = lists
            .into_iter()
            .map(|mut l| {
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        ListAssignment { lists }
    }

    /// The identical list `{0, …, k−1}` for all `n` vertices — plain
    /// `k`-coloring expressed as list-coloring.
    pub fn uniform(n: usize, k: usize) -> Self {
        ListAssignment {
            lists: vec![(0..k).collect(); n],
        }
    }

    /// Random `k`-subsets of `{0, …, palette−1}` per vertex: the adversarial
    /// setting where neighboring lists overlap only partially.
    ///
    /// # Panics
    ///
    /// Panics if `palette < k`.
    pub fn random(n: usize, k: usize, palette: usize, seed: u64) -> Self {
        assert!(palette >= k, "palette must contain at least k colors");
        let mut rng = StdRng::seed_from_u64(seed);
        let lists = (0..n)
            .map(|_| {
                let mut all: Vec<usize> = (0..palette).collect();
                all.shuffle(&mut rng);
                let mut l: Vec<usize> = all.into_iter().take(k).collect();
                l.sort_unstable();
                l
            })
            .collect();
        ListAssignment { lists }
    }

    /// Random list sizes per vertex between `k_min` and `k_max` (inclusive),
    /// used by nice-list (Theorem 6.1) workloads.
    pub fn random_sizes(n: usize, k_min: usize, k_max: usize, palette: usize, seed: u64) -> Self {
        assert!(k_min <= k_max && palette >= k_max);
        let mut rng = StdRng::seed_from_u64(seed);
        let lists = (0..n)
            .map(|_| {
                let k = rng.gen_range(k_min..=k_max);
                let mut all: Vec<usize> = (0..palette).collect();
                all.shuffle(&mut rng);
                let mut l: Vec<usize> = all.into_iter().take(k).collect();
                l.sort_unstable();
                l
            })
            .collect();
        ListAssignment { lists }
    }

    /// Number of vertices covered.
    pub fn n(&self) -> usize {
        self.lists.len()
    }

    /// The list of vertex `v`.
    pub fn list(&self, v: VertexId) -> &[usize] {
        &self.lists[v]
    }

    /// All lists as a slice.
    pub fn as_slice(&self) -> &[Vec<usize>] {
        &self.lists
    }

    /// Whether every list has at least `k` colors.
    pub fn is_k_assignment(&self, k: usize) -> bool {
        self.lists.iter().all(|l| l.len() >= k)
    }

    /// The smallest list size (`usize::MAX` when there are no vertices).
    pub fn min_size(&self) -> usize {
        self.lists.iter().map(Vec::len).min().unwrap_or(usize::MAX)
    }

    /// Whether the assignment is *nice* for `g` (paper §6): every vertex
    /// `v` has `|L(v)| ≥ deg(v)`, and `|L(v)| ≥ deg(v) + 1` whenever
    /// `deg(v) ≤ 2` or `N(v)` induces a clique.
    pub fn is_nice(&self, g: &Graph) -> bool {
        assert_eq!(self.n(), g.n());
        g.vertices().all(|v| {
            let d = g.degree(v);
            let len = self.lists[v].len();
            if d <= 2 || graphs::is_clique(g, g.neighbors(v)) {
                len > d
            } else {
                len >= d
            }
        })
    }
}

impl From<Vec<Vec<usize>>> for ListAssignment {
    fn from(lists: Vec<Vec<usize>>) -> Self {
        ListAssignment::new(lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn uniform_lists() {
        let l = ListAssignment::uniform(3, 4);
        assert!(l.is_k_assignment(4));
        assert!(!l.is_k_assignment(5));
        assert_eq!(l.min_size(), 4);
    }

    #[test]
    fn random_lists_respect_palette_and_size() {
        let l = ListAssignment::random(50, 4, 9, 3);
        assert!(l.is_k_assignment(4));
        for v in 0..50 {
            assert_eq!(l.list(v).len(), 4);
            assert!(l.list(v).iter().all(|&c| c < 9));
            assert!(l.list(v).windows(2).all(|w| w[0] < w[1]), "sorted dedup");
        }
    }

    #[test]
    fn new_sorts_and_dedups() {
        let l = ListAssignment::new(vec![vec![3, 1, 3, 2]]);
        assert_eq!(l.list(0), &[1, 2, 3]);
    }

    #[test]
    fn nice_assignment_on_path() {
        // Path vertices have degree ≤ 2, so nice lists need deg+1 colors.
        let g = gen::path(5);
        let tight = ListAssignment::new(vec![vec![0], vec![0, 1], vec![0, 1], vec![0, 1], vec![0]]);
        assert!(!tight.is_nice(&g)); // needs deg+1 everywhere here
        let nice = ListAssignment::new(vec![
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1],
        ]);
        assert!(nice.is_nice(&g));
    }

    #[test]
    fn nice_assignment_clique_neighborhood() {
        // In K4 every neighborhood is a clique: lists need deg+1 = 4.
        let g = gen::complete(4);
        assert!(!ListAssignment::uniform(4, 3).is_nice(&g));
        assert!(ListAssignment::uniform(4, 4).is_nice(&g));
    }

    #[test]
    fn nice_assignment_high_degree_non_clique() {
        // C5 with a chord… use K_{2,3}: degree-3 vertices have independent
        // neighborhoods, so deg-sized lists suffice; degree-2 vertices need 3.
        let g = gen::complete_bipartite(2, 3);
        let lists = ListAssignment::new(vec![
            (0..3).collect(),
            (0..3).collect(),
            (0..3).collect(),
            (0..3).collect(),
            (0..3).collect(),
        ]);
        assert!(lists.is_nice(&g));
    }

    #[test]
    fn random_sizes_within_bounds() {
        let l = ListAssignment::random_sizes(30, 2, 5, 8, 7);
        for v in 0..30 {
            let s = l.list(v).len();
            assert!((2..=5).contains(&s));
        }
    }
}
