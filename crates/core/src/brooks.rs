//! Theorem 6.1 (nice list-assignments) and Corollary 2.1 (the Brooks-type
//! Δ-list-coloring).
//!
//! A list-assignment is *nice* when `|L(v)| ≥ deg(v)` for every vertex, and
//! `|L(v)| ≥ deg(v) + 1` whenever `deg(v) ≤ 2` or `N(v)` is a clique
//! (paper §6). The paper observes that Theorem 1.3's machinery runs
//! verbatim with `d` replaced by each vertex's own list size — every vertex
//! is rich — giving `O(Δ² log³ n)` rounds. Our implementation reuses the
//! generic extension (which is already per-vertex) and only swaps the
//! happiness criterion: a ball is helpful if it contains a vertex with
//! `|L(v)| > deg(v)` (a *surplus*) or is not a Gallai tree.

use crate::extend::{extend_to_happy_set, UNCOLORED};
use crate::happy::Classification;
use crate::lists::ListAssignment;
use crate::theorem13::ColoringError;
use graphs::{ball, components, is_gallai_tree, Graph, VertexId, VertexSet};
use local_model::RoundLedger;
use std::fmt;

/// Failure modes of the nice-list / Brooks-type algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrooksError {
    /// The list-assignment is not nice for this graph.
    NotNice {
        /// A vertex violating the niceness condition.
        vertex: VertexId,
    },
    /// Corollary 2.1: some `K_{Δ+1}` component admits no coloring from its
    /// lists — so no `L`-list-coloring of `G` exists (the certified
    /// negative outcome the corollary promises).
    NoColoringExists {
        /// The uncolorable clique component.
        component: Vec<VertexId>,
    },
    /// Corollary 2.1 requires `Δ ≥ 3`.
    MaxDegreeTooSmall {
        /// The rejected maximum degree.
        max_degree: usize,
    },
    /// Propagated main-algorithm failure.
    Coloring(ColoringError),
}

impl fmt::Display for BrooksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrooksError::NotNice { vertex } => {
                write!(f, "list assignment is not nice at vertex {vertex}")
            }
            BrooksError::NoColoringExists { component } => write!(
                f,
                "no list-coloring exists: clique component {component:?} is infeasible"
            ),
            BrooksError::MaxDegreeTooSmall { max_degree } => {
                write!(f, "corollary 2.1 requires max degree ≥ 3, got {max_degree}")
            }
            BrooksError::Coloring(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BrooksError {}

impl From<ColoringError> for BrooksError {
    fn from(e: ColoringError) -> Self {
        BrooksError::Coloring(e)
    }
}

/// Nice-list happiness: every alive vertex is rich; a ball is helpful when
/// it holds a surplus vertex (`|L(v)| > alive_degree(v)`) or is non-Gallai.
fn classify_nice(
    g: &Graph,
    alive: &VertexSet,
    lists: &ListAssignment,
    radius: usize,
    ledger: &mut RoundLedger,
) -> Classification {
    let n = g.n();
    let alive_degree = |v: VertexId| {
        g.neighbors(v)
            .iter()
            .filter(|&&w| alive.contains(w))
            .count()
    };
    let helpful = |members: &[VertexId]| {
        if members
            .iter()
            .any(|&w| lists.list(w).len() > alive_degree(w))
        {
            return true;
        }
        let set = VertexSet::from_iter_with_universe(n, members.iter().copied());
        !is_gallai_tree(g, Some(&set))
    };
    let rich = alive.clone();
    let (comp_id, comp_count) = components(g, Some(&rich));
    let mut comp_rep = vec![usize::MAX; comp_count];
    let mut comp_size = vec![0usize; comp_count];
    for v in rich.iter() {
        comp_rep[comp_id[v]] = v;
        comp_size[comp_id[v]] += 1;
    }
    let mut comp_verdict: Vec<Option<bool>> = vec![None; comp_count];
    for cid in 0..comp_count {
        if 2 * graphs::eccentricity(g, comp_rep[cid], Some(&rich)) <= radius {
            let members = graphs::component_of(g, comp_rep[cid], Some(&rich));
            comp_verdict[cid] = Some(helpful(&members));
        }
    }
    let mut happy = VertexSet::new(n);
    let mut sad = VertexSet::new(n);
    for v in rich.iter() {
        let verdict = match comp_verdict[comp_id[v]] {
            Some(x) => x,
            None => {
                let b = ball(g, v, radius, Some(&rich));
                if b.len() == comp_size[comp_id[v]] {
                    *comp_verdict[comp_id[v]].get_or_insert_with(|| helpful(&b))
                } else {
                    helpful(&b)
                }
            }
        };
        if verdict {
            happy.insert(v);
        } else {
            sad.insert(v);
        }
    }
    ledger.charge("ball-gather", radius as u64);
    Classification {
        rich,
        poor: VertexSet::new(n),
        happy,
        sad,
        radius,
    }
}

/// Theorem 6.1: finds an `L`-list-coloring for any **nice** assignment `L`
/// in `O(Δ² log³ n)` rounds.
///
/// # Errors
///
/// [`BrooksError::NotNice`] when the assignment is not nice;
/// [`BrooksError::Coloring`] on internal failure (never for nice inputs).
///
/// # Examples
///
/// ```
/// use distributed_coloring::brooks::nice_list_coloring;
/// use distributed_coloring::ListAssignment;
/// use graphs::gen;
/// let g = gen::petersen(); // 3-regular, neighborhoods are independent sets
/// let lists = ListAssignment::uniform(10, 3); // deg-sized lists are nice here
/// let (colors, _ledger) = nice_list_coloring(&g, &lists).unwrap();
/// assert!(graphs::is_proper(&g, &colors));
/// ```
pub fn nice_list_coloring(
    g: &Graph,
    lists: &ListAssignment,
) -> Result<(Vec<usize>, RoundLedger), BrooksError> {
    assert_eq!(lists.n(), g.n());
    if let Some(v) = g.vertices().find(|&v| {
        let d = g.degree(v);
        let len = lists.list(v).len();
        if d <= 2 || graphs::is_clique(g, g.neighbors(v)) {
            len < d + 1
        } else {
            len < d
        }
    }) {
        return Err(BrooksError::NotNice { vertex: v });
    }

    let n = g.n();
    let mut ledger = RoundLedger::new();
    let mut alive = VertexSet::full(n);
    let mut levels: Vec<(VertexSet, Classification)> = Vec::new();
    while !alive.is_empty() {
        let mut radius = 2usize;
        let classification = loop {
            let c = classify_nice(g, &alive, lists, radius, &mut ledger);
            if !c.happy.is_empty() {
                break c;
            }
            if radius >= n {
                // Unreachable for nice assignments (leaf blocks always hold
                // surplus vertices); report as a coloring failure.
                return Err(BrooksError::Coloring(ColoringError::NoHappyVertices {
                    alive: alive.len(),
                }));
            }
            radius = (2 * radius).min(n);
        };
        let pre_removal = alive.clone();
        alive.difference_with(&classification.happy);
        levels.push((pre_removal, classification));
    }
    let mut colors = vec![UNCOLORED; n];
    for (level_alive, classification) in levels.iter().rev() {
        extend_to_happy_set(
            g,
            level_alive,
            lists,
            classification,
            &mut colors,
            &mut ledger,
            None,
        )
        .map_err(|e| BrooksError::Coloring(ColoringError::Extend(e)))?;
    }
    debug_assert!(graphs::is_proper(g, &colors));
    Ok((colors, ledger))
}

/// Corollary 2.1: given `Δ ≥ 3` and a `Δ`-list-assignment, finds an
/// `L`-list-coloring or certifies that none exists.
///
/// Strategy: `K_{Δ+1}` components are the only non-nice obstruction; each
/// is solved exactly (it has Δ+1 vertices), and an infeasible one
/// certifies global infeasibility. The rest is nice and goes through
/// [`nice_list_coloring`].
///
/// # Errors
///
/// [`BrooksError::NoColoringExists`] with the offending clique component;
/// [`BrooksError::MaxDegreeTooSmall`] when `Δ < 3`;
/// [`BrooksError::NotNice`] when some list is smaller than `Δ`.
pub fn brooks_list_coloring(
    g: &Graph,
    lists: &ListAssignment,
) -> Result<(Vec<usize>, RoundLedger), BrooksError> {
    assert_eq!(lists.n(), g.n());
    let delta = g.max_degree();
    if delta < 3 {
        return Err(BrooksError::MaxDegreeTooSmall { max_degree: delta });
    }
    if let Some(v) = g.vertices().find(|&v| lists.list(v).len() < delta) {
        return Err(BrooksError::NotNice { vertex: v });
    }

    // Split off K_{Δ+1} components.
    let (comp_id, comp_count) = components(g, None);
    let mut comp_members: Vec<Vec<VertexId>> = vec![Vec::new(); comp_count];
    for v in g.vertices() {
        comp_members[comp_id[v]].push(v);
    }
    let mut colors = vec![UNCOLORED; g.n()];
    let mut rest = VertexSet::new(g.n());
    for members in &comp_members {
        if members.len() == delta + 1 && graphs::is_clique(g, members) {
            // Exact solve (tiny: Δ+1 vertices).
            let sub = graphs::InducedSubgraph::new(g, members.iter().copied());
            let sub_lists: Vec<Vec<usize>> = sub
                .parent_vertices()
                .iter()
                .map(|&p| lists.list(p).to_vec())
                .collect();
            match graphs::list_coloring(sub.graph(), &sub_lists) {
                Some(sol) => {
                    for (local, &p) in sub.parent_vertices().iter().enumerate() {
                        colors[p] = sol[local];
                    }
                }
                None => {
                    return Err(BrooksError::NoColoringExists {
                        component: members.clone(),
                    })
                }
            }
        } else {
            for &v in members {
                rest.insert(v);
            }
        }
    }

    // The rest (as an induced subgraph) has nice Δ-lists: no vertex's closed
    // neighborhood is a K_{Δ+1} there.
    let sub = graphs::InducedSubgraph::from_set(g, &rest);
    let sub_lists = ListAssignment::new(
        sub.parent_vertices()
            .iter()
            .map(|&p| lists.list(p).to_vec())
            .collect(),
    );
    let (sub_colors, ledger) = nice_list_coloring(sub.graph(), &sub_lists)?;
    for (local, &p) in sub.parent_vertices().iter().enumerate() {
        colors[p] = sub_colors[local];
    }
    debug_assert!(graphs::is_proper(g, &colors));
    Ok((colors, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn nice_lists_on_random_regular() {
        // d-regular, d ≥ 3, non-clique components: deg-sized lists are nice
        // unless some neighborhood is a clique — rare; filter.
        for (d, seed) in [(3usize, 2u64), (4, 5), (5, 8)] {
            let g = gen::random_regular(24, d, seed);
            let lists = ListAssignment::uniform(24, d);
            match nice_list_coloring(&g, &lists) {
                Ok((colors, _)) => {
                    assert!(graphs::is_proper(&g, &colors));
                    assert!(colors.iter().all(|&c| c < d));
                }
                Err(BrooksError::NotNice { .. }) => {} // clique neighborhood
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }

    #[test]
    fn nice_lists_with_varying_sizes() {
        // Caterpillar: degrees vary; give everyone deg+1 colors — nice.
        let g = gen::caterpillar(10, 2);
        let lists =
            ListAssignment::new(g.vertices().map(|v| (0..=g.degree(v)).collect()).collect());
        let (colors, _) = nice_list_coloring(&g, &lists).unwrap();
        assert!(graphs::is_proper(&g, &colors));
        for v in g.vertices() {
            assert!(lists.list(v).contains(&colors[v]));
        }
    }

    #[test]
    fn not_nice_detected() {
        let g = gen::path(4); // degrees ≤ 2 need deg+1 colors
        let lists = ListAssignment::new(vec![vec![0], vec![0, 1], vec![0, 1], vec![0]]);
        assert!(matches!(
            nice_list_coloring(&g, &lists),
            Err(BrooksError::NotNice { .. })
        ));
    }

    #[test]
    fn brooks_colors_petersen_with_3_lists() {
        let g = gen::petersen();
        let lists = ListAssignment::random(10, 3, 6, 4);
        let (colors, _) = brooks_list_coloring(&g, &lists).unwrap();
        assert!(graphs::is_proper(&g, &colors));
        for v in g.vertices() {
            assert!(lists.list(v).contains(&colors[v]));
        }
    }

    #[test]
    fn brooks_certifies_infeasible_clique() {
        // K4 with identical 3-lists: no coloring exists.
        let g = gen::complete(4);
        let lists = ListAssignment::uniform(4, 3);
        match brooks_list_coloring(&g, &lists) {
            Err(BrooksError::NoColoringExists { component }) => {
                assert_eq!(component, vec![0, 1, 2, 3]);
            }
            other => panic!("expected certificate, got {other:?}"),
        }
    }

    #[test]
    fn brooks_colors_feasible_clique_component() {
        // K4 with diverse 3-lists + a path component: colorable.
        let k4 = gen::complete(4);
        let g = k4.disjoint_union(&gen::random_regular(12, 3, 3));
        let mut raw: Vec<Vec<usize>> =
            vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 3], vec![1, 2, 3]];
        raw.extend(std::iter::repeat_n(vec![0, 1, 2], 12));
        let lists = ListAssignment::new(raw);
        let (colors, _) = brooks_list_coloring(&g, &lists).unwrap();
        assert!(graphs::is_proper(&g, &colors));
    }

    #[test]
    fn brooks_rejects_small_delta() {
        let g = gen::cycle(6);
        let lists = ListAssignment::uniform(6, 2);
        assert!(matches!(
            brooks_list_coloring(&g, &lists),
            Err(BrooksError::MaxDegreeTooSmall { max_degree: 2 })
        ));
    }

    #[test]
    fn delta_coloring_matches_corollary_on_grid() {
        // Grid has Δ = 4, no K5: 4-coloring must exist (Brooks).
        let g = gen::grid(6, 6);
        let lists = ListAssignment::uniform(36, 4);
        let (colors, _) = brooks_list_coloring(&g, &lists).unwrap();
        assert!(colors.iter().all(|&c| c < 4));
        assert!(graphs::is_proper(&g, &colors));
    }
}
