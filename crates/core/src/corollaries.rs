//! Corollaries 1.4, 2.3 and 2.11: arboricity, planar classes, and bounded
//! Euler genus.
//!
//! All of these are direct instantiations of Theorem 1.3 with the right
//! `d`, justified by mad bounds: arboricity-`a` graphs have `mad ≤ 2a` and
//! no `K_{2a+1}`; planar graphs of girth ≥ g have `mad < 2g/(g−2)`
//! (Proposition 2.2: `< 6`, `< 4` for triangle-free, `< 3` for girth ≥ 6);
//! genus-`g` graphs have `mad ≤ (5+√(24g+1))/2` (Heawood).

use crate::lists::ListAssignment;
use crate::theorem13::{list_color_sparse, ColoringError, Outcome, SparseColoringConfig};
use graphs::{Graph, VertexId};
use std::fmt;

/// Failure modes of the corollary wrappers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorollaryError {
    /// Corollary 1.4 requires arboricity `a ≥ 2` (paths/trees cannot be
    /// 2-colored in `o(n)` rounds — Linial).
    ArboricityTooSmall {
        /// The rejected `a`.
        a: usize,
    },
    /// A `(d+1)`-clique emerged, contradicting the promised graph class
    /// (e.g. a `K_{2a+1}` in a claimed arboricity-`a` graph).
    ClassViolated {
        /// The witnessing clique.
        clique: Vec<VertexId>,
    },
    /// The input failed a cheap structural check (triangle-freeness, girth).
    StructuralCheckFailed {
        /// Human-readable description of the failed check.
        check: &'static str,
    },
    /// Propagated Theorem 1.3 failure.
    Coloring(ColoringError),
}

impl fmt::Display for CorollaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorollaryError::ArboricityTooSmall { a } => {
                write!(f, "corollary 1.4 requires arboricity ≥ 2, got {a}")
            }
            CorollaryError::ClassViolated { clique } => {
                write!(f, "graph-class promise violated by clique {clique:?}")
            }
            CorollaryError::StructuralCheckFailed { check } => {
                write!(f, "structural check failed: {check}")
            }
            CorollaryError::Coloring(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CorollaryError {}

impl From<ColoringError> for CorollaryError {
    fn from(e: ColoringError) -> Self {
        CorollaryError::Coloring(e)
    }
}

fn run(
    g: &Graph,
    lists: &ListAssignment,
    d: usize,
    config: SparseColoringConfig,
) -> Result<Vec<usize>, CorollaryError> {
    match list_color_sparse(g, lists, d, config)? {
        Outcome::Colored(c) => Ok(c.colors),
        Outcome::CliqueFound { vertices, .. } => {
            Err(CorollaryError::ClassViolated { clique: vertices })
        }
    }
}

/// Corollary 1.4: `2a`-list-colors a graph of arboricity `a ≥ 2` in
/// `O(a⁴ log³ n)` rounds.
///
/// # Errors
///
/// [`CorollaryError::ArboricityTooSmall`] for `a < 2`;
/// [`CorollaryError::ClassViolated`] if a `K_{2a+1}` shows the arboricity
/// promise false; list sizes must be ≥ `2a`.
///
/// # Examples
///
/// ```
/// use distributed_coloring::corollaries::color_by_arboricity;
/// use distributed_coloring::ListAssignment;
/// use graphs::gen;
/// let g = gen::forest_union(60, 2, 9); // arboricity ≤ 2
/// let lists = ListAssignment::uniform(60, 4);
/// let colors = color_by_arboricity(&g, &lists, 2).unwrap();
/// assert!(graphs::is_proper(&g, &colors));
/// ```
pub fn color_by_arboricity(
    g: &Graph,
    lists: &ListAssignment,
    a: usize,
) -> Result<Vec<usize>, CorollaryError> {
    if a < 2 {
        return Err(CorollaryError::ArboricityTooSmall { a });
    }
    run(g, lists, 2 * a, SparseColoringConfig::default())
}

/// Corollary 2.3(1): 6-list-colors a planar graph in `O(log³ n)` rounds.
///
/// Planarity is the *caller's* promise (our planar workloads are planar by
/// construction); the consequence we rely on, `mad < 6`, is what the
/// algorithm actually uses, and a `K_7` would disprove planarity.
pub fn color_planar(g: &Graph, lists: &ListAssignment) -> Result<Vec<usize>, CorollaryError> {
    run(g, lists, 6, SparseColoringConfig::default())
}

/// Corollary 2.3(2): 4-list-colors a triangle-free planar graph.
///
/// # Errors
///
/// [`CorollaryError::StructuralCheckFailed`] if the graph has a triangle.
pub fn color_planar_triangle_free(
    g: &Graph,
    lists: &ListAssignment,
) -> Result<Vec<usize>, CorollaryError> {
    if !graphs::is_triangle_free(g, None) {
        return Err(CorollaryError::StructuralCheckFailed {
            check: "triangle-free",
        });
    }
    run(g, lists, 4, SparseColoringConfig::default())
}

/// Corollary 2.3(3): 3-list-colors a planar graph of girth ≥ 6.
///
/// # Errors
///
/// [`CorollaryError::StructuralCheckFailed`] if the girth is below 6.
pub fn color_planar_girth6(
    g: &Graph,
    lists: &ListAssignment,
) -> Result<Vec<usize>, CorollaryError> {
    if graphs::girth(g, None).is_some_and(|girth| girth < 6) {
        return Err(CorollaryError::StructuralCheckFailed {
            check: "girth ≥ 6"
        });
    }
    run(g, lists, 3, SparseColoringConfig::default())
}

/// The Heawood choice-number bound `H(g) = ⌊(7 + √(24g+1))/2⌋` for Euler
/// genus `g` (paper §2). `H(1) = 6`, `H(2) = 7`, `H(3) = 7`, … (the paper
/// applies it for `g ≥ 1`; at `g = 0` the formula collapses to 4).
pub fn heawood_number(euler_genus: usize) -> usize {
    ((7.0 + ((24 * euler_genus + 1) as f64).sqrt()) / 2.0).floor() as usize
}

/// The Heawood mad bound `M(g) = (5 + √(24g+1))/2` (graphs of Euler genus
/// `g ≥ 1` have `mad ≤ M(g)`).
pub fn heawood_mad_bound(euler_genus: usize) -> f64 {
    (5.0 + ((24 * euler_genus + 1) as f64).sqrt()) / 2.0
}

/// Corollary 2.11: `H(g)`-list-colors a graph embeddable on a surface of
/// Euler genus `g ≥ 1` in `O(log³ n)` rounds. With `try_fewer = true` and
/// `M(g)` an integer, attempts the `(H(g)−1)`-list-coloring of the second
/// part (which can fail with [`CorollaryError::ClassViolated`] carrying a
/// `K_{H(g)}` — exactly the excluded complete graph).
pub fn color_genus(
    g: &Graph,
    euler_genus: usize,
    lists: &ListAssignment,
    try_fewer: bool,
) -> Result<Vec<usize>, CorollaryError> {
    let m = heawood_mad_bound(euler_genus);
    let d = if try_fewer && (m.fract() == 0.0) {
        m as usize
    } else {
        m.ceil() as usize
    };
    run(g, lists, d.max(3), SparseColoringConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    fn assert_list_proper(g: &Graph, lists: &ListAssignment, colors: &[usize]) {
        assert!(graphs::is_proper(g, colors));
        for v in g.vertices() {
            assert!(lists.list(v).contains(&colors[v]));
        }
    }

    #[test]
    fn arboricity_coloring_uses_2a_colors() {
        for a in [2usize, 3] {
            let g = gen::forest_union(90, a, 31 + a as u64);
            let lists = ListAssignment::uniform(90, 2 * a);
            let colors = color_by_arboricity(&g, &lists, a).unwrap();
            assert_list_proper(&g, &lists, &colors);
            assert!(colors.iter().all(|&c| c < 2 * a));
        }
    }

    #[test]
    fn arboricity_rejects_trees_parameter() {
        let g = gen::random_tree(20, 1);
        let lists = ListAssignment::uniform(20, 2);
        assert!(matches!(
            color_by_arboricity(&g, &lists, 1),
            Err(CorollaryError::ArboricityTooSmall { a: 1 })
        ));
    }

    #[test]
    fn arboricity_class_violation_reports_clique() {
        // K5 has arboricity 3 > 2; claiming a = 2 with 4-lists must surface
        // the K5 (d = 4, K_{d+1} = K5).
        let g = gen::complete(5);
        let lists = ListAssignment::uniform(5, 4);
        match color_by_arboricity(&g, &lists, 2) {
            Err(CorollaryError::ClassViolated { clique }) => assert_eq!(clique.len(), 5),
            other => panic!("expected clique, got {other:?}"),
        }
    }

    #[test]
    fn planar_six_coloring() {
        let g = gen::apollonian(70, 11);
        let lists = ListAssignment::random(70, 6, 11, 2);
        let colors = color_planar(&g, &lists).unwrap();
        assert_list_proper(&g, &lists, &colors);
    }

    #[test]
    fn triangle_free_four_coloring() {
        let g = gen::grid(8, 8);
        let lists = ListAssignment::uniform(64, 4);
        let colors = color_planar_triangle_free(&g, &lists).unwrap();
        assert_list_proper(&g, &lists, &colors);
        // Rejects graphs with triangles.
        let t = gen::triangular(4, 4);
        let lt = ListAssignment::uniform(t.n(), 4);
        assert!(matches!(
            color_planar_triangle_free(&t, &lt),
            Err(CorollaryError::StructuralCheckFailed { .. })
        ));
    }

    #[test]
    fn girth6_three_coloring() {
        let g = gen::hexagonal(4, 5);
        let lists = ListAssignment::uniform(g.n(), 3);
        let colors = color_planar_girth6(&g, &lists).unwrap();
        assert_list_proper(&g, &lists, &colors);
        // Grid has girth 4: rejected.
        let grid = gen::grid(5, 5);
        let lg = ListAssignment::uniform(25, 3);
        assert!(matches!(
            color_planar_girth6(&grid, &lg),
            Err(CorollaryError::StructuralCheckFailed { .. })
        ));
    }

    #[test]
    fn heawood_number_small_genera() {
        assert_eq!(heawood_number(0), 4); // formula collapses to 4 on the sphere
                                          // g=1: ⌊(7+5)/2⌋ = 6; g=2: ⌊(7+7)/2⌋ = 7; g=3: ⌊(7+√73)/2⌋ = 7.
        assert_eq!(heawood_number(1), 6);
        assert_eq!(heawood_number(2), 7);
        assert_eq!(heawood_number(3), 7);
    }

    #[test]
    fn genus_coloring_on_torus_grid() {
        // Toroidal grid: Euler genus 2, mad = 4 ≤ M(2) = 6 → H(2) = 7 lists.
        let g = gen::torus_grid(6, 8);
        let lists = ListAssignment::uniform(g.n(), heawood_number(2));
        let colors = color_genus(&g, 2, &lists, false).unwrap();
        assert_list_proper(&g, &lists, &colors);
    }

    #[test]
    fn genus_coloring_fewer_colors_when_integral() {
        // g = 1 (projective plane): M = 5 exactly, H = 6; try H−1 = 5 lists
        // on the Klein-bottle grid (Euler genus 2 ≤ … use torus grid with
        // genus parameter 1 — mad = 4 ≤ 5 still sound for the solver).
        let g = gen::torus_grid(5, 7);
        let lists = ListAssignment::uniform(g.n(), 5);
        let colors = color_genus(&g, 1, &lists, true).unwrap();
        assert_list_proper(&g, &lists, &colors);
        assert!(colors.iter().all(|&c| c < 5));
    }
}
