//! Rich/poor/happy/sad classification (paper §3).
//!
//! On the residual graph of each peeling iteration: vertices of degree ≤ d
//! are **rich**, the rest **poor**. A rich vertex is **happy** when its
//! *rich ball* `B^r_R(v)` (radius-`r` ball inside the rich subgraph)
//! contains a vertex of degree ≤ d−1 (in the residual graph) or is not a
//! Gallai tree; the remaining rich vertices are **sad**. Lemma 3.1
//! guarantees at least `n/(3d)³` happy vertices when `d ≥ max(3, mad)` and
//! no `(d+1)`-clique exists.

use graphs::{ball, components, is_gallai_tree, Graph, VertexId, VertexSet};
use local_model::RoundLedger;

/// Per-iteration vertex classification.
#[derive(Clone, Debug)]
pub struct Classification {
    /// Rich vertices (degree ≤ d in the residual graph).
    pub rich: VertexSet,
    /// Poor vertices (degree ≥ d+1).
    pub poor: VertexSet,
    /// Happy vertices (rich with a helpful ball) — the paper's set `A`.
    pub happy: VertexSet,
    /// Sad vertices (`rich ∖ happy`) — the paper's set `S`.
    pub sad: VertexSet,
    /// Ball radius used.
    pub radius: usize,
}

impl Classification {
    /// Happy fraction `|A| / |alive|` (0 when the residual graph is empty).
    pub fn happy_fraction(&self, alive_count: usize) -> f64 {
        if alive_count == 0 {
            0.0
        } else {
            self.happy.len() as f64 / alive_count as f64
        }
    }
}

/// Degree of `v` within `alive`.
fn alive_degree(g: &Graph, alive: &VertexSet, v: VertexId) -> usize {
    g.neighbors(v)
        .iter()
        .filter(|&&w| alive.contains(w))
        .count()
}

/// Whether the vertex set `members` (connected, inside the rich subgraph)
/// certifies happiness: it contains a vertex of residual degree ≤ d−1, or
/// it is not a Gallai tree.
fn ball_is_helpful(g: &Graph, alive: &VertexSet, d: usize, members: &[VertexId]) -> bool {
    if members
        .iter()
        .any(|&w| alive_degree(g, alive, w) <= d.saturating_sub(1))
    {
        return true;
    }
    let set = VertexSet::from_iter_with_universe(g.n(), members.iter().copied());
    !is_gallai_tree(g, Some(&set))
}

/// Splits the rich set into happy and sad by per-vertex verdicts — the
/// single decision loop both classification substrates run. `ball_of(v)`
/// supplies `B^r_rich(v)`; the full-component memoization lives here: when
/// a ball covers its whole rich component (and whenever `comp_verdict` was
/// pre-seeded), the verdict is shared by every vertex of that component.
#[allow(clippy::too_many_arguments)]
fn split_by_verdict(
    g: &Graph,
    alive: &VertexSet,
    d: usize,
    rich: &VertexSet,
    comp_id: &[usize],
    comp_size: &[usize],
    comp_verdict: &mut [Option<bool>],
    mut ball_of: impl FnMut(VertexId) -> Vec<VertexId>,
) -> (VertexSet, VertexSet) {
    let mut happy = VertexSet::new(g.n());
    let mut sad = VertexSet::new(g.n());
    for v in rich.iter() {
        let cid = comp_id[v];
        let verdict = match comp_verdict[cid] {
            Some(verdict) => verdict,
            None => {
                let b = ball_of(v);
                if b.len() == comp_size[cid] {
                    *comp_verdict[cid].get_or_insert_with(|| ball_is_helpful(g, alive, d, &b))
                } else {
                    ball_is_helpful(g, alive, d, &b)
                }
            }
        };
        if verdict {
            happy.insert(v);
        } else {
            sad.insert(v);
        }
    }
    (happy, sad)
}

/// Classifies the residual graph `g[alive]` with threshold `d` and ball
/// radius `radius`.
///
/// Charges `radius` rounds (one parallel ball gather) plus 1 round for the
/// rich/poor degree exchange.
///
/// # Examples
///
/// ```
/// use distributed_coloring::happy::classify;
/// use graphs::{gen, VertexSet};
/// use local_model::RoundLedger;
/// let g = gen::grid(6, 6); // mad < 4, plenty of degree ≤ 3 vertices
/// let alive = VertexSet::full(g.n());
/// let mut ledger = RoundLedger::new();
/// let c = classify(&g, &alive, 4, 3, &mut ledger);
/// assert!(c.poor.is_empty());
/// assert_eq!(c.happy.len() + c.sad.len(), g.n());
/// assert!(!c.happy.is_empty());
/// ```
pub fn classify(
    g: &Graph,
    alive: &VertexSet,
    d: usize,
    radius: usize,
    ledger: &mut RoundLedger,
) -> Classification {
    let n = g.n();
    let mut rich = VertexSet::new(n);
    let mut poor = VertexSet::new(n);
    for v in alive.iter() {
        if alive_degree(g, alive, v) <= d {
            rich.insert(v);
        } else {
            poor.insert(v);
        }
    }
    ledger.charge("rich-poor", 1);

    // Happiness: evaluate balls inside G[rich]. Memoize whole components —
    // when a vertex's ball covers its entire rich component (common with
    // the paper's large radius), the verdict is shared by every vertex of
    // the component. Shortcut: if some component vertex has eccentricity
    // ≤ radius/2, every radius-ball covers the component (triangle
    // inequality), so one BFS settles the whole component.
    let (comp_id, comp_count) = components(g, Some(&rich));
    let mut comp_size = vec![0usize; comp_count];
    let mut comp_rep = vec![usize::MAX; comp_count];
    for v in rich.iter() {
        comp_size[comp_id[v]] += 1;
        comp_rep[comp_id[v]] = v;
    }
    let mut comp_verdict: Vec<Option<bool>> = vec![None; comp_count];
    for cid in 0..comp_count {
        let rep = comp_rep[cid];
        if 2 * graphs::eccentricity(g, rep, Some(&rich)) <= radius {
            let members = graphs::component_of(g, rep, Some(&rich));
            comp_verdict[cid] = Some(ball_is_helpful(g, alive, d, &members));
        }
    }
    let (happy, sad) = split_by_verdict(
        g,
        alive,
        d,
        &rich,
        &comp_id,
        &comp_size,
        &mut comp_verdict,
        |v| ball(g, v, radius, Some(&rich)),
    );
    ledger.charge("ball-gather", radius as u64);
    Classification {
        rich,
        poor,
        happy,
        sad,
        radius,
    }
}

/// Classifies the residual graph `g[alive]` with the classification's
/// communication — the rich/poor degree exchange and the radius-`radius`
/// rich-ball flood — executed as a **masked engine session**
/// ([`engine::engine_classification_gather`]) instead of the sequential
/// ball computation. The happiness verdict itself (degree-≤-d−1 member or
/// non-Gallai ball) is node-local and evaluated on the gathered balls.
///
/// Bit-identical to [`classify`] — same sets, same radius, same
/// `"rich-poor"` + `"ball-gather"` charges — at any shard count; this is
/// the classification path `list_color_sparse` takes when
/// `engine_shards: Some(k)`. The session's observed
/// [`EngineMetrics`](engine::EngineMetrics) are returned alongside the
/// classification so composite pipelines can aggregate real traffic.
pub fn classify_engine(
    g: &Graph,
    alive: &VertexSet,
    d: usize,
    radius: usize,
    config: engine::EngineConfig,
    ledger: &mut RoundLedger,
) -> (Classification, engine::EngineMetrics) {
    let (rich, mut balls, metrics) =
        engine::engine_classification_gather(g, alive, d, radius, config, ledger);
    let mut poor = alive.clone();
    poor.difference_with(&rich);

    // The same decision loop (and full-component memoization) the
    // sequential path runs, fed with the engine-gathered balls.
    let (comp_id, comp_count) = components(g, Some(&rich));
    let mut comp_size = vec![0usize; comp_count];
    for v in rich.iter() {
        comp_size[comp_id[v]] += 1;
    }
    let mut comp_verdict: Vec<Option<bool>> = vec![None; comp_count];
    let (happy, sad) = split_by_verdict(
        g,
        alive,
        d,
        &rich,
        &comp_id,
        &comp_size,
        &mut comp_verdict,
        |v| std::mem::take(&mut balls[v]),
    );
    (
        Classification {
            rich,
            poor,
            happy,
            sad,
            radius,
        },
        metrics,
    )
}

/// The paper's ball radius `⌈c · log₂ n⌉` with `c = 12 / log₂(6/5)`
/// (§3 — the constant is only needed for the Lemma 3.1 density bound).
pub fn paper_radius(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let c = 12.0 / (1.2f64).log2();
    (c * (n as f64).log2()).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    fn classify_full(g: &Graph, d: usize, radius: usize) -> Classification {
        let alive = VertexSet::full(g.n());
        let mut ledger = RoundLedger::new();
        classify(g, &alive, d, radius, &mut ledger)
    }

    #[test]
    fn tree_low_degree_vertices_make_everyone_happy() {
        // In a path with d = 3, every vertex has degree ≤ 2 ≤ d−1, so every
        // ball contains a low-degree vertex: all happy.
        let g = gen::path(50);
        let c = classify_full(&g, 3, 5);
        assert_eq!(c.happy.len(), 50);
        assert!(c.sad.is_empty());
        assert!(c.poor.is_empty());
    }

    #[test]
    fn d_regular_gallai_components_are_sad() {
        // K4 is a 3-regular Gallai tree (one clique block): with d = 3 and
        // full-component balls, every vertex is sad.
        let g = gen::complete(4);
        let c = classify_full(&g, 3, 10);
        assert_eq!(c.sad.len(), 4);
        assert!(c.happy.is_empty());
    }

    #[test]
    fn d_regular_non_gallai_components_are_happy() {
        // The Petersen graph is 3-regular and not a Gallai tree.
        let g = gen::petersen();
        let c = classify_full(&g, 3, 10);
        assert_eq!(c.happy.len(), 10);
    }

    #[test]
    fn poor_vertices_detected() {
        // Star K_{1,5} with d = 3: center degree 5 → poor; leaves degree 1 →
        // rich and happy.
        let g = gen::star(5);
        let c = classify_full(&g, 3, 4);
        assert!(c.poor.contains(0));
        assert_eq!(c.poor.len(), 1);
        assert_eq!(c.happy.len(), 5);
    }

    #[test]
    fn small_radius_can_hide_happiness() {
        // A long odd cycle with one chord: the chord creates a non-Gallai
        // block, but a radius-1 ball far from the chord sees only a path
        // of degree-2 vertices (d = 2: no vertex of degree ≤ 1, Gallai
        // path) → sad; larger radius reveals the chord.
        let n = 31;
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.push((0, 15));
        let g = Graph::from_edges(n, edges);
        // d=3: chord endpoints have degree 3 = d, others 2 = d-1 ≤ d-1 → all
        // happy regardless. Use d = 2… but then chord endpoints are poor.
        // Check the radius effect via d=3 on a pure cycle instead:
        let cyc = gen::cycle(9);
        let c_small = classify_full(&cyc, 2, 1);
        // All degree 2 = d, ball of radius 1 is a path (Gallai) → sad.
        assert_eq!(c_small.sad.len(), 9);
        let c_big = classify_full(&cyc, 2, 5);
        // Full component = odd cycle: still a Gallai tree → still sad!
        assert_eq!(c_big.sad.len(), 9);
        // But an even cycle becomes happy at full radius (not Gallai).
        let even = gen::cycle(8);
        let c_even = classify_full(&even, 2, 5);
        assert_eq!(c_even.happy.len(), 8);
        let _ = g;
    }

    #[test]
    fn happiness_monotone_in_radius() {
        // Growing the radius never turns a happy vertex sad.
        let g = gen::triangular(5, 5);
        for d in [4usize, 5, 6] {
            let mut prev = VertexSet::new(g.n());
            for r in 1..6 {
                let c = classify_full(&g, d, r);
                assert!(
                    prev.is_subset(&c.happy),
                    "radius {r} lost happy vertices (d={d})"
                );
                prev = c.happy;
            }
        }
    }

    #[test]
    fn masked_residual_degrees() {
        // K5 with one vertex removed from alive: residual K4, d=3 → all sad.
        let g = gen::complete(5);
        let mut alive = VertexSet::full(5);
        alive.remove(4);
        let mut ledger = RoundLedger::new();
        let c = classify(&g, &alive, 3, 5, &mut ledger);
        assert_eq!(c.sad.len(), 4);
        assert!(!c.rich.contains(4));
        assert!(!c.poor.contains(4));
    }

    #[test]
    fn engine_classification_matches_sequential() {
        // The engine-gathered classification must reproduce the sequential
        // sets exactly — rich, poor, happy, sad — across masks, degrees,
        // radii, and shard counts.
        let cases: Vec<(Graph, usize, usize)> = vec![
            (gen::grid(7, 7), 4, 3),
            (gen::triangular(5, 5), 6, 2),
            (gen::star(5), 3, 4),
            (gen::petersen(), 3, 10),
            (gen::complete(4), 3, 10),
        ];
        for (g, d, radius) in &cases {
            for alive in [
                VertexSet::full(g.n()),
                VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 5 != 1)),
            ] {
                let mut seq_ledger = RoundLedger::new();
                let seq = classify(g, &alive, *d, *radius, &mut seq_ledger);
                for shards in [1usize, 2, 8] {
                    let mut eng_ledger = RoundLedger::new();
                    let config = engine::EngineConfig::default().with_shards(shards);
                    let (eng, metrics) =
                        classify_engine(g, &alive, *d, *radius, config, &mut eng_ledger);
                    let ctx = format!("n={} d={d} r={radius} shards={shards}", g.n());
                    assert!(
                        metrics.total_messages() > 0 || alive.is_empty(),
                        "{ctx}: the gather session's traffic must be surfaced"
                    );
                    assert_eq!(eng.rich, seq.rich, "{ctx}: rich");
                    assert_eq!(eng.poor, seq.poor, "{ctx}: poor");
                    assert_eq!(eng.happy, seq.happy, "{ctx}: happy");
                    assert_eq!(eng.sad, seq.sad, "{ctx}: sad");
                    assert_eq!(eng_ledger.total(), seq_ledger.total(), "{ctx}: ledger");
                    assert_eq!(
                        eng_ledger.phase_total("ball-gather"),
                        seq_ledger.phase_total("ball-gather"),
                        "{ctx}"
                    );
                    assert_eq!(
                        eng_ledger.phase_total("rich-poor"),
                        seq_ledger.phase_total("rich-poor"),
                        "{ctx}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_radius_matches_constant() {
        // c = 12/log2(1.2) ≈ 45.64; at n = 1024, radius = ceil(456.4).
        assert_eq!(paper_radius(1024), 457);
        assert!(paper_radius(2) >= 1);
    }

    #[test]
    fn ledger_charges_radius() {
        let g = gen::grid(4, 4);
        let alive = VertexSet::full(g.n());
        let mut ledger = RoundLedger::new();
        classify(&g, &alive, 4, 7, &mut ledger);
        assert_eq!(ledger.phase_total("ball-gather"), 7);
        assert_eq!(ledger.phase_total("rich-poor"), 1);
    }
}
