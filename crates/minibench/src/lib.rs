//! # minibench — a wall-clock micro-benchmark harness with the `criterion` API
//!
//! The build environment is offline, so crates.io `criterion` is
//! unavailable. This crate reimplements the subset of its API the workspace
//! benches use — consumers declare `criterion = { package = "minibench", … }`
//! so bench files keep the familiar `use criterion::...` spelling:
//!
//! * [`Criterion::benchmark_group`] → [`BenchmarkGroup::bench_with_input`] /
//!   [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::sample_size`] /
//!   [`BenchmarkGroup::finish`].
//! * [`BenchmarkId::new`] / [`BenchmarkId::from_parameter`].
//! * [`Bencher::iter`].
//! * [`criterion_group!`] / [`criterion_main!`].
//!
//! Timing model: each benchmark runs a fixed warm-up, then `sample_size`
//! timed samples of an adaptively chosen iteration batch, reporting
//! min/mean/max per iteration. Set `MINIBENCH_SAMPLE_SIZE` to override the
//! sample count globally (CI smoke runs use `1`).

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement settings shared by a [`Criterion`] instance and its groups.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warmup_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("MINIBENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Criterion {
            sample_size,
            warmup_iters: 2,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            warmup_iters: self.warmup_iters,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: String::new(),
            sample_size: self.sample_size,
            warmup_iters: self.warmup_iters,
        };
        group.bench_function(id, f);
        self
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter, for groups whose name already says it all.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing a name and sample settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warmup_iters: u64,
}

impl BenchmarkGroup {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // The env override (CI smoke mode) wins over per-group requests.
        if std::env::var("MINIBENCH_SAMPLE_SIZE").is_err() {
            self.sample_size = n;
        }
        self
    }

    /// Benchmarks `f`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.warmup_iters);
        f(&mut b, input);
        b.report(&self.name, &id.label);
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.warmup_iters);
        f(&mut b);
        b.report(&self.name, id);
        self
    }

    /// Ends the group (report lines are printed eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    warmup_iters: u64,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize, warmup_iters: u64) -> Self {
        Bencher {
            sample_size,
            warmup_iters,
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Times `routine`: warm-up iterations, then `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_iters {
            std::hint::black_box(routine());
        }
        // Batch very fast routines so timer resolution does not dominate.
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed();
        self.iters_per_sample = if once < Duration::from_micros(50) {
            (Duration::from_micros(200).as_nanos() / once.as_nanos().max(1)).max(1) as u64
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples (iter was never called)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        println!(
            "  {label}: mean {mean:?} (min {min:?}, max {max:?}, {} samples x {} iters)",
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

/// Declares a named group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        for n in [10usize, 20] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>())
            });
        }
        group.bench_function("fixed", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    criterion_group!(demo_benches, a_bench);

    #[test]
    fn group_machinery_runs() {
        demo_benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("scale", 42).to_string(), "scale/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn standalone_bench_function() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
