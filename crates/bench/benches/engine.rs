//! Engine benches (B7–B9): wall-clock cost of the message-passing runtime,
//! swept across shard counts, next to the sequential twins.
//!
//! The interesting curve is engine wall time vs shards: compute per round is
//! tiny for these programs, so this chiefly measures the runtime's own
//! routing and barrier overhead — the thing future engine PRs optimize.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{engine_h_partition, engine_randomized_list_coloring, EngineConfig};
use graphs::gen;
use local_model::{h_partition, randomized_list_coloring, RoundLedger};
use std::hint::black_box;

const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// B7 — randomized (deg+1)-list coloring: sequential vs engine by shards.
fn bench_randomized(c: &mut Criterion) {
    let n = 4096;
    let g = gen::random_regular(n, 4, 7);
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut group = c.benchmark_group("B7-randomized-coloring-4096");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut ledger = RoundLedger::new();
            black_box(randomized_list_coloring(
                &g,
                None,
                &lists,
                7,
                10_000,
                &mut ledger,
            ))
        })
    });
    for shards in SHARD_SWEEP {
        group.bench_with_input(BenchmarkId::new("engine", shards), &shards, |b, &shards| {
            b.iter(|| {
                let mut ledger = RoundLedger::new();
                black_box(engine_randomized_list_coloring(
                    &g,
                    None,
                    &lists,
                    7,
                    10_000,
                    EngineConfig::default().with_shards(shards),
                    &mut ledger,
                ))
            })
        });
    }
    group.finish();
}

/// B8 — H-partition peeling: sequential vs engine by shards.
fn bench_h_partition(c: &mut Criterion) {
    let n = 4096;
    let g = gen::forest_union(n, 2, 11);
    let mut group = c.benchmark_group("B8-h-partition-4096");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut ledger = RoundLedger::new();
            black_box(h_partition(&g, None, 2, 1.0, &mut ledger))
        })
    });
    for shards in SHARD_SWEEP {
        group.bench_with_input(BenchmarkId::new("engine", shards), &shards, |b, &shards| {
            b.iter(|| {
                let mut ledger = RoundLedger::new();
                black_box(engine_h_partition(
                    &g,
                    None,
                    2,
                    1.0,
                    EngineConfig::default().with_shards(shards),
                    &mut ledger,
                ))
            })
        });
    }
    group.finish();
}

/// B9 — raw engine round overhead: a silent program that just spins the
/// barrier/mailbox machinery for a fixed number of rounds.
fn bench_round_overhead(c: &mut Criterion) {
    use engine::{EngineSession, NodeCtx, NodeProgram, Outbox, Stop};

    struct Quiet;
    impl NodeProgram for Quiet {
        type Message = usize;
        fn init(&mut self, _: &mut NodeCtx<'_>) -> Outbox<usize> {
            Outbox::Silent
        }
        fn on_round(&mut self, _: &mut NodeCtx<'_>, _: &[(usize, usize)]) -> Outbox<usize> {
            Outbox::Silent
        }
        fn halted(&self) -> bool {
            false
        }
    }

    let g = gen::grid(64, 64);
    let mut group = c.benchmark_group("B9-round-overhead-4096x100");
    for shards in SHARD_SWEEP {
        group.bench_with_input(BenchmarkId::new("engine", shards), &shards, |b, &shards| {
            b.iter(|| {
                let mut sess =
                    EngineSession::new(&g, EngineConfig::default().with_shards(shards), |_| Quiet);
                black_box(sess.run_phase("spin", Stop::Rounds(100)))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_randomized,
    bench_h_partition,
    bench_round_overhead
);
criterion_main!(benches);
