//! Criterion benches (B1–B6): wall-clock timing of every pipeline stage.
//!
//! Round complexity is measured by the table harness; these benches track
//! the *simulator's* CPU cost so regressions in the substrate show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distributed_coloring::{
    classify, degree_choosable_coloring, list_color_sparse, ListAssignment, SparseColoringConfig,
};
use graphs::{gen, VertexSet};
use local_model::{barenboim_elkin_coloring, degree_plus_one_coloring, ruling_forest, RoundLedger};
use std::hint::black_box;

/// B1 — happy-vertex classification (ball gathering + Gallai checks).
fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1-classify");
    for n in [256usize, 1024, 4096] {
        let g = gen::forest_union(n, 2, 7);
        let alive = VertexSet::full(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = RoundLedger::new();
                black_box(classify(&g, &alive, 4, 4, &mut ledger))
            })
        });
    }
    group.finish();
}

/// B2 — the constructive Theorem 1.1 solver on broken Gallai trees.
fn bench_ert(c: &mut Criterion) {
    let mut group = c.benchmark_group("B2-ert");
    for blocks in [8usize, 32, 128] {
        let cfg = gen::GallaiTreeConfig {
            blocks,
            ..Default::default()
        };
        let t = gen::random_gallai_tree(&cfg, blocks as u64);
        let g = gen::break_gallai_tree(&t, 1).unwrap_or(t);
        let lists: Vec<Vec<usize>> = g.vertices().map(|v| (0..=g.degree(v)).collect()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(g.n()), &blocks, |b, _| {
            b.iter(|| black_box(degree_choosable_coloring(&g, &lists).unwrap()))
        });
    }
    group.finish();
}

/// B3 — end-to-end Theorem 1.3.
fn bench_theorem13(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3-theorem13");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let g = gen::forest_union(n, 2, 13);
        let lists = ListAssignment::uniform(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    list_color_sparse(&g, &lists, 4, SparseColoringConfig::default()).unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// B4 — the Barenboim–Elkin baseline.
fn bench_barenboim_elkin(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4-barenboim-elkin");
    for n in [256usize, 1024, 4096] {
        let g = gen::forest_union(n, 2, 17);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = RoundLedger::new();
                black_box(barenboim_elkin_coloring(&g, None, 2, 1.0, &mut ledger))
            })
        });
    }
    group.finish();
}

/// B5 — ruling forests.
fn bench_ruling_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5-ruling-forest");
    for n in [256usize, 1024, 4096] {
        let side = (n as f64).sqrt().round() as usize;
        let g = gen::grid(side, side);
        let subset: Vec<usize> = (0..g.n()).step_by(3).collect();
        group.bench_with_input(BenchmarkId::from_parameter(g.n()), &n, |b, _| {
            b.iter(|| {
                let mut ledger = RoundLedger::new();
                black_box(ruling_forest(&g, None, &subset, 8, &mut ledger))
            })
        });
    }
    group.finish();
}

/// B6 — substrate pieces: (Δ+1)-coloring and the exact mad oracle.
fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6-substrate");
    let g = gen::random_regular(1024, 4, 23);
    group.bench_function("degree-plus-one-coloring-1024", |b| {
        b.iter(|| {
            let mut ledger = RoundLedger::new();
            black_box(degree_plus_one_coloring(&g, None, &mut ledger))
        })
    });
    let h = gen::forest_union(512, 3, 29);
    group.bench_function("exact-mad-512", |b| b.iter(|| black_box(graphs::mad(&h))));
    group.finish();
}

criterion_group!(
    benches,
    bench_classify,
    bench_ert,
    bench_theorem13,
    bench_barenboim_elkin,
    bench_ruling_forest,
    bench_substrate
);
criterion_main!(benches);
