//! Machine-readable engine bench artifact: `BENCH_engine.json`.
//!
//! Each record is one measured run — graph family, size, shard count,
//! observed rounds/messages, wall time — so successive PRs can diff the
//! perf trajectory mechanically. Sequential baseline rows use `shards = 0`.
//! The JSON is hand-rolled (the build environment is offline; no serde) but
//! stable: one object per line, sorted keys.

use std::fmt::Write as _;

/// One measured run for the perf-trajectory artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineBenchRecord {
    /// Workload family name (e.g. `forest-union-a2`).
    pub family: String,
    /// Algorithm identifier (e.g. `randomized`, `h-partition`).
    pub algorithm: String,
    /// Vertex count.
    pub n: usize,
    /// Engine shard count; 0 marks the sequential baseline.
    pub shards: usize,
    /// LOCAL rounds executed (engine) or charged (sequential).
    pub rounds: u64,
    /// Messages routed (0 for sequential baselines — nothing is sent).
    pub messages: usize,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
}

impl EngineBenchRecord {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"algorithm\":{},\"family\":{},\"messages\":{},",
                "\"n\":{},\"rounds\":{},\"shards\":{},\"wall_ms\":{:.4}}}"
            ),
            json_string(&self.algorithm),
            json_string(&self.family),
            self.messages,
            self.n,
            self.rounds,
            self.shards,
            self.wall_ms,
        )
    }
}

/// Serializes records as a JSON array, one record per line.
pub fn render_engine_bench_json(records: &[EngineBenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(out, "  {}{}", r.to_json(), sep);
    }
    out.push_str("]\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> EngineBenchRecord {
        EngineBenchRecord {
            family: "forest-union-a2".into(),
            algorithm: "randomized".into(),
            n: 1000,
            shards: 4,
            rounds: 24,
            messages: 12345,
            wall_ms: 1.5,
        }
    }

    #[test]
    fn renders_valid_shape() {
        let json = render_engine_bench_json(&[record(), record()]);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches("\"algorithm\":\"randomized\"").count(), 2);
        assert_eq!(json.matches("},").count(), 1, "exactly one separator");
        assert!(json.contains("\"wall_ms\":1.5000"));
    }

    #[test]
    fn empty_list_is_valid() {
        assert_eq!(render_engine_bench_json(&[]), "[\n]\n");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }
}
