//! Machine-readable engine bench artifact: `BENCH_engine.json`.
//!
//! Each record is one measured run — graph family, size, shard count,
//! observed rounds/messages, wall time — so successive PRs can diff the
//! perf trajectory mechanically. Sequential baseline rows use `shards = 0`.
//! The JSON is hand-rolled (the build environment is offline; no serde) but
//! stable: one object per line, sorted keys.

use std::fmt::Write as _;

/// One measured run for the perf-trajectory artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineBenchRecord {
    /// Mean frontier density across the run's rounds: stepped / live nodes,
    /// averaged per round (see `engine::RoundMetrics::active_frac`). `1.0`
    /// for sequential baselines, full scans, and artifacts written before
    /// frontier-sparse rounds existed; `bench_trend` charts its decay.
    pub active_frac: f64,
    /// Workload family name (e.g. `forest-union-a2`).
    pub family: String,
    /// Algorithm identifier (e.g. `randomized`, `h-partition`).
    pub algorithm: String,
    /// Vertex count.
    pub n: usize,
    /// Engine shard count; 0 marks the sequential baseline.
    pub shards: usize,
    /// LOCAL rounds executed (engine) or charged (sequential).
    pub rounds: u64,
    /// Messages routed (0 for sequential baselines — nothing is sent).
    pub messages: usize,
    /// Best-of-reps wall-clock milliseconds (the noise-rejection figure;
    /// budgets are judged on it).
    pub wall_ms: f64,
    /// Median (nearest-rank p50) wall-clock milliseconds across all reps —
    /// the honest central tendency next to the optimistic best-of. Equals
    /// `wall_ms` for single-rep runs and for artifacts written before the
    /// field existed.
    pub p50_ms: f64,
    /// Milliseconds spent in the worker-parallel routing phase (0 for
    /// sequential baselines). A subset of `wall_ms`; `bench_gate` enforces
    /// a routing-overhead budget on it.
    pub route_ms: f64,
    /// CONGEST split budget in words; 0 marks an unlimited-width run.
    /// `bench_gate` enforces a fragmentation-overhead budget on split rows
    /// against their unlimited twins.
    pub split: usize,
    /// Physical rounds spent on the wire (equals `rounds` outside split
    /// mode; under `CongestMode::Split` each logical round costs
    /// `ceil(max_width / split)`).
    pub physical_rounds: u64,
    /// CONGEST frames produced by fragmentation (0 outside split mode).
    pub fragments: usize,
    /// Whether the run used frontier-indexed rounds (the engine default).
    /// `false` marks a deliberate full-scan twin (`--no-frontier` rows);
    /// `bench_gate --min-frontier-speedup` judges the on/off pairs.
    pub frontier: bool,
    /// Total node-steps the frontier index skipped across the run (summed
    /// `RoundMetrics::frontier_skipped`). 0 for sequential baselines, full
    /// scans, and legacy artifacts; `bench_trend` reports it next to
    /// `active_frac` so the skip volume behind the density is visible.
    pub frontier_skipped: usize,
    /// Whether the run used the cache-local vertex relabeling
    /// (`VertexOrder::Locality`). `false` marks identity-order rows —
    /// sequential baselines, legacy artifacts, and the identity twins that
    /// `bench_gate --min-order-speedup` judges locality rows against.
    pub locality: bool,
    /// Whether the routing epoch ordered inboxes with the O(traffic)
    /// sender-rank counting pass. `false` marks rows measured before the
    /// rank pass existed (per-inbox comparison sort) and sequential
    /// baselines; `bench_trend` renders the marker (`rank` vs `sorted`) so
    /// route-time comparisons across the protocol change stay honest.
    pub rank_routing: bool,
}

impl EngineBenchRecord {
    fn to_json(&self) -> String {
        // A `p50_ms` equal to `wall_ms` carries no independent information —
        // single-rep runs never measured a median at all. Omit the key and
        // let [`parse_engine_bench_json`]'s default restore `wall_ms`, so
        // the artifact never claims a percentile that was not observed.
        let p50 = if self.p50_ms == self.wall_ms {
            String::new()
        } else {
            format!("\"p50_ms\":{:.4},", self.p50_ms)
        };
        // Like `p50_ms`: a density of exactly 1.0 is the no-information
        // value (sequential rows, gating off, legacy artifacts) — omit the
        // key and let the parser's default restore it.
        let active = if self.active_frac == 1.0 {
            String::new()
        } else {
            format!("\"active_frac\":{:.4},", self.active_frac)
        };
        // `true` is the engine default and the only value legacy artifacts
        // could have meant — omit it, like the other no-information values.
        let frontier = if self.frontier {
            String::new()
        } else {
            String::from("\"frontier\":false,")
        };
        // 0 is the no-information value (baselines, full scans, legacy
        // artifacts) — omit it, like the other defaults.
        let skipped = if self.frontier_skipped == 0 {
            String::new()
        } else {
            format!("\"frontier_skipped\":{},", self.frontier_skipped)
        };
        // Identity order is the default and what every legacy row meant —
        // only locality twins carry the key.
        let locality = if self.locality {
            String::from("\"locality\":true,")
        } else {
            String::new()
        };
        // Legacy rows (comparison-sorted routing) and sequential baselines
        // omit the key; rank-routed rows carry it so cross-protocol route
        // comparisons are labeled.
        let rank = if self.rank_routing {
            String::from("\"rank_routing\":true,")
        } else {
            String::new()
        };
        format!(
            concat!(
                "{{{}\"algorithm\":{},\"family\":{},\"fragments\":{},{}{}{}\"messages\":{},",
                "\"n\":{},{}\"physical_rounds\":{},{}\"rounds\":{},",
                "\"route_ms\":{:.4},\"shards\":{},\"split\":{},\"wall_ms\":{:.4}}}"
            ),
            active,
            json_string(&self.algorithm),
            json_string(&self.family),
            self.fragments,
            frontier,
            skipped,
            locality,
            self.messages,
            self.n,
            p50,
            self.physical_rounds,
            rank,
            self.rounds,
            self.route_ms,
            self.shards,
            self.split,
            self.wall_ms,
        )
    }
}

/// Serializes records as a JSON array, one record per line.
pub fn render_engine_bench_json(records: &[EngineBenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(out, "  {}{}", r.to_json(), sep);
    }
    out.push_str("]\n");
    out
}

/// Parses a `BENCH_engine.json` artifact back into records.
///
/// This is the inverse of [`render_engine_bench_json`] for the exact shape
/// that function emits (one object per line, sorted keys, escaped strings) —
/// enough for CI's `bench_gate` to diff artifacts offline; it is not a
/// general JSON parser.
///
/// # Errors
///
/// Returns a message naming the offending line when a record cannot be
/// parsed.
pub fn parse_engine_bench_json(json: &str) -> Result<Vec<EngineBenchRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in json.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let fail = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
        let body = line
            .strip_prefix('{')
            .and_then(|l| l.strip_suffix('}'))
            .ok_or_else(|| fail("expected one {…} object"))?;
        let mut rec = EngineBenchRecord {
            active_frac: 1.0,
            family: String::new(),
            algorithm: String::new(),
            n: 0,
            shards: 0,
            rounds: 0,
            messages: 0,
            wall_ms: 0.0,
            p50_ms: 0.0,
            route_ms: 0.0,
            split: 0,
            physical_rounds: 0,
            fragments: 0,
            frontier: true,
            frontier_skipped: 0,
            locality: false,
            rank_routing: false,
        };
        let mut saw_physical = false;
        let mut saw_p50 = false;
        for field in split_top_level(body) {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| fail("expected key:value"))?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match key {
                "active_frac" => {
                    rec.active_frac = value.parse().map_err(|_| fail("bad active_frac"))?
                }
                "algorithm" => rec.algorithm = unescape(value).ok_or_else(|| fail("bad string"))?,
                "family" => rec.family = unescape(value).ok_or_else(|| fail("bad string"))?,
                "n" => rec.n = value.parse().map_err(|_| fail("bad n"))?,
                "shards" => rec.shards = value.parse().map_err(|_| fail("bad shards"))?,
                "rounds" => rec.rounds = value.parse().map_err(|_| fail("bad rounds"))?,
                "messages" => rec.messages = value.parse().map_err(|_| fail("bad messages"))?,
                "wall_ms" => rec.wall_ms = value.parse().map_err(|_| fail("bad wall_ms"))?,
                "p50_ms" => {
                    rec.p50_ms = value.parse().map_err(|_| fail("bad p50_ms"))?;
                    saw_p50 = true;
                }
                "route_ms" => rec.route_ms = value.parse().map_err(|_| fail("bad route_ms"))?,
                "split" => rec.split = value.parse().map_err(|_| fail("bad split"))?,
                "physical_rounds" => {
                    rec.physical_rounds = value.parse().map_err(|_| fail("bad physical_rounds"))?;
                    saw_physical = true;
                }
                "fragments" => rec.fragments = value.parse().map_err(|_| fail("bad fragments"))?,
                "frontier" => rec.frontier = value.parse().map_err(|_| fail("bad frontier"))?,
                "frontier_skipped" => {
                    rec.frontier_skipped =
                        value.parse().map_err(|_| fail("bad frontier_skipped"))?
                }
                "locality" => rec.locality = value.parse().map_err(|_| fail("bad locality"))?,
                "rank_routing" => {
                    rec.rank_routing = value.parse().map_err(|_| fail("bad rank_routing"))?
                }
                other => return Err(fail(&format!("unknown key {other:?}"))),
            }
        }
        if !saw_physical {
            // Pre-split artifacts: a logical round was a physical round.
            rec.physical_rounds = rec.rounds;
        }
        if !saw_p50 {
            // Pre-p50 artifacts recorded only the best-of wall time.
            rec.p50_ms = rec.wall_ms;
        }
        if rec.algorithm.is_empty() || rec.family.is_empty() {
            return Err(fail("record missing algorithm/family"));
        }
        out.push(rec);
    }
    Ok(out)
}

/// Splits `"k":"v","k2":3` on commas that are not inside a quoted string.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let (mut start, mut in_string, mut escaped) = (0, false, false);
    for (i, c) in body.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ',' if !in_string => {
                fields.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < body.len() {
        fields.push(&body[start..]);
    }
    fields
}

/// Inverts [`json_string`]: strips quotes and resolves the escapes it emits.
fn unescape(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'u' => {
                let hex: String = (0..4).map(|_| chars.next()).collect::<Option<_>>()?;
                out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> EngineBenchRecord {
        EngineBenchRecord {
            active_frac: 0.75,
            family: "forest-union-a2".into(),
            algorithm: "randomized".into(),
            n: 1000,
            shards: 4,
            rounds: 24,
            messages: 12345,
            wall_ms: 1.5,
            p50_ms: 1.75,
            route_ms: 0.25,
            split: 0,
            physical_rounds: 24,
            fragments: 0,
            frontier: true,
            frontier_skipped: 0,
            locality: false,
            rank_routing: false,
        }
    }

    #[test]
    fn locality_and_rank_defaults_omitted_and_set_round_trip() {
        let legacy = record();
        let json = render_engine_bench_json(std::slice::from_ref(&legacy));
        assert!(!json.contains("locality"), "default false omitted: {json}");
        assert!(
            !json.contains("rank_routing"),
            "default false omitted: {json}"
        );
        assert_eq!(parse_engine_bench_json(&json).unwrap(), vec![legacy]);

        let mut twin = record();
        twin.locality = true;
        twin.rank_routing = true;
        let json = render_engine_bench_json(&[twin.clone()]);
        assert!(json.contains("\"locality\":true"), "{json}");
        assert!(json.contains("\"rank_routing\":true"), "{json}");
        assert_eq!(parse_engine_bench_json(&json).unwrap(), vec![twin]);
    }

    #[test]
    fn frontier_default_omitted_and_off_round_trips() {
        let on = record();
        let json = render_engine_bench_json(std::slice::from_ref(&on));
        assert!(
            !json.contains("frontier"),
            "default true is omitted: {json}"
        );
        assert_eq!(parse_engine_bench_json(&json).unwrap(), vec![on]);

        let mut off = record();
        off.frontier = false;
        let json = render_engine_bench_json(&[off.clone()]);
        assert!(json.contains("\"frontier\":false"), "{json}");
        assert_eq!(parse_engine_bench_json(&json).unwrap(), vec![off]);
    }

    #[test]
    fn frontier_skipped_zero_omitted_and_nonzero_round_trips() {
        let quiet = record();
        let json = render_engine_bench_json(std::slice::from_ref(&quiet));
        assert!(
            !json.contains("frontier_skipped"),
            "zero is omitted: {json}"
        );
        assert_eq!(parse_engine_bench_json(&json).unwrap(), vec![quiet]);

        let mut busy = record();
        busy.frontier_skipped = 98_765;
        let json = render_engine_bench_json(&[busy.clone()]);
        assert!(json.contains("\"frontier_skipped\":98765"), "{json}");
        assert_eq!(parse_engine_bench_json(&json).unwrap(), vec![busy]);
    }

    #[test]
    fn renders_valid_shape() {
        let json = render_engine_bench_json(&[record(), record()]);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches("\"algorithm\":\"randomized\"").count(), 2);
        assert_eq!(json.matches("},").count(), 1, "exactly one separator");
        assert!(json.contains("\"wall_ms\":1.5000"));
        assert!(json.contains("\"p50_ms\":1.7500"));
        assert!(json.contains("\"route_ms\":0.2500"));
    }

    #[test]
    fn single_rep_rows_omit_p50() {
        // `p50_ms == wall_ms` means no independent median was measured
        // (single-rep runs); the key is dropped and the parser's default
        // restores it, so the artifact never invents a percentile.
        let mut rec = record();
        rec.p50_ms = rec.wall_ms;
        let json = render_engine_bench_json(&[rec.clone()]);
        assert!(!json.contains("p50_ms"), "{json}");
        let parsed = parse_engine_bench_json(&json).unwrap();
        assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn empty_list_is_valid() {
        assert_eq!(render_engine_bench_json(&[]), "[\n]\n");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn parse_round_trips_render() {
        let mut odd = record();
        odd.family = "weird \"family\"\n, really".into();
        odd.wall_ms = 0.0123;
        odd.split = 4;
        odd.physical_rounds = 61;
        odd.fragments = 8123;
        let originals = vec![record(), odd, record()];
        let parsed = parse_engine_bench_json(&render_engine_bench_json(&originals)).unwrap();
        assert_eq!(parsed, originals);
        assert_eq!(parse_engine_bench_json("[\n]\n").unwrap(), vec![]);
    }

    #[test]
    fn parse_accepts_pre_split_artifacts() {
        // Artifacts written before the split fields existed must still
        // parse, with physical rounds defaulting to the logical rounds.
        let legacy = concat!(
            "[\n",
            "  {\"algorithm\":\"randomized\",\"family\":\"f\",\"messages\":9,",
            "\"n\":10,\"rounds\":4,\"route_ms\":0.5000,",
            "\"shards\":2,\"wall_ms\":1.0000}\n",
            "]\n"
        );
        let parsed = parse_engine_bench_json(legacy).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].split, 0);
        assert_eq!(parsed[0].physical_rounds, 4);
        assert_eq!(parsed[0].fragments, 0);
        assert_eq!(
            parsed[0].p50_ms, parsed[0].wall_ms,
            "missing p50 defaults to the best-of wall"
        );
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = parse_engine_bench_json("[\n  not json\n]\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_engine_bench_json("[\n  {\"n\":true}\n]\n").unwrap_err();
        assert!(err.contains("bad n"), "{err}");
    }
}
