//! Engine-vs-sequential throughput tables + the `BENCH_engine.json` artifact.
//!
//! ```sh
//! cargo run --release -p bench --bin engine_table            # default sizes
//! cargo run --release -p bench --bin engine_table -- 5000    # custom n
//! ```
//!
//! For each workload family and algorithm, runs the sequential
//! implementation once and the engine at a sweep of shard counts, printing
//! wall-clock/round/message tables and writing every measurement to
//! `BENCH_engine.json` (see [`bench::engine_report`]) so future PRs can
//! track the perf trajectory mechanically.

use std::time::Instant;

use bench::{print_table, render_engine_bench_json, EngineBenchRecord};
use engine::{
    engine_cole_vishkin_3color, engine_h_partition, engine_randomized_list_coloring, EngineConfig,
};
use graphs::gen;
use local_model::{
    cole_vishkin_3color, h_partition, randomized_list_coloring, RootedForest, RoundLedger,
};

const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("sizes must be integers"))
            .collect();
        if args.is_empty() {
            vec![2_000, 20_000]
        } else {
            args
        }
    };
    let mut records: Vec<EngineBenchRecord> = Vec::new();
    for &n in &sizes {
        randomized_showdown(n, &mut records);
        h_partition_showdown(n, &mut records);
        cole_vishkin_showdown(n, &mut records);
    }
    let json = render_engine_bench_json(&records);
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote {} records to BENCH_engine.json", records.len());
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

fn row(records: &mut Vec<EngineBenchRecord>, rec: EngineBenchRecord) -> Vec<String> {
    let label = if rec.shards == 0 {
        "sequential".into()
    } else {
        format!("engine/{}", rec.shards)
    };
    let cells = vec![
        label,
        format!("{}", rec.rounds),
        format!("{}", rec.messages),
        format!("{:.2}", rec.wall_ms),
    ];
    records.push(rec);
    cells
}

fn record(
    family: &str,
    algorithm: &str,
    n: usize,
    shards: usize,
    rounds: u64,
    messages: usize,
    wall_ms: f64,
) -> EngineBenchRecord {
    EngineBenchRecord {
        family: family.into(),
        algorithm: algorithm.into(),
        n,
        shards,
        rounds,
        messages,
        wall_ms,
    }
}

fn randomized_showdown(n: usize, records: &mut Vec<EngineBenchRecord>) {
    let family = "random-4-regular";
    let g = gen::random_regular(n & !1, 4, 7);
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut rows = Vec::new();
    let mut ledger = RoundLedger::new();
    let (seq, wall) =
        time_ms(|| randomized_list_coloring(&g, None, &lists, 7, 10_000, &mut ledger));
    assert!(seq.complete);
    rows.push(row(
        records,
        record(family, "randomized", g.n(), 0, ledger.total(), 0, wall),
    ));
    for shards in SHARD_SWEEP {
        let mut ledger = RoundLedger::new();
        let ((out, metrics), wall) = time_ms(|| {
            engine_randomized_list_coloring(
                &g,
                &lists,
                7,
                10_000,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            )
        });
        assert_eq!(
            out.colors, seq.colors,
            "engine must replay the sequential run"
        );
        rows.push(row(
            records,
            record(
                family,
                "randomized",
                g.n(),
                shards,
                metrics.total_rounds(),
                metrics.total_messages(),
                wall,
            ),
        ));
    }
    print_table(
        &format!("randomized (deg+1)-list coloring, {family}, n = {}", g.n()),
        &["run", "rounds", "messages", "wall ms"],
        &rows,
    );
}

fn h_partition_showdown(n: usize, records: &mut Vec<EngineBenchRecord>) {
    let family = "forest-union-a2";
    let g = gen::forest_union(n, 2, 11);
    let mut rows = Vec::new();
    let mut ledger = RoundLedger::new();
    let (seq, wall) = time_ms(|| h_partition(&g, None, 2, 1.0, &mut ledger));
    rows.push(row(
        records,
        record(family, "h-partition", g.n(), 0, ledger.total(), 0, wall),
    ));
    for shards in SHARD_SWEEP {
        let mut ledger = RoundLedger::new();
        let ((hp, metrics), wall) = time_ms(|| {
            engine_h_partition(
                &g,
                2,
                1.0,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            )
        });
        assert_eq!(hp.layer, seq.layer);
        rows.push(row(
            records,
            record(
                family,
                "h-partition",
                g.n(),
                shards,
                metrics.total_rounds(),
                metrics.total_messages(),
                wall,
            ),
        ));
    }
    print_table(
        &format!("Barenboim–Elkin H-partition, {family}, n = {}", g.n()),
        &["run", "rounds", "messages", "wall ms"],
        &rows,
    );
}

fn cole_vishkin_showdown(n: usize, records: &mut Vec<EngineBenchRecord>) {
    let family = "random-tree";
    let g = gen::random_tree(n, 13);
    let f = RootedForest::new(graphs::bfs_parents(&g, 0, None));
    let mut rows = Vec::new();
    let mut ledger = RoundLedger::new();
    let (seq, wall) = time_ms(|| cole_vishkin_3color(&f, &mut ledger));
    rows.push(row(
        records,
        record(family, "cole-vishkin", g.n(), 0, ledger.total(), 0, wall),
    ));
    for shards in SHARD_SWEEP {
        let mut ledger = RoundLedger::new();
        let ((colors, metrics), wall) = time_ms(|| {
            engine_cole_vishkin_3color(&f, EngineConfig::default().with_shards(shards), &mut ledger)
        });
        assert_eq!(colors, seq);
        rows.push(row(
            records,
            record(
                family,
                "cole-vishkin",
                g.n(),
                shards,
                metrics.total_rounds(),
                metrics.total_messages(),
                wall,
            ),
        ));
    }
    print_table(
        &format!("Cole–Vishkin 3-coloring, {family}, n = {}", g.n()),
        &["run", "rounds", "messages", "wall ms"],
        &rows,
    );
}
