//! Engine-vs-sequential throughput tables + the `BENCH_engine.json` artifact.
//!
//! ```sh
//! cargo run --release -p bench --bin engine_table                    # n ∈ {1k, 10k, 50k}
//! cargo run --release -p bench --bin engine_table -- 5000            # custom n
//! cargo run --release -p bench --bin engine_table -- --reps=5 20000  # best-of-5
//! cargo run --release -p bench --bin engine_table -- --xl            # n ∈ {100k, 1M}
//! cargo run --release -p bench --bin engine_table -- --xxl           # n ∈ {1M, 10M}
//! ```
//!
//! `--xl` is the million-node tier: n ∈ {10⁵, 10⁶} on the two linear-cost
//! showdowns (H-partition and Cole–Vishkin — the workloads whose sequential
//! twins stay O(n · α) at a million vertices), single rep by default (a
//! 10⁶-vertex run is its own noise floor; pass `--reps=N` to override).
//! At the tier's largest n it adds a reduced ruling-forest block — seq,
//! engine/1, engine/8, and an engine/8 `--no-frontier` twin — so the
//! frontier-speedup gate has a decaying-frontier pair to judge. CI's
//! `bench-xl` job runs exactly this tier and feeds the artifact to
//! `bench_gate --min-shard-speedup` / `--min-frontier-speedup`. `--xxl` is
//! the same workload set at n ∈ {10⁶, 10⁷} — the ten-million-vertex point
//! is opt-in (not wired into CI) because a single run is minutes of wall
//! time.
//!
//! The default tier additionally emits **frontier twin rows** for the
//! ruling and theorem13 showdowns at the tier's largest n — the identical
//! configuration rerun under `EngineConfig::with_frontier(false)`, labeled
//! `full-scan` and marked `"frontier": false` in the artifact — plus a
//! **quiescent microbench** (`algorithm = "quiescent"`): a path where only
//! one edge ever carries traffic, so per-round driver cost is pure
//! bookkeeping. Its frontier-on walls should stay flat as n grows 100×
//! while the full-scan baseline row (recorded in the `shards = 0` slot —
//! there is no meaningful sequential twin for a driver microbench) grows
//! linearly.
//!
//! For each workload family (resolved through the [`gen::build_family`]
//! registry, so the bench and the scenario lab measure the same graphs) and
//! algorithm, runs the sequential implementation and the engine at a sweep
//! of shard counts — each configuration `reps` times, keeping the best wall
//! time (the standard noise-rejection move; rounds/messages are identical
//! across reps by the determinism contract, which every rep re-asserts) and
//! the across-reps median (`p50 ms`, the honest figure next to the
//! optimistic best-of). Prints
//! wall-clock/round/message tables (now with per-run routing-phase time —
//! the second barrier phase each worker spends draining and sorting its own
//! inboxes) plus a sequential-vs-sharded **crossover table** (where sharding
//! starts paying for itself, and what fraction of the 8-shard wall time is
//! routing), and writes every
//! measurement to `BENCH_engine.json` (see [`bench::engine_report`]) so
//! future PRs can track the perf trajectory mechanically — CI's
//! `bench_gate` consumes exactly that artifact.

use std::time::Instant;

use bench::{print_table, render_engine_bench_json, EngineBenchRecord};
use distributed_coloring::{
    list_color_sparse, ListAssignment, SparseColoring, SparseColoringConfig,
};
use engine::{
    engine_cole_vishkin_3color, engine_gather_balls, engine_h_partition,
    engine_randomized_list_coloring, engine_ruling_forest, Activation, CongestMode, EngineConfig,
    EngineMessage, EngineMetrics, EngineSession, NodeCtx, NodeProgram, Outbox, Stop, VertexOrder,
    WireCodec, SPLIT_PHASE,
};
use graphs::gen;
use local_model::{
    cole_vishkin_3color, gather_balls, h_partition, randomized_list_coloring, ruling_forest,
    RootedForest, RoundLedger,
};

const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Shard counts at which the CONGEST-split twin rows run.
const SPLIT_SHARDS: [usize; 2] = [1, 8];
/// Word budget of the split rows (`CongestMode::Split(SPLIT_WIDTH)`).
const SPLIT_WIDTH: usize = 4;
const DEFAULT_SIZES: [usize; 3] = [1_000, 10_000, 50_000];
const DEFAULT_REPS: usize = 3;
/// The `--xl` tier: million-node territory, linear-cost showdowns only.
const XL_SIZES: [usize; 2] = [100_000, 1_000_000];
/// The opt-in `--xxl` tier: the ten-million-vertex point.
const XXL_SIZES: [usize; 2] = [1_000_000, 10_000_000];
/// Sizes of the quiescent-round driver microbench (default tier only):
/// flat frontier-on walls across this 100× range are the O(frontier)
/// claim, measured.
const QUIESCENT_SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];
/// Rounds each quiescent run executes (`Stop::Rounds`, no halting).
const QUIESCENT_ROUNDS: u64 = 256;

fn main() {
    let mut sizes: Vec<usize> = Vec::new();
    let mut reps: Option<usize> = None;
    let mut xl = false;
    let mut xxl = false;
    for arg in std::env::args().skip(1) {
        if arg == "--xl" {
            xl = true;
        } else if arg == "--xxl" {
            xl = true;
            xxl = true;
        } else if let Some(r) = arg.strip_prefix("--reps=") {
            let r: usize = r.parse().expect("--reps=N takes an integer");
            assert!(r >= 1, "--reps must be at least 1");
            reps = Some(r);
        } else {
            sizes.push(arg.parse().unwrap_or_else(|_| {
                panic!("arguments are sizes (integers), --reps=N, --xl, or --xxl, got {arg:?}")
            }));
        }
    }
    if sizes.is_empty() {
        sizes = if xxl {
            XXL_SIZES.to_vec()
        } else if xl {
            XL_SIZES.to_vec()
        } else {
            DEFAULT_SIZES.to_vec()
        };
    }
    // A single 10⁶-vertex run dominates its own noise; default xl to one rep.
    let reps = reps.unwrap_or(if xl { 1 } else { DEFAULT_REPS });
    // Frontier twin rows run once per artifact, at the tier's largest n —
    // that is where `bench_gate --min-frontier-speedup` judges each pair.
    let largest = *sizes.iter().max().expect("at least one size");
    let mut records: Vec<EngineBenchRecord> = Vec::new();
    for &n in &sizes {
        let twin = n == largest;
        if xl {
            // Order twins run at every xl/xxl size — the locality-vs-identity
            // comparison is exactly what the million-node tiers exist to
            // measure (the 10⁶/10⁷ L3-crossover rows).
            h_partition_showdown(n, reps, &mut records, true);
            // The streaming-CSR planar tier: apollonian triangulations are
            // 3-degenerate, so the peel runs with a = 3.
            h_partition_family(n, reps, &mut records, "apollonian", 7, 3, true);
            cole_vishkin_showdown(n, reps, &mut records, true);
            if twin {
                // The gate's frontier pair: ruling is the tier's only
                // decaying-frontier workload, so only it gets the reduced
                // seq/engine-1/engine-8/full-scan block at xl sizes.
                ruling_rows(n, reps, &mut records, &[(1, 0), (8, 0)], true);
            }
            continue;
        }
        randomized_showdown(n, reps, &mut records);
        h_partition_showdown(n, reps, &mut records, twin);
        cole_vishkin_showdown(n, reps, &mut records, twin);
        gather_showdown(n, reps, &mut records);
        ruling_rows(n, reps, &mut records, &configurations(), twin);
        theorem13_showdown(n, reps, &mut records, twin);
    }
    if !xl {
        quiescent_showdown(reps, &mut records);
    }
    print_crossover(&records);
    let json = render_engine_bench_json(&records);
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote {} records to BENCH_engine.json", records.len());
}

/// The wall-clock summary of one measured configuration across its reps.
#[derive(Clone, Copy)]
struct Timing {
    /// Best-of-reps wall time (the noise-rejection figure).
    best_ms: f64,
    /// Nearest-rank median across all reps.
    p50_ms: f64,
}

/// Runs `f` `reps` times, recording every rep's wall time; returns the
/// output of the best rep plus the best-of/median summary. Correctness
/// checks live inside `f`, so every rep re-asserts them — not just the
/// kept one.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Timing) {
    let mut best: Option<(T, f64)> = None;
    let mut walls = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        walls.push(ms);
        match &best {
            Some((_, b)) if *b <= ms => {}
            _ => best = Some((out, ms)),
        }
    }
    walls.sort_by(f64::total_cmp);
    // Nearest-rank p50: rank ⌈k/2⌉, 1-based (matches the lab's percentile).
    let p50_ms = walls[walls.len().div_ceil(2) - 1];
    let (out, best_ms) = best.expect("reps >= 1");
    (out, Timing { best_ms, p50_ms })
}

/// Builds a registry family, panicking on a name the registry doesn't know
/// (a bench bug, not an input error).
fn build(family: &str, n: usize, seed: u64) -> graphs::Graph {
    gen::build_family(family, n, seed)
        .unwrap_or_else(|| panic!("family {family:?} is not in the gen registry"))
}

/// The table header every showdown prints (matches [`row`]'s cells).
const COLUMNS: [&str; 8] = [
    "run", "rounds", "phys", "messages", "frags", "wall ms", "p50 ms", "route ms",
];

fn row(records: &mut Vec<EngineBenchRecord>, rec: EngineBenchRecord) -> Vec<String> {
    let mut label = match (rec.shards, rec.split, rec.frontier) {
        // The quiescent microbench parks its full-scan engine baseline in
        // the sequential slot; every true sequential row has frontier=true.
        (0, _, false) => "full-scan".into(),
        (0, _, true) => "sequential".into(),
        (s, 0, true) => format!("engine/{s}"),
        (s, 0, false) => format!("engine/{s} full-scan"),
        (s, w, true) => format!("engine/{s} split{w}"),
        (s, w, false) => format!("engine/{s} split{w} full-scan"),
    };
    if rec.locality {
        label.push_str(" local");
    }
    let cells = vec![
        label,
        format!("{}", rec.rounds),
        format!("{}", rec.physical_rounds),
        format!("{}", rec.messages),
        format!("{}", rec.fragments),
        format!("{:.2}", rec.wall_ms),
        format!("{:.2}", rec.p50_ms),
        format!("{:.2}", rec.route_ms),
    ];
    records.push(rec);
    cells
}

/// A sequential-baseline record: `shards = 0`, nothing routed.
fn seq_record(
    family: &str,
    algorithm: &str,
    n: usize,
    rounds: u64,
    timing: Timing,
) -> EngineBenchRecord {
    EngineBenchRecord {
        active_frac: 1.0,
        family: family.into(),
        algorithm: algorithm.into(),
        n,
        shards: 0,
        rounds,
        messages: 0,
        wall_ms: timing.best_ms,
        p50_ms: timing.p50_ms,
        route_ms: 0.0,
        split: 0,
        physical_rounds: rounds,
        fragments: 0,
        frontier: true,
        frontier_skipped: 0,
        locality: false,
        rank_routing: false,
    }
}

/// An engine-run record built from the session's observed metrics.
fn engine_record(
    family: &str,
    algorithm: &str,
    n: usize,
    shards: usize,
    split: usize,
    metrics: &EngineMetrics,
    timing: Timing,
) -> EngineBenchRecord {
    EngineBenchRecord {
        active_frac: metrics.mean_active_frac(),
        family: family.into(),
        algorithm: algorithm.into(),
        n,
        shards,
        rounds: metrics.total_rounds(),
        messages: metrics.total_messages(),
        wall_ms: timing.best_ms,
        p50_ms: timing.p50_ms,
        route_ms: metrics.total_route_wall().as_secs_f64() * 1e3,
        split,
        physical_rounds: metrics.total_physical_rounds(),
        fragments: metrics.total_fragments(),
        frontier: true,
        frontier_skipped: metrics.total_frontier_skipped(),
        locality: false,
        // Every engine row in this artifact version was measured on the
        // sender-rank counting pass; legacy rows parse to `false`.
        rank_routing: true,
    }
}

/// The engine config of one measured configuration (`split = 0` →
/// unlimited width).
fn engine_config(shards: usize, split: usize) -> EngineConfig {
    let config = EngineConfig::default().with_shards(shards);
    if split == 0 {
        config
    } else {
        config.congest_split(split)
    }
}

/// The `(shards, split)` grid every engine workload measures: the unlimited
/// shard sweep plus the CONGEST-split twin rows.
fn configurations() -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = SHARD_SWEEP.iter().map(|&s| (s, 0)).collect();
    out.extend(SPLIT_SHARDS.iter().map(|&s| (s, SPLIT_WIDTH)));
    out
}

fn randomized_showdown(n: usize, reps: usize, records: &mut Vec<EngineBenchRecord>) {
    let family = "random-4-regular";
    let g = build(family, n, 7);
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut rows = Vec::new();
    let ((seq, seq_rounds), wall) = best_of(reps, || {
        let mut ledger = RoundLedger::new();
        let out = randomized_list_coloring(&g, None, &lists, 7, 10_000, &mut ledger);
        assert!(out.complete);
        let total = ledger.total();
        (out, total)
    });
    rows.push(row(
        records,
        seq_record(family, "randomized", g.n(), seq_rounds, wall),
    ));
    for shards in SHARD_SWEEP {
        let ((_out, metrics), wall) = best_of(reps, || {
            let mut ledger = RoundLedger::new();
            let run = engine_randomized_list_coloring(
                &g,
                None,
                &lists,
                7,
                10_000,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            assert_eq!(
                run.0.colors, seq.colors,
                "engine must replay the sequential run"
            );
            run
        });
        rows.push(row(
            records,
            engine_record(family, "randomized", g.n(), shards, 0, &metrics, wall),
        ));
    }
    print_table(
        &format!("randomized (deg+1)-list coloring, {family}, n = {}", g.n()),
        &COLUMNS,
        &rows,
    );
}

fn h_partition_showdown(n: usize, reps: usize, records: &mut Vec<EngineBenchRecord>, twin: bool) {
    h_partition_family(n, reps, records, "forest-union-a2", 11, 2, twin);
}

/// The H-partition showdown on one registry family: `a` is the arboricity
/// bound fed to the peel (2 for the forest union, 3 for the planar
/// triangulations — apollonian graphs are 3-degenerate), `eps = 1.0`
/// either way. The xl tier runs this on both families, so the gate judges
/// the streaming-CSR generators' graphs, not just the forest union's.
/// With `twin` set, the largest-shard configuration reruns under
/// `VertexOrder::Locality` — the cache-local relabeling's identity-twin
/// pair that `bench_gate --min-order-speedup` judges.
fn h_partition_family(
    n: usize,
    reps: usize,
    records: &mut Vec<EngineBenchRecord>,
    family: &str,
    seed: u64,
    a: usize,
    twin: bool,
) {
    let g = build(family, n, seed);
    let mut rows = Vec::new();
    let ((seq, seq_rounds), wall) = best_of(reps, || {
        let mut ledger = RoundLedger::new();
        let out = h_partition(&g, None, a, 1.0, &mut ledger);
        let total = ledger.total();
        (out, total)
    });
    rows.push(row(
        records,
        seq_record(family, "h-partition", g.n(), seq_rounds, wall),
    ));
    for shards in SHARD_SWEEP {
        let ((_hp, metrics), wall) = best_of(reps, || {
            let mut ledger = RoundLedger::new();
            let run = engine_h_partition(
                &g,
                None,
                a,
                1.0,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            assert_eq!(run.0.layer, seq.layer, "engine must replay the peel");
            run
        });
        rows.push(row(
            records,
            engine_record(family, "h-partition", g.n(), shards, 0, &metrics, wall),
        ));
    }
    if twin {
        let shards = *SHARD_SWEEP.last().unwrap();
        let ((_hp, metrics), wall) = best_of(reps, || {
            let mut ledger = RoundLedger::new();
            let run = engine_h_partition(
                &g,
                None,
                a,
                1.0,
                EngineConfig::default()
                    .with_shards(shards)
                    .with_order(VertexOrder::Locality),
                &mut ledger,
            );
            assert_eq!(run.0.layer, seq.layer, "relabeled run must replay the peel");
            run
        });
        let mut rec = engine_record(family, "h-partition", g.n(), shards, 0, &metrics, wall);
        rec.locality = true;
        rows.push(row(records, rec));
    }
    print_table(
        &format!("Barenboim–Elkin H-partition, {family}, n = {}", g.n()),
        &COLUMNS,
        &rows,
    );
}

fn cole_vishkin_showdown(n: usize, reps: usize, records: &mut Vec<EngineBenchRecord>, twin: bool) {
    let family = "random-tree";
    let g = build(family, n, 13);
    let f = RootedForest::new(graphs::bfs_parents(&g, 0, None));
    let mut rows = Vec::new();
    let ((seq, seq_rounds), wall) = best_of(reps, || {
        let mut ledger = RoundLedger::new();
        let out = cole_vishkin_3color(&f, &mut ledger);
        let total = ledger.total();
        (out, total)
    });
    rows.push(row(
        records,
        seq_record(family, "cole-vishkin", g.n(), seq_rounds, wall),
    ));
    for shards in SHARD_SWEEP {
        let ((_colors, metrics), wall) = best_of(reps, || {
            let mut ledger = RoundLedger::new();
            let run = engine_cole_vishkin_3color(
                &f,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            assert_eq!(run.0, seq, "engine must replay the sequential colors");
            run
        });
        rows.push(row(
            records,
            engine_record(family, "cole-vishkin", g.n(), shards, 0, &metrics, wall),
        ));
    }
    if twin {
        let shards = *SHARD_SWEEP.last().unwrap();
        let ((_colors, metrics), wall) = best_of(reps, || {
            let mut ledger = RoundLedger::new();
            let run = engine_cole_vishkin_3color(
                &f,
                EngineConfig::default()
                    .with_shards(shards)
                    .with_order(VertexOrder::Locality),
                &mut ledger,
            );
            assert_eq!(run.0, seq, "relabeled run must replay the colors");
            run
        });
        let mut rec = engine_record(family, "cole-vishkin", g.n(), shards, 0, &metrics, wall);
        rec.locality = true;
        rows.push(row(records, rec));
    }
    print_table(
        &format!("Cole–Vishkin 3-coloring, {family}, n = {}", g.n()),
        &COLUMNS,
        &rows,
    );
}

/// Radius-3 ball gathering on a square grid — the `Vec`-payload flood whose
/// width is the reason split mode exists (hop-3 forwards ~8 fresh members,
/// over the 4-word split budget). Unlimited rows across the shard sweep,
/// then `Split(SPLIT_WIDTH)` twin rows whose outputs are asserted identical
/// (fragmentation is charged, never semantic).
fn gather_showdown(n: usize, reps: usize, records: &mut Vec<EngineBenchRecord>) {
    let family = "grid";
    let g = build(family, n, 0);
    let centers: Vec<usize> = (0..g.n()).collect();
    let radius = 3;
    let mut rows = Vec::new();
    let ((seq, seq_rounds), wall) = best_of(reps, || {
        let mut ledger = RoundLedger::new();
        let balls = gather_balls(&g, None, &centers, radius, &mut ledger);
        let total = ledger.total();
        (balls, total)
    });
    rows.push(row(
        records,
        seq_record(family, "gather", g.n(), seq_rounds, wall),
    ));
    for (shards, split) in configurations() {
        let ((balls, metrics), wall) = best_of(reps, || {
            let mut ledger = RoundLedger::new();
            engine_gather_balls(
                &g,
                None,
                &centers,
                radius,
                engine_config(shards, split),
                &mut ledger,
            )
        });
        // Checked outside the timed region (the all-balls comparison is
        // O(n·|B|)); reps replay bit-identically, so one check covers all.
        assert_eq!(balls, seq, "engine must replay the sequential balls");
        rows.push(row(
            records,
            engine_record(family, "gather", g.n(), shards, split, &metrics, wall),
        ));
    }
    print_table(
        &format!("radius-{radius} ball gather, {family}, n = {}", g.n()),
        &COLUMNS,
        &rows,
    );
}

/// The AGLP ruling-forest construction — token floods plus claim/prune
/// BFS — on the given `(shards, split)` grid. α = 6 over an
/// every-other-vertex subset pushes the token floods to width ~8, past the
/// 4-word split budget, so split rows (when the grid has them) exercise
/// real fragmentation. With `twin` set, the largest-shard unlimited
/// configuration reruns under `with_frontier(false)` — the full-scan row
/// the `bench_gate --min-frontier-speedup` budget compares against; ruling
/// is the gate's chosen workload because its frontier genuinely decays
/// (surviving rulers plus token recipients), so the twin measures the
/// skip machinery's payoff, not its overhead.
fn ruling_rows(
    n: usize,
    reps: usize,
    records: &mut Vec<EngineBenchRecord>,
    configs: &[(usize, usize)],
    twin: bool,
) {
    let family = "grid";
    let g = build(family, n, 0);
    let subset: Vec<usize> = (0..g.n()).step_by(2).collect();
    let alpha = 6;
    let mut rows = Vec::new();
    let ((seq, seq_rounds), wall) = best_of(reps, || {
        let mut ledger = RoundLedger::new();
        let rf = ruling_forest(&g, None, &subset, alpha, &mut ledger);
        let total = ledger.total();
        (rf, total)
    });
    rows.push(row(
        records,
        seq_record(family, "ruling", g.n(), seq_rounds, wall),
    ));
    let twin_shards = configs.iter().map(|&(s, _)| s).max().unwrap_or(1);
    let mut measured: Vec<(usize, usize, bool, bool)> =
        configs.iter().map(|&(s, w)| (s, w, true, false)).collect();
    if twin {
        measured.push((twin_shards, 0, false, false));
        // The order twin: the same largest-shard configuration relabeled
        // cache-local, for `bench_gate --min-order-speedup`.
        measured.push((twin_shards, 0, true, true));
    }
    for (shards, split, frontier, locality) in measured {
        let order = if locality {
            VertexOrder::Locality
        } else {
            VertexOrder::Identity
        };
        let ((rf, metrics), wall) = best_of(reps, || {
            let mut ledger = RoundLedger::new();
            engine_ruling_forest(
                &g,
                None,
                &subset,
                alpha,
                engine_config(shards, split)
                    .with_frontier(frontier)
                    .with_order(order),
                &mut ledger,
            )
        });
        // Checked outside the timed region; reps replay bit-identically.
        assert_eq!(rf.roots, seq.roots, "engine must replay the roots");
        assert_eq!(rf.parent, seq.parent, "engine must replay the forest");
        let mut rec = engine_record(family, "ruling", g.n(), shards, split, &metrics, wall);
        rec.frontier = frontier;
        rec.locality = locality;
        rows.push(row(records, rec));
    }
    print_table(
        &format!(
            "(α, β)-ruling forest (α = {alpha}), {family}, n = {}",
            g.n()
        ),
        &COLUMNS,
        &rows,
    );
}

/// The whole Theorem 1.3 pipeline — classification gathers, clique
/// detection, ruling forests, per-level coloring, layered greedy — as one
/// composite workload: sequential simulation vs the all-phases-on-the-engine
/// mode (`SparseColoringConfig::engine_shards`). Rounds are the full-ledger
/// totals; messages, routing time, and fragmentation come from the
/// aggregated `SparseColoring::engine_metrics`. The final row runs the
/// pipeline under `CongestMode::Split(SPLIT_WIDTH)` — identical colors, the
/// split surplus charged under `SPLIT_PHASE`. With `twin` set, the
/// largest-shard unlimited configuration reruns with
/// `engine_frontier: false` — every internal session of the pipeline on
/// the historical full scan — for the frontier-speedup gate.
fn theorem13_showdown(n: usize, reps: usize, records: &mut Vec<EngineBenchRecord>, twin: bool) {
    let family = "apollonian";
    let d = 6;
    let g = build(family, n, 7);
    let lists = ListAssignment::uniform(g.n(), d);
    let mut rows = Vec::new();
    let ((seq, seq_rounds), wall) = best_of(reps, || {
        let outcome = list_color_sparse(&g, &lists, d, SparseColoringConfig::default())
            .expect("sequential theorem13 runs");
        let col = outcome.coloring().expect("planar instance colors").clone();
        let total = col.ledger.total();
        (col, total)
    });
    rows.push(row(
        records,
        seq_record(family, "theorem13", g.n(), seq_rounds, wall),
    ));
    let t13_record = |col: &SparseColoring, shards, split, frontier, wall: Timing| {
        let m = &col.engine_metrics;
        let surplus = col.ledger.phase_total(SPLIT_PHASE);
        EngineBenchRecord {
            active_frac: m.mean_active_frac(),
            family: family.into(),
            algorithm: "theorem13".into(),
            n: g.n(),
            shards,
            // Logical rounds: the full-ledger charge, comparable to the
            // sequential row; physical adds the observed split surplus.
            rounds: seq_rounds,
            messages: m.total_messages(),
            wall_ms: wall.best_ms,
            p50_ms: wall.p50_ms,
            route_ms: m.total_route_wall().as_secs_f64() * 1e3,
            split,
            physical_rounds: seq_rounds + surplus,
            fragments: m.total_fragments(),
            frontier,
            frontier_skipped: m.total_frontier_skipped(),
            locality: false,
            rank_routing: true,
        }
    };
    let mut configs: Vec<(usize, usize, bool)> =
        SHARD_SWEEP.iter().map(|&s| (s, 0, true)).collect();
    configs.push((*SPLIT_SHARDS.last().unwrap(), SPLIT_WIDTH, true));
    if twin {
        configs.push((*SHARD_SWEEP.last().unwrap(), 0, false));
    }
    for (shards, split, frontier) in configs {
        let (col, wall) = best_of(reps, || {
            let config = SparseColoringConfig {
                engine_shards: Some(shards),
                engine_congest: if split == 0 {
                    CongestMode::Unlimited
                } else {
                    CongestMode::Split(split)
                },
                engine_frontier: frontier,
                ..Default::default()
            };
            let outcome = list_color_sparse(&g, &lists, d, config).expect("engine theorem13 runs");
            let col = outcome.coloring().expect("planar instance colors").clone();
            assert_eq!(
                col.colors, seq.colors,
                "engine mode must replay the sequential coloring"
            );
            assert_eq!(
                col.ledger.total() - col.ledger.phase_total(SPLIT_PHASE),
                seq_rounds,
                "split surplus must be the only ledger divergence"
            );
            col
        });
        rows.push(row(
            records,
            t13_record(&col, shards, split, frontier, wall),
        ));
    }
    print_table(
        &format!(
            "Theorem 1.3 end-to-end (all phases on the engine), {family}, n = {}",
            g.n()
        ),
        &COLUMNS,
        &rows,
    );
}

/// The quiescent microbench's one-word message.
#[derive(Clone, Debug)]
struct Ping;

impl WireCodec for Ping {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(1);
    }
    fn decode(words: &[u64]) -> Option<Self> {
        (words == [1]).then_some(Ping)
    }
}

impl EngineMessage for Ping {
    const MAX_WIDTH: Option<usize> = Some(1);
}

/// One endlessly echoing edge on an otherwise silent path: node 0 serves a
/// ping at init, and from then on whoever holds it sends it back. Every
/// node is `OnMessage`, so the per-round frontier is exactly one node —
/// what the quiescent bench measures is the driver's cost for the other
/// n − 1.
struct EchoProgram;

impl NodeProgram for EchoProgram {
    type Message = Ping;

    fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<Ping> {
        if ctx.id == 0 {
            Outbox::Unicast(1, Ping)
        } else {
            Outbox::Silent
        }
    }

    fn on_round(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        inbox: &[(graphs::VertexId, Ping)],
    ) -> Outbox<Ping> {
        match inbox.first() {
            Some(&(src, _)) => Outbox::Unicast(src, Ping),
            None => Outbox::Silent,
        }
    }

    fn halted(&self) -> bool {
        false
    }

    fn activation(&self) -> Activation {
        Activation::OnMessage
    }
}

/// One quiescent configuration, timed over the rounds only — session
/// construction is O(n) by necessity (contexts, mailboxes, the shard plan)
/// and would drown the per-round driver cost the bench exists to expose,
/// so `best_of` doesn't fit here.
fn quiescent_run(g: &graphs::Graph, frontier: bool, reps: usize) -> (EngineMetrics, Timing) {
    let mut best: Option<(EngineMetrics, f64)> = None;
    let mut walls = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut sess = EngineSession::new(
            g,
            EngineConfig::default()
                .with_shards(1)
                .with_frontier(frontier),
            |_| EchoProgram,
        );
        let t0 = Instant::now();
        sess.run_phase("echo", Stop::Rounds(QUIESCENT_ROUNDS));
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        walls.push(ms);
        let metrics = sess.into_parts().1;
        match &best {
            Some((_, b)) if *b <= ms => {}
            _ => best = Some((metrics, ms)),
        }
    }
    walls.sort_by(f64::total_cmp);
    let p50_ms = walls[walls.len().div_ceil(2) - 1];
    let (metrics, best_ms) = best.expect("reps >= 1");
    (metrics, Timing { best_ms, p50_ms })
}

/// The quiescent-round driver microbench: [`EchoProgram`] on a path at
/// each of [`QUIESCENT_SIZES`], full scan vs frontier. The full-scan run
/// lands in the artifact's `shards = 0` slot (marked `"frontier": false`)
/// — there is no sequential twin for a driver microbench, and the gate's
/// pair bookkeeping wants a baseline row — the frontier run as `engine/1`.
/// Flat frontier-on walls across the 100× size range are the tentpole's
/// O(frontier) claim; the full-scan walls grow linearly.
fn quiescent_showdown(reps: usize, records: &mut Vec<EngineBenchRecord>) {
    let family = "path";
    for &n in &QUIESCENT_SIZES {
        let g = build(family, n, 0);
        let (scan, scan_wall) = quiescent_run(&g, false, reps);
        let (front, front_wall) = quiescent_run(&g, true, reps);
        // The frontier run must be a pure skip: identical traffic and
        // rounds, with exactly the n − 1 silent nodes skipped every round.
        assert_eq!(front.total_rounds(), scan.total_rounds());
        assert_eq!(front.message_counts(), scan.message_counts());
        assert_eq!(scan.total_frontier_skipped(), 0);
        assert_eq!(
            front.total_frontier_skipped(),
            (n - 1) * QUIESCENT_ROUNDS as usize,
            "every round steps exactly the one node holding the ping"
        );
        let mut rows = Vec::new();
        let mut base = engine_record(family, "quiescent", g.n(), 0, 0, &scan, scan_wall);
        base.frontier = false;
        rows.push(row(records, base));
        rows.push(row(
            records,
            engine_record(family, "quiescent", g.n(), 1, 0, &front, front_wall),
        ));
        print_table(
            &format!("quiescent rounds (one echoing edge), {family}, n = {n}"),
            &COLUMNS,
            &rows,
        );
    }
}

/// The crossover table: for every `(algorithm, n)` cell, how the engine
/// scales against itself and against the sequential substrate. Columns:
/// sequential ms, engine at 1 and 8 shards, the best shard count, the
/// engine/1-vs-sequential overhead ratio, and the shards=8 / shards=1 ratio
/// (≤ 1.00 means sharding has crossed over — more shards is no longer a
/// cost).
fn print_crossover(records: &[EngineBenchRecord]) {
    let mut keys: Vec<(String, usize)> = records
        .iter()
        .filter(|r| r.shards == 0)
        .map(|r| (r.algorithm.clone(), r.n))
        .collect();
    keys.sort();
    keys.dedup();
    let find = |alg: &str, n: usize, shards: usize| {
        records.iter().find(|r| {
            r.algorithm == alg
                && r.n == n
                && r.shards == shards
                && r.split == 0
                && r.frontier
                && !r.locality
        })
    };
    let mut rows = Vec::new();
    for (alg, n) in keys {
        let (Some(seq), Some(s1), Some(s8)) =
            (find(&alg, n, 0), find(&alg, n, 1), find(&alg, n, 8))
        else {
            continue;
        };
        let best = records
            .iter()
            .filter(|r| {
                r.algorithm == alg
                    && r.n == n
                    && r.shards > 0
                    && r.split == 0
                    && r.frontier
                    && !r.locality
            })
            .min_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms))
            .expect("s1 exists");
        rows.push(vec![
            alg.clone(),
            format!("{n}"),
            format!("{:.2}", seq.wall_ms),
            format!("{:.2}", s1.wall_ms),
            format!("{:.2}", s8.wall_ms),
            format!("{}", best.shards),
            format!("{:.2}", s1.wall_ms / seq.wall_ms.max(f64::EPSILON)),
            format!("{:.2}", s8.wall_ms / s1.wall_ms.max(f64::EPSILON)),
            format!("{:.2}", s8.route_ms / s8.wall_ms.max(f64::EPSILON)),
        ]);
    }
    print_table(
        "crossover: sequential vs sharded engine (best-of-reps wall ms)",
        &[
            "algorithm",
            "n",
            "seq ms",
            "engine/1",
            "engine/8",
            "best",
            "e1/seq",
            "e8/e1",
            "route/8",
        ],
        &rows,
    );
}
