//! Experiment-table harness: regenerates every table of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p bench --bin tables            # all experiments
//! cargo run --release -p bench --bin tables -- E1 E4   # a selection
//! ```

use bench::{distinct_colors, e1_workloads, log2_cubed, print_table, run_theorem13};
use distributed_coloring::{
    analysis, brooks_list_coloring, classify, color_genus, heawood_number, nice_list_coloring,
    paper_radius, ListAssignment,
};
use graphs::{gen, VertexSet};
use local_model::{
    barenboim_elkin_coloring, gps_seven_coloring, randomized_list_coloring, ruling_forest,
    RoundLedger,
};
use lower_bounds::{h_graph, indistinguishability_radius, locally_planar_5chromatic, path_power3};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |id: &str| all || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    if want("E1") {
        e1_theorem13_scaling();
    }
    if want("E2") {
        e2_arboricity_vs_barenboim_elkin();
    }
    if want("E3") {
        e3_planar_ladder();
    }
    if want("E4") {
        e4_lemma31_happy_fractions();
    }
    if want("E5") {
        e5_locally_planar_5chromatic();
    }
    if want("E6") {
        e6_klein_indistinguishability();
    }
    if want("E7") {
        e7_brooks_and_nice_lists();
    }
    if want("E8") {
        e8_ruling_forest_quality();
    }
    if want("E9") {
        e9_proposition44();
    }
    if want("E10") {
        e10_genus();
    }
    if want("E11") {
        e11_radius_policy_ablation();
    }
    if want("E12") {
        e12_deterministic_vs_randomized();
    }
}

/// E1 — Theorem 1.3: colors ≤ d and polylog round scaling.
fn e1_theorem13_scaling() {
    let mut rows = Vec::new();
    for n in [64usize, 128, 256, 512, 1024, 2048] {
        for w in e1_workloads(n, 97) {
            let res = run_theorem13(&w.graph, w.d);
            rows.push(vec![
                w.name.into(),
                w.graph.n().to_string(),
                w.d.to_string(),
                distinct_colors(&res.colors).to_string(),
                res.stats.levels().to_string(),
                res.ledger.total().to_string(),
                format!("{:.2}", res.ledger.total() as f64 / log2_cubed(w.graph.n())),
            ]);
        }
    }
    print_table(
        "E1  Theorem 1.3: d-list-coloring, round scaling vs log₂³ n",
        &[
            "family",
            "n",
            "d",
            "colors",
            "levels",
            "rounds",
            "rounds/log₂³n",
        ],
        &rows,
    );
    println!("shape check: colors ≤ d always; rounds/log₂³n stays bounded as n grows.");
}

/// E2 — Corollary 1.4 vs the Barenboim–Elkin baseline.
fn e2_arboricity_vs_barenboim_elkin() {
    let mut rows = Vec::new();
    for a in [2usize, 3, 4, 5] {
        for eps in [0.1f64, 1.0] {
            let n = 600;
            let g = gen::forest_union(n, a, 1000 + a as u64);
            let mut be_ledger = RoundLedger::new();
            let be = barenboim_elkin_coloring(&g, None, a, eps, &mut be_ledger);
            let be_palette = ((2.0 + eps) * a as f64).floor() as usize + 1;
            let ours = run_theorem13(&g, 2 * a);
            rows.push(vec![
                a.to_string(),
                format!("{eps:.1}"),
                be_palette.to_string(),
                distinct_colors(&be).to_string(),
                be_ledger.total().to_string(),
                (2 * a).to_string(),
                distinct_colors(&ours.colors).to_string(),
                ours.ledger.total().to_string(),
                format!("{:+}", be_palette as i64 - 2 * a as i64),
            ]);
        }
    }
    print_table(
        "E2  Corollary 1.4 vs Barenboim–Elkin (n = 600 forest unions)",
        &[
            "a",
            "ε",
            "BE palette",
            "BE used",
            "BE rounds",
            "our palette",
            "our used",
            "our rounds",
            "color gain",
        ],
        &rows,
    );
    println!("shape check: our palette 2a beats BE's ⌊(2+ε)a⌋+1 by ≥ 1 (by ≥ a+1 at ε=1);");
    println!("BE wins rounds — exactly the trade-off the paper states (§1.3/§1.5).");
}

/// E3 — Corollary 2.3: the planar ladder 6/4/3.
fn e3_planar_ladder() {
    let workloads: Vec<(&str, graphs::Graph, usize)> = vec![
        ("apollonian (planar)", gen::apollonian(400, 3), 6),
        ("triangular lattice", gen::triangular(20, 20), 6),
        ("icosahedron", gen::icosahedron(), 6),
        ("grid (triangle-free)", gen::grid(20, 20), 4),
        ("perforated grid", gen::perforated_grid(22, 22, 40, 7), 4),
        (
            "subdivided triang.",
            gen::subdivided_triangulation(80, 5),
            4,
        ),
        ("hexagonal (girth 6)", gen::hexagonal(8, 8), 3),
        (
            "subdivided (girth 6)",
            gen::subdivided_triangulation(40, 9),
            3,
        ),
    ];
    let mut rows = Vec::new();
    for (name, g, d) in workloads {
        let (num, den) = graphs::mad(&g);
        let res = run_theorem13(&g, d);
        // GPS [17] baseline: 7 colors in O(log n) rounds on every planar row.
        let mut gps_ledger = RoundLedger::new();
        let gps = gps_seven_coloring(&g, None, &mut gps_ledger);
        assert!(graphs::is_proper(&g, &gps));
        rows.push(vec![
            name.into(),
            g.n().to_string(),
            format!("{:.3}", num as f64 / den as f64),
            d.to_string(),
            distinct_colors(&res.colors).to_string(),
            res.ledger.total().to_string(),
            distinct_colors(&gps).to_string(),
            gps_ledger.total().to_string(),
        ]);
    }
    print_table(
        "E3  Corollary 2.3: planar 6 / triangle-free 4 / girth≥6 3 (GPS [17] baseline)",
        &[
            "family",
            "n",
            "mad",
            "d",
            "colors",
            "rounds",
            "GPS colors",
            "GPS rounds",
        ],
        &rows,
    );
    println!("shape check: mad < d on every row (Proposition 2.2); colors ≤ d ≤ 6 < 7;");
    println!("GPS wins rounds with its 7-color budget — the paper trades rounds for colors.");
}

/// E4 — Lemma 3.1: measured happy fractions vs the worst-case bounds.
fn e4_lemma31_happy_fractions() {
    let workloads: Vec<(&str, graphs::Graph, usize)> = vec![
        ("grid", gen::grid(24, 24), 4),
        ("triangular", gen::triangular(16, 16), 6),
        ("forest-union-a2", gen::forest_union(500, 2, 11), 4),
        ("random-3-regular", gen::random_regular(500, 3, 13), 3),
        ("random-4-regular", gen::random_regular(500, 4, 17), 4),
        ("apollonian", gen::apollonian(500, 19), 6),
        (
            "star-heavy (poor)",
            gen::star(40).disjoint_union(&gen::grid(12, 12)),
            3,
        ),
    ];
    let mut rows = Vec::new();
    for (name, g, d) in workloads {
        let alive = VertexSet::full(g.n());
        let mut ledger = RoundLedger::new();
        // Paper radius → full-component verdicts (the honest Lemma 3.1 regime).
        let c = classify(&g, &alive, d, paper_radius(g.n()), &mut ledger);
        let report = analysis::Lemma31Report::from_classification(&c, d, g.n());
        rows.push(vec![
            name.into(),
            report.n.to_string(),
            d.to_string(),
            report.poor.to_string(),
            report.sad.to_string(),
            report.happy.to_string(),
            format!("{:.4}", report.measured),
            format!("{:.6}", report.bound),
            if report.holds() { "✓" } else { "✗" }.into(),
        ]);
    }
    print_table(
        "E4  Lemma 3.1: happy fraction ≥ 1/(3d)³ (≥ 1/(12d+1) if Δ ≤ d)",
        &[
            "family", "n", "d", "poor", "sad", "happy", "|A|/n", "bound", "holds",
        ],
        &rows,
    );
    println!("shape check: natural workloads sit far above the worst-case bound.");
}

/// E5 — Theorem 1.5 / Figure 3: locally planar but 5-chromatic.
fn e5_locally_planar_5chromatic() {
    let mut rows = Vec::new();
    for k in [2usize, 3, 4] {
        let hard = locally_planar_5chromatic(k);
        let n = hard.n();
        let easy = path_power3(n);
        let radius = indistinguishability_radius(&hard, 0, &easy, n / 2, 8).unwrap_or(0);
        rows.push(vec![
            k.to_string(),
            n.to_string(),
            graphs::chromatic_number(&hard).to_string(),
            graphs::chromatic_number(&easy).to_string(),
            radius.to_string(),
            format!("{}", n / 6),
        ]);
    }
    print_table(
        "E5  Theorem 1.5: toroidal T(3,2k+1,2k) ≅ C_n(1,2,3) vs planar P_n(1,2,3)",
        &["k", "n", "χ(hard)", "χ(planar twin)", "match radius", "n/6"],
        &rows,
    );
    println!("shape check: χ = 5 vs 4 with balls matching to ~n/6 ⇒ 4-coloring");
    println!("planar graphs needs Ω(n) rounds (Observation 2.4).");
}

/// E6 — Theorems 2.5/2.6 / Figure 2: Klein-bottle grids.
fn e6_klein_indistinguishability() {
    let mut rows = Vec::new();
    for l in [2usize, 3, 4] {
        let hard = gen::klein_grid(5, 2 * l + 1);
        let easy = h_graph(l);
        let hard_root = 2 * (2 * l + 1) + l;
        let easy_root = 2 * (2 * l) + l;
        let radius =
            indistinguishability_radius(&hard, hard_root, &easy, easy_root, 6).unwrap_or(0);
        rows.push(vec![
            format!("G_{{5,{}}} vs H_{}", 2 * l + 1, 2 * l),
            hard.n().to_string(),
            graphs::chromatic_number(&hard).to_string(),
            graphs::chromatic_number(&easy).to_string(),
            radius.to_string(),
        ]);
    }
    for k in [5usize, 7] {
        let hard = gen::klein_grid(k, k);
        let easy = gen::grid(k, k);
        let center = (k / 2) * k + k / 2;
        let radius = indistinguishability_radius(&hard, center, &easy, center, 6).unwrap_or(0);
        rows.push(vec![
            format!("G_{{{k},{k}}} vs grid"),
            hard.n().to_string(),
            graphs::chromatic_number(&hard).to_string(),
            graphs::chromatic_number(&easy).to_string(),
            radius.to_string(),
        ]);
    }
    print_table(
        "E6  Theorems 2.5/2.6: 4-chromatic Klein grids, locally 2-/3-chromatic",
        &["pair", "n(hard)", "χ(hard)", "χ(easy)", "match radius"],
        &rows,
    );
    println!("shape check: χ(hard) = 4 (Gallai) while the planar twin needs 2–3;");
    println!("interior balls match ⇒ 3-coloring needs Ω(n) (strips) / Ω(√n) (grids).");
}

/// E7 — Corollary 2.1 / Theorem 6.1: Brooks-type list coloring.
fn e7_brooks_and_nice_lists() {
    let mut rows = Vec::new();
    for (delta, seed) in [(3usize, 1u64), (4, 2), (5, 3), (6, 4)] {
        let g = gen::random_regular(300, delta, seed);
        let lists = ListAssignment::random(g.n(), delta, 2 * delta, seed);
        match brooks_list_coloring(&g, &lists) {
            Ok((colors, ledger)) => {
                assert!(graphs::is_proper(&g, &colors));
                rows.push(vec![
                    format!("{delta}-regular"),
                    g.n().to_string(),
                    delta.to_string(),
                    distinct_colors(&colors).to_string(),
                    ledger.total().to_string(),
                    "colored".into(),
                ]);
            }
            Err(e) => rows.push(vec![
                format!("{delta}-regular"),
                g.n().to_string(),
                delta.to_string(),
                "-".into(),
                "-".into(),
                format!("{e}"),
            ]),
        }
    }
    // The K_{Δ+1} certificate.
    let k5 = gen::complete(5);
    let outcome = brooks_list_coloring(&k5, &ListAssignment::uniform(5, 4));
    rows.push(vec![
        "K5 (uniform 4-lists)".into(),
        "5".into(),
        "4".into(),
        "-".into(),
        "-".into(),
        match outcome {
            Err(e) => format!("{e}"),
            Ok(_) => "unexpected coloring".into(),
        },
    ]);
    // Nice lists with heterogeneous sizes (Theorem 6.1).
    let cat = gen::caterpillar(60, 3);
    let nice = ListAssignment::new(
        cat.vertices()
            .map(|v| (0..=cat.degree(v)).collect())
            .collect(),
    );
    let (colors, ledger) = nice_list_coloring(&cat, &nice).expect("nice lists color");
    rows.push(vec![
        "caterpillar deg+1 (6.1)".into(),
        cat.n().to_string(),
        cat.max_degree().to_string(),
        distinct_colors(&colors).to_string(),
        ledger.total().to_string(),
        "colored".into(),
    ]);
    print_table(
        "E7  Corollary 2.1 / Theorem 6.1: Δ-list and nice-list coloring",
        &["workload", "n", "Δ", "colors", "rounds", "outcome"],
        &rows,
    );
    println!("shape check: Δ-lists suffice away from K_{{Δ+1}}, which is certified.");
}

/// E8 — Lemma 3.2 scaffolding: ruling-forest quality.
fn e8_ruling_forest_quality() {
    let mut rows = Vec::new();
    for (name, g) in [
        ("grid 24x24", gen::grid(24, 24)),
        ("forest-union-a2", gen::forest_union(600, 2, 3)),
        ("random-3-regular", gen::random_regular(600, 3, 4)),
    ] {
        for alpha in [4usize, 8, 16] {
            let subset: Vec<usize> = (0..g.n()).step_by(3).collect();
            let mut ledger = RoundLedger::new();
            let rf = ruling_forest(&g, None, &subset, alpha, &mut ledger);
            // Verify spacing exactly.
            let mut min_dist = usize::MAX;
            for &r in &rf.roots {
                let dist = graphs::bfs_distances(&g, r, None);
                for &s in &rf.roots {
                    if s != r && dist[s] < min_dist {
                        min_dist = dist[s];
                    }
                }
            }
            let beta = alpha * ((g.n() as f64).log2().ceil() as usize);
            rows.push(vec![
                name.into(),
                alpha.to_string(),
                rf.roots.len().to_string(),
                if min_dist == usize::MAX {
                    "∞".into()
                } else {
                    min_dist.to_string()
                },
                rf.max_depth().to_string(),
                beta.to_string(),
                rf.members().len().to_string(),
                ledger.total().to_string(),
            ]);
        }
    }
    print_table(
        "E8  (α, α·log n)-ruling forests (Lemma 3.2 scaffolding)",
        &[
            "family",
            "α",
            "roots",
            "min root dist",
            "max depth",
            "β bound",
            "|T|",
            "rounds",
        ],
        &rows,
    );
    println!("shape check: min root distance ≥ α and depth ≤ β on every row.");
}

/// E9 — Proposition 4.4: the auxiliary graph H and the |S|/12 bound.
fn e9_proposition44() {
    let mut rows = Vec::new();
    let odd_cycles = {
        let mut g = gen::cycle(5).disjoint_union(&gen::cycle(7));
        for len in [9usize, 11, 13] {
            g = g.disjoint_union(&gen::cycle(len));
        }
        g
    };
    for (name, g, d) in [
        ("random-3-regular", gen::random_regular(400, 3, 5), 3usize),
        ("random-4-regular", gen::random_regular(400, 4, 6), 4),
        ("K4-chain", k4_chain(60), 3),
        ("odd-cycle-pack (d=2!)", odd_cycles, 2),
    ] {
        let alive = VertexSet::full(g.n());
        let mut ledger = RoundLedger::new();
        let c = classify(&g, &alive, d, g.n(), &mut ledger);
        if c.sad.is_empty() {
            rows.push(vec![
                name.into(),
                g.n().to_string(),
                d.to_string(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let aux = analysis::auxiliary_graph(&g, &c.sad);
        let low = analysis::low_degree_in_sad_subgraph(&g, &c.sad, d);
        rows.push(vec![
            name.into(),
            g.n().to_string(),
            d.to_string(),
            c.sad.len().to_string(),
            low.to_string(),
            format!("{:.1}", c.sad.len() as f64 / 12.0),
            graphs::girth(&aux.graph, None).map_or("∞".into(), |x| x.to_string()),
            format!("{}+{}", aux.hubs, aux.suppressed),
        ]);
    }
    print_table(
        "E9  Proposition 4.4: low-degree sad vertices ≥ |S|/12; aux graph girth ≥ 5",
        &[
            "family",
            "n",
            "d",
            "|S|",
            "low-deg in G[S]",
            "|S|/12",
            "girth(H)",
            "hubs+suppr",
        ],
        &rows,
    );
    println!("shape check: low-deg ≥ |S|/12 and girth(H) ≥ 5 whenever d ≥ 3.");
    println!("the d=2 row is a deliberate negative control: odd cycles violate the");
    println!("d ≥ 3 hypothesis and indeed have NO low-degree sad vertices — this is");
    println!("exactly why Theorem 1.3 requires d ≥ 3 (Linial's 2-coloring bound).");
}

/// A chain of K4s glued at cut vertices — a d-regular-ish Gallai-heavy
/// stress instance.
fn k4_chain(blocks: usize) -> graphs::Graph {
    let mut b = graphs::GraphBuilder::new(1);
    let mut anchor = 0usize;
    for _ in 0..blocks {
        let fresh: Vec<usize> = (0..3).map(|_| b.add_vertex()).collect();
        let mut all = fresh.clone();
        all.push(anchor);
        for i in 0..4 {
            for j in i + 1..4 {
                b.add_edge(all[i], all[j]);
            }
        }
        anchor = fresh[2];
    }
    b.build()
}

/// E10 — Corollary 2.11: Heawood lists on bounded-genus graphs.
fn e10_genus() {
    let mut rows = Vec::new();
    for (name, g, genus) in [
        ("torus grid 8x8", gen::torus_grid(8, 8), 2usize),
        ("torus grid 7x9", gen::torus_grid(7, 9), 2),
        ("klein grid 7x7", gen::klein_grid(7, 7), 2),
        ("torus triangulation", locally_planar_5chromatic(5), 2),
    ] {
        let h = heawood_number(genus);
        let lists = ListAssignment::uniform(g.n(), h);
        let colors = color_genus(&g, genus, &lists, false).expect("Heawood lists suffice");
        let chi = if g.n() <= 50 {
            graphs::chromatic_number(&g).to_string()
        } else {
            "-".into()
        };
        rows.push(vec![
            name.into(),
            g.n().to_string(),
            genus.to_string(),
            h.to_string(),
            distinct_colors(&colors).to_string(),
            chi,
        ]);
    }
    print_table(
        "E10  Corollary 2.11: H(g)-list-coloring on genus-g graphs",
        &[
            "family",
            "n",
            "Euler genus",
            "H(g)",
            "colors used",
            "exact χ",
        ],
        &rows,
    );
    println!("shape check: colors ≤ H(g) = ⌊(7+√(24g+1))/2⌋.");
    // Bonus: the fewer-colors variant when the mad bound is integral.
    let g = gen::torus_grid(6, 10);
    let lists = ListAssignment::uniform(g.n(), 5);
    let colors = color_genus(&g, 1, &lists, true).expect("H(1)−1 = 5 lists suffice");
    println!(
        "fewer-colors variant (genus 1, M integral): {} colors ≤ H(1)−1 = 5",
        distinct_colors(&colors)
    );
}

/// E11 — ablation: the radius policy (DESIGN.md substitution) does not
/// affect validity, only rounds and peel level counts.
fn e11_radius_policy_ablation() {
    use distributed_coloring::{RadiusPolicy, SparseColoringConfig};
    let g = gen::apollonian(600, 77);
    let lists = ListAssignment::uniform(g.n(), 6);
    let mut rows = Vec::new();
    for (name, policy) in [
        ("adaptive(1)", RadiusPolicy::Adaptive { initial: 1 }),
        ("adaptive(2)", RadiusPolicy::Adaptive { initial: 2 }),
        ("adaptive(8)", RadiusPolicy::Adaptive { initial: 8 }),
        ("fixed(4)", RadiusPolicy::Fixed(4)),
        ("fixed(16)", RadiusPolicy::Fixed(16)),
        ("paper", RadiusPolicy::Paper),
    ] {
        let config = SparseColoringConfig {
            radius: policy,
            ..Default::default()
        };
        let outcome =
            distributed_coloring::list_color_sparse(&g, &lists, 6, config).expect("valid input");
        let res = outcome.coloring().expect("planar");
        assert!(graphs::is_proper(&g, &res.colors));
        rows.push(vec![
            name.into(),
            res.stats.levels().to_string(),
            format!("{:?}", res.stats.radii),
            distinct_colors(&res.colors).to_string(),
            res.ledger.total().to_string(),
        ]);
    }
    print_table(
        "E11  Ablation: ball-radius policy on apollonian n=600, d=6",
        &["policy", "levels", "radii", "colors", "rounds"],
        &rows,
    );
    println!("shape check: every policy colors properly with ≤ 6 colors; larger radii");
    println!("mean fewer levels but more rounds per level (the paper constant is the");
    println!("extreme point: one ball-gather dominates, levels are minimal).");
}

/// E12 — §6 remark: the simple randomized algorithm needs only O(log n)
/// rounds in the (deg+1)-list regime, versus our deterministic ledger.
fn e12_deterministic_vs_randomized() {
    let mut rows = Vec::new();
    for n in [128usize, 512, 2048] {
        let g = gen::random_regular(n, 4, 5);
        // Randomized: deg+1 = 5 lists.
        let rand_lists: Vec<Vec<usize>> =
            g.vertices().map(|v| (0..=g.degree(v)).collect()).collect();
        let mut rl = RoundLedger::new();
        let rand_out = randomized_list_coloring(&g, None, &rand_lists, 9, 10_000, &mut rl);
        assert!(rand_out.complete);
        // Deterministic Theorem 1.3 with d = 4 = mad.
        let det = run_theorem13(&g, 4);
        rows.push(vec![
            n.to_string(),
            rand_out.rounds.to_string(),
            det.ledger.total().to_string(),
            distinct_colors(&rand_out.colors).to_string(),
            distinct_colors(&det.colors).to_string(),
        ]);
    }
    print_table(
        "E12  §6 remark: randomized (deg+1)-list coloring vs deterministic Thm 1.3",
        &[
            "n",
            "rand rounds",
            "det rounds",
            "rand colors",
            "det colors",
        ],
        &rows,
    );
    println!("shape check: randomized finishes in O(log n) rounds but needs deg+1");
    println!("lists; the deterministic algorithm reaches d = mad with d lists.");
}
