//! CI determinism gate: the engine's replay contract, checked end to end.
//!
//! ```sh
//! cargo run --release -p bench --bin determinism_gate            # shards 1 2 8 16
//! cargo run --release -p bench --bin determinism_gate -- 1 4 32  # custom sweep
//! ```
//!
//! For every ported algorithm, runs the sequential implementation once and
//! the engine at each shard count in the sweep — **forcing one worker group
//! per shard** (`EngineConfig::workers`), so real pooled threads execute
//! even on single-core CI runners — then diffs, bit for bit:
//!
//! * the outputs (colorings / partition layers),
//! * the per-round message-count fingerprint,
//! * the `RoundLedger` totals (engine vs sequential *and* across shards).
//!
//! Any divergence prints the offending configuration and exits nonzero.
//! This is the invariant the worker-pool executor must never trade for
//! speed: shard count and worker count are performance knobs, not
//! semantics.

use bench::print_table;
use distributed_coloring::{list_color_sparse, ListAssignment, SparseColoringConfig};
use engine::{
    engine_cole_vishkin_3color, engine_h_partition, engine_randomized_list_coloring, EngineConfig,
};
use graphs::{gen, VertexSet};
use local_model::{
    cole_vishkin_3color, h_partition, randomized_list_coloring, RootedForest, RoundLedger,
};

const DEFAULT_SWEEP: [usize; 4] = [1, 2, 8, 16];

/// One engine run's identity: everything that must survive resharding.
#[derive(PartialEq, Clone)]
struct Fingerprint {
    output: Vec<usize>,
    message_counts: Vec<usize>,
    ledger_total: u64,
}

fn main() {
    let sweep: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("shard counts must be integers"))
            .collect();
        if args.is_empty() {
            DEFAULT_SWEEP.to_vec()
        } else {
            args
        }
    };
    let mut rows = Vec::new();
    let mut divergences: Vec<String> = Vec::new();
    for (scenario, check) in scenarios() {
        let outcome = check(&sweep);
        match outcome {
            Ok(summary) => rows.push(vec![scenario.to_string(), summary, "ok".into()]),
            Err(diff) => {
                rows.push(vec![scenario.to_string(), diff.clone(), "DIVERGED".into()]);
                divergences.push(format!("{scenario}: {diff}"));
            }
        }
    }
    print_table(
        &format!("determinism gate, shards {sweep:?} (workers forced = shards)"),
        &["scenario", "summary", "verdict"],
        &rows,
    );
    if !divergences.is_empty() {
        eprintln!("\ndeterminism_gate: {} divergence(s):", divergences.len());
        for d in &divergences {
            eprintln!("  - {d}");
        }
        std::process::exit(1);
    }
    println!("\ndeterminism_gate: bit-identical across the sweep");
}

type Check = Box<dyn Fn(&[usize]) -> Result<String, String>>;

fn scenarios() -> Vec<(&'static str, Check)> {
    vec![
        (
            "randomized / random-4-regular n=2000",
            Box::new(|sweep| randomized(gen::random_regular(2000, 4, 7), 7, sweep)),
        ),
        (
            "randomized / grid 40x40",
            Box::new(|sweep| randomized(gen::grid(40, 40), 3, sweep)),
        ),
        (
            "randomized masked / grid 40x40 (2/3 alive)",
            Box::new(|sweep| {
                let g = gen::grid(40, 40);
                let mask =
                    VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 3 != 0));
                randomized_masked(g, Some(mask), 3, sweep)
            }),
        ),
        (
            "h-partition / forest-union-a2 n=3000",
            Box::new(|sweep| h_part(gen::forest_union(3000, 2, 11), 2, sweep)),
        ),
        (
            "h-partition / forest-union-a3 n=1000",
            Box::new(|sweep| h_part(gen::forest_union(1000, 3, 5), 3, sweep)),
        ),
        (
            "cole-vishkin / random-tree n=4000",
            Box::new(|sweep| cole_vishkin(gen::random_tree(4000, 13), sweep)),
        ),
        (
            "theorem13 full pipeline / apollonian n=600",
            Box::new(|sweep| theorem13_pipeline(gen::apollonian(600, 7), 6, sweep)),
        ),
        (
            "theorem13 split(4) / apollonian n=600",
            Box::new(|sweep| theorem13_split_pipeline(gen::apollonian(600, 7), 6, sweep)),
        ),
    ]
}

/// The CONGEST-split row: the full pipeline under `CongestMode::Split(4)`
/// must be **bit-identical in colors and peel statistics** to the
/// unlimited-width engine run at every shard count of the sweep; only the
/// round/fragment accounting may differ — isolated under the `SPLIT_PHASE`
/// ledger entry, reconciling with the unlimited charge, and itself
/// shard-invariant.
fn theorem13_split_pipeline(g: graphs::Graph, d: usize, sweep: &[usize]) -> Result<String, String> {
    use engine::{CongestMode, SPLIT_PHASE};
    let lists = ListAssignment::uniform(g.n(), d);
    let unlimited = {
        let config = SparseColoringConfig {
            engine_shards: Some(sweep[0]),
            ..Default::default()
        };
        list_color_sparse(&g, &lists, d, config)
            .map_err(|e| format!("unlimited anchor failed: {e}"))?
            .coloring()
            .ok_or_else(|| "unlimited anchor found a clique".to_string())?
            .clone()
    };
    let mut accounting: Option<(u64, usize, u64)> = None;
    for &shards in sweep {
        let config = SparseColoringConfig {
            engine_shards: Some(shards),
            engine_congest: CongestMode::Split(4),
            ..Default::default()
        };
        let split = list_color_sparse(&g, &lists, d, config)
            .map_err(|e| format!("shards={shards}: split run failed: {e}"))?
            .coloring()
            .ok_or_else(|| format!("shards={shards}: split run found a clique"))?
            .clone();
        if split.colors != unlimited.colors {
            return Err(format!("shards={shards} split colors != unlimited"));
        }
        if split.stats.alive_sizes != unlimited.stats.alive_sizes
            || split.stats.happy_sizes != unlimited.stats.happy_sizes
            || split.stats.poor_sizes != unlimited.stats.poor_sizes
            || split.stats.radii != unlimited.stats.radii
        {
            return Err(format!(
                "shards={shards} split peel statistics != unlimited"
            ));
        }
        let surplus = split.ledger.phase_total(SPLIT_PHASE);
        if surplus == 0 {
            return Err(format!(
                "shards={shards}: the pipeline's wide floods must fragment at width 4"
            ));
        }
        if split.ledger.total() - surplus != unlimited.ledger.total() {
            return Err(format!(
                "shards={shards}: split ledger {} − surplus {surplus} != unlimited {}",
                split.ledger.total(),
                unlimited.ledger.total()
            ));
        }
        let m = &split.engine_metrics;
        if m.total_physical_rounds() != m.total_rounds() + surplus {
            return Err(format!(
                "shards={shards}: observed physical surplus != charged surplus"
            ));
        }
        let fingerprint = (surplus, m.total_fragments(), m.total_physical_rounds());
        match &accounting {
            None => accounting = Some(fingerprint),
            Some(base) if base != &fingerprint => {
                return Err(format!(
                    "shards={shards}: split accounting {fingerprint:?} != shards={} {base:?}",
                    sweep[0]
                ));
            }
            Some(_) => {}
        }
    }
    let (surplus, fragments, physical) = accounting.expect("sweep is nonempty");
    Ok(format!(
        "+{surplus} split rounds, {fragments} fragments, {physical} physical rounds, \
         {} runs identical",
        sweep.len()
    ))
}

/// The full-pipeline row: `list_color_sparse` with every phase on masked
/// engine sessions must reproduce the sequential run — colors, peel
/// statistics, and ledger totals — at every shard count of the sweep.
/// (Worker pools are auto-sized here: the composite API exposes the shard
/// knob, and shard-count invariance is what the theorem's ledger rides on.)
fn theorem13_pipeline(g: graphs::Graph, d: usize, sweep: &[usize]) -> Result<String, String> {
    let lists = ListAssignment::uniform(g.n(), d);
    let seq = list_color_sparse(&g, &lists, d, SparseColoringConfig::default())
        .map_err(|e| format!("sequential anchor failed: {e}"))?;
    let seq = seq
        .coloring()
        .ok_or_else(|| "sequential anchor found a clique".to_string())?
        .clone();
    if !graphs::is_proper(&g, &seq.colors) {
        return Err("sequential coloring is not proper".into());
    }
    for &shards in sweep {
        let config = SparseColoringConfig {
            engine_shards: Some(shards),
            ..Default::default()
        };
        let eng = list_color_sparse(&g, &lists, d, config)
            .map_err(|e| format!("shards={shards}: engine run failed: {e}"))?;
        let eng = eng
            .coloring()
            .ok_or_else(|| format!("shards={shards}: engine run found a clique"))?
            .clone();
        if eng.colors != seq.colors {
            return Err(format!("shards={shards} colors != sequential"));
        }
        if eng.ledger.total() != seq.ledger.total() {
            return Err(format!(
                "shards={shards} ledger {} != sequential {}",
                eng.ledger.total(),
                seq.ledger.total()
            ));
        }
        for phase in [
            "rich-poor",
            "ball-gather",
            "ruling-set",
            "ruling-forest-claim",
            "ruling-forest-prune",
            "class-sweep",
            "layered-coloring",
        ] {
            if eng.ledger.phase_total(phase) != seq.ledger.phase_total(phase) {
                return Err(format!("shards={shards} phase {phase} != sequential"));
            }
        }
        if eng.stats.alive_sizes != seq.stats.alive_sizes
            || eng.stats.happy_sizes != seq.stats.happy_sizes
            || eng.stats.poor_sizes != seq.stats.poor_sizes
            || eng.stats.radii != seq.stats.radii
        {
            return Err(format!("shards={shards} peel statistics != sequential"));
        }
    }
    Ok(format!(
        "{} rounds charged over {} levels, {} engine runs identical",
        seq.ledger.total(),
        seq.stats.levels(),
        sweep.len()
    ))
}

/// Diffs engine fingerprints across the sweep against a sequential anchor.
fn diff_sweep(
    seq_output: &[usize],
    seq_ledger: u64,
    runs: &[(usize, Fingerprint)],
) -> Result<String, String> {
    let (anchor_shards, anchor) = &runs[0];
    if anchor.output != seq_output {
        return Err(format!("shards={anchor_shards} output != sequential"));
    }
    if anchor.ledger_total != seq_ledger {
        return Err(format!(
            "shards={anchor_shards} ledger {} != sequential {seq_ledger}",
            anchor.ledger_total
        ));
    }
    for (shards, fp) in &runs[1..] {
        if fp.output != anchor.output {
            return Err(format!("shards={shards} output != shards={anchor_shards}"));
        }
        if fp.message_counts != anchor.message_counts {
            return Err(format!(
                "shards={shards} per-round traffic != shards={anchor_shards}"
            ));
        }
        if fp.ledger_total != anchor.ledger_total {
            return Err(format!("shards={shards} ledger != shards={anchor_shards}"));
        }
    }
    Ok(format!(
        "{} rounds charged, {} runs identical",
        anchor.ledger_total,
        runs.len()
    ))
}

fn config(shards: usize, seed: u64) -> EngineConfig {
    EngineConfig::default()
        .with_shards(shards)
        .with_workers(shards)
        .with_seed(seed)
}

fn randomized(g: graphs::Graph, seed: u64, sweep: &[usize]) -> Result<String, String> {
    randomized_masked(g, None, seed, sweep)
}

/// The masked-session scenario: the engine restricted to an induced
/// subgraph must replay the sequential masked primitive bit for bit at
/// every shard count — the contract Theorem 1.3's peel loop rides on.
fn randomized_masked(
    g: graphs::Graph,
    mask: Option<VertexSet>,
    seed: u64,
    sweep: &[usize],
) -> Result<String, String> {
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut seq_ledger = RoundLedger::new();
    let seq = randomized_list_coloring(&g, mask.as_ref(), &lists, seed, 10_000, &mut seq_ledger);
    assert!(seq.complete, "sequential anchor failed to color");
    let runs: Vec<(usize, Fingerprint)> = sweep
        .iter()
        .map(|&shards| {
            let mut ledger = RoundLedger::new();
            let (out, metrics) = engine_randomized_list_coloring(
                &g,
                mask.as_ref(),
                &lists,
                seed,
                10_000,
                config(shards, seed),
                &mut ledger,
            );
            (
                shards,
                Fingerprint {
                    output: out.colors,
                    message_counts: metrics.message_counts(),
                    ledger_total: ledger.total(),
                },
            )
        })
        .collect();
    let colors = &runs[0].1.output;
    let proper = g
        .edges()
        .all(|(u, v)| colors[u] == usize::MAX || colors[v] == usize::MAX || colors[u] != colors[v]);
    if !proper {
        return Err("coloring is not proper".into());
    }
    diff_sweep(&seq.colors, seq_ledger.total(), &runs)
}

fn h_part(g: graphs::Graph, a: usize, sweep: &[usize]) -> Result<String, String> {
    let mut seq_ledger = RoundLedger::new();
    let seq = h_partition(&g, None, a, 1.0, &mut seq_ledger);
    let runs: Vec<(usize, Fingerprint)> = sweep
        .iter()
        .map(|&shards| {
            let mut ledger = RoundLedger::new();
            let (hp, metrics) =
                engine_h_partition(&g, None, a, 1.0, config(shards, 0), &mut ledger);
            (
                shards,
                Fingerprint {
                    output: hp.layer,
                    message_counts: metrics.message_counts(),
                    ledger_total: ledger.total(),
                },
            )
        })
        .collect();
    diff_sweep(&seq.layer, seq_ledger.total(), &runs)
}

fn cole_vishkin(g: graphs::Graph, sweep: &[usize]) -> Result<String, String> {
    let f = RootedForest::new(graphs::bfs_parents(&g, 0, None));
    let mut seq_ledger = RoundLedger::new();
    let seq = cole_vishkin_3color(&f, &mut seq_ledger);
    let runs: Vec<(usize, Fingerprint)> = sweep
        .iter()
        .map(|&shards| {
            let mut ledger = RoundLedger::new();
            let (colors, metrics) = engine_cole_vishkin_3color(&f, config(shards, 0), &mut ledger);
            (
                shards,
                Fingerprint {
                    output: colors,
                    message_counts: metrics.message_counts(),
                    ledger_total: ledger.total(),
                },
            )
        })
        .collect();
    diff_sweep(&seq, seq_ledger.total(), &runs)
}
