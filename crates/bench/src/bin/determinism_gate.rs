//! CI determinism gate: the engine's replay contract, checked end to end.
//!
//! ```sh
//! cargo run --release -p bench --bin determinism_gate            # suite shard axis
//! cargo run --release -p bench --bin determinism_gate -- 1 4 32  # custom sweep
//! ```
//!
//! The gate is a thin wrapper over the **declared suite**
//! `suites/determinism.json` — the scenarios live as data, shared with the
//! scenario lab (`cargo run -p lab --bin lab -- run suites/determinism.json`
//! runs the identical plan). For every ported algorithm, the suite runs the
//! sequential implementation once and the engine at each shard count of the
//! axis — **forcing one worker group per shard** (`"workers": "shards"`), so
//! real pooled threads execute even on single-core CI runners — then the
//! declared checks diff, bit for bit:
//!
//! * the outputs (colorings / partition layers / balls / forests),
//! * the per-round traffic fingerprint,
//! * the `RoundLedger` totals (engine vs sequential *and* across shards),
//! * split-mode ledger reconciliation (`total − SPLIT_PHASE == unlimited`).
//!
//! The suite also sweeps the vertex-order axis (`identity` / `locality`),
//! so every diff above runs for both shard-local layouts: the locality
//! relabeling is a performance knob exactly like shards and workers, and
//! this gate is where that claim is enforced.
//!
//! Any divergence prints the offending configuration and exits nonzero.
//! This is the invariant the worker-pool executor must never trade for
//! speed: shard count and worker count are performance knobs, not
//! semantics.
//!
//! Positional arguments replace the engine shard axis of every scenario
//! (the sequential anchor at shards 0 is kept); with no arguments the
//! suite's own axis runs.

use bench::print_table;
use lab::{evaluate, run_suite, Suite, WorkerSpec};

/// Where the declared suite lives in the repo.
const SUITE_PATH: &str = "suites/determinism.json";

/// The suite baked into the binary, so the gate still runs from any
/// working directory (the checkout copy wins when present, keeping
/// suite edits live without a rebuild).
const BAKED_SUITE: &str = include_str!("../../../../suites/determinism.json");

fn main() {
    let sweep: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("shard counts must be integers"))
        .collect();
    let mut suite = match Suite::load(SUITE_PATH) {
        Ok(suite) => suite,
        Err(_) => Suite::from_json(BAKED_SUITE).expect("baked-in determinism suite parses"),
    };
    if !sweep.is_empty() {
        for scenario in &mut suite.scenarios {
            // Keep the sequential anchor; replace the engine sweep.
            let mut shards = vec![0];
            shards.extend(sweep.iter().copied().filter(|&s| s > 0));
            scenario.shards = shards;
            scenario.workers = vec![WorkerSpec::MatchShards];
        }
    }
    let run = run_suite(&suite, |_row, _total| {}).unwrap_or_else(|e| {
        eprintln!("determinism_gate: {e}");
        std::process::exit(2);
    });
    let mut rows = Vec::new();
    for scenario in &suite.scenarios {
        let trials: Vec<_> = run
            .rows
            .iter()
            .filter(|r| r.spec.scenario == scenario.name)
            .collect();
        let engine_runs = trials.iter().filter(|r| !r.spec.is_sequential()).count();
        let died = trials.iter().filter(|r| r.error.is_some()).count();
        rows.push(vec![
            scenario.name.clone(),
            format!("{}", trials.len()),
            format!("{engine_runs}"),
            if died == 0 {
                "ok".into()
            } else {
                format!("{died} DIED")
            },
        ]);
    }
    print_table(
        &format!(
            "determinism gate over suite {:?} (workers forced = shards)",
            run.suite
        ),
        &["scenario", "trials", "engine runs", "verdict"],
        &rows,
    );
    let mut divergences: Vec<String> = Vec::new();
    for outcome in evaluate(&suite, &run) {
        if outcome.passed {
            println!("check {}: ok", outcome.check);
        } else {
            for v in &outcome.violations {
                divergences.push(format!("{}: {v}", outcome.check));
            }
        }
    }
    if !divergences.is_empty() {
        eprintln!("\ndeterminism_gate: {} divergence(s):", divergences.len());
        for d in &divergences {
            eprintln!("  - {d}");
        }
        std::process::exit(1);
    }
    println!("\ndeterminism_gate: bit-identical across the sweep");
}
