//! Wall-time trend table: a fresh scenario-lab run vs the committed
//! `BENCH_engine.json` artifact.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_trend -- \
//!     lab-runs/bench/summary.json BENCH_engine.json >> "$GITHUB_STEP_SUMMARY"
//! ```
//!
//! CI's `scenario-lab` job runs the declared bench suite, then calls this
//! binary to diff the run's percentile summary against the artifact the
//! last `engine_table` invocation committed — so every PR's job summary
//! shows where the wall-clock trajectory is heading, not just whether a
//! budget tripped. The two sources measure different `n` (the suite is
//! CI-quick, the artifact is the full crossover sweep), so each lab group
//! is matched to the artifact record with the same algorithm and shard
//! count at the *nearest* `n`, and the comparison is normalized to
//! microseconds per vertex — the per-vertex constant factor is exactly what
//! the CSR/SoA layout work moves.
//!
//! Output is GitHub-flavored markdown (pipes render as a table in
//! `$GITHUB_STEP_SUMMARY`); the binary is informational and always exits 0
//! once both inputs parse. Only unlimited-width, fault-free lab groups are
//! compared — split and chaos rows have no committed twin.

use bench::{parse_engine_bench_json, EngineBenchRecord};
use lab::json::Value;

/// One lab summary group's fields we trend on.
struct LabGroup {
    algorithm: String,
    family: String,
    n: usize,
    shards: usize,
    /// Whether the group ran with frontier-indexed rounds. Full-scan twin
    /// scenarios (`"frontier": false`) only trend against full-scan
    /// artifact rows — matching them to frontier rows would misread the
    /// very overhead the twins exist to measure.
    frontier: bool,
    /// Whether the group ran under the cache-local relabeling
    /// (`"order": "locality"`). Order-twin groups only trend against
    /// same-order artifact rows — an identity row is exactly the layout
    /// the twin exists to beat, not its committed self.
    locality: bool,
    best_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (summary_path, artifact_path) = match args.as_slice() {
        [s] => (s.as_str(), "BENCH_engine.json"),
        [s, a] => (s.as_str(), a.as_str()),
        _ => {
            eprintln!("usage: bench_trend <summary.json> [BENCH_engine.json]");
            std::process::exit(2);
        }
    };
    let summary = std::fs::read_to_string(summary_path)
        .map_err(|e| format!("read {summary_path}: {e}"))
        .and_then(|s| lab::json::parse(&s))
        .unwrap_or_else(|e| {
            eprintln!("bench_trend: {e}");
            std::process::exit(2);
        });
    let artifact = std::fs::read_to_string(artifact_path)
        .map_err(|e| format!("read {artifact_path}: {e}"))
        .and_then(|s| parse_engine_bench_json(&s))
        .unwrap_or_else(|e| {
            eprintln!("bench_trend: {e}");
            std::process::exit(2);
        });
    let groups = lab_groups(&summary);
    println!("## Wall-time trend vs committed `{artifact_path}`");
    println!();
    print!("{}", render_trend(&groups, &artifact));
}

/// Extracts the unlimited-width, fault-free groups from a lab summary.
fn lab_groups(summary: &Value) -> Vec<LabGroup> {
    let Some(groups) = summary.get("groups").and_then(Value::as_arr) else {
        return Vec::new();
    };
    groups
        .iter()
        .filter(|g| {
            g.get("congest").and_then(Value::as_str) == Some("unlimited")
                && g.get("faults").and_then(Value::as_str) == Some("none")
        })
        .filter_map(|g| {
            Some(LabGroup {
                algorithm: g.get("algorithm")?.as_str()?.to_string(),
                family: g.get("family")?.as_str()?.to_string(),
                n: g.get("n")?.as_usize()?,
                shards: g.get("shards")?.as_usize()?,
                // Summaries written before the flag existed could only
                // have meant the default.
                frontier: match g.get("frontier") {
                    None => true,
                    Some(v) => v.as_bool()?,
                },
                // Summaries written before the order axis existed could
                // only have meant the identity layout.
                locality: match g.get("order").and_then(Value::as_str) {
                    None | Some("identity") => false,
                    Some("locality") => true,
                    Some(_) => return None,
                },
                best_ms: g.get("wall_ms_best")?.as_f64()?,
                p50_ms: g.get("wall_ms_p50")?.as_f64()?,
                p95_ms: g.get("wall_ms_p95")?.as_f64()?,
            })
        })
        .collect()
}

/// The committed record with the same algorithm, shard count, and frontier
/// setting whose `n` is nearest the lab group's (ties break toward the
/// larger run).
fn closest<'a>(
    records: &'a [EngineBenchRecord],
    group: &LabGroup,
) -> Option<&'a EngineBenchRecord> {
    records
        .iter()
        .filter(|r| {
            r.algorithm == group.algorithm
                && r.shards == group.shards
                && r.split == 0
                && r.frontier == group.frontier
                && r.locality == group.locality
        })
        .min_by_key(|r| (r.n.abs_diff(group.n), usize::MAX - r.n))
}

/// Compacts a skip count for the table: exact below 10k, `k`/`M` above —
/// `frontier_skipped` at the xl tier is billions of node-steps and the
/// column only needs its magnitude.
fn compact(count: usize) -> String {
    match count {
        0..=9_999 => count.to_string(),
        10_000..=999_999 => format!("{:.0}k", count as f64 / 1e3),
        _ => format!("{:.1}M", count as f64 / 1e6),
    }
}

/// Renders the markdown trend table (one row per matched lab group).
fn render_trend(groups: &[LabGroup], artifact: &[EngineBenchRecord]) -> String {
    let mut out = String::new();
    out.push_str(
        "| algorithm | shards | fresh n | best ms | p50 ms | p95 ms | fresh µs/v \
         | committed n | committed ms | µs/v | Δ µs/v | frontier | route |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    let mut matched = 0;
    for g in groups {
        let Some(rec) = closest(artifact, g) else {
            continue;
        };
        matched += 1;
        let fresh_norm = g.best_ms * 1e3 / g.n.max(1) as f64;
        let committed_norm = rec.wall_ms * 1e3 / rec.n.max(1) as f64;
        let delta = (fresh_norm - committed_norm) / committed_norm.max(f64::EPSILON) * 100.0;
        // Committed frontier evidence: mean stepped/live density next to
        // the absolute node-steps the index skipped — the density shows
        // the decay, the count shows the volume it amounts to. Deliberate
        // full-scan rows print `scan` (density 1.0 by construction).
        let frontier_cell = if rec.frontier {
            format!("{:.2} / {}", rec.active_frac, compact(rec.frontier_skipped))
        } else {
            "scan".to_string()
        };
        // Committed routing evidence: the route fraction of the wall, with
        // the protocol marker — `rank` rows were measured on the O(traffic)
        // sender-rank counting pass, `sorted` rows predate it (per-inbox
        // comparison sort), so a route-time delta across the marker is a
        // protocol change, not a regression.
        let route_cell = format!(
            "{:.2} {}",
            rec.route_ms / rec.wall_ms.max(f64::EPSILON),
            if rec.rank_routing { "rank" } else { "sorted" }
        );
        let order_tag = if g.locality { ", local" } else { "" };
        out.push_str(&format!(
            "| {} ({}{}) | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {} | {:.2} | {:.2} | {:+.1}% | {} | {} |\n",
            g.algorithm,
            g.family,
            order_tag,
            g.shards,
            g.n,
            g.best_ms,
            g.p50_ms,
            g.p95_ms,
            fresh_norm,
            rec.n,
            rec.wall_ms,
            committed_norm,
            delta,
            frontier_cell,
            route_cell,
        ));
    }
    if matched == 0 {
        return "_no lab group has a committed twin (algorithm + shard count) to trend \
                against_\n"
            .to_string();
    }
    out.push_str(&format!(
        "\n{matched} of {} lab group(s) matched; µs/v is best-of wall normalized per \
         vertex, Δ is fresh vs committed (negative = faster).\n",
        groups.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(algorithm: &str, n: usize, shards: usize, wall_ms: f64) -> EngineBenchRecord {
        EngineBenchRecord {
            active_frac: 0.5,
            family: "f".into(),
            algorithm: algorithm.into(),
            n,
            shards,
            rounds: 1,
            messages: 0,
            wall_ms,
            p50_ms: wall_ms,
            route_ms: 0.0,
            split: 0,
            physical_rounds: 1,
            fragments: 0,
            frontier: true,
            frontier_skipped: 0,
            locality: false,
            rank_routing: false,
        }
    }

    fn group(algorithm: &str, n: usize, shards: usize, best_ms: f64) -> LabGroup {
        LabGroup {
            algorithm: algorithm.into(),
            family: "f".into(),
            n,
            shards,
            frontier: true,
            locality: false,
            best_ms,
            p50_ms: best_ms,
            p95_ms: best_ms,
        }
    }

    #[test]
    fn closest_prefers_nearest_then_larger_n() {
        let records = vec![rec("a", 1000, 1, 1.0), rec("a", 10_000, 1, 9.0)];
        let g = group("a", 4000, 1, 2.0);
        assert_eq!(closest(&records, &g).unwrap().n, 1000);
        let g = group("a", 5500, 1, 2.0);
        assert_eq!(closest(&records, &g).unwrap().n, 10_000, "tie → larger n");
        assert!(closest(&records, &group("a", 4000, 8, 2.0)).is_none());
        assert!(closest(&records, &group("b", 1000, 1, 2.0)).is_none());
    }

    #[test]
    fn closest_pairs_full_scan_groups_with_full_scan_rows() {
        let mut scan_rec = rec("a", 1000, 1, 3.0);
        scan_rec.frontier = false;
        let records = vec![rec("a", 1000, 1, 1.0), scan_rec];
        let mut scan_group = group("a", 1000, 1, 2.0);
        scan_group.frontier = false;
        assert_eq!(closest(&records, &scan_group).unwrap().wall_ms, 3.0);
        assert_eq!(
            closest(&records, &group("a", 1000, 1, 2.0))
                .unwrap()
                .wall_ms,
            1.0
        );
        let on_only = vec![rec("a", 1000, 1, 1.0)];
        assert!(closest(&on_only, &scan_group).is_none());
    }

    #[test]
    fn trend_table_normalizes_per_vertex() {
        let mut committed = rec("a", 2000, 1, 4.0); // 2.0 µs/v committed
        committed.frontier_skipped = 123_000;
        let groups = vec![group("a", 1000, 1, 1.0)]; // 1.0 µs/v fresh
        let table = render_trend(&groups, &[committed]);
        assert!(table.contains("| a (f) | 1 | 1000 |"), "{table}");
        assert!(table.contains("| -50.0% | 0.50 / 123k |"), "{table}");
        assert!(table.contains("1 of 1 lab group(s) matched"), "{table}");
    }

    #[test]
    fn full_scan_rows_render_scan_not_density() {
        let mut scan_rec = rec("a", 1000, 1, 3.0);
        scan_rec.frontier = false;
        let mut scan_group = group("a", 1000, 1, 2.0);
        scan_group.frontier = false;
        let table = render_trend(&[scan_group], &[scan_rec]);
        assert!(table.contains("| scan |"), "{table}");
    }

    #[test]
    fn closest_pairs_order_twins_with_same_order_rows() {
        let mut local_rec = rec("a", 1000, 1, 0.5);
        local_rec.locality = true;
        let records = vec![rec("a", 1000, 1, 1.0), local_rec];
        let mut local_group = group("a", 1000, 1, 0.4);
        local_group.locality = true;
        assert_eq!(closest(&records, &local_group).unwrap().wall_ms, 0.5);
        assert_eq!(
            closest(&records, &group("a", 1000, 1, 2.0))
                .unwrap()
                .wall_ms,
            1.0
        );
        let identity_only = vec![rec("a", 1000, 1, 1.0)];
        assert!(closest(&identity_only, &local_group).is_none());
    }

    #[test]
    fn route_column_carries_frac_and_protocol_marker() {
        // 0.5 ms of a 4.0 ms wall, measured pre-rank → "0.12 sorted".
        let mut sorted_rec = rec("a", 2000, 1, 4.0);
        sorted_rec.route_ms = 0.5;
        let table = render_trend(&[group("a", 1000, 1, 1.0)], &[sorted_rec]);
        assert!(table.contains("| 0.12 sorted |"), "{table}");

        let mut rank_rec = rec("a", 2000, 1, 4.0);
        rank_rec.route_ms = 1.0;
        rank_rec.rank_routing = true;
        let table = render_trend(&[group("a", 1000, 1, 1.0)], &[rank_rec]);
        assert!(table.contains("| 0.25 rank |"), "{table}");
    }

    #[test]
    fn compact_keeps_magnitude_readable() {
        assert_eq!(compact(0), "0");
        assert_eq!(compact(9_999), "9999");
        assert_eq!(compact(123_456), "123k");
        assert_eq!(compact(2_560_000_000), "2560.0M");
    }

    #[test]
    fn unmatched_groups_degrade_gracefully() {
        let table = render_trend(&[group("a", 10, 1, 1.0)], &[]);
        assert!(
            table.contains("no lab group has a committed twin"),
            "{table}"
        );
    }

    #[test]
    fn lab_groups_filters_split_and_faulty_rows() {
        let summary = lab::json::parse(
            r#"{"groups": [
                {"algorithm": "a", "congest": "unlimited", "family": "f",
                 "faults": "none", "n": 10, "shards": 1,
                 "wall_ms_best": 1.0, "wall_ms_p50": 1.5, "wall_ms_p95": 2.0},
                {"algorithm": "a", "congest": "split:4", "family": "f",
                 "faults": "none", "n": 10, "shards": 1,
                 "wall_ms_best": 1.0, "wall_ms_p50": 1.5, "wall_ms_p95": 2.0},
                {"algorithm": "a", "congest": "unlimited", "family": "f",
                 "faults": "loss:0.1", "n": 10, "shards": 1,
                 "wall_ms_best": 1.0, "wall_ms_p50": 1.5, "wall_ms_p95": 2.0},
                {"algorithm": "a", "congest": "unlimited", "family": "f",
                 "faults": "none", "frontier": false, "n": 10, "shards": 1,
                 "wall_ms_best": 3.0, "wall_ms_p50": 3.5, "wall_ms_p95": 4.0},
                {"algorithm": "a", "congest": "unlimited", "family": "f",
                 "faults": "none", "n": 10, "order": "locality", "shards": 1,
                 "wall_ms_best": 0.8, "wall_ms_p50": 0.9, "wall_ms_p95": 1.0}
            ]}"#,
        )
        .unwrap();
        let groups = lab_groups(&summary);
        assert_eq!(groups.len(), 3, "split and faulty rows are dropped");
        assert_eq!(groups[0].p95_ms, 2.0);
        assert!(
            groups[0].frontier,
            "groups without the flag default to frontier on"
        );
        assert!(!groups[1].frontier, "full-scan groups keep their flag");
        assert!(
            !groups[0].locality,
            "groups without the axis default to identity"
        );
        assert!(groups[2].locality, "order-twin groups keep their axis");
    }
}
