//! CI perf-regression gate over the `BENCH_engine.json` artifact.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_gate -- BENCH_engine.json
//! cargo run --release -p bench --bin bench_gate -- BENCH_engine.json \
//!     --max-engine-ratio=25 --max-shard8-ratio=1.25 --max-route-frac=0.60
//! cargo run --release -p bench --bin bench_gate -- --suite=suites/bench.json
//! ```
//!
//! Two modes share the binary:
//!
//! * **Artifact mode** (the default): read the artifact `engine_table`
//!   wrote and enforce the `--max-*` budgets below.
//! * **Suite mode** (`--suite=PATH`): measure fresh by running a declared
//!   scenario-lab suite and evaluating *its* budget checks — budgets as
//!   data next to the scenarios they constrain, rather than flags. The
//!   suite run exercises the same engine paths the artifact records; its
//!   verdicts come from the suite's `checks` array.
//!
//! Artifact mode enforces, **at the largest benched `n` of every
//! algorithm** (small sizes are all fixed overhead and noise — regressions
//! that matter show at scale):
//!
//! 1. `engine/1 ≤ max-engine-ratio × sequential` — the message-passing
//!    substrate may cost a constant factor over the sequential simulation
//!    (it routes real traffic; the simulation sends nothing), but that
//!    factor must never quietly grow.
//! 2. `engine/8 ≤ max-shard8-ratio × engine/1` — the persistent worker pool
//!    must keep multi-shard runs from regressing to the spawn-per-round era,
//!    where 8 shards cost 20× over 1. The tolerance above 1.0 absorbs
//!    scheduler noise on small CI machines; the crossover itself is asserted
//!    by the committed artifact.
//! 3. `route_ms ≤ max-route-frac × wall_ms` at engine/8 — the
//!    worker-parallel routing epoch (arena drain + sender-rank counting
//!    pass) must stay a bounded fraction of the round: if routing starts
//!    dominating wall time again, the second barrier phase has stopped
//!    paying for itself. The default tightened from 0.60 to 0.40 when the
//!    per-inbox comparison sort was replaced by the O(traffic) rank pass —
//!    the budget now also measures route_wall over the *whole* epoch
//!    (yield collection, fault injection, counting passes, finalize), so
//!    the bar holds against an honest, larger measurement. 0.40 is the
//!    measured ceiling plus noise headroom: the worst default-tier pair
//!    (cole-vishkin, one word per edge per round, near-zero compute)
//!    routes ~0.35 of its engine/8 wall under the widened metric.
//! 4. `split wall ≤ max-split-ratio × unlimited wall` for every
//!    CONGEST-split row (same algorithm, `n`, and shard count) — the
//!    fragmentation/reassembly path does real per-message encode/chop/
//!    decode work, but it must never silently regress into dominating the
//!    run.
//! 5. With `--min-shard-speedup=S` (off by default): `engine/1 ≥ S ×
//!    engine/8` — sharding must actually *win*, not merely avoid losing.
//!    This is the million-node gate: CI's `bench-xl` job passes
//!    `--min-shard-speedup=4` over the `engine_table --xl` artifact, where
//!    per-round work is large enough that an honest parallel routing phase
//!    must show a real speedup curve. It stays opt-in because laptop-sized
//!    runs (n ≤ 50k) are barrier-overhead-bound and the assertion would be
//!    noise there. When `--expect-family` is also given, the floor is
//!    judged only on pairs from the declared families — the compute-dense
//!    workloads the shard sweep exists to accelerate — so a route-bound
//!    pair riding along for the frontier budget (the xl ruling block on
//!    `grid`) is not held to a scaling bar it was never built to clear;
//!    every pair still faces the `max-shard8-ratio` ceiling.
//! 6. With `--min-frontier-speedup=F` (off by default): every full-scan
//!    twin row (`"frontier": false`, emitted by `engine_table` for the
//!    ruling and theorem13 showdowns at the tier's largest `n`) must be at
//!    least `F×` slower than the frontier run at the same configuration —
//!    the frontier index has to keep *earning* its bookkeeping on
//!    decaying-frontier workloads. Setting the flag over an artifact with
//!    no twin rows is itself a violation: a gate that never fires is a
//!    gate that quietly rotted.
//! 7. With `--min-order-speedup=F` (off by default): every locality row
//!    (`"locality": true`, emitted by `engine_table` for the twin-flagged
//!    showdowns) must beat its identity twin — same algorithm, `n`, shard
//!    count, split, and frontier setting — by at least `F×`. This is the
//!    cache-locality gate for the million-node tiers, where the relabeled
//!    layout's L3 behavior is the whole point; like the frontier floor, an
//!    artifact with no locality rows while the flag is set is a violation.
//!
//! All shard-indexed lookups resolve to frontier-on rows; full-scan twins
//! only ever feed budget 6. (The one exception is the `shards = 0` slot,
//! where the quiescent microbench parks its full-scan baseline — there is
//! no sequential twin for a driver microbench.)
//!
//! Every budget is evaluated per **(algorithm, family)** pair at that
//! pair's own largest `n` — an algorithm benched on several graph families
//! gets one verdict row per family, so a regression confined to (say) the
//! apollonian family cannot hide behind a healthy forest-union row that
//! happens to sort first. `--expect-family=NAME` (repeatable) declares
//! families the artifact *must* contain; a missing one is a violation, not
//! a silent skip — the xl job uses it to catch a generator that quietly
//! dropped out of the sweep. Pairs on an expected family must also carry
//! their engine/8 row even without `--min-shard-speedup`: a sweep that
//! quietly stopped at one shard used to pass on family presence alone.
//!
//! Exits nonzero with a per-(algorithm, family) table on any violation.

use bench::{parse_engine_bench_json, print_table, EngineBenchRecord};

const DEFAULT_MAX_ENGINE_RATIO: f64 = 25.0;
const DEFAULT_MAX_SHARD8_RATIO: f64 = 1.25;
const DEFAULT_MAX_ROUTE_FRAC: f64 = 0.40;
const DEFAULT_MAX_SPLIT_RATIO: f64 = 3.0;

/// Runs a declared lab suite and gates on its `checks` array. Never
/// returns: exits 0 when every check holds, 1 on violations.
fn suite_mode(path: &str) -> ! {
    let suite = lab::Suite::load(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: {e}");
        std::process::exit(2);
    });
    let run = lab::run_suite(&suite, |_row, _total| {}).unwrap_or_else(|e| {
        eprintln!("bench_gate: {e}");
        std::process::exit(2);
    });
    let mut rows = Vec::new();
    for scenario in &suite.scenarios {
        let trials: Vec<_> = run
            .rows
            .iter()
            .filter(|r| r.spec.scenario == scenario.name)
            .collect();
        let best = trials
            .iter()
            .map(|r| r.wall_ms)
            .min_by(f64::total_cmp)
            .unwrap_or(0.0);
        let worst = trials
            .iter()
            .map(|r| r.wall_ms)
            .max_by(f64::total_cmp)
            .unwrap_or(0.0);
        let failed = trials.iter().filter(|r| !r.valid).count();
        rows.push(vec![
            scenario.name.clone(),
            format!("{}", trials.len()),
            format!("{best:.2}"),
            format!("{worst:.2}"),
            if failed == 0 {
                "ok".into()
            } else {
                format!("{failed} FAILED")
            },
        ]);
    }
    print_table(
        &format!(
            "bench gate over suite {:?} (budgets declared in-suite)",
            run.suite
        ),
        &["scenario", "trials", "best ms", "worst ms", "verdict"],
        &rows,
    );
    let mut violations: Vec<String> = Vec::new();
    for outcome in lab::evaluate(&suite, &run) {
        if outcome.passed {
            println!("check {}: ok", outcome.check);
        } else {
            for v in &outcome.violations {
                violations.push(format!("{}: {v}", outcome.check));
            }
        }
    }
    if !violations.is_empty() {
        eprintln!("\nbench_gate: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("\nbench_gate: all declared budgets hold");
    std::process::exit(0);
}

fn main() {
    let mut path: Option<String> = None;
    let mut max_engine_ratio = DEFAULT_MAX_ENGINE_RATIO;
    let mut max_shard8_ratio = DEFAULT_MAX_SHARD8_RATIO;
    let mut max_route_frac = DEFAULT_MAX_ROUTE_FRAC;
    let mut max_split_ratio = DEFAULT_MAX_SPLIT_RATIO;
    let mut min_shard_speedup: Option<f64> = None;
    let mut min_frontier_speedup: Option<f64> = None;
    let mut min_order_speedup: Option<f64> = None;
    let mut expect_families: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--suite=") {
            suite_mode(v);
        } else if let Some(v) = arg.strip_prefix("--expect-family=") {
            expect_families.push(v.to_string());
        } else if let Some(v) = arg.strip_prefix("--max-engine-ratio=") {
            max_engine_ratio = v.parse().expect("--max-engine-ratio takes a number");
        } else if let Some(v) = arg.strip_prefix("--max-shard8-ratio=") {
            max_shard8_ratio = v.parse().expect("--max-shard8-ratio takes a number");
        } else if let Some(v) = arg.strip_prefix("--max-route-frac=") {
            max_route_frac = v.parse().expect("--max-route-frac takes a number");
        } else if let Some(v) = arg.strip_prefix("--max-split-ratio=") {
            max_split_ratio = v.parse().expect("--max-split-ratio takes a number");
        } else if let Some(v) = arg.strip_prefix("--min-shard-speedup=") {
            min_shard_speedup = Some(v.parse().expect("--min-shard-speedup takes a number"));
        } else if let Some(v) = arg.strip_prefix("--min-frontier-speedup=") {
            min_frontier_speedup = Some(v.parse().expect("--min-frontier-speedup takes a number"));
        } else if let Some(v) = arg.strip_prefix("--min-order-speedup=") {
            min_order_speedup = Some(v.parse().expect("--min-order-speedup takes a number"));
        } else {
            assert!(path.is_none(), "exactly one artifact path, got {arg:?} too");
            path = Some(arg);
        }
    }
    let path = path.unwrap_or_else(|| "BENCH_engine.json".into());
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    let records = parse_engine_bench_json(&json)
        .unwrap_or_else(|e| panic!("bench_gate: cannot parse {path}: {e}"));
    assert!(!records.is_empty(), "bench_gate: {path} holds no records");

    // One verdict row per (algorithm, family) pair, each at the pair's own
    // largest n — never let one family's row stand in for another's.
    let mut pairs: Vec<(String, String)> = records
        .iter()
        .map(|r| (r.algorithm.clone(), r.family.clone()))
        .collect();
    pairs.sort();
    pairs.dedup();

    let mut rows = Vec::new();
    let mut violations = Vec::new();
    let mut frontier_twins = 0usize;
    let mut order_twins = 0usize;
    for family in &expect_families {
        if !pairs.iter().any(|(_, f)| f == family) {
            violations.push(format!(
                "expected family {family:?} has no rows in {path} — the sweep \
                 that should produce it did not run"
            ));
        }
    }
    for (alg, family) in &pairs {
        let n = records
            .iter()
            .filter(|r| &r.algorithm == alg && &r.family == family)
            .map(|r| r.n)
            .max()
            .expect("pair has records");
        // Shard-indexed rows resolve frontier-on: a full-scan twin at the
        // same shard count is budget 6's input, never the canonical row.
        // The `shards = 0` slot is exempt — the quiescent microbench's
        // baseline lives there and is itself the full-scan run.
        let at = |shards: usize| -> Option<&EngineBenchRecord> {
            records.iter().find(|r| {
                &r.algorithm == alg
                    && &r.family == family
                    && r.n == n
                    && r.shards == shards
                    && r.split == 0
                    && (r.frontier || r.shards == 0)
                    && !r.locality
            })
        };
        let (Some(seq), Some(s1)) = (at(0), at(1)) else {
            violations.push(format!(
                "{alg}/{family} (n={n}): artifact is missing the sequential or engine/1 row"
            ));
            continue;
        };
        let engine_ratio = s1.wall_ms / seq.wall_ms.max(f64::EPSILON);
        let mut verdict = "ok";
        if engine_ratio > max_engine_ratio {
            verdict = "FAIL";
            violations.push(format!(
                "{alg}/{family} (n={n}): engine/1 is {engine_ratio:.2}× sequential \
                 ({:.3} ms vs {:.3} ms), budget {max_engine_ratio:.2}×",
                s1.wall_ms, seq.wall_ms
            ));
        }
        // The shard floor (budget 5) scopes to the declared families when
        // any are declared; see the doc comment.
        let floor_applies =
            expect_families.is_empty() || expect_families.iter().any(|f| f == family);
        let (shard8_cell, route_cell) = match at(8) {
            Some(s8) => {
                let shard8_ratio = s8.wall_ms / s1.wall_ms.max(f64::EPSILON);
                if let Some(min) = min_shard_speedup.filter(|_| floor_applies) {
                    let speedup = s1.wall_ms / s8.wall_ms.max(f64::EPSILON);
                    if speedup < min {
                        verdict = "FAIL";
                        violations.push(format!(
                            "{alg}/{family} (n={n}): engine/8 is only {speedup:.2}× faster than \
                             engine/1 ({:.3} ms vs {:.3} ms), floor {min:.2}× — the \
                             parallel routing phase is not scaling",
                            s8.wall_ms, s1.wall_ms
                        ));
                    }
                }
                if shard8_ratio > max_shard8_ratio {
                    verdict = "FAIL";
                    violations.push(format!(
                        "{alg}/{family} (n={n}): engine/8 is {shard8_ratio:.2}× engine/1 \
                         ({:.3} ms vs {:.3} ms), budget {max_shard8_ratio:.2}× — \
                         the worker pool is no longer amortizing round overhead",
                        s8.wall_ms, s1.wall_ms
                    ));
                }
                let route_frac = s8.route_ms / s8.wall_ms.max(f64::EPSILON);
                if route_frac > max_route_frac {
                    verdict = "FAIL";
                    violations.push(format!(
                        "{alg}/{family} (n={n}): routing is {:.0}% of the engine/8 wall time \
                         ({:.3} ms of {:.3} ms), budget {:.0}% — the routing phase \
                         has stopped amortizing",
                        route_frac * 100.0,
                        s8.route_ms,
                        s8.wall_ms,
                        max_route_frac * 100.0
                    ));
                }
                (format!("{shard8_ratio:.2}"), format!("{route_frac:.2}"))
            }
            None => {
                if min_shard_speedup.is_some() && floor_applies {
                    verdict = "FAIL";
                    violations.push(format!(
                        "{alg}/{family} (n={n}): --min-shard-speedup is set but the artifact \
                         has no engine/8 row"
                    ));
                } else if expect_families.iter().any(|f| f == family) {
                    // Family presence alone used to satisfy --expect-family
                    // even when the shard sweep quietly stopped at one
                    // shard; an expected family owes its per-shard rows.
                    verdict = "FAIL";
                    violations.push(format!(
                        "{alg}/{family} (n={n}): family is in --expect-family but the \
                         artifact has no engine/8 row — the shard sweep did not run"
                    ));
                }
                ("-".into(), "-".into())
            }
        };
        // The fragmentation budget: every split row at this n diffs against
        // its unlimited twin at the same shard count. The table cell lists
        // every split row's ratio (shards ascending).
        let mut split_ratios: Vec<String> = Vec::new();
        let mut split_rows: Vec<&EngineBenchRecord> = records
            .iter()
            .filter(|r| &r.algorithm == alg && &r.family == family && r.n == n && r.split > 0)
            .collect();
        split_rows.sort_by_key(|r| r.shards);
        for split_row in split_rows {
            let Some(unlimited) = at(split_row.shards) else {
                verdict = "FAIL";
                violations.push(format!(
                    "{alg}/{family} (n={n}): split row at shards={} has no unlimited twin",
                    split_row.shards
                ));
                continue;
            };
            let split_ratio = split_row.wall_ms / unlimited.wall_ms.max(f64::EPSILON);
            split_ratios.push(format!("{split_ratio:.2}"));
            if split_ratio > max_split_ratio {
                verdict = "FAIL";
                violations.push(format!(
                    "{alg}/{family} (n={n}): Split({}) at shards={} is {split_ratio:.2}× the \
                     unlimited run ({:.3} ms vs {:.3} ms), budget {max_split_ratio:.2}× — \
                     the reassembly path has regressed",
                    split_row.split, split_row.shards, split_row.wall_ms, unlimited.wall_ms
                ));
            }
            if split_row.physical_rounds < split_row.rounds {
                verdict = "FAIL";
                violations.push(format!(
                    "{alg}/{family} (n={n}): split row reports fewer physical rounds than \
                     logical rounds — the round charging is dishonest"
                ));
            }
        }
        let split_cell = if split_ratios.is_empty() {
            "-".to_string()
        } else {
            split_ratios.join("/")
        };
        // The frontier budget: every full-scan twin row at this n diffs
        // against the frontier run at the same configuration. The quiescent
        // baseline (`shards = 0`) is not a twin — it has no same-shards
        // frontier partner and exists for the ratio budgets above.
        let mut frontier_ratios: Vec<String> = Vec::new();
        let mut twin_rows: Vec<&EngineBenchRecord> = records
            .iter()
            .filter(|r| {
                &r.algorithm == alg
                    && &r.family == family
                    && r.n == n
                    && !r.frontier
                    && r.shards > 0
                    && !r.locality
            })
            .collect();
        twin_rows.sort_by_key(|r| (r.shards, r.split));
        for twin in twin_rows {
            let on = records.iter().find(|r| {
                &r.algorithm == alg
                    && &r.family == family
                    && r.n == n
                    && r.shards == twin.shards
                    && r.split == twin.split
                    && r.frontier
                    && !r.locality
            });
            let Some(on) = on else {
                verdict = "FAIL";
                violations.push(format!(
                    "{alg}/{family} (n={n}): full-scan row at shards={} has no frontier twin",
                    twin.shards
                ));
                continue;
            };
            frontier_twins += 1;
            let speedup = twin.wall_ms / on.wall_ms.max(f64::EPSILON);
            frontier_ratios.push(format!("{speedup:.2}"));
            if let Some(min) = min_frontier_speedup {
                if speedup < min {
                    verdict = "FAIL";
                    violations.push(format!(
                        "{alg}/{family} (n={n}): frontier is only {speedup:.2}× faster than \
                         the full scan at shards={} ({:.3} ms vs {:.3} ms), floor {min:.2}× — \
                         the frontier index is not earning its bookkeeping",
                        twin.shards, on.wall_ms, twin.wall_ms
                    ));
                }
            }
        }
        let frontier_cell = if frontier_ratios.is_empty() {
            "-".to_string()
        } else {
            frontier_ratios.join("/")
        };
        // The order budget: every locality row at this n diffs against the
        // identity run at the same (shards, split, frontier) configuration.
        let mut order_ratios: Vec<String> = Vec::new();
        let mut order_rows: Vec<&EngineBenchRecord> = records
            .iter()
            .filter(|r| {
                &r.algorithm == alg && &r.family == family && r.n == n && r.locality && r.shards > 0
            })
            .collect();
        order_rows.sort_by_key(|r| (r.shards, r.split));
        for local in order_rows {
            let identity = records.iter().find(|r| {
                &r.algorithm == alg
                    && &r.family == family
                    && r.n == n
                    && r.shards == local.shards
                    && r.split == local.split
                    && r.frontier == local.frontier
                    && !r.locality
            });
            let Some(identity) = identity else {
                verdict = "FAIL";
                violations.push(format!(
                    "{alg}/{family} (n={n}): locality row at shards={} has no identity twin",
                    local.shards
                ));
                continue;
            };
            order_twins += 1;
            let speedup = identity.wall_ms / local.wall_ms.max(f64::EPSILON);
            order_ratios.push(format!("{speedup:.2}"));
            if let Some(min) = min_order_speedup {
                if speedup < min {
                    verdict = "FAIL";
                    violations.push(format!(
                        "{alg}/{family} (n={n}): locality order is only {speedup:.2}× the \
                         identity run at shards={} ({:.3} ms vs {:.3} ms), floor {min:.2}× — \
                         the cache-local relabeling is not earning its permutation",
                        local.shards, local.wall_ms, identity.wall_ms
                    ));
                }
            }
        }
        let order_cell = if order_ratios.is_empty() {
            "-".to_string()
        } else {
            order_ratios.join("/")
        };
        rows.push(vec![
            alg.clone(),
            family.clone(),
            format!("{n}"),
            format!("{:.2}", seq.wall_ms),
            format!("{:.2}", s1.wall_ms),
            format!("{engine_ratio:.2}"),
            shard8_cell,
            route_cell,
            split_cell,
            frontier_cell,
            order_cell,
            verdict.into(),
        ]);
    }
    if min_frontier_speedup.is_some() && frontier_twins == 0 {
        violations.push(format!(
            "--min-frontier-speedup is set but {path} holds no full-scan twin rows — \
             engine_table stopped emitting them, so the budget can never fire"
        ));
    }
    if min_order_speedup.is_some() && order_twins == 0 {
        violations.push(format!(
            "--min-order-speedup is set but {path} holds no locality rows — \
             engine_table stopped emitting the order twins, so the budget can never fire"
        ));
    }
    print_table(
        &format!(
            "bench gate at largest n (budgets: engine/1 ≤ {max_engine_ratio:.2}× seq, \
             engine/8 ≤ {max_shard8_ratio:.2}× engine/1, \
             route ≤ {max_route_frac:.2}× wall at engine/8, \
             split ≤ {max_split_ratio:.2}× unlimited)"
        ),
        &[
            "algorithm",
            "family",
            "n",
            "seq ms",
            "engine/1",
            "e1/seq",
            "e8/e1",
            "route/8",
            "split/unl",
            "front×",
            "order×",
            "verdict",
        ],
        &rows,
    );
    if !violations.is_empty() {
        eprintln!("\nbench_gate: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("\nbench_gate: all budgets hold");
}
