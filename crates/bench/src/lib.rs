//! Shared harness utilities for the experiment tables and criterion
//! benches: aligned table printing and the standard workload families used
//! across EXPERIMENTS.md.

use distributed_coloring::{
    list_color_sparse, ListAssignment, Outcome, SparseColoring, SparseColoringConfig,
};
use graphs::Graph;

pub mod engine_report;
pub use engine_report::{parse_engine_bench_json, render_engine_bench_json, EngineBenchRecord};

/// Prints an aligned table: header row then rows, all right-aligned to the
/// widest cell per column.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Number of distinct colors used (ignoring `usize::MAX`).
pub fn distinct_colors(colors: &[usize]) -> usize {
    colors
        .iter()
        .filter(|&&c| c != usize::MAX)
        .collect::<std::collections::BTreeSet<_>>()
        .len()
}

/// Runs Theorem 1.3 with uniform `d`-lists and asserts validity; returns
/// the successful coloring.
pub fn run_theorem13(g: &Graph, d: usize) -> SparseColoring {
    let lists = ListAssignment::uniform(g.n(), d);
    match list_color_sparse(g, &lists, d, SparseColoringConfig::default()).expect("valid input") {
        Outcome::Colored(c) => {
            assert!(graphs::is_proper(g, &c.colors));
            *c
        }
        Outcome::CliqueFound { vertices, .. } => {
            panic!("unexpected clique {vertices:?} on a certified workload")
        }
    }
}

/// A named workload for the sweep tables.
pub struct Workload {
    /// Display name.
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
    /// The `d` to run Theorem 1.3 with.
    pub d: usize,
}

/// The standard E1 sweep: certified-sparseness families at a given size.
pub fn e1_workloads(n: usize, seed: u64) -> Vec<Workload> {
    let side = (n as f64).sqrt().round() as usize;
    vec![
        Workload {
            name: "forest-union-a2",
            graph: graphs::gen::forest_union(n, 2, seed),
            d: 4,
        },
        Workload {
            name: "forest-union-a3",
            graph: graphs::gen::forest_union(n, 3, seed + 1),
            d: 6,
        },
        Workload {
            name: "random-3-regular",
            graph: graphs::gen::random_regular(n & !1, 3, seed + 2),
            d: 3,
        },
        Workload {
            name: "grid",
            graph: graphs::gen::grid(side, side),
            d: 4,
        },
        Workload {
            name: "apollonian",
            graph: graphs::gen::apollonian(n.max(4), seed + 3),
            d: 6,
        },
    ]
}

/// `log₂³ n` — the paper's round-complexity scale factor.
pub fn log2_cubed(n: usize) -> f64 {
    let l = (n.max(2) as f64).log2();
    l * l * l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_counts() {
        assert_eq!(distinct_colors(&[1, 2, 2, usize::MAX]), 2);
        assert_eq!(distinct_colors(&[]), 0);
    }

    #[test]
    fn run_theorem13_on_small_grid() {
        let g = graphs::gen::grid(5, 5);
        let c = run_theorem13(&g, 4);
        assert!(distinct_colors(&c.colors) <= 4);
    }

    #[test]
    fn workloads_have_valid_mad() {
        for w in e1_workloads(64, 5) {
            assert!(
                graphs::mad_at_most(&w.graph, w.d as f64),
                "{}: mad exceeds d={}",
                w.name,
                w.d
            );
        }
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
