//! Dense bit-set over vertex ids, the workhorse for masks and induced
//! subgraph bookkeeping.

use crate::graph::VertexId;
use std::fmt;

/// A fixed-universe set of vertices backed by a bit vector.
///
/// # Examples
///
/// ```
/// use graphs::VertexSet;
/// let mut s = VertexSet::new(10);
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VertexSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl VertexSet {
    /// Creates an empty set over universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        VertexSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
            len: 0,
        }
    }

    /// Creates a full set over `0..universe`.
    pub fn full(universe: usize) -> Self {
        let mut s = VertexSet::new(universe);
        for v in 0..universe {
            s.insert(v);
        }
        s
    }

    /// Creates a set from an iterator of vertices.
    pub fn from_iter_with_universe<I: IntoIterator<Item = VertexId>>(
        universe: usize,
        iter: I,
    ) -> Self {
        let mut s = VertexSet::new(universe);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        assert!(
            v < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        self.words[v / 64] >> (v % 64) & 1 == 1
    }

    /// Inserts `v`; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        assert!(
            v < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        let w = &mut self.words[v / 64];
        let bit = 1u64 << (v % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `v`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: VertexId) -> bool {
        assert!(
            v < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        let w = &mut self.words[v / 64];
        let bit = 1u64 << (v % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterator over members in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: if self.words.is_empty() {
                0
            } else {
                self.words[0]
            },
        }
    }

    /// In-place union. Panics if universes differ.
    pub fn union_with(&mut self, other: &VertexSet) {
        assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.recount();
    }

    /// In-place intersection. Panics if universes differ.
    pub fn intersect_with(&mut self, other: &VertexSet) {
        assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        self.recount();
    }

    /// In-place difference (`self \ other`). Panics if universes differ.
    pub fn difference_with(&mut self, other: &VertexSet) {
        assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        self.recount();
    }

    /// Whether `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &VertexSet) -> bool {
        assert_eq!(self.universe, other.universe);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &VertexSet) -> bool {
        assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

impl fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<VertexId> for VertexSet {
    fn extend<I: IntoIterator<Item = VertexId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a VertexSet {
    type Item = VertexId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over a [`VertexSet`], produced by [`VertexSet::iter`].
pub struct Iter<'a> {
    set: &'a VertexSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = VertexSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(129));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_order() {
        let s = VertexSet::from_iter_with_universe(200, [199, 0, 63, 64, 65]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 199]);
    }

    #[test]
    fn set_ops() {
        let a = VertexSet::from_iter_with_universe(10, [1, 2, 3]);
        let b = VertexSet::from_iter_with_universe(10, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(!a.is_disjoint(&b));
        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn full_and_clear() {
        let mut s = VertexSet::full(70);
        assert_eq!(s.len(), 70);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_universe_panics() {
        let s = VertexSet::new(5);
        s.contains(5);
    }
}
