//! Dinic's maximum-flow algorithm on an explicit flow network.
//!
//! Built as the substrate for the exact maximum-average-degree and
//! arboricity oracles ([`crate::density`]): the paper's Theorem 1.3
//! precondition is `d ≥ mad(G)`, and Corollary 1.4 consumes Nash-Williams
//! arboricity, so we need exact values — not estimates — to validate
//! workloads and experiments.

/// Capacity type for the flow network. Densest-subgraph reductions need
/// fractional capacities, so we use `f64` with an epsilon; all capacities in
/// our reductions are multiples of 1/2n², far above the epsilon.
pub type Capacity = f64;

const EPS: Capacity = 1e-9;

/// A directed flow network with residual-edge bookkeeping.
///
/// # Examples
///
/// ```
/// use graphs::flow::FlowNetwork;
/// let mut net = FlowNetwork::new(4);
/// net.add_edge(0, 1, 3.0);
/// net.add_edge(1, 2, 2.0);
/// net.add_edge(0, 2, 1.0);
/// net.add_edge(2, 3, 4.0);
/// let f = net.max_flow(0, 3);
/// assert!((f - 3.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// Adjacency: node -> indices into `edges`.
    adj: Vec<Vec<usize>>,
    /// Flat edge list; edge `i ^ 1` is the reverse of edge `i`.
    to: Vec<usize>,
    cap: Vec<Capacity>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `u -> v` with capacity `c` (and a zero-capacity
    /// reverse edge). Returns the edge index.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `c < 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, c: Capacity) -> usize {
        assert!(u < self.n() && v < self.n(), "edge endpoint out of range");
        assert!(c >= 0.0, "negative capacity");
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(c);
        self.adj[u].push(id);
        self.to.push(u);
        self.cap.push(0.0);
        self.adj[v].push(id + 1);
        id
    }

    /// Computes the maximum `source -> sink` flow (Dinic). Mutates residual
    /// capacities in place; call on a fresh/cloned network to reuse.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> Capacity {
        assert_ne!(source, sink, "source equals sink");
        let n = self.n();
        let mut total = 0.0;
        let mut level = vec![usize::MAX; n];
        let mut iter = vec![0usize; n];
        loop {
            // BFS layering on the residual graph.
            level.fill(usize::MAX);
            level[source] = 0;
            let mut q = std::collections::VecDeque::new();
            q.push_back(source);
            while let Some(u) = q.pop_front() {
                for &e in &self.adj[u] {
                    let v = self.to[e];
                    if self.cap[e] > EPS && level[v] == usize::MAX {
                        level[v] = level[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            if level[sink] == usize::MAX {
                return total;
            }
            iter.fill(0);
            // Blocking flow by iterative DFS.
            loop {
                let pushed = self.dfs_push(source, sink, Capacity::INFINITY, &level, &mut iter);
                if pushed <= EPS {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs_push(
        &mut self,
        source: usize,
        sink: usize,
        limit: Capacity,
        level: &[usize],
        iter: &mut [usize],
    ) -> Capacity {
        // Iterative DFS carrying the path; recursion depth could hit n.
        let mut path: Vec<usize> = Vec::new(); // edge ids along current path
        let mut u = source;
        loop {
            if u == sink {
                // Push the bottleneck along `path`.
                let mut bottleneck = limit;
                for &e in &path {
                    bottleneck = bottleneck.min(self.cap[e]);
                }
                for &e in &path {
                    self.cap[e] -= bottleneck;
                    self.cap[e ^ 1] += bottleneck;
                }
                return bottleneck;
            }
            let mut advanced = false;
            while iter[u] < self.adj[u].len() {
                let e = self.adj[u][iter[u]];
                let v = self.to[e];
                if self.cap[e] > EPS && level[v] == level[u] + 1 {
                    path.push(e);
                    u = v;
                    advanced = true;
                    break;
                }
                iter[u] += 1;
            }
            if !advanced {
                if u == source {
                    return 0.0;
                }
                // Dead end: retreat, exhaust the edge we came in on.
                level_retreat(&mut path, &mut u, self, iter);
            }
        }
    }

    /// After `max_flow`, the set of nodes reachable from `source` in the
    /// residual graph — the source side of a minimum cut.
    pub fn min_cut_side(&self, source: usize) -> Vec<bool> {
        let n = self.n();
        let mut seen = vec![false; n];
        seen[source] = true;
        let mut q = std::collections::VecDeque::new();
        q.push_back(source);
        while let Some(u) = q.pop_front() {
            for &e in &self.adj[u] {
                let v = self.to[e];
                if self.cap[e] > EPS && !seen[v] {
                    seen[v] = true;
                    q.push_back(v);
                }
            }
        }
        seen
    }
}

fn level_retreat(path: &mut Vec<usize>, u: &mut usize, net: &FlowNetwork, iter: &mut [usize]) {
    let e = path.pop().expect("retreat from source handled by caller");
    // The tail of edge e is where we retreat to: it is to[e ^ 1].
    let tail = net.to[e ^ 1];
    iter[tail] += 1;
    *u = tail;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5.0);
        assert!((net.max_flow(0, 1) - 5.0).abs() < EPS);
    }

    #[test]
    fn classic_diamond() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10.0);
        net.add_edge(0, 2, 10.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 8.0);
        net.add_edge(2, 3, 10.0);
        assert!((net.max_flow(0, 3) - 18.0).abs() < 1e-6);
    }

    #[test]
    fn disconnected_sink() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4.0);
        assert_eq!(net.max_flow(0, 2), 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 0.5);
        net.add_edge(1, 2, 0.25);
        assert!((net.max_flow(0, 2) - 0.25).abs() < EPS);
    }

    #[test]
    fn min_cut_side_after_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 2, 0.5);
        net.add_edge(2, 3, 1.0);
        net.max_flow(0, 3);
        let side = net.min_cut_side(0);
        assert!(side[0] && side[1]);
        assert!(!side[2] && !side[3]);
    }

    #[test]
    fn parallel_paths() {
        let mut net = FlowNetwork::new(6);
        for mid in 1..5 {
            net.add_edge(0, mid, 1.0);
            net.add_edge(mid, 5, 1.0);
        }
        assert!((net.max_flow(0, 5) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn bipartite_matching_as_flow() {
        // 3+3 bipartite, perfect matching exists.
        let mut net = FlowNetwork::new(8);
        let (s, t) = (6, 7);
        for l in 0..3 {
            net.add_edge(s, l, 1.0);
            net.add_edge(3 + l, t, 1.0);
        }
        net.add_edge(0, 3, 1.0);
        net.add_edge(0, 4, 1.0);
        net.add_edge(1, 4, 1.0);
        net.add_edge(2, 5, 1.0);
        assert!((net.max_flow(s, t) - 3.0).abs() < 1e-6);
    }
}
