//! Induced subgraphs with explicit vertex-id mappings.

use crate::graph::{Graph, GraphBuilder, VertexId};
use crate::vertex_set::VertexSet;

/// An induced subgraph `G[S]` materialized as its own [`Graph`] with dense
/// ids, plus the mapping back to the parent graph.
///
/// # Examples
///
/// ```
/// use graphs::{Graph, InducedSubgraph};
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let sub = InducedSubgraph::new(&g, [1, 2, 3]);
/// assert_eq!(sub.graph().n(), 3);
/// assert_eq!(sub.graph().m(), 2);
/// assert_eq!(sub.to_parent(0), 1);
/// assert_eq!(sub.from_parent(3), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    graph: Graph,
    /// `to_parent[local] = parent id`, sorted ascending.
    to_parent: Vec<VertexId>,
    /// `from_parent[parent] = Some(local)`.
    from_parent: Vec<Option<VertexId>>,
}

impl InducedSubgraph {
    /// Builds `G[S]` for the vertices in `vertices` (duplicates ignored).
    ///
    /// # Panics
    ///
    /// Panics if any vertex is out of range for `g`.
    pub fn new<I: IntoIterator<Item = VertexId>>(g: &Graph, vertices: I) -> Self {
        let mut to_parent: Vec<VertexId> = vertices.into_iter().collect();
        to_parent.sort_unstable();
        to_parent.dedup();
        let mut from_parent = vec![None; g.n()];
        for (local, &p) in to_parent.iter().enumerate() {
            assert!(p < g.n(), "vertex {p} out of range");
            from_parent[p] = Some(local);
        }
        let mut b = GraphBuilder::new(to_parent.len());
        for (local, &p) in to_parent.iter().enumerate() {
            for &w in g.neighbors(p) {
                if let Some(wl) = from_parent[w] {
                    if wl > local {
                        b.add_edge(local, wl);
                    }
                }
            }
        }
        InducedSubgraph {
            graph: b.build(),
            to_parent,
            from_parent,
        }
    }

    /// Builds `G[S]` from a [`VertexSet`] mask.
    pub fn from_set(g: &Graph, set: &VertexSet) -> Self {
        InducedSubgraph::new(g, set.iter())
    }

    /// The materialized subgraph with dense local ids.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Maps a local id to the parent-graph id.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn to_parent(&self, local: VertexId) -> VertexId {
        self.to_parent[local]
    }

    /// Maps a parent-graph id to the local id, if the vertex is in the
    /// subgraph.
    pub fn from_parent(&self, parent: VertexId) -> Option<VertexId> {
        self.from_parent.get(parent).copied().flatten()
    }

    /// The parent ids of all subgraph vertices, sorted.
    pub fn parent_vertices(&self) -> &[VertexId] {
        &self.to_parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_triangle_from_k4() {
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let sub = InducedSubgraph::new(&k4, [0, 2, 3]);
        assert_eq!(sub.graph().n(), 3);
        assert_eq!(sub.graph().m(), 3);
        assert_eq!(sub.parent_vertices(), &[0, 2, 3]);
        assert_eq!(sub.from_parent(1), None);
        assert_eq!(sub.to_parent(1), 2);
    }

    #[test]
    fn empty_selection() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let sub = InducedSubgraph::new(&g, []);
        assert!(sub.graph().is_empty());
    }

    #[test]
    fn duplicates_ignored() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let sub = InducedSubgraph::new(&g, [1, 1, 2]);
        assert_eq!(sub.graph().n(), 2);
        assert_eq!(sub.graph().m(), 1);
    }

    #[test]
    fn from_set_matches_new() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let set = VertexSet::from_iter_with_universe(5, [0, 1, 4]);
        let a = InducedSubgraph::from_set(&g, &set);
        let b = InducedSubgraph::new(&g, [0, 1, 4]);
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.parent_vertices(), b.parent_vertices());
    }
}
