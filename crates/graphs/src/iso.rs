//! Graph isomorphism for small graphs (backtracking with degree pruning).
//!
//! Used by the Observation 2.4 experiments: a distributed algorithm with
//! round complexity `r` cannot distinguish vertices whose radius-`(r+1)`
//! balls are isomorphic, which is the engine behind every lower bound in
//! the paper (Theorems 1.5, 2.5, 2.6). We check ball isomorphism *rooted*
//! (the centers must correspond), which is the relevant notion for LOCAL
//! indistinguishability.

use crate::graph::{Graph, VertexId};

/// Whether `a` and `b` are isomorphic. Exponential worst case; intended for
/// balls / small graphs (≲ 60 vertices with pruning).
///
/// # Examples
///
/// ```
/// use graphs::{Graph, are_isomorphic};
/// let p3a = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// let p3b = Graph::from_edges(3, [(1, 0), (0, 2)]);
/// assert!(are_isomorphic(&p3a, &p3b));
/// let k3 = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// assert!(!are_isomorphic(&p3a, &k3));
/// ```
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    isomorphism(a, b, None).is_some()
}

/// Whether `a` and `b` are isomorphic by a map sending `root_a` to `root_b`
/// (rooted isomorphism, the LOCAL-indistinguishability notion).
pub fn are_rooted_isomorphic(a: &Graph, root_a: VertexId, b: &Graph, root_b: VertexId) -> bool {
    isomorphism(a, b, Some((root_a, root_b))).is_some()
}

/// Finds an isomorphism `a -> b` (optionally pinned at roots), returned as
/// `map[v_in_a] = v_in_b`.
pub fn isomorphism(
    a: &Graph,
    b: &Graph,
    roots: Option<(VertexId, VertexId)>,
) -> Option<Vec<VertexId>> {
    if a.n() != b.n() || a.m() != b.m() {
        return None;
    }
    let n = a.n();
    // Degree-sequence pruning.
    let mut da: Vec<usize> = (0..n).map(|v| a.degree(v)).collect();
    let mut db: Vec<usize> = (0..n).map(|v| b.degree(v)).collect();
    da.sort_unstable();
    db.sort_unstable();
    if da != db {
        return None;
    }
    // Refinement invariant: sorted multiset of neighbor degrees per vertex.
    let sig = |g: &Graph, v: VertexId| -> Vec<usize> {
        let mut s: Vec<usize> = g.neighbors(v).iter().map(|&w| g.degree(w)).collect();
        s.sort_unstable();
        s
    };
    let sig_a: Vec<Vec<usize>> = (0..n).map(|v| sig(a, v)).collect();
    let sig_b: Vec<Vec<usize>> = (0..n).map(|v| sig(b, v)).collect();
    {
        let mut sa = sig_a.clone();
        let mut sb = sig_b.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        if sa != sb {
            return None;
        }
    }

    let mut map = vec![usize::MAX; n]; // a -> b
    let mut used = vec![false; n];
    if let Some((ra, rb)) = roots {
        if a.degree(ra) != b.degree(rb) || sig_a[ra] != sig_b[rb] {
            return None;
        }
        map[ra] = rb;
        used[rb] = true;
    }
    // Order a's vertices: roots first, then by connectivity to already
    // placed vertices (greedy BFS-ish order maximizes pruning).
    let order = matching_order(a, roots.map(|r| r.0));
    if backtrack(a, b, &order, 0, &mut map, &mut used, &sig_a, &sig_b) {
        Some(map)
    } else {
        None
    }
}

fn matching_order(a: &Graph, root: Option<VertexId>) -> Vec<VertexId> {
    let n = a.n();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    if let Some(r) = root {
        order.push(r);
        placed[r] = true;
    }
    while order.len() < n {
        // Next vertex: most placed neighbors, tie-break by degree.
        let v = (0..n)
            .filter(|&v| !placed[v])
            .max_by_key(|&v| {
                let attached = a.neighbors(v).iter().filter(|&&w| placed[w]).count();
                (attached, a.degree(v))
            })
            .expect("some vertex remains");
        order.push(v);
        placed[v] = true;
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    a: &Graph,
    b: &Graph,
    order: &[VertexId],
    idx: usize,
    map: &mut [VertexId],
    used: &mut [bool],
    sig_a: &[Vec<usize>],
    sig_b: &[Vec<usize>],
) -> bool {
    // Skip pre-pinned vertices.
    let mut idx = idx;
    while idx < order.len() && map[order[idx]] != usize::MAX {
        idx += 1;
    }
    if idx == order.len() {
        return true;
    }
    let v = order[idx];
    'candidates: for w in 0..b.n() {
        if used[w] || a.degree(v) != b.degree(w) || sig_a[v] != sig_b[w] {
            continue;
        }
        // Consistency: every placed neighbor of v maps to a neighbor of w,
        // and every placed non-neighbor maps to a non-neighbor.
        for (u, &mu) in map.iter().enumerate() {
            if mu != usize::MAX && u != v {
                let adj_a = a.has_edge(u, v);
                let adj_b = b.has_edge(mu, w);
                if adj_a != adj_b {
                    continue 'candidates;
                }
            }
        }
        map[v] = w;
        used[w] = true;
        if backtrack(a, b, order, idx + 1, map, used, sig_a, sig_b) {
            return true;
        }
        map[v] = usize::MAX;
        used[w] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn cycles_isomorphic_regardless_of_labels() {
        let a = cycle(6);
        let b = Graph::from_edges(6, [(0, 2), (2, 4), (4, 1), (1, 3), (3, 5), (5, 0)]);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn different_sizes_not_isomorphic() {
        assert!(!are_isomorphic(&cycle(5), &cycle(6)));
        let p = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(!are_isomorphic(&p, &cycle(4)));
    }

    #[test]
    fn same_degree_sequence_different_graphs() {
        // C6 vs 2×C3: both 2-regular on 6 vertices.
        let two_triangles = cycle(3).disjoint_union(&cycle(3));
        assert!(!are_isomorphic(&cycle(6), &two_triangles));
    }

    #[test]
    fn rooted_isomorphism_distinguishes_positions() {
        // Path 0-1-2: endpoint maps to endpoint, not to the middle.
        let p = Graph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(are_rooted_isomorphic(&p, 0, &p, 2));
        assert!(!are_rooted_isomorphic(&p, 0, &p, 1));
        assert!(are_rooted_isomorphic(&p, 1, &p, 1));
    }

    #[test]
    fn isomorphism_map_is_valid() {
        let a = cycle(5);
        let b = Graph::from_edges(5, [(3, 1), (1, 4), (4, 2), (2, 0), (0, 3)]);
        let map = isomorphism(&a, &b, None).unwrap();
        for (u, v) in a.edges() {
            assert!(b.has_edge(map[u], map[v]));
        }
    }

    #[test]
    fn petersen_vs_random_cubic() {
        // Petersen vs K_{3,3} plus perfect matching subdivision… simpler:
        // Petersen vs the 3-prism disjoint-union C4? Sizes differ; use prism
        // (K3 x K2) vs K_{3,3}: both cubic on 6 vertices, not isomorphic
        // (K_{3,3} is triangle-free).
        let prism = Graph::from_edges(
            6,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 3),
                (1, 4),
                (2, 5),
            ],
        );
        let mut e = Vec::new();
        for i in 0..3 {
            for j in 3..6 {
                e.push((i, j));
            }
        }
        let k33 = Graph::from_edges(6, e);
        assert!(!are_isomorphic(&prism, &k33));
        assert!(are_isomorphic(&prism, &prism));
    }

    #[test]
    fn grid_balls_rooted_iso() {
        // Balls of radius 1 around two interior vertices of a path are
        // isomorphic rooted at centers.
        let p = cycle(8);
        let ball1 = crate::traversal::ball(&p, 2, 1, None);
        let ball2 = crate::traversal::ball(&p, 5, 1, None);
        let s1 = crate::subgraph::InducedSubgraph::new(&p, ball1);
        let s2 = crate::subgraph::InducedSubgraph::new(&p, ball2);
        let r1 = s1.from_parent(2).unwrap();
        let r2 = s2.from_parent(5).unwrap();
        assert!(are_rooted_isomorphic(s1.graph(), r1, s2.graph(), r2));
    }
}
