//! Biconnected components (blocks), articulation points, the block–cut
//! tree, and Gallai-tree recognition (paper §1.4).
//!
//! A *block* is a maximal 2-connected subgraph; an isolated edge is a block
//! (a `K_2`) and an isolated vertex forms a degenerate single-vertex block.
//! A *Gallai tree* is a connected graph whose every block is a clique or an
//! odd cycle (Figure 1 of the paper).

use crate::graph::{Graph, VertexId};
use crate::vertex_set::VertexSet;

/// Result of a block decomposition, from [`block_decomposition`].
#[derive(Clone, Debug)]
pub struct BlockDecomposition {
    /// Each block as a sorted list of vertex ids. Single isolated vertices
    /// appear as 1-element blocks so that every (masked) vertex is covered.
    pub blocks: Vec<Vec<VertexId>>,
    /// Articulation (cut) vertices.
    pub cut_vertices: VertexSet,
    /// For each vertex, indices into `blocks` of the blocks containing it.
    pub blocks_of: Vec<Vec<usize>>,
}

impl BlockDecomposition {
    /// Indices of blocks that contain at most one cut vertex — the "leaf
    /// blocks" of the block–cut tree (including the root when it is the only
    /// block of its component).
    pub fn leaf_blocks(&self) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.iter().filter(|&&v| self.cut_vertices.contains(v)).count() <= 1)
            .map(|(i, _)| i)
            .collect()
    }

    /// The cut vertices lying in block `i`.
    pub fn cut_vertices_in(&self, i: usize) -> Vec<VertexId> {
        self.blocks[i]
            .iter()
            .copied()
            .filter(|&v| self.cut_vertices.contains(v))
            .collect()
    }
}

/// Computes blocks and articulation points with an iterative Hopcroft–Tarjan
/// DFS, restricted to an optional mask.
///
/// # Examples
///
/// ```
/// use graphs::{Graph, block_decomposition};
/// // Two triangles sharing vertex 2 ("bowtie"): 2 blocks, cut vertex 2.
/// let g = Graph::from_edges(5, [(0,1),(1,2),(2,0),(2,3),(3,4),(4,2)]);
/// let d = block_decomposition(&g, None);
/// assert_eq!(d.blocks.len(), 2);
/// assert!(d.cut_vertices.contains(2));
/// assert_eq!(d.cut_vertices.len(), 1);
/// ```
pub fn block_decomposition(g: &Graph, mask: Option<&VertexSet>) -> BlockDecomposition {
    let n = g.n();
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    let mut disc = vec![0usize; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0usize; n];
    let mut is_cut = VertexSet::new(n);
    let mut blocks: Vec<Vec<VertexId>> = Vec::new();
    let mut edge_stack: Vec<(VertexId, VertexId)> = Vec::new();
    let mut timer = 1usize;

    // Iterative DFS frame: (vertex, parent, next neighbor index, child count
    // for roots).
    for start in 0..n {
        if !in_mask(start) || disc[start] != 0 {
            continue;
        }
        if g.neighbors(start).iter().all(|&w| !in_mask(w)) {
            // Isolated (within mask) vertex: degenerate single-vertex block.
            disc[start] = timer;
            timer += 1;
            blocks.push(vec![start]);
            continue;
        }
        let mut stack: Vec<(VertexId, usize, usize)> = Vec::new(); // (v, parent, nbr idx)
        let mut root_children = 0usize;
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        stack.push((start, usize::MAX, 0));
        while let Some(&mut (v, parent, ref mut idx)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *idx < nbrs.len() {
                let w = nbrs[*idx];
                *idx += 1;
                if !in_mask(w) {
                    continue;
                }
                if disc[w] == 0 {
                    edge_stack.push((v, w));
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    if v == start {
                        root_children += 1;
                    }
                    stack.push((w, v, 0));
                } else if w != parent && disc[w] < disc[v] {
                    edge_stack.push((v, w));
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[v]);
                    if low[v] >= disc[p] {
                        // p is a cut vertex (or the root); pop one block.
                        if p != start || root_children > 1 {
                            is_cut.insert(p);
                        }
                        let mut verts = VertexSet::new(n);
                        while let Some(&(a, b)) = edge_stack.last() {
                            if disc[a] >= disc[v] || (a == p && b == v) {
                                edge_stack.pop();
                                verts.insert(a);
                                verts.insert(b);
                                if a == p && b == v {
                                    break;
                                }
                            } else {
                                break;
                            }
                        }
                        if !verts.is_empty() {
                            blocks.push(verts.iter().collect());
                        }
                    }
                }
            }
        }
        // Anything left on the edge stack from this root is one last block.
        if !edge_stack.is_empty() {
            let mut verts = VertexSet::new(n);
            for (a, b) in edge_stack.drain(..) {
                verts.insert(a);
                verts.insert(b);
            }
            blocks.push(verts.iter().collect());
        }
    }

    let mut blocks_of = vec![Vec::new(); n];
    for (i, b) in blocks.iter().enumerate() {
        for &v in b {
            blocks_of[v].push(i);
        }
    }
    BlockDecomposition {
        blocks,
        cut_vertices: is_cut,
        blocks_of,
    }
}

/// Whether the vertex set `verts` induces a clique in `g`.
pub fn is_clique(g: &Graph, verts: &[VertexId]) -> bool {
    for (i, &u) in verts.iter().enumerate() {
        for &v in &verts[i + 1..] {
            if !g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// Whether `verts` induces a chordless cycle of odd length ≥ 3 in `g`.
///
/// For a block this means: every vertex has degree exactly 2 within the
/// block, the block is connected, and its size is odd. (A triangle counts as
/// a clique too; the paper treats triangles as cliques — both predicates may
/// hold.)
pub fn is_odd_cycle(g: &Graph, verts: &[VertexId]) -> bool {
    let k = verts.len();
    if k < 3 || k.is_multiple_of(2) {
        return false;
    }
    let vset: VertexSet = VertexSet::from_iter_with_universe(g.n(), verts.iter().copied());
    let mut edge_count = 0usize;
    for &v in verts {
        let d = g.neighbors(v).iter().filter(|&&w| vset.contains(w)).count();
        if d != 2 {
            return false;
        }
        edge_count += d;
    }
    // 2-regular with k vertices and k edges: a disjoint union of cycles; it
    // is a single cycle iff connected, which 2-regularity + the block
    // property gives us — but verify connectivity anyway for standalone use.
    debug_assert_eq!(edge_count, 2 * k);
    crate::traversal::is_connected(g, Some(&vset)) || k == 0
}

/// Classification of a single block for Gallai-tree purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// A clique `K_t` (including `K_1`, `K_2`).
    Clique,
    /// A chordless odd cycle of length ≥ 5.
    OddCycle,
    /// Neither — the block witnesses non-Gallai-ness.
    Other,
}

/// Classifies one block (given as its sorted vertex list).
pub fn classify_block(g: &Graph, verts: &[VertexId]) -> BlockKind {
    if is_clique(g, verts) {
        BlockKind::Clique
    } else if is_odd_cycle(g, verts) {
        BlockKind::OddCycle
    } else {
        BlockKind::Other
    }
}

/// Whether the subgraph induced by `mask` (or all of `g`) is a *Gallai
/// forest*: every block of every component is a clique or an odd cycle.
///
/// The paper's Gallai *tree* additionally requires connectivity; use
/// [`is_gallai_tree`] for the exact notion.
pub fn is_gallai_forest(g: &Graph, mask: Option<&VertexSet>) -> bool {
    let d = block_decomposition(g, mask);
    d.blocks
        .iter()
        .all(|b| classify_block(g, b) != BlockKind::Other)
}

/// Whether the subgraph induced by `mask` (or all of `g`) is a Gallai tree:
/// connected and every block is a clique or odd cycle (paper §1.4).
///
/// # Examples
///
/// ```
/// use graphs::{Graph, is_gallai_tree};
/// // A triangle with a pendant edge is a Gallai tree.
/// let g = Graph::from_edges(4, [(0,1),(1,2),(2,0),(2,3)]);
/// assert!(is_gallai_tree(&g, None));
/// // A 4-cycle is not (its single block is an even cycle).
/// let c4 = Graph::from_edges(4, [(0,1),(1,2),(2,3),(3,0)]);
/// assert!(!is_gallai_tree(&c4, None));
/// ```
pub fn is_gallai_tree(g: &Graph, mask: Option<&VertexSet>) -> bool {
    crate::traversal::is_connected(g, mask) && is_gallai_forest(g, mask)
}

/// Finds a block that is neither a clique nor an odd cycle, if one exists.
/// Returns its index into `decomposition.blocks`.
pub fn find_non_gallai_block(g: &Graph, decomposition: &BlockDecomposition) -> Option<usize> {
    decomposition
        .blocks
        .iter()
        .position(|b| classify_block(g, b) == BlockKind::Other)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    fn clique(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n, edges)
    }

    #[test]
    fn path_blocks_are_edges() {
        let p = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let d = block_decomposition(&p, None);
        assert_eq!(d.blocks.len(), 3);
        assert!(d.blocks.iter().all(|b| b.len() == 2));
        assert!(d.cut_vertices.contains(1));
        assert!(d.cut_vertices.contains(2));
        assert!(!d.cut_vertices.contains(0));
        assert_eq!(d.cut_vertices.len(), 2);
    }

    #[test]
    fn cycle_is_single_block_no_cuts() {
        let d = block_decomposition(&cycle(5), None);
        assert_eq!(d.blocks.len(), 1);
        assert_eq!(d.blocks[0].len(), 5);
        assert!(d.cut_vertices.is_empty());
    }

    #[test]
    fn bowtie_blocks() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let d = block_decomposition(&g, None);
        assert_eq!(d.blocks.len(), 2);
        assert_eq!(d.cut_vertices.iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(d.blocks_of[2].len(), 2);
        assert_eq!(d.blocks_of[0].len(), 1);
        assert_eq!(d.leaf_blocks().len(), 2);
    }

    #[test]
    fn isolated_vertices_become_blocks() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let d = block_decomposition(&g, None);
        assert_eq!(d.blocks.len(), 2);
        assert!(d.blocks.contains(&vec![2]));
    }

    #[test]
    fn masked_decomposition() {
        // C5 with one vertex masked out becomes a path: 4 blocks of size 2.
        let g = cycle(5);
        let mut mask = VertexSet::full(5);
        mask.remove(0);
        let d = block_decomposition(&g, Some(&mask));
        assert_eq!(d.blocks.len(), 3);
        assert!(d.blocks.iter().all(|b| b.len() == 2));
    }

    #[test]
    fn clique_and_cycle_predicates() {
        let k4 = clique(4);
        let verts: Vec<_> = (0..4).collect();
        assert!(is_clique(&k4, &verts));
        assert!(!is_odd_cycle(&k4, &verts));
        assert_eq!(classify_block(&k4, &verts), BlockKind::Clique);

        let c5 = cycle(5);
        let verts: Vec<_> = (0..5).collect();
        assert!(!is_clique(&c5, &verts));
        assert!(is_odd_cycle(&c5, &verts));
        assert_eq!(classify_block(&c5, &verts), BlockKind::OddCycle);

        let c4 = cycle(4);
        let verts: Vec<_> = (0..4).collect();
        assert_eq!(classify_block(&c4, &verts), BlockKind::Other);

        // Triangles are both cliques and odd cycles; clique wins.
        let c3 = cycle(3);
        assert_eq!(classify_block(&c3, &[0, 1, 2]), BlockKind::Clique);
    }

    #[test]
    fn gallai_tree_examples() {
        // Figure-1 style: clique + odd cycles glued at cut vertices.
        // Triangle 0-1-2, C5 2-3-4-5-6, pendant edge 6-7.
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 2),
                (6, 7),
            ],
        );
        assert!(is_gallai_tree(&g, None));

        // Adding a chord into the C5 makes a non-Gallai block.
        let mut edges: Vec<_> = g.edges().collect();
        edges.push((3, 6));
        let g2 = Graph::from_edges(8, edges);
        assert!(!is_gallai_tree(&g2, None));
    }

    #[test]
    fn trees_are_gallai_trees() {
        let t = Graph::from_edges(5, [(0, 1), (0, 2), (2, 3), (2, 4)]);
        assert!(is_gallai_tree(&t, None));
    }

    #[test]
    fn even_cycle_is_not_gallai() {
        assert!(!is_gallai_tree(&cycle(6), None));
        assert!(is_gallai_tree(&cycle(7), None));
    }

    #[test]
    fn disconnected_not_gallai_tree_but_forest() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!is_gallai_tree(&g, None));
        assert!(is_gallai_forest(&g, None));
    }

    #[test]
    fn find_non_gallai() {
        let c4 = cycle(4);
        let d = block_decomposition(&c4, None);
        assert_eq!(find_non_gallai_block(&c4, &d), Some(0));
        let c5 = cycle(5);
        let d = block_decomposition(&c5, None);
        assert_eq!(find_non_gallai_block(&c5, &d), None);
    }

    #[test]
    fn theta_graph_single_block() {
        // Two vertices joined by three paths of lengths 2,2,3.
        // 0-1-5, 0-2-5, 0-3-4-5
        let g = Graph::from_edges(6, [(0, 1), (1, 5), (0, 2), (2, 5), (0, 3), (3, 4), (4, 5)]);
        let d = block_decomposition(&g, None);
        assert_eq!(d.blocks.len(), 1);
        assert_eq!(d.blocks[0].len(), 6);
        assert!(d.cut_vertices.is_empty());
        assert_eq!(classify_block(&g, &d.blocks[0]), BlockKind::Other);
    }

    #[test]
    fn blocks_cover_all_edges() {
        // Random-ish small graph: every edge must lie in exactly one block.
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
                (7, 8),
            ],
        );
        let d = block_decomposition(&g, None);
        let mut edge_in_blocks = 0usize;
        for b in &d.blocks {
            for (i, &u) in b.iter().enumerate() {
                for &v in &b[i + 1..] {
                    if g.has_edge(u, v) {
                        edge_in_blocks += 1;
                    }
                }
            }
        }
        assert_eq!(edge_in_blocks, g.m());
    }
}
