//! Exact (exponential-time) coloring solvers for *small* graphs.
//!
//! These are verification oracles, not part of the distributed algorithm:
//! they certify the chromatic numbers of the lower-bound constructions
//! (Klein-bottle grids are 4-chromatic, Fisk triangulations 5-chromatic) and
//! cross-check list-colorability in tests. Branch-and-bound with
//! most-constrained-vertex ordering; practical up to a few dozen vertices
//! (more when the bound is tight).

use crate::graph::{Graph, VertexId};

/// Attempts to properly color `g` with colors `0..k`.
///
/// Returns a coloring or `None` if no proper `k`-coloring exists.
/// Exponential worst case; intended for small verification instances.
///
/// # Examples
///
/// ```
/// use graphs::{Graph, k_coloring};
/// let c5 = Graph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
/// assert!(k_coloring(&c5, 2).is_none());
/// assert!(k_coloring(&c5, 3).is_some());
/// ```
pub fn k_coloring(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let lists: Vec<Vec<usize>> = (0..g.n()).map(|_| (0..k).collect()).collect();
    list_coloring(g, &lists)
}

/// The chromatic number, computed by increasing `k` from a clique-based
/// lower bound.
///
/// # Examples
///
/// ```
/// use graphs::{Graph, chromatic_number};
/// let k4 = Graph::from_edges(4, [(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)]);
/// assert_eq!(chromatic_number(&k4), 4);
/// ```
pub fn chromatic_number(g: &Graph) -> usize {
    if g.n() == 0 {
        return 0;
    }
    if g.m() == 0 {
        return 1;
    }
    // Upper bound from greedy on degeneracy order; lower bound from a greedy
    // clique.
    let greedy = crate::degeneracy::greedy_degeneracy_coloring(g, None);
    let ub = greedy.iter().filter(|&&c| c != usize::MAX).max().unwrap() + 1;
    let lb = greedy_clique_size(g).max(2);
    for k in lb..ub {
        if k_coloring(g, k).is_some() {
            return k;
        }
    }
    ub
}

/// A greedy lower bound: size of a maximal clique grown from the
/// max-degree vertex.
fn greedy_clique_size(g: &Graph) -> usize {
    let Some(start) = g.vertices().max_by_key(|&v| g.degree(v)) else {
        return 0;
    };
    let mut clique = vec![start];
    // Repeatedly add the candidate adjacent to everything in the clique,
    // preferring high degree.
    let mut candidates: Vec<VertexId> = g.neighbors(start).to_vec();
    candidates.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    for v in candidates {
        if clique.iter().all(|&u| g.has_edge(u, v)) {
            clique.push(v);
        }
    }
    clique.len()
}

/// Finds a proper coloring where each vertex `v` takes a color from
/// `lists[v]`, or returns `None` if none exists.
///
/// Backtracking on the most-constrained vertex (fewest remaining colors)
/// with forward checking. Colors are arbitrary `usize` labels.
///
/// # Panics
///
/// Panics if `lists.len() != g.n()`.
pub fn list_coloring(g: &Graph, lists: &[Vec<usize>]) -> Option<Vec<usize>> {
    assert_eq!(lists.len(), g.n(), "one list per vertex required");
    let n = g.n();
    let mut avail: Vec<Vec<usize>> = lists
        .iter()
        .map(|l| {
            let mut l = l.clone();
            l.sort_unstable();
            l.dedup();
            l
        })
        .collect();
    let mut color: Vec<Option<usize>> = vec![None; n];
    if solve(g, &mut avail, &mut color) {
        Some(
            color
                .into_iter()
                .map(|c| c.expect("complete coloring"))
                .collect(),
        )
    } else {
        None
    }
}

fn solve(g: &Graph, avail: &mut [Vec<usize>], color: &mut [Option<usize>]) -> bool {
    // Most-constrained uncolored vertex.
    let Some(v) = (0..g.n())
        .filter(|&v| color[v].is_none())
        .min_by_key(|&v| avail[v].len())
    else {
        return true;
    };
    if avail[v].is_empty() {
        return false;
    }
    let choices = avail[v].clone();
    for c in choices {
        color[v] = Some(c);
        // Forward-check: remove c from uncolored neighbors, remembering who
        // actually lost it.
        let mut pruned: Vec<VertexId> = Vec::new();
        let mut dead_end = false;
        for &w in g.neighbors(v) {
            if color[w].is_none() {
                if let Ok(pos) = avail[w].binary_search(&c) {
                    avail[w].remove(pos);
                    pruned.push(w);
                    if avail[w].is_empty() {
                        dead_end = true;
                    }
                }
            }
        }
        if !dead_end && solve(g, avail, color) {
            return true;
        }
        for &w in &pruned {
            let pos = avail[w].binary_search(&c).unwrap_err();
            avail[w].insert(pos, c);
        }
        color[v] = None;
    }
    false
}

/// Whether `coloring` is a proper coloring of `g` (adjacent vertices always
/// differ).
pub fn is_proper(g: &Graph, coloring: &[usize]) -> bool {
    coloring.len() == g.n() && g.edges().all(|(u, v)| coloring[u] != coloring[v])
}

/// Whether `coloring` is proper *and* respects `lists`.
pub fn is_proper_list_coloring(g: &Graph, coloring: &[usize], lists: &[Vec<usize>]) -> bool {
    is_proper(g, coloring) && coloring.iter().zip(lists).all(|(c, l)| l.contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    fn clique(n: usize) -> Graph {
        let mut e = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                e.push((i, j));
            }
        }
        Graph::from_edges(n, e)
    }

    #[test]
    fn chromatic_numbers_of_basics() {
        assert_eq!(chromatic_number(&Graph::empty(3)), 1);
        assert_eq!(chromatic_number(&cycle(4)), 2);
        assert_eq!(chromatic_number(&cycle(5)), 3);
        assert_eq!(chromatic_number(&clique(6)), 6);
        let petersen = {
            let mut e = Vec::new();
            for i in 0..5 {
                e.push((i, (i + 1) % 5));
                e.push((5 + i, 5 + (i + 2) % 5));
                e.push((i, 5 + i));
            }
            Graph::from_edges(10, e)
        };
        assert_eq!(chromatic_number(&petersen), 3);
    }

    #[test]
    fn coloring_is_proper_when_found() {
        let g = cycle(7);
        let col = k_coloring(&g, 3).unwrap();
        assert!(is_proper(&g, &col));
        assert!(col.iter().all(|&c| c < 3));
    }

    #[test]
    fn even_cycle_two_lists_always_colorable() {
        // Even cycles are 2-choosable (used implicitly in Theorem 1.1).
        let g = cycle(6);
        let lists = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![4, 5],
            vec![5, 0],
        ];
        let col = list_coloring(&g, &lists).unwrap();
        assert!(is_proper_list_coloring(&g, &col, &lists));
    }

    #[test]
    fn odd_cycle_same_two_lists_infeasible() {
        let g = cycle(5);
        let lists = vec![vec![7, 9]; 5];
        assert!(list_coloring(&g, &lists).is_none());
    }

    #[test]
    fn k4_with_three_lists_infeasible() {
        let g = clique(4);
        let lists = vec![vec![0, 1, 2]; 4];
        assert!(list_coloring(&g, &lists).is_none());
        let lists2 = vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 2], vec![3]];
        let col = list_coloring(&g, &lists2).unwrap();
        assert_eq!(col[3], 3);
    }

    #[test]
    fn lists_with_arbitrary_labels() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let lists = vec![vec![100], vec![100, 200]];
        let col = list_coloring(&g, &lists).unwrap();
        assert_eq!(col, vec![100, 200]);
    }

    #[test]
    fn empty_list_immediately_fails() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let lists = vec![vec![], vec![1]];
        assert!(list_coloring(&g, &lists).is_none());
    }

    #[test]
    fn grotzsch_graph_is_4_chromatic() {
        // Mycielskian of C5: triangle-free with chi = 4.
        // Vertices 0..5 = C5, 5..10 = twins, 10 = apex.
        let mut e: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        for i in 0..5 {
            e.push((5 + i, (i + 1) % 5));
            e.push((5 + i, (i + 4) % 5));
            e.push((5 + i, 10));
        }
        let g = Graph::from_edges(11, e);
        assert!(crate::girth::is_triangle_free(&g, None));
        assert_eq!(chromatic_number(&g), 4);
    }
}
