//! Core undirected simple-graph representation.
//!
//! [`Graph`] stores an immutable undirected simple graph in compressed
//! adjacency form (CSR). Graphs are built either with [`GraphBuilder`] or
//! from an edge list via [`Graph::from_edges`]. Vertices are dense indices
//! `0..n` of type [`VertexId`]; in the LOCAL model these double as the unique
//! identifiers the paper assumes ("an integer between 1 and n" — we use
//! `0..n`, a harmless shift).

use std::fmt;

/// Index of a vertex. Dense, `0..n`.
pub type VertexId = usize;

/// An undirected edge as an ordered pair `(min, max)`.
pub type Edge = (VertexId, VertexId);

/// An immutable undirected simple graph in CSR form.
///
/// # Examples
///
/// ```
/// use graphs::Graph;
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    /// CSR row offsets; `offsets.len() == n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists; `adj.len() == 2 * m`.
    adj: Vec<VertexId>,
    /// Number of undirected edges.
    m: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
            m: 0,
        }
    }

    /// Builds a graph with `n` vertices from an iterator of edges.
    ///
    /// Self-loops and duplicate edges are ignored, so the result is always
    /// simple. Edges may be given in either endpoint order.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Builds a graph directly from its CSR arrays: row `offsets`
    /// (length `n + 1`, starting at 0, monotone) and the concatenated
    /// adjacency lists `adj` (each row strictly sorted, entries `< n`, no
    /// self-loops). This is the streaming constructor for million-vertex
    /// generators: a family whose neighbor set is computable per vertex
    /// emits rows in order and never materializes an edge list.
    ///
    /// # Panics
    ///
    /// Panics if the CSR invariants above are violated. Symmetry (every
    /// arc has its reverse) is checked under `debug_assertions` only — it
    /// costs `O(m log Δ)` and this constructor exists for the hot path.
    pub fn from_csr(offsets: Vec<usize>, adj: Vec<VertexId>) -> Self {
        assert!(
            offsets.first() == Some(&0),
            "offsets must be non-empty and start at 0"
        );
        assert_eq!(
            *offsets.last().expect("non-empty"),
            adj.len(),
            "offsets must cover adj exactly"
        );
        assert!(
            adj.len().is_multiple_of(2),
            "undirected CSR holds an even number of arcs"
        );
        let n = offsets.len() - 1;
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            assert!(lo <= hi, "offsets must be monotone (row {v})");
            let row = &adj[lo..hi];
            for (i, &w) in row.iter().enumerate() {
                assert!(w < n, "neighbor {w} out of range in row {v}");
                assert_ne!(w, v, "self-loop in row {v}");
                assert!(i == 0 || row[i - 1] < w, "row {v} must be strictly sorted");
            }
        }
        let g = Graph {
            m: adj.len() / 2,
            offsets,
            adj,
        };
        #[cfg(debug_assertions)]
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                debug_assert!(
                    g.neighbors(w).binary_search(&v).is_ok(),
                    "arc {v}→{w} has no reverse arc"
                );
            }
        }
        g
    }

    /// Streams a graph into CSR form from a per-vertex neighbor enumerator:
    /// `nbrs(v, out)` pushes the sorted neighbors of `v` into `out`. Rows
    /// are appended in vertex order, so no intermediate edge list exists —
    /// the constructor deterministic lattice/classic families use at
    /// million-vertex sizes.
    ///
    /// # Panics
    ///
    /// Panics if the emitted rows violate the CSR invariants (see
    /// [`Graph::from_csr`]).
    pub fn from_neighbors<F>(n: usize, mut nbrs: F) -> Self
    where
        F: FnMut(VertexId, &mut Vec<VertexId>),
    {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut adj = Vec::new();
        let mut row = Vec::new();
        for v in 0..n {
            row.clear();
            nbrs(v, &mut row);
            adj.extend_from_slice(&row);
            offsets.push(adj.len());
        }
        Graph::from_csr(offsets, adj)
    }

    /// Builds CSR from an edge list already known to be simple (no
    /// duplicates after endpoint normalization, no self-loops): two
    /// counting passes and a per-row sort, skipping [`GraphBuilder`]'s
    /// global edge sort + dedup. Tree generators whose edges are unique by
    /// construction use this on the million-vertex path.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`, or if the list was not simple
    /// after all (caught by [`Graph::from_csr`] validation).
    pub fn from_simple_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut deg = vec![0usize; n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range n={n}");
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut adj = vec![0; 2 * edges.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            adj[cursor[u]] = v;
            cursor[u] += 1;
            adj[cursor[v]] = u;
            cursor[v] += 1;
        }
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr(offsets, adj)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Returns `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n() == 0
    }

    /// The sorted neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Whether the edge `{u, v}` is present. `O(log deg)`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u >= self.n() || v >= self.n() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.n()
    }

    /// Iterator over all undirected edges as `(min, max)` pairs, sorted.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            g: self,
            u: 0,
            i: 0,
        }
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2m / n`, or 0 for the empty graph (paper §1.2).
    pub fn average_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }

    /// Returns `true` if every vertex has degree exactly `k`.
    pub fn is_regular(&self, k: usize) -> bool {
        self.vertices().all(|v| self.degree(v) == k)
    }

    /// The complement graph (use only on small graphs: Θ(n²) edges).
    pub fn complement(&self) -> Graph {
        let n = self.n();
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if !self.has_edge(u, v) {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    /// Disjoint union of two graphs; vertices of `other` are shifted by
    /// `self.n()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.n();
        let mut b = GraphBuilder::new(shift + other.n());
        for (u, v) in self.edges() {
            b.add_edge(u, v);
        }
        for (u, v) in other.edges() {
            b.add_edge(u + shift, v + shift);
        }
        b.build()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::empty(0)
    }
}

/// Iterator over the edges of a [`Graph`], produced by [`Graph::edges`].
pub struct Edges<'a> {
    g: &'a Graph,
    u: VertexId,
    i: usize,
}

impl Iterator for Edges<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        let n = self.g.n();
        while self.u < n {
            let nbrs = self.g.neighbors(self.u);
            while self.i < nbrs.len() {
                let v = nbrs[self.i];
                self.i += 1;
                if v > self.u {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.i = 0;
        }
        None
    }
}

/// Incremental builder for [`Graph`].
///
/// Deduplicates edges and drops self-loops at [`GraphBuilder::build`] time.
///
/// # Examples
///
/// ```
/// use graphs::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, ignored
/// b.add_edge(2, 2); // self-loop, ignored
/// let g = b.build();
/// assert_eq!(g.m(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range n={}",
            self.n
        );
        if u != v {
            self.edges.push((u.min(v), u.max(v)));
        }
        self
    }

    /// Ensures the builder covers at least `n` vertices.
    pub fn grow_to(&mut self, n: usize) -> &mut Self {
        self.n = self.n.max(n);
        self
    }

    /// Adds a fresh isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.n += 1;
        self.n - 1
    }

    /// Finalizes the graph: sorts, deduplicates, builds CSR.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let mut deg = vec![0usize; n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut adj = vec![0; 2 * self.edges.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in &self.edges {
            adj[cursor[u]] = v;
            cursor[u] += 1;
            adj[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Adjacency lists are sorted because edges were sorted by (u, v) and
        // inserted in order for the first endpoint — but the second-endpoint
        // inserts interleave, so sort each list to restore the invariant.
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            offsets,
            adj,
            m: self.edges.len(),
        }
    }
}

impl FromIterator<Edge> for GraphBuilder {
    /// Builds from edges, sizing `n` to the largest endpoint + 1.
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        let edges: Vec<Edge> = iter.into_iter().collect();
        let n = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b
    }
}

impl Extend<Edge> for GraphBuilder {
    fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.grow_to(u.max(v) + 1);
            self.add_edge(u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert!(g.is_empty());
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn triangle_basics() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.is_regular(2));
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(3, 0), (3, 4), (3, 1), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn has_edge_both_orders() {
        let g = Graph::from_edges(4, [(0, 3)]);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn complement_of_path() {
        let p = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let c = p.complement();
        assert_eq!(c.m(), 1);
        assert!(c.has_edge(0, 2));
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = Graph::from_edges(2, [(0, 1)]);
        let b = Graph::from_edges(3, [(0, 2)]);
        let u = a.disjoint_union(&b);
        assert_eq!(u.n(), 5);
        assert_eq!(u.m(), 2);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 4));
    }

    #[test]
    fn builder_from_iter_sizes_n() {
        let b: GraphBuilder = vec![(0, 5), (2, 3)].into_iter().collect();
        let g = b.build();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn builder_add_vertex() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_vertex();
        assert_eq!(v, 1);
        b.add_edge(0, v);
        assert_eq!(b.build().m(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn from_csr_matches_builder() {
        // Triangle, rows emitted in CSR form directly.
        let g = Graph::from_csr(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1]);
        assert_eq!(g, Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]));
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn from_neighbors_streams_rows() {
        let n = 7;
        let g = Graph::from_neighbors(n, |v, out| {
            if v > 0 {
                out.push(v - 1);
            }
            if v + 1 < n {
                out.push(v + 1);
            }
        });
        assert_eq!(g, Graph::from_edges(n, (1..n).map(|i| (i - 1, i))));
    }

    #[test]
    fn from_simple_edges_matches_builder() {
        let edges = [(3, 0), (1, 3), (3, 2), (0, 1)];
        let g = Graph::from_simple_edges(4, &edges);
        assert_eq!(g, Graph::from_edges(4, edges));
        assert_eq!(g.neighbors(3), &[0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn from_csr_rejects_unsorted_rows() {
        Graph::from_csr(vec![0, 2, 3, 5], vec![2, 1, 2, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn from_csr_rejects_self_loops() {
        Graph::from_csr(vec![0, 1, 2], vec![0, 0]);
    }

    #[test]
    #[should_panic]
    fn from_simple_edges_rejects_duplicates() {
        Graph::from_simple_edges(3, &[(0, 1), (1, 0)]);
    }
}
