//! Exact maximum average degree (`mad`) and Nash-Williams arboricity.
//!
//! `mad(G) = max_{H ⊆ G} 2|E(H)|/|V(H)|` is the paper's sparseness measure
//! (§1.2); Theorem 1.3 requires `d ≥ mad(G)`. Arboricity
//! `a(G) = max ⌈|E(H)|/(|V(H)|−1)⌉` (Nash-Williams \[22\]) drives
//! Corollary 1.4 and the Barenboim–Elkin baseline. Both are computed
//! *exactly* via Goldberg's flow reduction on top of [`crate::flow`]:
//! a subgraph of density > g exists iff the min cut of the edge/vertex
//! network is smaller than m.

use crate::flow::FlowNetwork;
use crate::graph::{Graph, VertexId};
use crate::vertex_set::VertexSet;

/// A maximum-density subgraph certificate, from [`densest_subgraph`].
#[derive(Clone, Debug)]
pub struct DensestSubgraph {
    /// Vertices of the maximizing subgraph (sorted).
    pub vertices: Vec<VertexId>,
    /// Number of edges induced by `vertices`.
    pub edges: usize,
    /// Maximum density `|E(H)|/|V(H)|` as an exact fraction `(edges, verts)`.
    pub density: (usize, usize),
}

impl DensestSubgraph {
    /// Density as a float.
    pub fn density_f64(&self) -> f64 {
        self.density.0 as f64 / self.density.1 as f64
    }
}

/// Tests whether some nonempty subgraph has `|E(H)| - g·|V(H)| > slack`
/// and returns its vertex set if so.
///
/// Goldberg network: `s -> edge-node(cap 1) -> endpoints(cap ∞)`,
/// `vertex -> t (cap g)`. Max value of `|E(H)| - g|V(H)|` over all `H`
/// equals `m - mincut`.
fn subgraph_exceeding(g: &Graph, guess: f64, pinned: Option<VertexId>) -> Option<Vec<VertexId>> {
    let n = g.n();
    let m = g.m();
    if m == 0 {
        return None;
    }
    // Nodes: 0..n vertices, n..n+m edge nodes, n+m = source, n+m+1 = sink.
    let (s, t) = (n + m, n + m + 1);
    let mut net = FlowNetwork::new(n + m + 2);
    for (i, (u, v)) in g.edges().enumerate() {
        net.add_edge(s, n + i, 1.0);
        net.add_edge(n + i, u, f64::INFINITY);
        net.add_edge(n + i, v, f64::INFINITY);
    }
    for v in 0..n {
        let cap = if Some(v) == pinned { 0.0 } else { guess };
        net.add_edge(v, t, cap);
    }
    let flow = net.max_flow(s, t);
    // Value of the best subgraph: m - flow. The acceptance threshold must
    // sit below the 1/n² spacing of achievable densities (see callers) but
    // above accumulated f64 flow error; 1/(8n²) floored at 1e-9 does both
    // for the graph sizes this oracle targets (documented: n ≲ 10⁴).
    let accept = (1.0 / (8.0 * (n as f64) * (n as f64))).max(1e-9);
    if (m as f64 - flow) <= accept {
        return None;
    }
    let side = net.min_cut_side(s);
    let verts: Vec<VertexId> = (0..n).filter(|&v| side[v]).collect();
    (!verts.is_empty()).then_some(verts)
}

fn count_induced_edges(g: &Graph, verts: &[VertexId]) -> usize {
    let set = VertexSet::from_iter_with_universe(g.n(), verts.iter().copied());
    verts
        .iter()
        .map(|&v| {
            g.neighbors(v)
                .iter()
                .filter(|&&w| w > v && set.contains(w))
                .count()
        })
        .sum()
}

/// Computes a maximum-density subgraph (density `|E|/|V|`) exactly.
///
/// Returns `None` for edgeless graphs. Runs `O(log(n·m))` max-flows.
///
/// # Examples
///
/// ```
/// use graphs::{Graph, densest_subgraph};
/// // K4 plus a pendant: densest part is the K4 with density 6/4.
/// let g = Graph::from_edges(5, [(0,1),(0,2),(0,3),(1,2),(1,3),(2,3),(3,4)]);
/// let d = densest_subgraph(&g).unwrap();
/// assert_eq!(d.vertices, vec![0, 1, 2, 3]);
/// assert_eq!(d.density, (6, 4));
/// ```
pub fn densest_subgraph(g: &Graph) -> Option<DensestSubgraph> {
    let n = g.n();
    let m = g.m();
    if m == 0 {
        return None;
    }
    // Invariant: `best` is achieved; no subgraph has density > hi.
    let mut best: Vec<VertexId> = (0..n).collect();
    let mut best_ratio = (m, n);
    let mut lo = m as f64 / n as f64;
    let mut hi = ((g.max_degree() as f64) / 2.0).max(lo) + 1.0;
    let tol = 1.0 / (2.0 * (n as f64) * (n as f64));
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        match subgraph_exceeding(g, mid, None) {
            Some(verts) => {
                let e = count_induced_edges(g, &verts);
                // Strictly denser than mid by construction.
                if (e * best_ratio.1) > (best_ratio.0 * verts.len()) {
                    best_ratio = (e, verts.len());
                    best = verts;
                }
                lo = (best_ratio.0 as f64 / best_ratio.1 as f64).max(mid);
            }
            None => hi = mid,
        }
    }
    let e = count_induced_edges(g, &best);
    Some(DensestSubgraph {
        vertices: best,
        edges: e,
        density: (e, best_ratio.1),
    })
}

/// Exact maximum average degree `mad(G)` as a fraction `(2·|E(H)|, |V(H)|)`.
/// Returns `(0, 1)` for edgeless graphs (matching the paper's convention that
/// the empty graph has average degree 0).
pub fn mad(g: &Graph) -> (usize, usize) {
    match densest_subgraph(g) {
        Some(d) => (2 * d.edges, d.density.1),
        None => (0, 1),
    }
}

/// Exact `mad(G)` as a float.
pub fn mad_f64(g: &Graph) -> f64 {
    let (num, den) = mad(g);
    num as f64 / den as f64
}

/// Whether `mad(G) ≤ bound` (exact, single flow).
///
/// This is the cheap validation entry point for Theorem 1.3's precondition
/// `d ≥ mad(G)`.
pub fn mad_at_most(g: &Graph, bound: f64) -> bool {
    // mad > bound  iff  some H has |E(H)|/|V(H)| > bound/2.
    subgraph_exceeding(g, bound / 2.0, None).is_none()
}

/// Exact Nash-Williams arboricity `a(G) = max ⌈|E(H)|/(|V(H)|−1)⌉`.
///
/// Strategy: bracket with `2a−2 ≤ ⌈mad⌉ ≤ 2a`, then decide between the two
/// integer candidates with pinned flows testing
/// `∃H ∋ r: |E(H)| > k(|V(H)|−1)` for each possible pin `r` (the pinned
/// vertex's sink capacity is waived, adding the `+k` constant exactly when
/// `r ∈ H`).
///
/// Returns 0 for edgeless graphs.
pub fn arboricity(g: &Graph) -> usize {
    if g.m() == 0 {
        return 0;
    }
    let (num, den) = mad(g);
    let mad_ceil = num.div_ceil(den);
    // 2a - 2 <= ceil(mad) <= 2a  =>  ceil(mad)/2 <= a <= (ceil(mad) + 2)/2.
    let lo = mad_ceil.div_ceil(2).max(1);
    let hi = (mad_ceil + 2) / 2;
    let mut k = lo;
    while k < hi {
        if fractional_arboricity_exceeds(g, k) {
            k += 1;
        } else {
            break;
        }
    }
    k
}

/// Tests `∃H, |V(H)| ≥ 2 : |E(H)| > k·(|V(H)|−1)` exactly.
pub fn fractional_arboricity_exceeds(g: &Graph, k: usize) -> bool {
    if g.m() == 0 {
        return false;
    }
    // Quick accept: the whole graph or the densest subgraph may witness.
    let n_f = g.n();
    if g.m() > k * (n_f.saturating_sub(1)) {
        return true;
    }
    // Try pins in decreasing degree order; the maximizer must contain some
    // vertex, and high-degree vertices are likelier members, so early exit
    // is common.
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    for r in order {
        if g.degree(r) == 0 {
            break;
        }
        if let Some(verts) = subgraph_exceeding(g, k as f64, Some(r)) {
            let e = count_induced_edges(g, &verts);
            // Pinned objective: |E(H)| - k·|V(H) \ {r}|. Confirm the strict
            // Nash-Williams inequality on the extracted set (the pin is free,
            // so H always contains r in an optimal cut).
            if verts.len() >= 2 && e > k * (verts.len() - 1) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: usize) -> Graph {
        let mut e = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                e.push((i, j));
            }
        }
        Graph::from_edges(n, e)
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn mad_of_cycle_is_2() {
        assert_eq!(mad(&cycle(7)), (14, 7));
        assert_eq!(mad_f64(&cycle(7)), 2.0);
    }

    #[test]
    fn mad_of_clique() {
        // K5: density 10/5, mad = 4.
        assert_eq!(mad_f64(&clique(5)), 4.0);
    }

    #[test]
    fn mad_of_tree_below_2() {
        let t = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (2, 4)]);
        let (num, den) = mad(&t);
        assert_eq!((num, den), (8, 5)); // the whole tree: 2·4/5
        assert!(mad_at_most(&t, 2.0));
        assert!(!mad_at_most(&t, 1.5));
    }

    #[test]
    fn mad_finds_hidden_dense_part() {
        // K4 (density 1.5) hiding in a long path.
        let mut edges: Vec<(usize, usize)> = (0..20).map(|i| (i, i + 1)).collect();
        edges.extend([(0, 2), (0, 3), (1, 3)]); // vertices 0..=3 become K4
        let g = Graph::from_edges(21, edges);
        let d = densest_subgraph(&g).unwrap();
        assert_eq!(d.density_f64(), 1.5);
        assert_eq!(mad_f64(&g), 3.0);
    }

    #[test]
    fn mad_empty_graph() {
        assert_eq!(mad(&Graph::empty(5)), (0, 1));
        assert!(mad_at_most(&Graph::empty(5), 0.0));
    }

    #[test]
    fn arboricity_values() {
        assert_eq!(arboricity(&Graph::empty(3)), 0);
        assert_eq!(arboricity(&cycle(5)), 2); // cycle: 5 edges, 4 = n-1 tree edges
        let t = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(arboricity(&t), 1);
        assert_eq!(arboricity(&clique(4)), 2); // 6 edges / 3 = 2
        assert_eq!(arboricity(&clique(5)), 3); // ceil(10/4) = 3
        assert_eq!(arboricity(&clique(6)), 3); // ceil(15/5) = 3
    }

    #[test]
    fn arboricity_of_complete_bipartite() {
        // K_{3,3}: 9 edges, 6 vertices, a = ceil(9/5) = 2.
        let mut e = Vec::new();
        for i in 0..3 {
            for j in 3..6 {
                e.push((i, j));
            }
        }
        let g = Graph::from_edges(6, e);
        assert_eq!(arboricity(&g), 2);
    }

    #[test]
    fn mad_vs_arboricity_bounds() {
        // 2a - 2 <= ceil(mad) <= 2a for several graphs.
        for g in [
            clique(4),
            clique(6),
            cycle(9),
            Graph::from_edges(2, [(0, 1)]),
        ] {
            let a = arboricity(&g);
            let (num, den) = mad(&g);
            let mad_ceil = num.div_ceil(den);
            assert!(2 * a >= mad_ceil, "upper bound failed");
            assert!(2 * a - 2 <= mad_ceil, "lower bound failed");
        }
    }

    #[test]
    fn planar_triangulation_mad_below_6() {
        // Octahedron: 4-regular planar triangulation, mad = 4 < 6.
        let e = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 1),
            (5, 1),
            (5, 2),
            (5, 3),
            (5, 4),
        ];
        let g = Graph::from_edges(6, e);
        assert_eq!(mad_f64(&g), 4.0);
        assert!(mad_at_most(&g, 6.0));
        // 12 edges, 6 vertices: ceil(12/5) = 3 forests needed.
        assert_eq!(arboricity(&g), 3);
    }
}
