//! # graphs — the graph substrate for the PODC'18 fewer-colors reproduction
//!
//! Everything the distributed-coloring stack needs from graph theory, built
//! from scratch:
//!
//! * [`Graph`] / [`GraphBuilder`] — immutable CSR undirected simple graphs.
//! * [`VertexSet`] — dense bit-set masks (the paper lives in induced
//!   subgraphs `G[R]`, `G[S]`, peeled residuals).
//! * [`traversal`] — BFS distances, balls `B^r_R(v)`, components,
//!   bipartiteness.
//! * [`blocks`] — biconnected components, block–cut trees, and **Gallai
//!   tree** recognition (paper §1.4, Figure 1).
//! * [`girth`](mod@girth) / [`degeneracy`] — structural analytics used across §2/§4.
//! * [`flow`] / [`density`] — Dinic max-flow powering *exact* `mad(G)` and
//!   Nash-Williams arboricity oracles (the paper's sparseness measures).
//! * [`exact`] — exponential-time chromatic/list-coloring verifiers for the
//!   lower-bound constructions.
//! * [`iso`] — (rooted) graph isomorphism for Observation 2.4
//!   indistinguishability experiments.
//! * [`gen`] — all workload generators.
//!
//! # Examples
//!
//! ```
//! use graphs::{gen, mad_f64, is_gallai_tree, arboricity};
//!
//! // Planar graphs have mad < 6 (Proposition 2.2)…
//! let tri = gen::triangular(6, 6);
//! assert!(mad_f64(&tri) < 6.0);
//!
//! // …and unions of a forests have arboricity ≤ a (Corollary 1.4 workload).
//! let g = gen::forest_union(40, 3, 7);
//! assert!(arboricity(&g) <= 3);
//!
//! // Gallai trees are the obstructions of Theorem 1.1.
//! let t = gen::random_gallai_tree(&gen::GallaiTreeConfig::default(), 1);
//! assert!(is_gallai_tree(&t, None));
//! ```

pub mod blocks;
pub mod degeneracy;
pub mod density;
pub mod exact;
pub mod flow;
pub mod gen;
pub mod girth;
pub mod graph;
pub mod iso;
pub mod order;
pub mod subgraph;
pub mod traversal;
pub mod vertex_set;

pub use blocks::{
    block_decomposition, classify_block, find_non_gallai_block, is_clique, is_gallai_forest,
    is_gallai_tree, is_odd_cycle, BlockDecomposition, BlockKind,
};
pub use degeneracy::{degeneracy_order, greedy_degeneracy_coloring, Degeneracy};
pub use density::{
    arboricity, densest_subgraph, fractional_arboricity_exceeds, mad, mad_at_most, mad_f64,
    DensestSubgraph,
};
pub use exact::{chromatic_number, is_proper, is_proper_list_coloring, k_coloring, list_coloring};
pub use girth::{girth, is_triangle_free};
pub use graph::{Edge, Graph, GraphBuilder, VertexId};
pub use iso::{are_isomorphic, are_rooted_isomorphic, isomorphism};
pub use order::locality_order;
pub use subgraph::InducedSubgraph;
pub use traversal::{
    ball, bfs_distances, bfs_parents, bipartition, component_of, components, eccentricity,
    is_connected, UNREACHABLE,
};
pub use vertex_set::VertexSet;
