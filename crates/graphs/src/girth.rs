//! Girth computation (length of a shortest cycle).
//!
//! Used by the paper in Proposition 2.2 (planar girth vs mad), Corollary 4.2
//! (Moore-bound argument), and Proposition 4.4 (the auxiliary graph `H` has
//! girth ≥ 5).

use crate::graph::{Graph, VertexId};
use crate::vertex_set::VertexSet;
use std::collections::VecDeque;

/// The girth of `g` (restricted to `mask`), or `None` if acyclic.
///
/// Runs a BFS from every vertex: `O(n·m)`. For each BFS we stop early once
/// the search depth exceeds half the best cycle found so far.
///
/// # Examples
///
/// ```
/// use graphs::{Graph, girth};
/// let c5 = Graph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
/// assert_eq!(girth(&c5, None), Some(5));
/// let tree = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// assert_eq!(girth(&tree, None), None);
/// ```
pub fn girth(g: &Graph, mask: Option<&VertexSet>) -> Option<usize> {
    let n = g.n();
    let mut best: usize = usize::MAX;
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut touched: Vec<VertexId> = Vec::new();
    for s in 0..n {
        if mask.is_some_and(|m| !m.contains(s)) {
            continue;
        }
        // BFS from s; any non-tree edge (u,w) found closes a cycle through s
        // of length dist[u] + dist[w] + 1 (an upper bound that is tight for
        // the shortest cycle through the BFS root over all roots).
        for &v in &touched {
            dist[v] = usize::MAX;
            parent[v] = usize::MAX;
        }
        touched.clear();
        let mut q = VecDeque::new();
        dist[s] = 0;
        parent[s] = s;
        touched.push(s);
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            // Depth pruning: cycles through s found deeper cannot beat best.
            if 2 * dist[u] + 1 >= best {
                break;
            }
            for &w in g.neighbors(u) {
                if mask.is_some_and(|m| !m.contains(w)) {
                    continue;
                }
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    parent[w] = u;
                    touched.push(w);
                    q.push_back(w);
                } else if w != parent[u] {
                    best = best.min(dist[u] + dist[w] + 1);
                }
            }
        }
    }
    (best != usize::MAX).then_some(best)
}

/// Whether `g` (restricted to `mask`) contains no triangle.
pub fn is_triangle_free(g: &Graph, mask: Option<&VertexSet>) -> bool {
    for u in g.vertices() {
        if mask.is_some_and(|m| !m.contains(u)) {
            continue;
        }
        let nbrs: Vec<VertexId> = g
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&w| w > u && mask.is_none_or(|m| m.contains(w)))
            .collect();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn girth_of_cycles() {
        for k in 3..10 {
            assert_eq!(girth(&cycle(k), None), Some(k), "C_{k}");
        }
    }

    #[test]
    fn girth_of_k4_is_3() {
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(girth(&k4, None), Some(3));
    }

    #[test]
    fn forest_has_no_girth() {
        let f = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(girth(&f, None), None);
    }

    #[test]
    fn petersen_girth_5() {
        // Outer C5, inner 5-star polygon, spokes.
        let mut e = Vec::new();
        for i in 0..5 {
            e.push((i, (i + 1) % 5));
            e.push((5 + i, 5 + (i + 2) % 5));
            e.push((i, 5 + i));
        }
        let p = Graph::from_edges(10, e);
        assert_eq!(girth(&p, None), Some(5));
        assert!(is_triangle_free(&p, None));
    }

    #[test]
    fn masked_girth() {
        // Bowtie: two triangles joined at 2; masking vertex 0 leaves one
        // triangle intact.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        assert_eq!(girth(&g, None), Some(3));
        let mut mask = VertexSet::full(5);
        mask.remove(0);
        assert_eq!(girth(&g, Some(&mask)), Some(3));
        mask.remove(3);
        assert_eq!(girth(&g, Some(&mask)), None);
    }

    #[test]
    fn two_cycles_take_min() {
        let g = cycle(4).disjoint_union(&cycle(7));
        assert_eq!(girth(&g, None), Some(4));
    }

    #[test]
    fn triangle_free_check() {
        assert!(is_triangle_free(&cycle(4), None));
        assert!(!is_triangle_free(&cycle(3), None));
        let grid = Graph::from_edges(4, [(0, 1), (1, 3), (3, 2), (2, 0)]);
        assert!(is_triangle_free(&grid, None));
    }
}
