//! Breadth-first machinery: distances, balls, components, bipartiteness.
//!
//! Everything here optionally restricts the graph to a [`VertexSet`] mask,
//! because the paper constantly works inside induced subgraphs (`G[R]`,
//! `G[S]`, peeled residual graphs) and materializing each would be wasteful.

use crate::graph::{Graph, VertexId};
use crate::vertex_set::VertexSet;
use std::collections::VecDeque;

/// Distance type for BFS results; `usize::MAX` encodes "unreachable".
pub const UNREACHABLE: usize = usize::MAX;

/// Single-source BFS distances within an optional vertex mask.
///
/// Vertices outside `mask` (when given) are unreachable. If `source` itself
/// is outside the mask, everything is unreachable.
///
/// # Examples
///
/// ```
/// use graphs::{Graph, bfs_distances};
/// let p = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let d = bfs_distances(&p, 0, None);
/// assert_eq!(d[3], 3);
/// ```
pub fn bfs_distances(g: &Graph, source: VertexId, mask: Option<&VertexSet>) -> Vec<usize> {
    let mut dist = vec![UNREACHABLE; g.n()];
    if let Some(m) = mask {
        if !m.contains(source) {
            return dist;
        }
    }
    let mut q = VecDeque::new();
    dist[source] = 0;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        for &w in g.neighbors(u) {
            if dist[w] == UNREACHABLE && mask.is_none_or(|m| m.contains(w)) {
                dist[w] = dist[u] + 1;
                q.push_back(w);
            }
        }
    }
    dist
}

/// The ball `B^r(v)` — all vertices at distance ≤ `r` from `center` —
/// within an optional mask (the paper's `B^r_R(v)` when `mask = R`).
///
/// Returns vertices sorted by id. Empty iff `center` is outside the mask
/// (matching the paper's convention that `B_R(v) = ∅` for `v ∉ R`).
pub fn ball(g: &Graph, center: VertexId, radius: usize, mask: Option<&VertexSet>) -> Vec<VertexId> {
    let mut out = Vec::new();
    if let Some(m) = mask {
        if !m.contains(center) {
            return out;
        }
    }
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut q = VecDeque::new();
    dist[center] = 0;
    q.push_back(center);
    out.push(center);
    while let Some(u) = q.pop_front() {
        if dist[u] == radius {
            continue;
        }
        for &w in g.neighbors(u) {
            if dist[w] == UNREACHABLE && mask.is_none_or(|m| m.contains(w)) {
                dist[w] = dist[u] + 1;
                q.push_back(w);
                out.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Eccentricity of `v` restricted to its component (max finite BFS distance).
pub fn eccentricity(g: &Graph, v: VertexId, mask: Option<&VertexSet>) -> usize {
    bfs_distances(g, v, mask)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Connected components within an optional mask.
///
/// Returns `(component_id, count)`: `component_id[v]` is `UNREACHABLE` for
/// vertices outside the mask, otherwise a dense id in `0..count`.
pub fn components(g: &Graph, mask: Option<&VertexSet>) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut comp = vec![UNREACHABLE; n];
    let mut count = 0;
    let mut q = VecDeque::new();
    for s in 0..n {
        if comp[s] != UNREACHABLE || mask.is_some_and(|m| !m.contains(s)) {
            continue;
        }
        comp[s] = count;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &w in g.neighbors(u) {
                if comp[w] == UNREACHABLE && mask.is_none_or(|m| m.contains(w)) {
                    comp[w] = count;
                    q.push_back(w);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Whether the graph (restricted to `mask`) is connected.
/// The empty graph and single vertices count as connected.
pub fn is_connected(g: &Graph, mask: Option<&VertexSet>) -> bool {
    components(g, mask).1 <= 1
}

/// Whether the graph restricted to `mask` is bipartite; returns a 2-coloring
/// (`0`/`1`, `UNREACHABLE`-marked vertices excluded) or `None` if an odd
/// cycle exists.
pub fn bipartition(g: &Graph, mask: Option<&VertexSet>) -> Option<Vec<usize>> {
    let n = g.n();
    let mut side = vec![UNREACHABLE; n];
    let mut q = VecDeque::new();
    for s in 0..n {
        if side[s] != UNREACHABLE || mask.is_some_and(|m| !m.contains(s)) {
            continue;
        }
        side[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &w in g.neighbors(u) {
                if mask.is_some_and(|m| !m.contains(w)) {
                    continue;
                }
                if side[w] == UNREACHABLE {
                    side[w] = 1 - side[u];
                    q.push_back(w);
                } else if side[w] == side[u] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

/// BFS tree parents from `source` (parent of source is itself).
/// `UNREACHABLE` for unreached vertices.
pub fn bfs_parents(g: &Graph, source: VertexId, mask: Option<&VertexSet>) -> Vec<usize> {
    let mut parent = vec![UNREACHABLE; g.n()];
    if let Some(m) = mask {
        if !m.contains(source) {
            return parent;
        }
    }
    let mut q = VecDeque::new();
    parent[source] = source;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        for &w in g.neighbors(u) {
            if parent[w] == UNREACHABLE && mask.is_none_or(|m| m.contains(w)) {
                parent[w] = u;
                q.push_back(w);
            }
        }
    }
    parent
}

/// Vertices of one component containing `v` (within `mask`), sorted.
pub fn component_of(g: &Graph, v: VertexId, mask: Option<&VertexSet>) -> Vec<VertexId> {
    ball(g, v, usize::MAX - 1, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 2, None);
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn masked_distances() {
        let g = path(5);
        // Remove vertex 2: halves are separated.
        let mut mask = VertexSet::full(5);
        mask.remove(2);
        let d = bfs_distances(&g, 0, Some(&mask));
        assert_eq!(d[1], 1);
        assert_eq!(d[3], UNREACHABLE);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn ball_radii() {
        let g = path(7);
        assert_eq!(ball(&g, 3, 0, None), vec![3]);
        assert_eq!(ball(&g, 3, 1, None), vec![2, 3, 4]);
        assert_eq!(ball(&g, 3, 2, None), vec![1, 2, 3, 4, 5]);
        assert_eq!(ball(&g, 3, 100, None), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn ball_outside_mask_is_empty() {
        let g = path(3);
        let mask = VertexSet::from_iter_with_universe(3, [0, 1]);
        assert!(ball(&g, 2, 5, Some(&mask)).is_empty());
    }

    #[test]
    fn components_counting() {
        let g = Graph::from_edges(6, [(0, 1), (2, 3)]);
        let (comp, k) = components(&g, None);
        assert_eq!(k, 4);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert!(!is_connected(&g, None));
        assert!(is_connected(&path(4), None));
    }

    #[test]
    fn bipartite_detection() {
        assert!(bipartition(&path(4), None).is_some());
        let c4 = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(bipartition(&c4, None).is_some());
        let c5 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(bipartition(&c5, None).is_none());
        // Masking a vertex of the odd cycle makes it a path -> bipartite.
        let mut mask = VertexSet::full(5);
        mask.remove(0);
        assert!(bipartition(&c5, Some(&mask)).is_some());
    }

    #[test]
    fn parents_form_tree() {
        let g = path(4);
        let p = bfs_parents(&g, 0, None);
        assert_eq!(p, vec![0, 0, 1, 2]);
    }

    #[test]
    fn eccentricity_of_path_end() {
        let g = path(6);
        assert_eq!(eccentricity(&g, 0, None), 5);
        assert_eq!(eccentricity(&g, 3, None), 3);
    }
}
