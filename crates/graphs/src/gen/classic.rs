//! Classic parametric graph families.

use crate::graph::{Graph, GraphBuilder};

/// The path `P_n` on `n` vertices (`n − 1` edges). Streams CSR rows
/// directly (no edge list), so million-vertex paths build in one pass.
pub fn path(n: usize) -> Graph {
    Graph::from_neighbors(n, |v, out| {
        if v > 0 {
            out.push(v - 1);
        }
        if v + 1 < n {
            out.push(v + 1);
        }
    })
}

/// The cycle `C_n`. Streams CSR rows directly (no edge list).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycles need at least 3 vertices");
    Graph::from_neighbors(n, |v, out| {
        if v == 0 {
            out.push(1);
            out.push(n - 1);
        } else if v + 1 == n {
            out.push(0);
            out.push(n - 2);
        } else {
            out.push(v - 1);
            out.push(v + 1);
        }
    })
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in i + 1..n {
            b.add_edge(i, j);
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` (left part `0..a`, right part
/// `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(i, a + j);
        }
    }
    builder.build()
}

/// The star `K_{1,n}` with center 0.
pub fn star(leaves: usize) -> Graph {
    Graph::from_edges(leaves + 1, (1..=leaves).map(|i| (0, i)))
}

/// The Petersen graph (3-regular, girth 5, χ = 3).
pub fn petersen() -> Graph {
    let mut e = Vec::new();
    for i in 0..5 {
        e.push((i, (i + 1) % 5));
        e.push((5 + i, 5 + (i + 2) % 5));
        e.push((i, 5 + i));
    }
    Graph::from_edges(10, e)
}

/// A complete binary tree with `depth` levels of edges (`2^(depth+1) − 1`
/// vertices), rooted at 0.
pub fn binary_tree(depth: u32) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    Graph::from_edges(n, (1..n).map(|i| ((i - 1) / 2, i)))
}

/// The `k`-th Mycielskian iterate starting from `K_2`: triangle-free with
/// chromatic number `k + 2`. `mycielski(2)` is the Grötzsch graph (χ = 4).
pub fn mycielski(k: usize) -> Graph {
    let mut g = complete(2);
    for _ in 0..k {
        let n = g.n();
        let mut b = GraphBuilder::new(2 * n + 1);
        for (u, v) in g.edges() {
            b.add_edge(u, v);
            b.add_edge(n + u, v);
            b.add_edge(u, n + v);
        }
        for u in 0..n {
            b.add_edge(n + u, 2 * n);
        }
        g = b.build();
    }
    g
}

/// A "caterpillar": a path of length `spine` with `legs` pendant vertices
/// attached to each spine vertex. A tree (arboricity 1, Gallai tree).
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for i in 1..spine {
        b.add_edge(i - 1, i);
    }
    for i in 0..spine {
        for l in 0..legs {
            b.add_edge(i, spine + i * legs + l);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::is_gallai_tree;
    use crate::girth::girth;
    use crate::traversal::is_connected;

    #[test]
    fn path_and_cycle_counts() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert!(is_connected(&path(9), None));
    }

    #[test]
    fn streamed_csr_matches_edge_list_construction() {
        for n in [1, 2, 3, 9] {
            assert_eq!(path(n), Graph::from_edges(n, (1..n).map(|i| (i - 1, i))));
        }
        for n in [3, 4, 10] {
            assert_eq!(
                cycle(n),
                Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
            );
        }
    }

    #[test]
    fn complete_graph_edges() {
        assert_eq!(complete(6).m(), 15);
        assert!(complete(4).is_regular(3));
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert!(crate::traversal::bipartition(&g, None).is_some());
    }

    #[test]
    fn petersen_properties() {
        let p = petersen();
        assert!(p.is_regular(3));
        assert_eq!(girth(&p, None), Some(5));
    }

    #[test]
    fn binary_tree_is_tree() {
        let t = binary_tree(4);
        assert_eq!(t.n(), 31);
        assert_eq!(t.m(), 30);
        assert!(is_connected(&t, None));
        assert_eq!(girth(&t, None), None);
        assert!(is_gallai_tree(&t, None));
    }

    #[test]
    fn mycielski_grotzsch() {
        let g = mycielski(2);
        assert_eq!(g.n(), 11);
        assert!(crate::girth::is_triangle_free(&g, None));
        assert_eq!(crate::exact::chromatic_number(&g), 4);
    }

    #[test]
    fn caterpillar_is_gallai_tree() {
        let c = caterpillar(5, 3);
        assert_eq!(c.n(), 20);
        assert_eq!(c.m(), 19);
        assert!(is_gallai_tree(&c, None));
    }

    #[test]
    fn star_degrees() {
        let s = star(7);
        assert_eq!(s.degree(0), 7);
        assert_eq!(s.max_degree(), 7);
        assert_eq!(s.m(), 7);
    }

    #[test]
    #[should_panic]
    fn tiny_cycle_panics() {
        cycle(2);
    }
}
