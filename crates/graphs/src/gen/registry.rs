//! Named graph-family registry: `name → generator(n, seed)`.
//!
//! Every experiment harness in the workspace — the `engine_table` bench
//! bin, the scenario lab, the gate binaries — used to re-encode its own
//! `match family { "grid" => …, }` arms. This registry is the single
//! source of truth: a family is a *name* plus a deterministic builder
//! taking a target vertex count and a seed, so a scenario declared as data
//! (`"family": "random-4-regular", "n": 2000, "seed": 7`) resolves to the
//! same graph everywhere.
//!
//! Builders normalize `n` the way the family requires (grids round to a
//! square side, regular graphs to an even order), so `build(n, seed).n()`
//! may differ slightly from the requested `n` — always read the size off
//! the returned graph.

use crate::Graph;

use super::{classic, lattice, planar, random};

/// One named family: a deterministic `(n, seed) → Graph` builder.
#[derive(Clone, Copy)]
pub struct FamilySpec {
    /// Registry name (stable: suite files refer to it).
    pub name: &'static str,
    /// What the family is, one line.
    pub description: &'static str,
    /// The builder. `seed` is ignored by deterministic families.
    pub build: fn(n: usize, seed: u64) -> Graph,
}

/// The registry, sorted by name.
const FAMILIES: &[FamilySpec] = &[
    FamilySpec {
        name: "apollonian",
        description: "random Apollonian planar triangulation (mad < 6)",
        build: |n, seed| planar::apollonian(n.max(4), seed),
    },
    FamilySpec {
        name: "cycle",
        description: "the n-cycle",
        build: |n, _| classic::cycle(n.max(3)),
    },
    FamilySpec {
        name: "forest-union-a2",
        description: "union of 2 random spanning forests (arboricity ≤ 2)",
        build: |n, seed| random::forest_union(n, 2, seed),
    },
    FamilySpec {
        name: "forest-union-a3",
        description: "union of 3 random spanning forests (arboricity ≤ 3)",
        build: |n, seed| random::forest_union(n, 3, seed),
    },
    FamilySpec {
        name: "gnm-sparse",
        description: "G(n, m) with m = 2n random edges",
        build: |n, seed| random::gnm(n, 2 * n, seed),
    },
    FamilySpec {
        name: "grid",
        description: "⌈√n⌉ × ⌈√n⌉ planar grid",
        build: |n, _| {
            let side = (n.max(1) as f64).sqrt().round().max(1.0) as usize;
            lattice::grid(side, side)
        },
    },
    FamilySpec {
        name: "path",
        description: "the n-path",
        build: |n, _| classic::path(n.max(1)),
    },
    FamilySpec {
        name: "perforated-grid",
        description: "√n × √n grid with n/20 random holes",
        build: |n, seed| {
            let side = (n.max(4) as f64).sqrt().round().max(2.0) as usize;
            planar::perforated_grid(side, side, (side * side) / 20, seed)
        },
    },
    FamilySpec {
        name: "random-3-regular",
        description: "random 3-regular graph (order rounded to even)",
        build: |n, seed| random::random_regular(n.max(4) & !1, 3, seed),
    },
    FamilySpec {
        name: "random-4-regular",
        description: "random 4-regular graph (order rounded to even)",
        build: |n, seed| random::random_regular(n.max(6) & !1, 4, seed),
    },
    FamilySpec {
        name: "random-tree",
        description: "uniform random labelled tree",
        build: random::random_tree,
    },
    FamilySpec {
        name: "triangular",
        description: "⌈√n⌉ × ⌈√n⌉ triangular lattice",
        build: |n, _| {
            let side = (n.max(1) as f64).sqrt().round().max(1.0) as usize;
            lattice::triangular(side, side)
        },
    },
];

/// Looks a family up by name.
pub fn family(name: &str) -> Option<&'static FamilySpec> {
    FAMILIES.iter().find(|f| f.name == name)
}

/// All registered family names, sorted.
pub fn family_names() -> Vec<&'static str> {
    FAMILIES.iter().map(|f| f.name).collect()
}

/// Builds a named family, or `None` for an unknown name.
pub fn build_family(name: &str, n: usize, seed: u64) -> Option<Graph> {
    family(name).map(|f| (f.build)(n, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let names = family_names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            names, sorted,
            "registry must stay sorted and duplicate-free"
        );
    }

    #[test]
    fn every_family_builds_and_replays() {
        for spec in FAMILIES {
            let a = (spec.build)(60, 7);
            let b = (spec.build)(60, 7);
            assert!(a.n() > 0, "{}: empty graph", spec.name);
            assert_eq!(a.n(), b.n(), "{}: non-deterministic order", spec.name);
            let ea: Vec<_> = a.edges().collect();
            let eb: Vec<_> = b.edges().collect();
            assert_eq!(ea, eb, "{}: non-deterministic edges", spec.name);
        }
    }

    #[test]
    fn seeded_families_vary_with_the_seed() {
        for name in ["apollonian", "random-4-regular", "forest-union-a2"] {
            let a = build_family(name, 100, 1).unwrap();
            let b = build_family(name, 100, 2).unwrap();
            let ea: Vec<_> = a.edges().collect();
            let eb: Vec<_> = b.edges().collect();
            assert_ne!(ea, eb, "{name}: seed must matter");
        }
    }

    #[test]
    fn unknown_family_is_none() {
        assert!(family("no-such-family").is_none());
        assert!(build_family("no-such-family", 10, 0).is_none());
    }

    #[test]
    fn grid_size_is_squared_side() {
        let g = build_family("grid", 1600, 0).unwrap();
        assert_eq!(g.n(), 1600);
        let g = build_family("random-4-regular", 101, 0).unwrap();
        assert_eq!(g.n(), 100, "regular families round to an even order");
    }
}
